// Quickstart walks through the library on the paper's Figure 1 example:
// the tenant sequence σ = ⟨a=0.6, b=0.3, c=0.6, d=0.78, e=0.12, f=0.36⟩ is
// consolidated with two replicas per tenant, and we verify that any single
// server failure leaves every surviving server within capacity.
package main

import (
	"fmt"
	"log"

	"cubefit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two replicas per tenant: the placement survives any one server
	// failure. Five size classes suit a small cluster (the paper suggests
	// K=5 for small settings, K=10 for data centers).
	c, err := cubefit.New(cubefit.WithReplication(2), cubefit.WithClasses(5))
	if err != nil {
		return err
	}

	names := []string{"a", "b", "c", "d", "e", "f"}
	loads := []float64{0.6, 0.3, 0.6, 0.78, 0.12, 0.36}
	for i, load := range loads {
		if err := c.Place(cubefit.Tenant{ID: cubefit.TenantID(i), Load: load}); err != nil {
			return err
		}
		fmt.Printf("placed tenant %s (load %.2f) on servers %v\n",
			names[i], load, c.Placement().TenantHosts(cubefit.TenantID(i)))
	}

	p := c.Placement()
	fmt.Printf("\n%d tenants on %d servers (utilization %.0f%%)\n",
		p.NumTenants(), p.NumUsedServers(), 100*p.Utilization())
	for _, s := range p.Servers() {
		if s.NumReplicas() == 0 {
			continue
		}
		fmt.Printf("  server %d: level %.2f, failover reserve %.2f\n",
			s.ID(), s.Level(), s.TopShared(1))
	}

	// The robustness invariant: placing is only half the job — verify that
	// the failover reserve really covers any single failure.
	if err := c.Validate(); err != nil {
		return fmt.Errorf("invariant violated: %w", err)
	}
	for f := 0; f < p.NumServers(); f++ {
		if worst := p.MaxPostFailureLoad([]int{f}); worst > 1 {
			return fmt.Errorf("failing server %d would overload a survivor to %.2f", f, worst)
		}
	}
	fmt.Println("\nevery single-server failure keeps all survivors within capacity ✓")
	return nil
}
