// failover-drill builds a small analytics cluster with three replicas per
// tenant (tolerating two simultaneous machine failures), then measures
// simulated 99th-percentile latency while killing the worst possible one
// and two servers — a compressed version of the paper's Figure 5 protocol.
package main

import (
	"fmt"
	"log"

	"cubefit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const slaSeconds = 5.0

	// γ=3 protects against two simultaneous failures; K=5 suits a small
	// cluster (paper §V-A).
	c, err := cubefit.New(cubefit.WithReplication(3), cubefit.WithClasses(5))
	if err != nil {
		return err
	}
	src, err := cubefit.ZipfWorkload(3, 99)
	if err != nil {
		return err
	}
	// Admit tenants until the next one would need a 21st server.
	admitted := 0
	for {
		t := src.Next()
		if err := c.Place(t); err != nil {
			return err
		}
		if c.Placement().NumServers() > 20 {
			if err := c.Remove(t.ID); err != nil {
				return err
			}
			break
		}
		admitted++
	}
	fmt.Printf("cluster: %d tenants on %d servers, utilization %.0f%%\n\n",
		admitted, c.Placement().NumUsedServers(), 100*c.Placement().Utilization())

	cfg := cubefit.LatencyConfig{SLA: slaSeconds, Warmup: 20, Measure: 60, Seed: 5}
	for failures := 0; failures <= 2; failures++ {
		plan, err := cubefit.WorstCaseFailures(c.Placement(), failures)
		if err != nil {
			return err
		}
		res, err := cubefit.SimulateLatency(c.Placement(), plan, cfg)
		if err != nil {
			return err
		}
		verdict := "meets SLA"
		if res.ViolatesSLA {
			verdict = "VIOLATES SLA"
		}
		fmt.Printf("%d worst-case failure(s) %v: worst-server P99 %.2f s, cluster P99 %.2f s → %s\n",
			failures, plan.Servers, res.WorstServerP99, res.P99, verdict)
	}
	fmt.Printf("\nwith three replicas, even the worst two simultaneous failures stay under the %.0f s SLA\n", slaSeconds)
	return nil
}
