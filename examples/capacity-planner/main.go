// capacity-planner compares CubeFit against the RFI baseline across tenant
// populations and converts the saved servers into yearly dollars, the way
// the paper's Table I does — a what-if tool for a provider deciding which
// placement algorithm to deploy.
package main

import (
	"fmt"
	"log"

	"cubefit"

	"cubefit/internal/costs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenarios := []struct {
		name    string
		tenants int
		source  func(seed uint64) (cubefit.TenantSource, error)
	}{
		{
			name:    "uniform 1..15 clients (interactive analytics teams)",
			tenants: 20000,
			source:  func(seed uint64) (cubefit.TenantSource, error) { return cubefit.UniformWorkload(15, seed) },
		},
		{
			name:    "zipf(3) clients (long tail of small tenants)",
			tenants: 20000,
			source:  func(seed uint64) (cubefit.TenantSource, error) { return cubefit.ZipfWorkload(3, seed) },
		},
	}

	pricing := costs.DefaultModel()
	model := cubefit.DefaultLoadModel()
	for _, sc := range scenarios {
		src, err := sc.source(7)
		if err != nil {
			return err
		}
		tenants := cubefit.TakeTenants(src, sc.tenants)

		cube, err := cubefit.New(cubefit.WithClasses(10), cubefit.WithMinTenantLoad(model.Load(1)))
		if err != nil {
			return err
		}
		for _, t := range tenants {
			if err := cube.Place(t); err != nil {
				return err
			}
		}
		rfiAlg, err := cubefit.NewRFI(2, 0)
		if err != nil {
			return err
		}
		for _, t := range tenants {
			if err := rfiAlg.Place(t); err != nil {
				return err
			}
		}

		cubeServers := cube.Placement().NumUsedServers()
		rfiServers := rfiAlg.Placement().NumUsedServers()
		dollars, err := pricing.Savings(rfiServers, cubeServers)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  %d tenants: RFI %d servers, CubeFit %d servers (%.1f%% fewer)\n",
			sc.tenants, rfiServers, cubeServers,
			100*float64(rfiServers-cubeServers)/float64(cubeServers))
		fmt.Printf("  yearly savings at $%.3f/server-hour: $%.0f\n\n",
			costs.DefaultPricePerHour, dollars)
	}
	return nil
}
