// saas-provider simulates a cloud provider's day: tenants of a data
// analytics service arrive online (client counts uniform on 1..15, the
// paper's first system workload), some depart, and the operator
// periodically audits robustness and runs a worst-case failure drill.
package main

import (
	"fmt"
	"log"

	"cubefit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := cubefit.DefaultLoadModel()
	c, err := cubefit.New(
		cubefit.WithReplication(2),
		cubefit.WithClasses(10),
		// Every tenant has at least one client, so bins with less slack
		// than a single-client tenant can be retired early.
		cubefit.WithMinTenantLoad(model.Load(1)),
	)
	if err != nil {
		return err
	}

	src, err := cubefit.UniformWorkload(15, 2026)
	if err != nil {
		return err
	}

	// Morning: 500 tenants sign up.
	arrivals := cubefit.TakeTenants(src, 500)
	for _, t := range arrivals {
		if err := c.Place(t); err != nil {
			return fmt.Errorf("admit tenant %d: %w", t.ID, err)
		}
	}
	p := c.Placement()
	fmt.Printf("after 500 sign-ups: %d servers, utilization %.0f%%\n",
		p.NumUsedServers(), 100*p.Utilization())

	// Midday: one in five tenants churns; capacity is reclaimed in place.
	removed := 0
	for i, t := range arrivals {
		if i%5 == 0 {
			if err := c.Remove(t.ID); err != nil {
				return fmt.Errorf("remove tenant %d: %w", t.ID, err)
			}
			removed++
		}
	}
	fmt.Printf("after %d departures: utilization %.0f%%\n", removed, 100*p.Utilization())

	// Afternoon: 200 more arrivals reuse the freed capacity.
	before := p.NumUsedServers()
	for _, t := range cubefit.TakeTenants(src, 200) {
		if err := c.Place(t); err != nil {
			return fmt.Errorf("admit tenant %d: %w", t.ID, err)
		}
	}
	fmt.Printf("after 200 more arrivals: %d servers (%d before — departures were reused)\n",
		p.NumUsedServers(), before)

	// Continuous audit: the failover invariant must hold at all times.
	if err := c.Validate(); err != nil {
		return fmt.Errorf("robustness audit failed: %w", err)
	}
	st := c.Stats()
	fmt.Printf("placement paths: %d via mature-bin best fit, %d via cubes, %d tiny\n",
		st.FirstStageTenants, st.RegularTenants, st.TinyTenants)

	// Evening drill: what is the worst single machine to lose right now?
	plan, err := cubefit.WorstCaseFailures(p, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nworst single failure: server %v → %.1f clients land on server %d (capacity %d)\n",
		plan.Servers, plan.MaxClientLoad, plan.MaxServer, cubefit.MaxClientsPerServer)
	if plan.MaxClientLoad > cubefit.MaxClientsPerServer {
		return fmt.Errorf("drill predicts overload — this should be impossible with CubeFit")
	}
	fmt.Println("drill verdict: every server stays within its client capacity ✓")
	return nil
}
