package cubefit_test

import (
	"fmt"

	"cubefit"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// ExampleNew shows the minimal admission flow: two replicas per tenant on
// two distinct servers.
func ExampleNew() {
	c, err := cubefit.New(cubefit.WithReplication(2), cubefit.WithClasses(10))
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := c.Place(cubefit.Tenant{ID: 1, Load: 0.3}); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("hosts:", c.Placement().TenantHosts(1))
	fmt.Println("robust:", c.Validate() == nil)
	// Output:
	// hosts: [0 1]
	// robust: true
}

// ExampleConsolidator_Remove demonstrates the departure extension: freed
// capacity is reflected immediately.
func ExampleConsolidator_Remove() {
	c, _ := cubefit.New()
	_ = c.Place(cubefit.Tenant{ID: 1, Load: 0.5})
	_ = c.Place(cubefit.Tenant{ID: 2, Load: 0.5})
	fmt.Printf("load before: %.2f\n", c.Placement().TotalLoad())
	_ = c.Remove(1)
	fmt.Printf("load after: %.2f\n", c.Placement().TotalLoad())
	// Output:
	// load before: 1.00
	// load after: 0.50
}

// ExampleWorstCaseFailures plans the most damaging single failure and
// confirms CubeFit's reserve absorbs it.
func ExampleWorstCaseFailures() {
	c, _ := cubefit.New(cubefit.WithReplication(2), cubefit.WithClasses(5))
	for i, load := range []float64{0.6, 0.3, 0.6, 0.78, 0.12, 0.36} {
		_ = c.Place(cubefit.Tenant{ID: cubefit.TenantID(i), Load: load, Clients: 10})
	}
	plan, _ := cubefit.WorstCaseFailures(c.Placement(), 1)
	overload := c.Placement().MaxPostFailureLoad(plan.Servers)
	fmt.Println("worst-case post-failure load within capacity:", overload <= 1)
	// Output:
	// worst-case post-failure load within capacity: true
}

// Example_decisionRecorder attaches a flight-recorder ring to the engine
// and shows that a duplicate admission attempt is rejected without
// disturbing the original placement: the decision log still reconstructs
// the first admission and the tenant stays admitted.
func Example_decisionRecorder() {
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		fmt.Println(err)
		return
	}
	ring := obs.NewRing(100)
	cf.SetRecorder(ring)
	t := packing.Tenant{ID: 7, Load: 0.3}
	if err := cf.Place(t); err != nil {
		fmt.Println(err)
		return
	}
	// Duplicate attempt — rejected, tenant stays admitted.
	_ = cf.Place(t)
	d, ok := obs.DecisionFor(ring.Events(), 7)
	_, admitted := cf.Placement().Tenant(7)
	fmt.Printf("ok=%v path=%q replicas=%d (tenant still admitted: %v)\n",
		ok, d.Path, len(d.Replicas), admitted)
	// Output:
	// ok=true path="rejected" replicas=0 (tenant still admitted: true)
}

// ExampleNewRFI contrasts the baseline: it places tenants but reserves
// only for a single failure.
func ExampleNewRFI() {
	a, _ := cubefit.NewRFI(2, 0) // μ defaults to 0.85
	_ = a.Place(cubefit.Tenant{ID: 1, Load: 0.5})
	fmt.Println("name:", a.Name())
	fmt.Println("servers:", a.Placement().NumUsedServers())
	// Output:
	// name: rfi(γ=2,μ=0.85)
	// servers: 2
}

// ExamplePlaceOffline shows batch placement with full lookahead.
func ExamplePlaceOffline() {
	tenants := []cubefit.Tenant{
		{ID: 1, Load: 0.6},
		{ID: 2, Load: 0.3},
		{ID: 3, Load: 0.1},
	}
	p, _ := cubefit.PlaceOffline(2, tenants)
	fmt.Println("tenants:", p.NumTenants())
	fmt.Println("robust:", p.Validate() == nil)
	// Output:
	// tenants: 3
	// robust: true
}
