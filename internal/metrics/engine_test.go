package metrics

import (
	"strings"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/obs"
)

func TestEngineSink(t *testing.T) {
	r := NewRegistry()
	sink := NewEngineSink(r)
	fake := clock.NewFake(time.Unix(1000, 0))
	rec := obs.Stamp(fake, sink)

	// One admission taking 50ms between attempt and admit.
	att := obs.NewEvent(obs.KindAttempt)
	att.Tenant = 1
	rec.Record(att)
	fake.Advance(50 * time.Millisecond)
	adm := obs.NewEvent(obs.KindAdmit)
	adm.Tenant = 1
	adm.Path = "regular"
	rec.Record(adm)

	// One rejection.
	att2 := obs.NewEvent(obs.KindAttempt)
	att2.Tenant = 2
	rec.Record(att2)
	rej := obs.NewEvent(obs.KindReject)
	rej.Tenant = 2
	rej.Path = "rejected"
	rec.Record(rej)

	// Bin lifecycle: two opens, one mature, one retire, one reactivate.
	for _, k := range []obs.Kind{
		obs.KindBinOpen, obs.KindBinOpen, obs.KindBinMature,
		obs.KindBinRetire, obs.KindBinReactivate,
	} {
		rec.Record(obs.NewEvent(k))
	}

	// Cube cursor at counter 7 for class 5.
	adv := obs.NewEvent(obs.KindCubeAdvance)
	adv.Class = 5
	adv.Counter = 7
	rec.Record(adv)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cubefit_engine_events_total{kind="attempt"} 2`,
		`cubefit_engine_events_total{kind="admit"} 1`,
		`cubefit_place_duration_seconds_count{path="regular"} 1`,
		`cubefit_place_duration_seconds_count{path="rejected"} 1`,
		// 50ms falls in the 0.05 bucket (le is inclusive).
		`cubefit_place_duration_seconds_bucket{path="regular",le="0.05"} 1`,
		`cubefit_servers_opened 2`,
		// mature + reactivate - retire = 1.
		`cubefit_active_mature_bins 1`,
		`cubefit_cube_cursor{class="5",tiny="false"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestEngineSinkIgnoresOutcomeWithoutAttempt(t *testing.T) {
	r := NewRegistry()
	sink := NewEngineSink(r)
	adm := obs.NewEvent(obs.KindAdmit)
	adm.Tenant = 1
	adm.Path = "regular"
	adm.Time = time.Unix(5, 0)
	sink.Record(adm) // no pending attempt: must not observe a latency

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `cubefit_place_duration_seconds_count{path="regular"} 1`) {
		t.Error("latency observed for an admit with no matching attempt")
	}
}
