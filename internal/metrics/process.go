package metrics

import (
	"math"
	rtm "runtime/metrics"
)

// Process self-metrics: runtime signals the telemetry sampler watches
// alongside the workload metrics — a goroutine leak, heap growth, or GC
// pause inflation shows up in the same timeline as the admission SLOs.

// runtime/metrics sample names read by ProcessMetrics.Update.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapInuse  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
)

// ProcessMetrics exports process-level runtime gauges:
//
//	cubefit_process_goroutines          current goroutine count
//	cubefit_process_heap_inuse_bytes    bytes in live + dead heap objects
//	cubefit_process_gc_pause_p99_seconds  P99 GC pause, all-time histogram
//
// Update refreshes the gauges from one runtime/metrics read; the server
// calls it from each telemetry tick and from the /metrics handler path,
// so the gauges are only as stale as the last scrape.
type ProcessMetrics struct {
	goroutines *Gauge
	heapInuse  *Gauge
	gcPauseP99 *FGauge
	samples    []rtm.Sample
}

// NewProcessMetrics registers the process gauges on r.
func NewProcessMetrics(r *Registry) *ProcessMetrics {
	return &ProcessMetrics{
		goroutines: r.NewGauge("cubefit_process_goroutines",
			"Current number of live goroutines."),
		heapInuse: r.NewGauge("cubefit_process_heap_inuse_bytes",
			"Bytes occupied by live and dead heap objects."),
		gcPauseP99: r.NewFGauge("cubefit_process_gc_pause_p99_seconds",
			"P99 stop-the-world GC pause over the process lifetime."),
		samples: []rtm.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapInuse},
			{Name: rmGCPauses},
		},
	}
}

// Update re-reads the runtime metrics into the registered gauges.
func (p *ProcessMetrics) Update() {
	rtm.Read(p.samples)
	for i := range p.samples {
		s := &p.samples[i]
		switch s.Name {
		case rmGoroutines:
			if s.Value.Kind() == rtm.KindUint64 {
				p.goroutines.Set(int64(s.Value.Uint64()))
			}
		case rmHeapInuse:
			if s.Value.Kind() == rtm.KindUint64 {
				p.heapInuse.Set(int64(s.Value.Uint64()))
			}
		case rmGCPauses:
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				p.gcPauseP99.Set(histogramP99(s.Value.Float64Histogram()))
			}
		}
	}
}

// histogramP99 adapts a runtime/metrics histogram (len(Buckets) ==
// len(Counts)+1 edges, possibly ±Inf at either end) to the fixed-bucket
// shape QuantileFromBuckets expects (finite upper bounds plus a +Inf
// overflow bucket). Returns 0 before the first GC.
func histogramP99(h *rtm.Float64Histogram) float64 {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	// Upper edge of bucket i is Buckets[i+1].
	upper := h.Buckets[1:]
	counts := h.Counts
	bounds := upper
	if math.IsInf(upper[len(upper)-1], +1) {
		// Last bucket is the +Inf overflow: its finite bounds are the rest.
		bounds = upper[:len(upper)-1]
	} else {
		// No overflow bucket in the runtime histogram; give the quantile
		// helper an empty one.
		counts = append(append([]uint64(nil), counts...), 0)
	}
	if len(bounds) == 0 {
		return 0
	}
	q := QuantileFromBuckets(bounds, counts, 0.99)
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
		return 0
	}
	return q
}
