package metrics

import (
	"math"
	"strings"
)

// Snapshot/walk API: a point-in-time, internally consistent view of every
// registered metric. It exists for two consumers with the same need:
//
//   - the Prometheus text exposition (WritePrometheus), whose previous
//     implementation read histogram buckets, _sum, and _count with
//     independent atomic loads mid-write and could therefore render a
//     cumulative +Inf bucket that disagreed with its own _count line; and
//   - the telemetry sampler (internal/telemetry), which scrapes the whole
//     registry once per tick into ring time-series and needs every family
//     observed at one coherent instant per tick.
//
// Consistency contract: within one HistogramSnapshot the cumulative
// bucket counts always sum exactly to Count (the +Inf bucket equals
// _count by construction). Sum is read in the same pass; under continuous
// concurrent writes it may trail or lead Count by the handful of
// observations in flight during the pass, which is the strongest
// guarantee available without putting a lock on the wait-free Observe
// path.

// SampleKind discriminates what a Sample carries.
type SampleKind uint8

const (
	// KindCounterSample is a monotone counter (Value holds the count).
	KindCounterSample SampleKind = iota
	// KindGaugeSample is a gauge or float gauge (Value holds the level).
	KindGaugeSample
	// KindHistogramSample is a histogram child (Hist holds the state).
	KindHistogramSample
)

// HistogramSnapshot is one histogram child frozen at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the ascending finite bucket upper bounds (+Inf implicit).
	// The slice aliases the live histogram's immutable bounds; callers
	// must not mutate it.
	Bounds []float64
	// Counts holds len(Bounds)+1 non-cumulative bucket counts; the last
	// entry is the +Inf bucket.
	Counts []uint64
	// Sum is the sum of observed values; Count the number of
	// observations. Count always equals the sum of Counts.
	Sum   float64
	Count uint64
}

// Sample is one child (labelled or plain) of a metric family.
type Sample struct {
	// Labels is the pre-rendered `k="v",...` label set, empty for the
	// plain (unlabelled) child.
	Labels string
	Kind   SampleKind
	// Value holds the counter or gauge value (unused for histograms).
	Value float64
	Hist  HistogramSnapshot
}

// FamilySnapshot is one registered metric family with its children,
// sorted by label values.
type FamilySnapshot struct {
	Name string
	Help string
	// Kind is the Prometheus TYPE: "counter", "gauge", or "histogram".
	Kind    string
	Samples []Sample
}

// Snapshot walks every registered family and freezes its children. Output
// is deterministic: families in registration order, children sorted by
// label values — the exact order WritePrometheus renders.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

func (f *family) kind() string {
	switch {
	case f.hist != nil || f.histVec != nil:
		return "histogram"
	case f.gauge != nil || f.gaugeVec != nil || f.fgauge != nil:
		return "gauge"
	}
	return "counter"
}

func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind()}
	switch {
	case f.counter != nil:
		fs.Samples = []Sample{{Kind: KindCounterSample, Value: float64(f.counter.Value())}}
	case f.gauge != nil:
		fs.Samples = []Sample{{Kind: KindGaugeSample, Value: float64(f.gauge.Value())}}
	case f.fgauge != nil:
		fs.Samples = []Sample{{Kind: KindGaugeSample, Value: f.fgauge.Value()}}
	case f.hist != nil:
		fs.Samples = []Sample{{Kind: KindHistogramSample, Hist: f.hist.Snapshot()}}
	case f.counterVec != nil:
		v := f.counterVec
		v.mu.RLock()
		for _, key := range sortedKeys(v.children) {
			fs.Samples = append(fs.Samples, Sample{
				Labels: renderLabels(v.labels, strings.Split(key, labelSep)),
				Kind:   KindCounterSample,
				Value:  float64(v.children[key].Value()),
			})
		}
		v.mu.RUnlock()
	case f.gaugeVec != nil:
		v := f.gaugeVec
		v.mu.RLock()
		for _, key := range sortedKeys(v.children) {
			fs.Samples = append(fs.Samples, Sample{
				Labels: renderLabels(v.labels, strings.Split(key, labelSep)),
				Kind:   KindGaugeSample,
				Value:  float64(v.children[key].Value()),
			})
		}
		v.mu.RUnlock()
	case f.histVec != nil:
		v := f.histVec
		v.mu.RLock()
		keys := sortedKeys(v.children)
		children := make([]*Histogram, len(keys))
		for i, key := range keys {
			children[i] = v.children[key]
		}
		v.mu.RUnlock()
		// Freeze outside the vec lock: Snapshot may retry under write
		// pressure and must not hold up With on other children.
		for i, key := range keys {
			fs.Samples = append(fs.Samples, Sample{
				Labels: renderLabels(v.labels, strings.Split(key, labelSep)),
				Kind:   KindHistogramSample,
				Hist:   children[i].Snapshot(),
			})
		}
	}
	return fs
}

// snapshotAttempts bounds the consistent-read retry loop. Observe is three
// atomic adds, so a stable total across one full bucket pass is the
// common case; the bound only matters under saturating write pressure.
const snapshotAttempts = 4

// Snapshot freezes the histogram. The bucket array and Count are always
// mutually consistent (Count is validated against — and in the contended
// fallback derived from — the per-bucket counts), fixing the torn
// exposition where _count disagreed with the cumulative +Inf bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var sum float64
	var cum uint64
	for attempt := 0; attempt < snapshotAttempts; attempt++ {
		before := h.total.Load()
		cum = 0
		for i := range h.counts {
			c := h.counts[i].Load()
			counts[i] = c
			cum += c
		}
		sum = h.sum.Load()
		// Stable total across the pass and buckets agreeing with it means
		// no observation straddled the reads: the view is exact.
		if h.total.Load() == before && cum == before {
			return HistogramSnapshot{Bounds: h.bounds, Counts: counts, Sum: sum, Count: cum}
		}
	}
	// Continuously contended: the last pass's buckets are kept and Count
	// is derived from them, so buckets↔count stay exact; Sum may be off by
	// the observations in flight during the pass.
	return HistogramSnapshot{Bounds: h.bounds, Counts: counts, Sum: sum, Count: cum}
}

// QuantileFromBuckets estimates the q-quantile (q in (0,1], e.g. 0.99)
// from fixed-bucket histogram state: bounds are ascending finite upper
// bounds and counts holds len(bounds)+1 non-cumulative bucket counts, the
// last being the +Inf bucket — exactly the shape of HistogramSnapshot and
// of a bucket-delta between two snapshots.
//
// The estimate interpolates linearly inside the bucket containing the
// rank, Prometheus histogram_quantile style: the first bucket
// interpolates from 0 (or from its bound when that is negative), and a
// rank landing in the +Inf bucket reports the largest finite bound, the
// tightest defensible value. NaN is returned when there are no
// observations or the shapes disagree.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return math.NaN()
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(bounds) {
			// +Inf bucket: no finite upper edge to interpolate toward.
			return bounds[len(bounds)-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		} else if hi < 0 {
			// All-negative buckets: a zero lower edge would interpolate
			// upward out of the bucket.
			return hi
		}
		prev := float64(cum - c)
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

// SeriesKey renders the canonical series key of a family child: `name`
// for the plain child, `name{labels}` for a labelled one. The telemetry
// sampler and /debug/timeline use these keys verbatim, so they are part
// of the health-log schema.
func SeriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name) + len(labels) + 2)
	sb.WriteString(name)
	sb.WriteByte('{')
	sb.WriteString(labels)
	sb.WriteByte('}')
	return sb.String()
}
