package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("seen_total", "Things seen.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter value %d, want 5", c.Value())
	}
	v := r.NewCounterVec("admissions_total", "Admissions by outcome.", "outcome")
	v.With("regular").Add(3)
	v.With("tiny").Inc()
	v.With("regular").Inc()
	if got := v.With("regular").Value(); got != 4 {
		t.Fatalf("regular = %d, want 4", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE seen_total counter",
		"seen_total 5",
		`admissions_total{outcome="regular"} 4`,
		`admissions_total{outcome="tiny"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", 0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative le semantics: 0.01 catches 0.005 and the exact 0.01.
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 2`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("req_seconds", "Request latency.", []string{"route"}, 0.1, 1)
	v.With("place").Observe(0.05)
	v.With("place").Observe(0.5)
	v.With("stats").Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`req_seconds_bucket{route="place",le="0.1"} 1`,
		`req_seconds_bucket{route="place",le="+Inf"} 2`,
		`req_seconds_count{route="place"} 2`,
		`req_seconds_bucket{route="stats",le="1"} 0`,
		`req_seconds_count{route="stats"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x_total", "X again.")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("odd_total", "Odd labels.", "what")
	v.With(`a"b\c` + "\n").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `odd_total{what="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}
}

// TestConcurrentUpdates is primarily a -race exercise: counters and
// histograms must tolerate concurrent observation and rendering.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hits_total", "Hits.")
	v := r.NewCounterVec("routes_total", "Routes.", "route")
	h := r.NewHistogramVec("lat_seconds", "Lat.", []string{"route"}, 0.001, 0.01, 0.1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := []string{"a", "b", "c"}[g%3]
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With(route).Inc()
				h.With(route).Observe(float64(i) / 10000)
			}
		}(g)
	}
	// Render concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("hits %d, want 8000", c.Value())
	}
	total := uint64(0)
	for _, route := range []string{"a", "b", "c"} {
		total += v.With(route).Value()
	}
	if total != 8000 {
		t.Fatalf("route sum %d, want 8000", total)
	}
}

// TestHistogramBoundaryObservation pins the inclusive-le contract: an
// observation exactly equal to a bucket bound lands in that bucket, not
// the next one.
func TestHistogramBoundaryObservation(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("edge_seconds", "Edge.", 0.25, 0.5)
	h.Observe(0.25) // exactly on the first bound
	h.Observe(0.5)  // exactly on the second bound

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`edge_seconds_bucket{le="0.25"} 1`,
		`edge_seconds_bucket{le="0.5"} 2`,
		`edge_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramInfBucketMatchesCount asserts the Prometheus invariant
// that the +Inf bucket always equals _count, including when every
// observation overflows the largest bound.
func TestHistogramInfBucketMatchesCount(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("overflow_seconds", "Overflow.", 0.001)
	for i := 0; i < 7; i++ {
		h.Observe(100) // all beyond the last bound
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`overflow_seconds_bucket{le="0.001"} 0`,
		`overflow_seconds_bucket{le="+Inf"} 7`,
		"overflow_seconds_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAndVec(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("open_things", "Open things.")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(5)
	if g.Value() != 6 {
		t.Fatalf("Value = %d, want 6", g.Value())
	}
	g.Set(3)

	gv := r.NewGaugeVec("cursor_position", "Cursor.", "class")
	gv.With("2").Set(9)
	gv.With("7").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE open_things gauge",
		"open_things 3",
		"# TYPE cursor_position gauge",
		`cursor_position{class="2"} 9`,
		`cursor_position{class="7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewFGauge("headroom_min", "Minimum slack.")
	if g.Value() != 0 {
		t.Fatalf("zero value = %v, want 0", g.Value())
	}
	g.Set(0.25)
	g.Set(-0.125)
	if g.Value() != -0.125 {
		t.Fatalf("Value = %v, want -0.125", g.Value())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE headroom_min gauge",
		"headroom_min -0.125",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFGaugeConcurrent(t *testing.T) {
	g := &FGauge{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		v := float64(i) / 16
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				g.Set(v)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got < 0 || got > 0.5 {
		t.Fatalf("Value = %v, want one of the written values", got)
	}
}
