package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentRecordsRequests(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	ok := m.Instrument("ok", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) // no explicit WriteHeader: must count as 200
	}))
	missing := m.Instrument("missing", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	missing.ServeHTTP(rec, httptest.NewRequest("POST", "/missing", nil))
	if rec.Code != 404 {
		t.Fatalf("status %d", rec.Code)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cubefit_http_requests_total{route="ok",method="GET",code="2xx"} 3`,
		`cubefit_http_requests_total{route="missing",method="POST",code="4xx"} 1`,
		`cubefit_http_request_duration_seconds_bucket{route="ok",le="+Inf"} 3`,
		`cubefit_http_request_duration_seconds_count{route="missing"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other", 700: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Fatalf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up_total", "Up.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "up_total 1") {
		t.Fatalf("body %q", buf[:n])
	}
}

// flushRecorder implements http.Flusher; readFromRecorder adds
// io.ReaderFrom; bareWriter implements neither.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed bool
}

func (f *flushRecorder) Flush() { f.flushed = true }

type readFromRecorder struct {
	*httptest.ResponseRecorder
	readFrom bool
}

func (r *readFromRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.readFrom = true
	return io.Copy(r.ResponseRecorder, src)
}

type bareWriter struct{ http.ResponseWriter }

func TestWrapResponseWriterPreservesFlusher(t *testing.T) {
	base := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	ww, rec := WrapResponseWriter(base)
	f, ok := ww.(http.Flusher)
	if !ok {
		t.Fatal("wrapper hides http.Flusher")
	}
	f.Flush()
	if !base.flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	ww.WriteHeader(http.StatusTeapot)
	if rec.Code != http.StatusTeapot {
		t.Errorf("recorded code = %d through flusher wrapper", rec.Code)
	}
	if _, ok := ww.(io.ReaderFrom); ok {
		t.Error("wrapper invents io.ReaderFrom the base does not have")
	}
}

func TestWrapResponseWriterPreservesReaderFrom(t *testing.T) {
	base := &readFromRecorder{ResponseRecorder: httptest.NewRecorder()}
	ww, rec := WrapResponseWriter(base)
	rf, ok := ww.(io.ReaderFrom)
	if !ok {
		t.Fatal("wrapper hides io.ReaderFrom")
	}
	if _, err := rf.ReadFrom(strings.NewReader("payload")); err != nil {
		t.Fatal(err)
	}
	if !base.readFrom {
		t.Error("ReadFrom did not reach the underlying writer")
	}
	if got := base.Body.String(); got != "payload" {
		t.Errorf("body = %q", got)
	}
	if rec.Code != http.StatusOK {
		t.Errorf("default code = %d", rec.Code)
	}
}

func TestWrapResponseWriterPreservesBoth(t *testing.T) {
	type both struct {
		*flushRecorder
		io.ReaderFrom
	}
	inner := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	rfInner := &readFromRecorder{ResponseRecorder: inner.ResponseRecorder}
	ww, rec := WrapResponseWriter(both{inner, rfInner})
	if _, ok := ww.(http.Flusher); !ok {
		t.Error("wrapper hides http.Flusher")
	}
	if _, ok := ww.(io.ReaderFrom); !ok {
		t.Error("wrapper hides io.ReaderFrom")
	}
	ww.WriteHeader(http.StatusAccepted)
	if rec.Code != http.StatusAccepted {
		t.Errorf("recorded code = %d", rec.Code)
	}
}

func TestWrapResponseWriterPlain(t *testing.T) {
	// A writer with neither interface must not gain them.
	ww, rec := WrapResponseWriter(bareWriter{httptest.NewRecorder()})
	if _, ok := ww.(http.Flusher); ok {
		t.Error("wrapper invents http.Flusher")
	}
	if _, ok := ww.(io.ReaderFrom); ok {
		t.Error("wrapper invents io.ReaderFrom")
	}
	ww.WriteHeader(http.StatusNotFound)
	if rec.Code != http.StatusNotFound {
		t.Errorf("recorded code = %d", rec.Code)
	}
}
