package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentRecordsRequests(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	ok := m.Instrument("ok", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) // no explicit WriteHeader: must count as 200
	}))
	missing := m.Instrument("missing", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	missing.ServeHTTP(rec, httptest.NewRequest("POST", "/missing", nil))
	if rec.Code != 404 {
		t.Fatalf("status %d", rec.Code)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cubefit_http_requests_total{route="ok",method="GET",code="2xx"} 3`,
		`cubefit_http_requests_total{route="missing",method="POST",code="4xx"} 1`,
		`cubefit_http_request_duration_seconds_bucket{route="ok",le="+Inf"} 3`,
		`cubefit_http_request_duration_seconds_count{route="missing"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 500: "5xx", 99: "other", 700: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Fatalf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("up_total", "Up.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "up_total 1") {
		t.Fatalf("body %q", buf[:n])
	}
}
