package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramSnapshotConsistency(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 10, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got, want := s.Count, uint64(5); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	var cum uint64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != Count %d", cum, s.Count)
	}
	if got, want := s.Sum, 25.0; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if want := []uint64{1, 1, 1, 2}; len(s.Counts) != len(want) {
		t.Fatalf("Counts = %v, want %v", s.Counts, want)
	} else {
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Fatalf("Counts = %v, want %v", s.Counts, want)
			}
		}
	}
}

// TestHistogramSnapshotUnderWrites hammers a histogram from writers while
// snapshotting: every snapshot must have buckets summing exactly to its
// Count — the invariant the torn-read exposition violated.
func TestHistogramSnapshotUnderWrites(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 0.75})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v += 0.13
				if v > 1 {
					v -= 1
				}
			}
		}(float64(w) * 0.2)
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var cum uint64
		for _, c := range s.Counts {
			cum += c
		}
		if cum != s.Count {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d: bucket sum %d != Count %d", i, cum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistrySnapshotWalk(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Add(7)
	g := r.NewGauge("g", "a gauge")
	g.Set(-3)
	fg := r.NewFGauge("fg", "a float gauge")
	fg.Set(0.25)
	cv := r.NewCounterVec("cv_total", "labelled counter", "route")
	cv.With("b").Inc()
	cv.With("a").Add(2)
	hv := r.NewHistogramVec("hv_seconds", "labelled histogram", []string{"stage"}, 1, 2)
	hv.With("place").Observe(1.5)

	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("families = %d, want 5", len(snap))
	}
	order := make([]string, len(snap))
	for i, fs := range snap {
		order[i] = fs.Name
	}
	if got := strings.Join(order, ","); got != "c_total,g,fg,cv_total,hv_seconds" {
		t.Fatalf("family order = %s", got)
	}
	if v := snap[0].Samples[0].Value; v != 7 {
		t.Fatalf("counter = %v", v)
	}
	if v := snap[1].Samples[0].Value; v != -3 {
		t.Fatalf("gauge = %v", v)
	}
	if k := snap[1].Kind; k != "gauge" {
		t.Fatalf("gauge kind = %q", k)
	}
	// Vec children come back sorted by label values.
	cvs := snap[3].Samples
	if len(cvs) != 2 || cvs[0].Labels != `route="a"` || cvs[0].Value != 2 ||
		cvs[1].Labels != `route="b"` || cvs[1].Value != 1 {
		t.Fatalf("counter vec samples = %+v", cvs)
	}
	hs := snap[4].Samples[0]
	if hs.Labels != `stage="place"` || hs.Hist.Count != 1 || hs.Hist.Sum != 1.5 {
		t.Fatalf("hist vec sample = %+v", hs)
	}
	if snap[4].Kind != "histogram" {
		t.Fatalf("hist kind = %q", snap[4].Kind)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	tests := []struct {
		name   string
		counts []uint64
		q      float64
		want   float64
	}{
		// 10 observations all in (1,2]: P50 interpolates to the middle.
		{"interpolated", []uint64{0, 10, 0, 0}, 0.5, 1.5},
		// Rank exactly on a bucket edge reports the bound.
		{"edge", []uint64{5, 5, 0, 0}, 0.5, 1},
		// Everything in the first bucket interpolates from zero.
		{"first bucket", []uint64{4, 0, 0, 0}, 0.5, 0.5},
		// Rank in the +Inf bucket clamps to the largest finite bound.
		{"inf bucket", []uint64{0, 0, 0, 3}, 0.99, 4},
		// Mixed: 9 fast, 1 overflow; P99 lands in +Inf.
		{"tail overflow", []uint64{9, 0, 0, 1}, 0.99, 4},
		// q=1 is the maximum-rank estimate.
		{"q one", []uint64{2, 2, 0, 0}, 1, 2},
	}
	for _, tc := range tests {
		if got := QuantileFromBuckets(bounds, tc.counts, tc.q); got != tc.want {
			t.Errorf("%s: QuantileFromBuckets(%v, %v) = %v, want %v",
				tc.name, tc.counts, tc.q, got, tc.want)
		}
	}
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram: got %v, want NaN", got)
	}
	if got := QuantileFromBuckets(bounds, []uint64{1, 2}, 0.5); !math.IsNaN(got) {
		t.Errorf("shape mismatch: got %v, want NaN", got)
	}
	if got := QuantileFromBuckets(nil, nil, 0.5); !math.IsNaN(got) {
		t.Errorf("no bounds: got %v, want NaN", got)
	}
	// Negative-only first bucket must not interpolate upward past its bound.
	if got := QuantileFromBuckets([]float64{-2, -1}, []uint64{4, 0, 0}, 0.5); got != -2 {
		t.Errorf("negative first bucket: got %v, want -2", got)
	}
}

func TestSeriesKey(t *testing.T) {
	if got := SeriesKey("m", ""); got != "m" {
		t.Fatalf("plain key = %q", got)
	}
	if got := SeriesKey("m", `route="place"`); got != `m{route="place"}` {
		t.Fatalf("labelled key = %q", got)
	}
}

func TestProcessMetrics(t *testing.T) {
	r := NewRegistry()
	p := NewProcessMetrics(r)
	p.Update()
	if g := p.goroutines.Value(); g < 1 {
		t.Fatalf("goroutines = %d, want >= 1", g)
	}
	if b := p.heapInuse.Value(); b <= 0 {
		t.Fatalf("heap in-use = %d, want > 0", b)
	}
	if v := p.gcPauseP99.Value(); v < 0 || math.IsNaN(v) {
		t.Fatalf("gc pause p99 = %v", v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cubefit_process_goroutines",
		"cubefit_process_heap_inuse_bytes",
		"cubefit_process_gc_pause_p99_seconds",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, sb.String())
		}
	}
}
