// Package metrics is a dependency-free metrics library for the placement
// service: lock-free (atomic) counters, fixed-bucket histograms, labelled
// variants of both, and a registry that renders everything in the
// Prometheus text exposition format. It exists so the operational layer
// (internal/api, cmd/cubefit-server) can export request and admission
// telemetry without pulling an external client library into the module.
//
// All value updates are wait-free on the hot path: counters and histogram
// buckets are atomic integers, and labelled children are resolved through
// a read-locked map with a double-checked write path on first use.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an integer gauge — a value that can move both ways (servers
// open, mature bins, cursor positions). The zero value is ready to use;
// all methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FGauge is a float gauge for quantities measured in fractions of unit
// capacity (headroom slack, utilization). The zero value is ready to use;
// all methods are lock-free (the value lives in an atomic bit pattern).
type FGauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat is a float64 updated through CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus `le` (cumulative
// upper bound) semantics. Observations are wait-free except for the CAS
// loop maintaining the sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomicFloat
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %v", b[i]))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. the le bucket
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// labelSep joins label values into map keys; it cannot appear in values
// that originate from route names, methods, or status classes.
const labelSep = "\x1f"

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns (creating on first use) the counter for the label values.
// It panics if the number of values does not match the declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.key(values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[key]; c != nil {
		return c
	}
	c = &Counter{}
	v.children[key] = c
	return c
}

func (v *CounterVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	return strings.Join(values, labelSep)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Gauge
}

// With returns (creating on first use) the gauge for the label values.
// It panics if the number of values does not match the declared labels.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.children[key]; g != nil {
		return g
	}
	g = &Gauge{}
	v.children[key] = g
	return g
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns (creating on first use) the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(v.labels)))
	}
	key := strings.Join(values, labelSep)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[key]; h != nil {
		return h
	}
	h = newHistogram(v.bounds)
	v.children[key] = h
	return h
}

// family is one registered metric name with its help text and children.
type family struct {
	name string
	help string

	counter    *Counter // exactly one of the seven is non-nil
	counterVec *CounterVec
	gauge      *Gauge
	gaugeVec   *GaugeVec
	fgauge     *FGauge
	hist       *Histogram
	histVec    *HistogramVec
}

// Registry holds registered metrics and renders them. Registration takes
// the registry lock; value updates never do.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("metrics: duplicate metric name " + f.name)
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// NewCounter registers and returns a plain counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, counter: c})
	return c
}

// NewCounterVec registers and returns a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, counterVec: v})
	return v
}

// NewGauge registers and returns a plain gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, gauge: g})
	return g
}

// NewFGauge registers and returns a plain float gauge.
func (r *Registry) NewFGauge(name, help string) *FGauge {
	g := &FGauge{}
	r.register(&family{name: name, help: help, fgauge: g})
	return g
}

// NewGaugeVec registers and returns a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, children: make(map[string]*Gauge)}
	r.register(&family{name: name, help: help, gaugeVec: v})
	return v
}

// NewHistogram registers and returns a plain histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds ...float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, hist: h})
	return h
}

// NewHistogramVec registers and returns a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help string, labels []string, bounds ...float64) *HistogramVec {
	v := &HistogramVec{labels: labels, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
	if len(bounds) == 0 {
		panic("metrics: histogram vec needs at least one bucket bound")
	}
	r.register(&family{name: name, help: help, histVec: v})
	return v
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families in
// registration order, children sorted by label values. Rendering goes
// through Registry.Snapshot, so each histogram's bucket, _sum, and _count
// lines come from one consistent freeze rather than independent atomic
// loads racing concurrent Observe calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fs := range r.Snapshot() {
		if err := writeFamily(w, fs); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Rendering errors mean the client went away; nothing to do.
		_ = r.WritePrometheus(w)
	})
}

// writeFamily renders one frozen family. Counter and integer-gauge
// values round-trip through float64; formatFloat renders integral
// values without a decimal point, matching the previous %d output.
func writeFamily(w io.Writer, fs FamilySnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fs.Name, fs.Help, fs.Name, fs.Kind); err != nil {
		return err
	}
	for _, s := range fs.Samples {
		if s.Kind == KindHistogramSample {
			if err := writeHistogram(w, fs.Name, s.Labels, s.Hist); err != nil {
				return err
			}
			continue
		}
		curly := ""
		if s.Labels != "" {
			curly = "{" + s.Labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", fs.Name, curly, formatFloat(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one frozen histogram child; labels is the
// pre-rendered `k="v",...` prefix (empty for an unlabelled histogram).
func writeHistogram(w io.Writer, name, labels string, h HistogramSnapshot) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	curly := "{" + labels + "}"
	if labels == "" {
		curly = ""
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, curly, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, curly, h.Count)
	return err
}

func renderLabels(names, values []string) string {
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
