package metrics

import (
	"strconv"
	"sync"
	"time"

	"cubefit/internal/obs"
)

// EngineSink is an obs.Recorder that folds the decision event stream into
// engine metrics: per-path admission latency histograms and servers-open /
// mature-bin / cube-cursor gauges. It is the bridge between the flight
// recorder (internal/obs) and the Prometheus exposition — attach it with
// obs.Tee alongside a ring or JSONL sink.
//
// Latency is computed from the event timestamps assigned by obs.Stamp
// (attempt → admit/reject), so the sink itself never reads a clock.
type EngineSink struct {
	events  *CounterVec
	latency *HistogramVec
	servers *Gauge
	mature  *Gauge
	cursor  *GaugeVec

	mu      sync.Mutex
	pending map[int]time.Time // tenant → attempt timestamp
}

// NewEngineSink registers the engine metric families on the registry and
// returns the sink.
func NewEngineSink(r *Registry) *EngineSink {
	return &EngineSink{
		events: r.NewCounterVec("cubefit_engine_events_total",
			"Placement decision events by kind.", "kind"),
		latency: r.NewHistogramVec("cubefit_place_duration_seconds",
			"Tenant admission latency by outcome path.",
			[]string{"path"}, DefaultLatencyBuckets...),
		servers: r.NewGauge("cubefit_servers_opened",
			"Servers opened by the engine."),
		mature: r.NewGauge("cubefit_active_mature_bins",
			"Mature bins currently eligible for first-stage placement."),
		cursor: r.NewGaugeVec("cubefit_cube_cursor",
			"Cube counter position (slots closed since the last wrap) by class.",
			"class", "tiny"),
		pending: make(map[int]time.Time),
	}
}

// Record implements obs.Recorder.
func (s *EngineSink) Record(e obs.Event) {
	s.events.With(string(e.Kind)).Inc()
	switch e.Kind {
	case obs.KindAttempt:
		s.mu.Lock()
		s.pending[e.Tenant] = e.Time
		s.mu.Unlock()
	case obs.KindAdmit, obs.KindReject:
		s.mu.Lock()
		start, ok := s.pending[e.Tenant]
		delete(s.pending, e.Tenant)
		s.mu.Unlock()
		if ok {
			s.latency.With(e.Path).Observe(e.Time.Sub(start).Seconds())
		}
	case obs.KindBinOpen:
		s.servers.Inc()
	case obs.KindBinMature, obs.KindBinReactivate:
		s.mature.Inc()
	case obs.KindBinRetire:
		s.mature.Dec()
	case obs.KindCubeAdvance:
		s.cursor.With(strconv.Itoa(e.Class), tinyLabel(e.Tiny)).Set(int64(e.Counter))
	}
}

func tinyLabel(tiny bool) string {
	if tiny {
		return "true"
	}
	return "false"
}
