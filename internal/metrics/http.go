package metrics

import (
	"io"
	"net/http"
	"strconv"
	"time"
)

// DefaultLatencyBuckets spans sub-millisecond in-memory placements up to
// multi-second repack computations (seconds).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// HTTPMetrics records per-route request counts (by method and status
// class) and latency histograms.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
}

// NewHTTPMetrics registers the HTTP metric families on the registry.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.NewCounterVec("cubefit_http_requests_total",
			"HTTP requests by route, method, and status class.",
			"route", "method", "code"),
		latency: r.NewHistogramVec("cubefit_http_request_duration_seconds",
			"HTTP request latency by route.",
			[]string{"route"}, DefaultLatencyBuckets...),
	}
}

// Instrument wraps a handler, recording its requests under the given route
// name. Routes are named explicitly (rather than by URL path) so that
// path parameters like tenant IDs do not explode label cardinality.
func (m *HTTPMetrics) Instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ww, rec := WrapResponseWriter(w)
		next.ServeHTTP(ww, r)
		m.requests.With(route, r.Method, statusClass(rec.Code)).Inc()
		m.latency.With(route).Observe(time.Since(start).Seconds())
	})
}

// StatusRecorder captures the response status code written by a handler
// (defaulting to 200 when the handler never calls WriteHeader).
type StatusRecorder struct {
	http.ResponseWriter
	Code int
}

// WriteHeader records the status and forwards it.
func (r *StatusRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// WrapResponseWriter wraps w so the returned *StatusRecorder captures the
// response status, while the returned ResponseWriter still advertises
// http.Flusher and io.ReaderFrom exactly when w does. Handlers that
// stream (flushing between chunks) or sendfile through the wrapper keep
// working; a wrapper that blindly embedded w would hide those optional
// interfaces and silently break flushing.
func WrapResponseWriter(w http.ResponseWriter) (http.ResponseWriter, *StatusRecorder) {
	rec := &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
	f, canFlush := w.(http.Flusher)
	rf, canReadFrom := w.(io.ReaderFrom)
	switch {
	case canFlush && canReadFrom:
		return struct {
			*StatusRecorder
			http.Flusher
			io.ReaderFrom
		}{rec, f, rf}, rec
	case canFlush:
		return struct {
			*StatusRecorder
			http.Flusher
		}{rec, f}, rec
	case canReadFrom:
		return struct {
			*StatusRecorder
			io.ReaderFrom
		}{rec, rf}, rec
	default:
		return rec, rec
	}
}

// statusClass maps a status code to its Prometheus-conventional class
// label ("2xx", "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}
