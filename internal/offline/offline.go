// Package offline implements robust tenant placement with full knowledge
// of the tenant set — the "ideal scenario" the paper's introduction
// contrasts with the online setting ("a cloud service provider has access
// to all tenants before assigning any of them to servers").
//
// The algorithm is First Fit Decreasing adapted to the failover model:
// tenants are sorted by load descending and each replica goes to the first
// server where both the capacity and the (γ−1)-failure reserve constraints
// keep holding for every affected server. The result is a strong practical
// proxy for OPT in the competitive-ratio experiments and a deployment
// option for batch (re)placement.
package offline

import (
	"fmt"
	"sort"

	"cubefit/internal/packing"
)

// PlaceAll places all tenants with full lookahead and returns the
// placement. The input slice is not modified.
func PlaceAll(gamma int, tenants []packing.Tenant) (*packing.Placement, error) {
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		return nil, err
	}
	sorted := make([]packing.Tenant, len(tenants))
	copy(sorted, tenants)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, t := range sorted {
		if err := placeTenant(p, t); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// placeTenant places one tenant's replicas First Fit.
func placeTenant(p *packing.Placement, t packing.Tenant) error {
	if err := p.AddTenant(t); err != nil {
		return err
	}
	for _, rep := range p.Replicas(t) {
		sid := -1
		for _, s := range p.Servers() {
			if fits(p, s, t.ID, rep) {
				sid = s.ID()
				break
			}
		}
		if sid < 0 {
			sid = p.OpenServer()
		}
		if err := p.Place(sid, rep); err != nil {
			return fmt.Errorf("offline: %w", err)
		}
	}
	return nil
}

// fits checks capacity plus the robustness reserve for the candidate and
// every server hosting one of the tenant's earlier replicas, anticipating
// the sibling shares of replicas not yet placed (as in the online RFI
// implementation, an early replica must not strand a later one).
func fits(p *packing.Placement, s *packing.Server, id packing.TenantID, rep packing.Replica) bool {
	if s.Hosts(id) {
		return false
	}
	if !packing.WithinCapacity(s.Level() + rep.Size) {
		return false
	}
	k := p.Gamma() - 1
	var earlier []int
	for _, h := range p.TenantHosts(id) {
		if h >= 0 {
			earlier = append(earlier, h)
		}
	}
	// Candidate: reserve after placement, anticipating that the remaining
	// replicas will each share rep.Size with this server.
	if !packing.WithinCapacity(s.Level() + rep.Size + reserveAfter(p, s, earlier, rep.Size, k, p.Gamma()-1)) {
		return false
	}
	for _, h := range earlier {
		hs := p.Server(h)
		if !packing.WithinCapacity(hs.Level() + reserveAfter(p, hs, []int{s.ID()}, rep.Size, k, 0)) {
			return false
		}
	}
	return true
}

// reserveAfter computes the top-k shared sum of s after adding delta to
// its shared load with each server in bump, plus `anticipate` additional
// hypothetical entries of size delta for replicas not yet placed anywhere.
func reserveAfter(p *packing.Placement, s *packing.Server, bump []int, delta float64, k, anticipate int) float64 {
	if k <= 0 {
		return 0
	}
	var vals []float64
	s.EachShared(func(j int, v float64) {
		for _, b := range bump {
			if b == j {
				v += delta
				break
			}
		}
		vals = append(vals, v)
	})
	for _, b := range bump {
		if s.SharedWith(b) == 0 {
			vals = append(vals, delta)
		}
	}
	for i := 0; i < anticipate-len(bump); i++ {
		vals = append(vals, delta)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	sum := 0.0
	for i := 0; i < k && i < len(vals); i++ {
		sum += vals[i]
	}
	return sum
}
