package offline

import (
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/ratio"
	"cubefit/internal/workload"
)

func loadTenants(t *testing.T, n int, seed uint64) []packing.Tenant {
	t.Helper()
	src, err := workload.NewLoadSource(1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Take(src, n)
}

func TestPlaceAllValid(t *testing.T) {
	for _, gamma := range []int{1, 2, 3} {
		p, err := PlaceAll(gamma, loadTenants(t, 400, 11))
		if err != nil {
			t.Fatalf("γ=%d: %v", gamma, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("γ=%d: offline placement not robust: %v", gamma, err)
		}
		if p.NumTenants() != 400 {
			t.Fatalf("γ=%d: %d tenants placed", gamma, p.NumTenants())
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	tenants := loadTenants(t, 50, 3)
	first := tenants[0]
	if _, err := PlaceAll(2, tenants); err != nil {
		t.Fatal(err)
	}
	if tenants[0] != first {
		t.Fatal("input slice reordered")
	}
}

func TestOfflineAtLeastLowerBound(t *testing.T) {
	tenants := loadTenants(t, 600, 21)
	p, err := PlaceAll(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	lb := ratio.LowerBoundServers(tenants, 2)
	if p.NumUsedServers() < lb {
		t.Fatalf("offline used %d servers, below the lower bound %d — impossible",
			p.NumUsedServers(), lb)
	}
}

// TestOfflineBeatsOnline: with full lookahead, FFD should consolidate at
// least as well as online CubeFit on this workload, confirming it as a
// sensible OPT proxy.
func TestOfflineBeatsOnline(t *testing.T) {
	tenants := loadTenants(t, 1200, 33)
	off, err := PlaceAll(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := packing.PlaceAll(cf, tenants); err != nil {
		t.Fatal(err)
	}
	if off.NumUsedServers() > cf.Placement().NumUsedServers() {
		t.Fatalf("offline FFD used %d servers, online CubeFit %d",
			off.NumUsedServers(), cf.Placement().NumUsedServers())
	}
}

// TestSingleFailureSafetyByConstruction mirrors the RFI test: any single
// failure leaves survivors within capacity for γ=2.
func TestSingleFailureSafety(t *testing.T) {
	p, err := PlaceAll(2, loadTenants(t, 300, 5))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < p.NumServers(); f++ {
		if got := p.MaxPostFailureLoad([]int{f}); !packing.WithinCapacity(got) {
			t.Fatalf("failing server %d overloads survivors to %v", f, got)
		}
	}
}

func TestDeterministic(t *testing.T) {
	tenants := loadTenants(t, 500, 77)
	a, err := PlaceAll(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceAll(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumUsedServers() != b.NumUsedServers() {
		t.Fatalf("non-deterministic: %d vs %d", a.NumUsedServers(), b.NumUsedServers())
	}
}

func TestTieBreakByID(t *testing.T) {
	// Equal loads: placement order must follow tenant ID, keeping the
	// result independent of input order.
	tenants := []packing.Tenant{
		{ID: 3, Load: 0.4}, {ID: 1, Load: 0.4}, {ID: 2, Load: 0.4},
	}
	p, err := PlaceAll(2, tenants)
	if err != nil {
		t.Fatal(err)
	}
	reversed := []packing.Tenant{
		{ID: 2, Load: 0.4}, {ID: 1, Load: 0.4}, {ID: 3, Load: 0.4},
	}
	q, err := PlaceAll(2, reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []packing.TenantID{1, 2, 3} {
		ph, qh := p.TenantHosts(id), q.TenantHosts(id)
		for i := range ph {
			if ph[i] != qh[i] {
				t.Fatalf("tenant %d placed differently: %v vs %v", id, ph, qh)
			}
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := PlaceAll(0, nil); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	if _, err := PlaceAll(2, []packing.Tenant{{ID: 1, Load: 2}}); err == nil {
		t.Fatal("overload tenant accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	p, err := PlaceAll(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumUsedServers() != 0 {
		t.Fatalf("empty input used %d servers", p.NumUsedServers())
	}
}
