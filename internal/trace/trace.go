// Package trace serializes placements to JSON for offline inspection,
// archival of experiment outcomes, and replay into fresh Placement values.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"cubefit/internal/packing"
)

// Snapshot is the JSON form of a placement.
type Snapshot struct {
	Gamma   int              `json:"gamma"`
	Servers []ServerSnapshot `json:"servers"`
	Tenants []TenantSnapshot `json:"tenants"`
}

// ServerSnapshot is one server and its hosted replicas.
type ServerSnapshot struct {
	ID       int               `json:"id"`
	Level    float64           `json:"level"`
	Replicas []ReplicaSnapshot `json:"replicas,omitempty"`
}

// ReplicaSnapshot is one hosted replica.
type ReplicaSnapshot struct {
	Tenant  int     `json:"tenant"`
	Index   int     `json:"index"`
	Size    float64 `json:"size"`
	Clients int     `json:"clients,omitempty"`
}

// TenantSnapshot is one tenant's identity and load.
type TenantSnapshot struct {
	ID      int     `json:"id"`
	Load    float64 `json:"load"`
	Clients int     `json:"clients,omitempty"`
}

// Capture builds a snapshot of the placement.
func Capture(p *packing.Placement) Snapshot {
	snap := Snapshot{Gamma: p.Gamma()}
	for _, s := range p.Servers() {
		ss := ServerSnapshot{ID: s.ID(), Level: s.Level()}
		for _, r := range s.Replicas() {
			ss.Replicas = append(ss.Replicas, ReplicaSnapshot{
				Tenant:  int(r.Tenant),
				Index:   r.Index,
				Size:    r.Size,
				Clients: r.Clients,
			})
		}
		snap.Servers = append(snap.Servers, ss)
	}
	for _, t := range p.Tenants() {
		snap.Tenants = append(snap.Tenants, TenantSnapshot{
			ID:      int(t.ID),
			Load:    t.Load,
			Clients: t.Clients,
		})
	}
	return snap
}

// Write encodes the placement as indented JSON.
func Write(w io.Writer, p *packing.Placement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Capture(p))
}

// Read decodes a snapshot.
func Read(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("trace: decode: %w", err)
	}
	return snap, nil
}

// Restore rebuilds a Placement from a snapshot. The result carries the
// same servers, tenants and replica assignments (server IDs are preserved
// by opening servers in ID order).
func Restore(snap Snapshot) (*packing.Placement, error) {
	p, err := packing.NewPlacement(snap.Gamma)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	maxID := -1
	for _, s := range snap.Servers {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	for i := 0; i <= maxID; i++ {
		p.OpenServer()
	}
	for _, t := range snap.Tenants {
		tn := packing.Tenant{ID: packing.TenantID(t.ID), Load: t.Load, Clients: t.Clients}
		if err := p.AddTenant(tn); err != nil {
			return nil, fmt.Errorf("trace: tenant %d: %w", t.ID, err)
		}
	}
	for _, s := range snap.Servers {
		for _, r := range s.Replicas {
			rep := packing.Replica{
				Tenant:  packing.TenantID(r.Tenant),
				Index:   r.Index,
				Size:    r.Size,
				Clients: r.Clients,
			}
			if err := p.Place(s.ID, rep); err != nil {
				return nil, fmt.Errorf("trace: replica %d/%d on %d: %w", r.Tenant, r.Index, s.ID, err)
			}
		}
	}
	return p, nil
}
