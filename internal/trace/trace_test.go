package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

func buildPlacement(t *testing.T) *packing.Placement {
	t.Helper()
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), mustUniform(t), 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := packing.PlaceAll(cf, workload.Take(src, 100)); err != nil {
		t.Fatal(err)
	}
	return cf.Placement()
}

func mustUniform(t *testing.T) workload.Uniform {
	t.Helper()
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRoundTrip(t *testing.T) {
	p := buildPlacement(t)
	var buf bytes.Buffer
	if err := trace.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	snap, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := trace.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Gamma() != p.Gamma() {
		t.Fatalf("gamma %d != %d", restored.Gamma(), p.Gamma())
	}
	if restored.NumServers() != p.NumServers() {
		t.Fatalf("servers %d != %d", restored.NumServers(), p.NumServers())
	}
	if restored.NumTenants() != p.NumTenants() {
		t.Fatalf("tenants %d != %d", restored.NumTenants(), p.NumTenants())
	}
	if !packing.AlmostEqual(restored.TotalLoad(), p.TotalLoad()) {
		t.Fatalf("load %v != %v", restored.TotalLoad(), p.TotalLoad())
	}
	// Per-server levels and shared loads must match exactly.
	for _, s := range p.Servers() {
		rs := restored.Server(s.ID())
		if !packing.AlmostEqualTol(rs.Level(), s.Level(), packing.SharedEps) {
			t.Fatalf("server %d level %v != %v", s.ID(), rs.Level(), s.Level())
		}
		s.EachShared(func(j int, v float64) {
			if !packing.AlmostEqualTol(rs.SharedWith(j), v, packing.SharedEps) {
				t.Fatalf("server %d shared with %d: %v != %v", s.ID(), j, rs.SharedWith(j), v)
			}
		})
	}
	// Robustness must survive the round trip.
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONShape(t *testing.T) {
	p := buildPlacement(t)
	var buf bytes.Buffer
	if err := trace.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"gamma": 2`, `"servers"`, `"tenants"`, `"replicas"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%.400s", want, out)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreErrors(t *testing.T) {
	// Bad gamma.
	if _, err := trace.Restore(trace.Snapshot{Gamma: 0}); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	// Replica referencing an unknown tenant.
	snap := trace.Snapshot{
		Gamma: 2,
		Servers: []trace.ServerSnapshot{
			{ID: 0, Replicas: []trace.ReplicaSnapshot{{Tenant: 7, Index: 0, Size: 0.2}}},
		},
	}
	if _, err := trace.Restore(snap); err == nil {
		t.Fatal("unknown tenant accepted")
	}
}

func TestEmptyPlacementRoundTrip(t *testing.T) {
	p, err := packing.NewPlacement(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	snap, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := trace.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Gamma() != 3 || restored.NumServers() != 0 {
		t.Fatalf("restored %+v", restored)
	}
}
