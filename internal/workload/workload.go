// Package workload generates tenant arrival sequences for the consolidation
// experiments: client-count distributions (discrete uniform and zipfian, as
// in the paper's §V) and the linear load model load = δ·c + β from §IV.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
)

// MaxClientsPerServer is the paper's empirically derived server capacity:
// at most 52 concurrent clients can be supported per host machine within
// the 5-second 99th-percentile SLA (§V-A).
const MaxClientsPerServer = 52

// LoadModel is the paper's linear tenant utilization model: a tenant with c
// concurrent clients places load Delta·c + Beta on its server, where Delta
// is the per-client capacity fraction and Beta the per-tenant overhead.
type LoadModel struct {
	Delta float64
	Beta  float64
}

// DefaultLoadModel calibrates the model so that a single tenant with
// MaxClientsPerServer clients exactly saturates a server
// (Delta·52 + Beta = 1), with a small per-tenant overhead.
func DefaultLoadModel() LoadModel {
	const beta = 0.02
	return LoadModel{Delta: (1 - beta) / MaxClientsPerServer, Beta: beta}
}

// Validate reports whether the model produces loads in (0, 1] for client
// counts in [1, MaxClientsPerServer].
func (m LoadModel) Validate() error {
	if m.Delta <= 0 {
		return errors.New("workload: Delta must be positive")
	}
	if m.Beta < 0 {
		return errors.New("workload: Beta must be non-negative")
	}
	if !packing.WithinCapacity(m.Load(MaxClientsPerServer)) {
		return fmt.Errorf("workload: %d clients produce load %v > 1",
			MaxClientsPerServer, m.Load(MaxClientsPerServer))
	}
	return nil
}

// Load returns the normalized load of a tenant with the given number of
// concurrent clients. Values above 1.0 indicate an over-utilized server.
func (m LoadModel) Load(clients int) float64 {
	return m.Delta*float64(clients) + m.Beta
}

// Clients inverts the model, returning the largest client count whose load
// does not exceed the given value (at least 0).
func (m LoadModel) Clients(load float64) int {
	c := int(math.Floor((load - m.Beta) / m.Delta))
	if c < 0 {
		return 0
	}
	return c
}

// Distribution samples tenant client counts.
type Distribution interface {
	// Name identifies the distribution in reports, e.g. "uniform(1..15)".
	Name() string
	// Sample draws one client count (>= 1).
	Sample(r *rng.RNG) int
}

// Uniform is the discrete uniform distribution over [Lo, Hi] used in the
// paper's first system experiment (1 to 15 clients per tenant).
type Uniform struct {
	Lo, Hi int
}

var _ Distribution = Uniform{}

// NewUniform returns the discrete uniform distribution over [lo, hi].
func NewUniform(lo, hi int) (Uniform, error) {
	if lo < 1 || hi < lo {
		return Uniform{}, fmt.Errorf("workload: invalid uniform range [%d, %d]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d..%d)", u.Lo, u.Hi) }

// Sample implements Distribution.
func (u Uniform) Sample(r *rng.RNG) int { return r.IntRange(u.Lo, u.Hi) }

// Zipf is the zipfian distribution over client counts 1..N with exponent S:
// P(c) ∝ c^(−S). The paper's second system experiment uses S = 3, N = 52.
type Zipf struct {
	S   float64
	N   int
	cdf []float64
}

var _ Distribution = (*Zipf)(nil)

// NewZipf precomputes the CDF for a zipfian distribution with exponent s
// over the support [1, n].
func NewZipf(s float64, n int) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: zipf support %d < 1", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent %v <= 0", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for c := 1; c <= n; c++ {
		sum += math.Pow(float64(c), -s)
		cdf[c-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{S: s, N: n, cdf: cdf}, nil
}

// Name implements Distribution.
func (z *Zipf) Name() string { return fmt.Sprintf("zipf(s=%g, 1..%d)", z.S, z.N) }

// Sample implements Distribution.
func (z *Zipf) Sample(r *rng.RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Mean returns the exact mean client count of the distribution.
func (z *Zipf) Mean() float64 {
	num, den := 0.0, 0.0
	for c := 1; c <= z.N; c++ {
		w := math.Pow(float64(c), -z.S)
		num += float64(c) * w
		den += w
	}
	return num / den
}

// Source produces an online sequence of tenants.
type Source interface {
	// Next returns the next arriving tenant.
	Next() packing.Tenant
}

// ClientSource draws client counts from a Distribution and derives loads
// via a LoadModel. Tenant IDs are assigned sequentially from 0.
type ClientSource struct {
	model LoadModel
	dist  Distribution
	r     *rng.RNG
	next  packing.TenantID
}

var _ Source = (*ClientSource)(nil)

// NewClientSource creates a tenant source with its own deterministic
// random stream.
func NewClientSource(model LoadModel, dist Distribution, seed uint64) (*ClientSource, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if dist == nil {
		return nil, errors.New("workload: nil distribution")
	}
	return &ClientSource{model: model, dist: dist, r: rng.New(seed)}, nil
}

// Next implements Source.
func (s *ClientSource) Next() packing.Tenant {
	c := s.dist.Sample(s.r)
	t := packing.Tenant{ID: s.next, Load: s.model.Load(c), Clients: c}
	s.next++
	return t
}

// LoadSource draws tenant loads directly from a continuous uniform
// distribution over (0, Max]; used by the pure packing and competitive
// ratio experiments where the client count is irrelevant.
type LoadSource struct {
	max  float64
	r    *rng.RNG
	next packing.TenantID
}

var _ Source = (*LoadSource)(nil)

// NewLoadSource creates a source of loads uniform on (0, max], 0 < max <= 1.
func NewLoadSource(max float64, seed uint64) (*LoadSource, error) {
	if max <= 0 || max > 1 {
		return nil, fmt.Errorf("workload: load bound %v outside (0,1]", max)
	}
	return &LoadSource{max: max, r: rng.New(seed)}, nil
}

// Next implements Source.
func (s *LoadSource) Next() packing.Tenant {
	load := s.max * (1 - s.r.Float64()) // in (0, max]
	t := packing.Tenant{ID: s.next, Load: load}
	s.next++
	return t
}

// Take drains n tenants from a source into a slice.
func Take(src Source, n int) []packing.Tenant {
	out := make([]packing.Tenant, n)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}
