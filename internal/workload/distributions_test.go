package workload

import (
	"math"
	"testing"

	"cubefit/internal/rng"
)

func TestConstant(t *testing.T) {
	c, err := NewConstant(7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "constant(7)" {
		t.Fatalf("name %q", c.Name())
	}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := c.Sample(r); got != 7 {
			t.Fatalf("sample %d", got)
		}
	}
	if _, err := NewConstant(0); err == nil {
		t.Fatal("constant 0 accepted")
	}
}

func TestBimodal(t *testing.T) {
	small, err := NewUniform(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewUniform(40, 52)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBimodal(small, big, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	bigCount := 0
	const n = 100000
	for i := 0; i < n; i++ {
		c := b.Sample(r)
		switch {
		case c >= 1 && c <= 5:
		case c >= 40 && c <= 52:
			bigCount++
		default:
			t.Fatalf("sample %d outside both modes", c)
		}
	}
	frac := float64(bigCount) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("big fraction %v, want 0.1", frac)
	}
}

func TestBimodalErrors(t *testing.T) {
	small, _ := NewUniform(1, 5)
	big, _ := NewUniform(40, 52)
	if _, err := NewBimodal(small, big, -0.1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewBimodal(small, big, 1.5); err == nil {
		t.Fatal("weight > 1 accepted")
	}
	if _, err := NewBimodal(Uniform{Lo: 0, Hi: 5}, big, 0.5); err == nil {
		t.Fatal("invalid component accepted")
	}
}

func TestGeometric(t *testing.T) {
	g, err := NewGeometric(0.5, 52)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		c := g.Sample(r)
		if c < 1 || c > 52 {
			t.Fatalf("sample %d out of range", c)
		}
		counts[c]++
	}
	// P(1) ≈ 0.5, P(2) ≈ 0.25 for p=0.5.
	p1 := float64(counts[1]) / n
	p2 := float64(counts[2]) / n
	if math.Abs(p1-0.5) > 0.01 {
		t.Fatalf("P(1) = %v, want 0.5", p1)
	}
	if math.Abs(p1/p2-2) > 0.1 {
		t.Fatalf("P(1)/P(2) = %v, want 2", p1/p2)
	}
}

func TestGeometricTruncation(t *testing.T) {
	g, err := NewGeometric(0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	sawMax := false
	for i := 0; i < 10000; i++ {
		c := g.Sample(r)
		if c < 1 || c > 10 {
			t.Fatalf("sample %d out of truncated range", c)
		}
		if c == 10 {
			sawMax = true
		}
	}
	if !sawMax {
		t.Fatal("truncated mass never reached the maximum")
	}
}

func TestGeometricErrors(t *testing.T) {
	if _, err := NewGeometric(0, 10); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewGeometric(1, 10); err == nil {
		t.Fatal("p=1 accepted")
	}
	if _, err := NewGeometric(0.5, 0); err == nil {
		t.Fatal("max=0 accepted")
	}
}

// TestNewDistributionsDriveValidPlacements plugs the extended suite into a
// client source and checks tenants are well formed.
func TestNewDistributionsDriveValidPlacements(t *testing.T) {
	small, _ := NewUniform(1, 5)
	big, _ := NewUniform(40, 52)
	bm, err := NewBimodal(small, big, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := NewGeometric(0.3, MaxClientsPerServer)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := NewConstant(26)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distribution{bm, geo, cst} {
		src, err := NewClientSource(DefaultLoadModel(), dist, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, tn := range Take(src, 500) {
			if err := tn.Validate(); err != nil {
				t.Fatalf("%s produced invalid tenant: %v", dist.Name(), err)
			}
		}
	}
}

func TestDistributionNames(t *testing.T) {
	small, _ := NewUniform(1, 5)
	big, _ := NewUniform(40, 52)
	bm, _ := NewBimodal(small, big, 0.25)
	if bm.Name() != "bimodal(1..5 | 40..52 @25%)" {
		t.Fatalf("bimodal name %q", bm.Name())
	}
	geo, _ := NewGeometric(0.5, 52)
	if geo.Name() != "geometric(p=0.5, 1..52)" {
		t.Fatalf("geometric name %q", geo.Name())
	}
	z, _ := NewZipf(3, 52)
	if z.Name() != "zipf(s=3, 1..52)" {
		t.Fatalf("zipf name %q", z.Name())
	}
}
