package workload

import (
	"math"
	"testing"

	"cubefit/internal/rng"
)

func TestDefaultLoadModel(t *testing.T) {
	m := DefaultLoadModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Load(MaxClientsPerServer); math.Abs(got-1) > 1e-12 {
		t.Fatalf("load at capacity = %v, want 1", got)
	}
	if got := m.Load(1); got <= 0 || got > 0.1 {
		t.Fatalf("single-client load = %v, want small positive", got)
	}
	// Loads are additive in clients.
	if got := m.Load(10) - m.Load(5); math.Abs(got-5*m.Delta) > 1e-12 {
		t.Fatalf("load not linear: %v", got)
	}
}

func TestLoadModelValidate(t *testing.T) {
	tests := []struct {
		name   string
		give   LoadModel
		wantOK bool
	}{
		{name: "default", give: DefaultLoadModel(), wantOK: true},
		{name: "zero delta", give: LoadModel{Delta: 0, Beta: 0.1}},
		{name: "negative beta", give: LoadModel{Delta: 0.01, Beta: -0.1}},
		{name: "overloads at capacity", give: LoadModel{Delta: 0.05, Beta: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err == nil) != tt.wantOK {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.give, err, tt.wantOK)
			}
		})
	}
}

func TestLoadModelClientsInverts(t *testing.T) {
	m := DefaultLoadModel()
	for c := 0; c <= MaxClientsPerServer; c++ {
		got := m.Clients(m.Load(c) + 1e-12)
		if got != c {
			t.Fatalf("Clients(Load(%d)) = %d", c, got)
		}
	}
	if got := m.Clients(0); got != 0 {
		t.Fatalf("Clients(0) = %d, want 0", got)
	}
}

func TestUniformDistribution(t *testing.T) {
	u, err := NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "uniform(1..15)" {
		t.Fatalf("name = %q", u.Name())
	}
	r := rng.New(1)
	counts := make(map[int]int)
	const n = 150000
	for i := 0; i < n; i++ {
		c := u.Sample(r)
		if c < 1 || c > 15 {
			t.Fatalf("sample %d out of [1,15]", c)
		}
		counts[c]++
	}
	want := n / 15
	for c := 1; c <= 15; c++ {
		if math.Abs(float64(counts[c]-want)) > 0.1*float64(want) {
			t.Fatalf("client count %d frequency %d deviates from %d", c, counts[c], want)
		}
	}
}

func TestNewUniformErrors(t *testing.T) {
	if _, err := NewUniform(0, 5); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := NewUniform(5, 4); err == nil {
		t.Fatal("hi<lo accepted")
	}
}

func TestZipfDistribution(t *testing.T) {
	z, err := NewZipf(3, MaxClientsPerServer)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		c := z.Sample(r)
		if c < 1 || c > MaxClientsPerServer {
			t.Fatalf("sample %d out of range", c)
		}
		counts[c]++
	}
	// For s=3: P(1) = 1/ζ-ish; P(1)/P(2) = 8.
	p1 := float64(counts[1]) / n
	p2 := float64(counts[2]) / n
	if p1 < 0.80 || p1 > 0.86 {
		t.Fatalf("P(1) = %v, want about 0.832", p1)
	}
	if ratio := p1 / p2; math.Abs(ratio-8) > 0.8 {
		t.Fatalf("P(1)/P(2) = %v, want about 8", ratio)
	}
	// Empirical mean close to the exact mean.
	sum := 0
	for c, k := range counts {
		sum += c * k
	}
	if got, want := float64(sum)/n, z.Mean(); math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical mean %v vs exact %v", got, want)
	}
}

func TestNewZipfErrors(t *testing.T) {
	if _, err := NewZipf(3, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(0, 10); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := NewZipf(-1, 10); err == nil {
		t.Fatal("negative s accepted")
	}
}

func TestZipfDegenerateSupport(t *testing.T) {
	z, err := NewZipf(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if c := z.Sample(r); c != 1 {
			t.Fatalf("sample from support {1} = %d", c)
		}
	}
}

func TestClientSource(t *testing.T) {
	u, err := NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewClientSource(DefaultLoadModel(), u, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultLoadModel()
	prev := -1
	for i := 0; i < 1000; i++ {
		tn := src.Next()
		if int(tn.ID) != prev+1 {
			t.Fatalf("IDs not sequential: %d after %d", tn.ID, prev)
		}
		prev = int(tn.ID)
		if tn.Clients < 1 || tn.Clients > 15 {
			t.Fatalf("clients %d out of range", tn.Clients)
		}
		if math.Abs(tn.Load-m.Load(tn.Clients)) > 1e-12 {
			t.Fatalf("load %v does not match model for %d clients", tn.Load, tn.Clients)
		}
		if err := tn.Validate(); err != nil {
			t.Fatalf("generated invalid tenant: %v", err)
		}
	}
}

func TestClientSourceDeterministic(t *testing.T) {
	u, _ := NewUniform(1, 15)
	a, err := NewClientSource(DefaultLoadModel(), u, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewClientSource(DefaultLoadModel(), u, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if got, want := a.Next(), b.Next(); got != want {
			t.Fatalf("sources diverged at %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestClientSourceErrors(t *testing.T) {
	u, _ := NewUniform(1, 15)
	if _, err := NewClientSource(LoadModel{}, u, 1); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := NewClientSource(DefaultLoadModel(), nil, 1); err == nil {
		t.Fatal("nil distribution accepted")
	}
}

func TestLoadSource(t *testing.T) {
	src, err := NewLoadSource(0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		tn := src.Next()
		if tn.Load <= 0 || tn.Load > 0.5 {
			t.Fatalf("load %v outside (0, 0.5]", tn.Load)
		}
	}
}

func TestNewLoadSourceErrors(t *testing.T) {
	if _, err := NewLoadSource(0, 1); err == nil {
		t.Fatal("max=0 accepted")
	}
	if _, err := NewLoadSource(1.5, 1); err == nil {
		t.Fatal("max>1 accepted")
	}
}

func TestTake(t *testing.T) {
	src, err := NewLoadSource(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ts := Take(src, 100)
	if len(ts) != 100 {
		t.Fatalf("Take returned %d tenants", len(ts))
	}
	for i, tn := range ts {
		if int(tn.ID) != i {
			t.Fatalf("tenant %d has ID %d", i, tn.ID)
		}
	}
}
