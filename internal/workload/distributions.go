package workload

import (
	"fmt"
	"math"

	"cubefit/internal/rng"
)

// This file extends the distribution suite beyond the two used in the
// paper's system experiments — the paper's simulator "has a suite of
// distributions generate tenant load sequences" (§V-C), and these cover
// the remaining shapes one meets in practice.

// Constant always returns the same client count: the degenerate case that
// stresses the cube construction of a single class.
type Constant struct {
	C int
}

var _ Distribution = Constant{}

// NewConstant returns a distribution fixed at c clients.
func NewConstant(c int) (Constant, error) {
	if c < 1 {
		return Constant{}, fmt.Errorf("workload: constant client count %d < 1", c)
	}
	return Constant{C: c}, nil
}

// Name implements Distribution.
func (c Constant) Name() string { return fmt.Sprintf("constant(%d)", c.C) }

// Sample implements Distribution.
func (c Constant) Sample(*rng.RNG) int { return c.C }

// Bimodal mixes two uniform populations: mostly small interactive tenants
// with an occasional heavy analytics tenant — the "elephants and mice"
// shape of shared analytic clusters.
type Bimodal struct {
	Small     Uniform
	Big       Uniform
	BigWeight float64
}

var _ Distribution = Bimodal{}

// NewBimodal builds a mixture drawing from big with probability bigWeight
// and from small otherwise.
func NewBimodal(small, big Uniform, bigWeight float64) (Bimodal, error) {
	if bigWeight < 0 || bigWeight > 1 {
		return Bimodal{}, fmt.Errorf("workload: big weight %v outside [0,1]", bigWeight)
	}
	if small.Lo < 1 || small.Hi < small.Lo || big.Lo < 1 || big.Hi < big.Lo {
		return Bimodal{}, fmt.Errorf("workload: invalid mixture components %+v / %+v", small, big)
	}
	return Bimodal{Small: small, Big: big, BigWeight: bigWeight}, nil
}

// Name implements Distribution.
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal(%d..%d | %d..%d @%.0f%%)",
		b.Small.Lo, b.Small.Hi, b.Big.Lo, b.Big.Hi, b.BigWeight*100)
}

// Sample implements Distribution.
func (b Bimodal) Sample(r *rng.RNG) int {
	if r.Float64() < b.BigWeight {
		return b.Big.Sample(r)
	}
	return b.Small.Sample(r)
}

// Geometric models client counts with a memoryless tail: P(c) ∝ (1−p)^(c−1),
// truncated at Max.
type Geometric struct {
	P   float64
	Max int
}

var _ Distribution = Geometric{}

// NewGeometric builds a truncated geometric distribution with success
// probability p over [1, max].
func NewGeometric(p float64, max int) (Geometric, error) {
	if p <= 0 || p >= 1 {
		return Geometric{}, fmt.Errorf("workload: geometric p %v outside (0,1)", p)
	}
	if max < 1 {
		return Geometric{}, fmt.Errorf("workload: geometric max %d < 1", max)
	}
	return Geometric{P: p, Max: max}, nil
}

// Name implements Distribution.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(p=%g, 1..%d)", g.P, g.Max) }

// Sample implements Distribution.
func (g Geometric) Sample(r *rng.RNG) int {
	// Inverse transform on the truncated support.
	u := r.Float64()
	// CDF at c: 1-(1-p)^c, normalized by CDF at Max.
	norm := 1 - math.Pow(1-g.P, float64(g.Max))
	c := int(math.Ceil(math.Log(1-u*norm) / math.Log(1-g.P)))
	if c < 1 {
		c = 1
	}
	if c > g.Max {
		c = g.Max
	}
	return c
}
