package sim

import (
	"sync"
	"sync/atomic"
)

// Trials executes n independent trials on a worker pool and merges the
// results in trial-index order, so the output is bit-identical to running
// the trials serially. Each trial must be self-contained — in particular
// it must derive any randomness from its own index-addressed seed, never
// from a stream shared across trials — which is exactly how the experiment
// drivers pre-derive per-run seeds from internal/rng.
//
// workers ≤ 1 runs the trials inline on the calling goroutine. When
// several trials fail, the error of the lowest-indexed one is returned
// (matching what a serial loop that stops at the first failure would
// report); results are discarded on error.
func Trials[R any](workers, n int, trial func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]R, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := trial(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = trial(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
