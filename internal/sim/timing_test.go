package sim

import (
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

func TestMeasureTiming(t *testing.T) {
	cf, rf := factories(t)
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), uniformDist(t, 15), 3)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 2000)

	for _, f := range []Factory{cf, rf} {
		res, err := MeasureTiming(f, tenants)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tenants != 2000 || res.Servers == 0 {
			t.Fatalf("%s timing result degenerate: %+v", f.Name, res)
		}
		if res.Total <= 0 || res.PerTenant <= 0 {
			t.Fatalf("%s measured non-positive time: %+v", f.Name, res)
		}
		if res.PerTenant > res.Total {
			t.Fatalf("%s per-tenant exceeds total: %+v", f.Name, res)
		}
	}
}

func TestMeasureTimingEmpty(t *testing.T) {
	cf, _ := factories(t)
	if _, err := MeasureTiming(cf, nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

// tickingAlg advances a fake clock by a fixed step on every admission,
// making MeasureTimingWith fully deterministic.
type tickingAlg struct {
	packing.Algorithm
	clk  *clock.Fake
	step time.Duration
}

func (a tickingAlg) Place(tn packing.Tenant) error {
	a.clk.Advance(a.step)
	return a.Algorithm.Place(tn)
}

func TestMeasureTimingWithFakeClock(t *testing.T) {
	cf, _ := factories(t)
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), uniformDist(t, 15), 7)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 100)

	fake := clock.NewFake(time.Unix(0, 0))
	f := Factory{Name: cf.Name, New: func() (packing.Algorithm, error) {
		alg, err := cf.New()
		if err != nil {
			return nil, err
		}
		return tickingAlg{Algorithm: alg, clk: fake, step: time.Millisecond}, nil
	}}
	res, err := MeasureTimingWith(fake, f, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 100*time.Millisecond {
		t.Fatalf("Total = %v, want exactly 100ms", res.Total)
	}
	if res.PerTenant != time.Millisecond {
		t.Fatalf("PerTenant = %v, want exactly 1ms", res.PerTenant)
	}
}
