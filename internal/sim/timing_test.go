package sim

import (
	"testing"

	"cubefit/internal/workload"
)

func TestMeasureTiming(t *testing.T) {
	cf, rf := factories(t)
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), uniformDist(t, 15), 3)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 2000)

	for _, f := range []Factory{cf, rf} {
		res, err := MeasureTiming(f, tenants)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tenants != 2000 || res.Servers == 0 {
			t.Fatalf("%s timing result degenerate: %+v", f.Name, res)
		}
		if res.Total <= 0 || res.PerTenant <= 0 {
			t.Fatalf("%s measured non-positive time: %+v", f.Name, res)
		}
		if res.PerTenant > res.Total {
			t.Fatalf("%s per-tenant exceeds total: %+v", f.Name, res)
		}
	}
}

func TestMeasureTimingEmpty(t *testing.T) {
	cf, _ := factories(t)
	if _, err := MeasureTiming(cf, nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
}
