package sim

import (
	"strings"
	"testing"

	"cubefit/internal/cluster"
	"cubefit/internal/core"
	"cubefit/internal/costs"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

func uniformDist(t *testing.T, hi int) workload.Uniform {
	t.Helper()
	u, err := workload.NewUniform(1, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func smallSpec(t *testing.T) ConsolidationSpec {
	return ConsolidationSpec{
		Tenants: 2000,
		Runs:    3,
		Seed:    1,
		Model:   workload.DefaultLoadModel(),
		Dist:    uniformDist(t, 15),
	}
}

func factories(t *testing.T) (Factory, Factory) {
	model := workload.DefaultLoadModel()
	return CubeFitFactory(core.Config{Gamma: 2, K: 10}, &model),
		RFIFactory(rfi.Config{Gamma: 2})
}

func TestSpecValidation(t *testing.T) {
	good := smallSpec(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Tenants = 0
	if bad.Validate() == nil {
		t.Fatal("zero tenants accepted")
	}
	bad = good
	bad.Runs = 0
	if bad.Validate() == nil {
		t.Fatal("zero runs accepted")
	}
	bad = good
	bad.Dist = nil
	if bad.Validate() == nil {
		t.Fatal("nil dist accepted")
	}
}

// TestConsolidationCubeFitBeatsRFI is the Figure 6 headline at reduced
// scale: CubeFit uses noticeably fewer servers than RFI.
func TestConsolidationCubeFitBeatsRFI(t *testing.T) {
	cf, rf := factories(t)
	res, err := RunConsolidation(smallSpec(t), cf, rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.A.PerRun) != 3 || len(res.B.PerRun) != 3 {
		t.Fatalf("per-run data missing: %+v", res)
	}
	if res.SavingsPct.Mean < 10 {
		t.Fatalf("savings = %v%%, expected well above 10%%", res.SavingsPct.Mean)
	}
	if res.A.Servers.Mean >= res.B.Servers.Mean {
		t.Fatalf("CubeFit mean %v not below RFI mean %v", res.A.Servers.Mean, res.B.Servers.Mean)
	}
	if res.A.MeanUtilization <= res.B.MeanUtilization {
		t.Fatalf("CubeFit utilization %v not above RFI %v",
			res.A.MeanUtilization, res.B.MeanUtilization)
	}
	if !strings.Contains(res.Distribution, "uniform") {
		t.Fatalf("distribution label %q", res.Distribution)
	}
}

func TestConsolidationDeterministic(t *testing.T) {
	cf, rf := factories(t)
	a, err := RunConsolidation(smallSpec(t), cf, rf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsolidation(smallSpec(t), cf, rf)
	if err != nil {
		t.Fatal(err)
	}
	if a.SavingsPct != b.SavingsPct {
		t.Fatalf("non-deterministic savings: %+v vs %+v", a.SavingsPct, b.SavingsPct)
	}
}

func TestTableI(t *testing.T) {
	cf, rf := factories(t)
	res, err := RunConsolidation(smallSpec(t), cf, rf)
	if err != nil {
		t.Fatal(err)
	}
	row, err := TableI(res, costs.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if row.SavedServers <= 0 || row.YearlySavings <= 0 {
		t.Fatalf("row = %+v", row)
	}
	if row.BaselineServers-row.ImprovedServers != row.SavedServers {
		t.Fatalf("row inconsistent: %+v", row)
	}
	wantDollars := float64(row.SavedServers) * costs.DefaultPricePerHour * costs.HoursPerYear
	if row.YearlySavings != wantDollars {
		t.Fatalf("dollars = %v, want %v", row.YearlySavings, wantDollars)
	}
}

func TestFillToCapacity(t *testing.T) {
	cf, _ := factories(t)
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), uniformDist(t, 15), 5)
	if err != nil {
		t.Fatal(err)
	}
	alg, tenants, err := FillToCapacity(cf, src, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := alg.Placement().NumServers(); got > 20 {
		t.Fatalf("filled to %d servers, cap 20", got)
	}
	if len(tenants) == 0 {
		t.Fatal("no tenants accepted")
	}
	if alg.Placement().NumTenants() != len(tenants) {
		t.Fatalf("placement holds %d tenants, prefix has %d",
			alg.Placement().NumTenants(), len(tenants))
	}
	// The next tenant in the ORIGINAL stream would have pushed past the
	// cap; verify the fill actually approached it.
	if alg.Placement().NumServers() < 15 {
		t.Fatalf("fill stopped early at %d servers", alg.Placement().NumServers())
	}
	if _, _, err := FillToCapacity(cf, src, 0); err == nil {
		t.Fatal("cap 0 accepted")
	}
}

func TestRunClusterFigure5Shape(t *testing.T) {
	model := workload.DefaultLoadModel()
	spec := ClusterSpec{
		Servers:  12,
		Failures: []int{0, 1},
		Model:    model,
		Dist:     uniformDist(t, 15),
		Seed:     7,
		Cluster:  cluster.Config{SLA: 5, Warmup: 10, Measure: 30, Seed: 7},
	}
	cf, _ := factories(t)
	points, err := RunCluster(spec, cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if points[0].Failures != 0 || points[1].Failures != 1 {
		t.Fatalf("failure labels wrong: %+v", points)
	}
	// One failure redirects load: latency must rise but CubeFit γ=2 stays
	// within SLA.
	if points[1].Latency.P99 <= points[0].Latency.P99 {
		t.Fatalf("failure did not raise P99: %v vs %v",
			points[1].Latency.P99, points[0].Latency.P99)
	}
	if points[1].Latency.ViolatesSLA {
		t.Fatalf("CubeFit γ=2 violated SLA under one failure: P99 = %v", points[1].Latency.P99)
	}
	if points[1].Plan.MaxClientLoad > workload.MaxClientsPerServer+1e-9 {
		t.Fatalf("worst-case single failure pushed %v client load onto one server (capacity %d)",
			points[1].Plan.MaxClientLoad, workload.MaxClientsPerServer)
	}
}

func TestRunClusterSpecValidation(t *testing.T) {
	cf, _ := factories(t)
	bad := ClusterSpec{}
	if _, err := RunCluster(bad, cf); err == nil {
		t.Fatal("empty spec accepted")
	}
	spec := ClusterSpec{
		Servers:  5,
		Failures: []int{7},
		Model:    workload.DefaultLoadModel(),
		Dist:     uniformDist(t, 15),
		Cluster:  cluster.DefaultConfig(),
	}
	if _, err := RunCluster(spec, cf); err == nil {
		t.Fatal("failure count beyond cluster accepted")
	}
}

func TestDefaultSweep(t *testing.T) {
	sweep, err := DefaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 11 {
		t.Fatalf("sweep has %d distributions, want 11", len(sweep))
	}
	names := make(map[string]bool)
	for _, d := range sweep {
		names[d.Name()] = true
	}
	// Must include the two system-experiment distributions.
	if !names["uniform(1..15)"] {
		t.Fatal("sweep missing uniform(1..15)")
	}
	if !names["zipf(s=3, 1..52)"] {
		t.Fatal("sweep missing zipf(s=3)")
	}
}

// TestFigure5FullShape reproduces the paper's Figure 5 verdicts end to end
// at full cluster scale with shortened measurement windows: with one
// worst-case failure every configuration meets the 5 s SLA; with two
// simultaneous failures only CubeFit γ=3 stays within it while CubeFit γ=2
// and RFI violate.
func TestFigure5FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 69-server cluster simulation")
	}
	model := workload.DefaultLoadModel()
	mkSpec := func(dist workload.Distribution) ClusterSpec {
		return ClusterSpec{
			Servers:  69,
			Failures: []int{1, 2},
			Model:    model,
			Dist:     dist,
			Seed:     1,
			Cluster:  cluster.Config{SLA: 5, Warmup: 20, Measure: 60, Seed: 1},
		}
	}
	cube2 := CubeFitFactory(core.Config{Gamma: 2, K: 5}, &model)
	cube3 := CubeFitFactory(core.Config{Gamma: 3, K: 5}, &model)
	rfi2 := RFIFactory(rfi.Config{Gamma: 2})

	z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []workload.Distribution{uniformDist(t, 15), z} {
		spec := mkSpec(dist)

		for _, f := range []Factory{cube2, cube3, rfi2} {
			points, err := RunCluster(spec, f)
			if err != nil {
				t.Fatalf("%s on %s: %v", f.Name, dist.Name(), err)
			}
			oneFail, twoFail := points[0], points[1]
			if oneFail.Latency.ViolatesSLA {
				t.Errorf("%s on %s: violated SLA under ONE failure (worst P99 %.2f s)",
					f.Name, dist.Name(), oneFail.Latency.WorstServerP99)
			}
			isCube3 := f.Name == cube3.Name
			if isCube3 && twoFail.Latency.ViolatesSLA {
				t.Errorf("cubefit γ=3 on %s: violated SLA under two failures (worst P99 %.2f s)",
					dist.Name(), twoFail.Latency.WorstServerP99)
			}
			if !isCube3 && !twoFail.Latency.ViolatesSLA {
				t.Errorf("%s on %s: expected an SLA violation under two failures (worst P99 %.2f s)",
					f.Name, dist.Name(), twoFail.Latency.WorstServerP99)
			}
		}
	}
}

func TestRunClusterTransientMode(t *testing.T) {
	model := workload.DefaultLoadModel()
	spec := ClusterSpec{
		Servers:   12,
		Failures:  []int{1},
		Model:     model,
		Dist:      uniformDist(t, 15),
		Seed:      7,
		Cluster:   cluster.Config{SLA: 5, Warmup: 10, Measure: 40, Seed: 7},
		Transient: true,
	}
	cf, _ := factories(t)
	points, err := RunCluster(spec, cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("%d points", len(points))
	}
	// The transient mode must still reflect the failure in latency: the
	// same spec without failures would sit lower.
	base := spec
	base.Failures = []int{0}
	basePoints, err := RunCluster(base, cf)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Latency.WorstServerP99 <= basePoints[0].Latency.WorstServerP99 {
		t.Fatalf("transient failure did not raise latency: %v vs %v",
			points[0].Latency.WorstServerP99, basePoints[0].Latency.WorstServerP99)
	}
}
