package sim

import (
	"errors"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/packing"
)

// TimingResult reports how long an algorithm takes to consolidate a tenant
// sequence — one of the statistics the paper's simulator captures ("the
// amount of time each placement algorithm needs to consolidate tenants
// onto servers", §V-C).
type TimingResult struct {
	Algorithm string
	Tenants   int
	Servers   int
	// Total is the wall-clock time to place the whole sequence.
	Total time.Duration
	// PerTenant is Total divided by the number of tenants.
	PerTenant time.Duration
}

// MeasureTiming places the tenants on a fresh instance from the factory
// and measures wall-clock placement time against the real clock.
func MeasureTiming(f Factory, tenants []packing.Tenant) (TimingResult, error) {
	return MeasureTimingWith(clock.Real(), f, tenants)
}

// MeasureTimingWith is MeasureTiming against an injectable clock, the seam
// that keeps simulation timing deterministic under test (pass a
// *clock.Fake advanced by the placement hook or left still).
func MeasureTimingWith(clk clock.Clock, f Factory, tenants []packing.Tenant) (TimingResult, error) {
	if len(tenants) == 0 {
		return TimingResult{}, errors.New("sim: no tenants to time")
	}
	alg, err := f.New()
	if err != nil {
		return TimingResult{}, err
	}
	start := clk.Now()
	if err := packing.PlaceAll(alg, tenants); err != nil {
		return TimingResult{}, err
	}
	total := clk.Since(start)
	return TimingResult{
		Algorithm: f.Name,
		Tenants:   len(tenants),
		Servers:   alg.Placement().NumUsedServers(),
		Total:     total,
		PerTenant: total / time.Duration(len(tenants)),
	}, nil
}
