package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

func TestTrialsMatchesSerialOrder(t *testing.T) {
	trial := func(i int) (int, error) { return i * i, nil }
	want, err := Trials(1, 50, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 100} {
		got, err := Trials(workers, 50, trial)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results diverged from serial", workers)
		}
	}
}

func TestTrialsEmpty(t *testing.T) {
	got, err := Trials(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty trials = %v, %v", got, err)
	}
}

func TestTrialsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) func(int) (int, error) {
		return func(i int) (int, error) {
			for _, b := range bad {
				if i == b {
					return 0, fmt.Errorf("trial %d failed", i)
				}
			}
			return i, nil
		}
	}
	for _, workers := range []int{1, 3, 8} {
		_, err := Trials(workers, 20, errAt(17, 5, 11))
		if err == nil || err.Error() != "trial 5 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index trial 5", workers, err)
		}
	}
}

func TestTrialsSerialStopsEarly(t *testing.T) {
	calls := 0
	_, err := Trials(1, 10, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 4 {
		t.Fatalf("serial runner made %d calls after failure at trial 3, want 4", calls)
	}
}

func consolidationSpec(t *testing.T, workers int) ConsolidationSpec {
	t.Helper()
	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	return ConsolidationSpec{
		Tenants: 400,
		Runs:    6,
		Seed:    7,
		Model:   workload.DefaultLoadModel(),
		Dist:    dist,
		Workers: workers,
	}
}

// TestRunConsolidationParallelParity is the satellite parity requirement:
// the parallel trial runner must reproduce the serial runner's result
// exactly — same per-run server counts, same aggregate intervals — for
// the same spec and seed. Run under -race this also exercises the worker
// pool for data races.
func TestRunConsolidationParallelParity(t *testing.T) {
	model := workload.DefaultLoadModel()
	a := CubeFitFactory(core.Config{Gamma: 2, K: 10}, &model)
	b := RFIFactory(rfi.Config{Gamma: 2})
	serial, err := RunConsolidation(consolidationSpec(t, 1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		parallel, err := RunConsolidation(consolidationSpec(t, workers), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel, serial) {
			t.Fatalf("workers=%d: parallel result diverged from serial:\n%+v\nvs\n%+v",
				workers, parallel, serial)
		}
	}
}
