// Package sim orchestrates the paper's experiments: the large-scale
// consolidation simulations behind Figure 6 and Table I, and the
// fill-measure-fail cluster protocol behind Figure 5.
package sim

import (
	"errors"
	"fmt"

	"cubefit/internal/cluster"
	"cubefit/internal/core"
	"cubefit/internal/costs"
	"cubefit/internal/failure"
	"cubefit/internal/packing"
	"cubefit/internal/rfi"
	"cubefit/internal/rng"
	"cubefit/internal/stats"
	"cubefit/internal/workload"
)

// Factory names and constructs fresh algorithm instances, one per
// simulation run.
type Factory struct {
	Name string
	New  func() (packing.Algorithm, error)
}

// CubeFitFactory builds a CubeFit factory. When model is non-nil, the
// minimum replica size it implies is used to prune retired mature bins
// (placement-neutral, see core.Config.PruneSlack).
func CubeFitFactory(cfg core.Config, model *workload.LoadModel) Factory {
	if model != nil && cfg.PruneSlack == 0 {
		cfg.PruneSlack = model.Load(1) / float64(cfg.Gamma) * 0.99
	}
	return Factory{
		Name: fmt.Sprintf("cubefit(γ=%d,k=%d)", cfg.Gamma, cfg.K),
		New: func() (packing.Algorithm, error) {
			return core.New(cfg)
		},
	}
}

// RFIFactory builds an RFI factory.
func RFIFactory(cfg rfi.Config) Factory {
	cfgN, err := rfi.New(cfg)
	name := "rfi"
	if err == nil {
		name = cfgN.Name()
	}
	return Factory{
		Name: name,
		New: func() (packing.Algorithm, error) {
			return rfi.New(cfg)
		},
	}
}

// ConsolidationSpec parameterizes one Figure 6 cell: repeated independent
// simulations comparing server counts of two algorithms on one tenant
// distribution.
type ConsolidationSpec struct {
	// Tenants per run (the paper uses 50,000).
	Tenants int
	// Runs of independent sequences (the paper uses 10).
	Runs int
	// Seed derives each run's sequence.
	Seed uint64
	// Model maps client counts to loads.
	Model workload.LoadModel
	// Dist draws tenant client counts.
	Dist workload.Distribution
	// Workers bounds the number of runs simulated concurrently; 0 or 1
	// means serial. Results are identical for every worker count: each run
	// draws from its own pre-derived seed and the runs are aggregated in
	// run order (see Trials).
	Workers int
}

// Validate reports whether the spec is usable.
func (s ConsolidationSpec) Validate() error {
	if s.Tenants <= 0 {
		return errors.New("sim: Tenants must be positive")
	}
	if s.Runs <= 0 {
		return errors.New("sim: Runs must be positive")
	}
	if s.Dist == nil {
		return errors.New("sim: nil distribution")
	}
	if s.Workers < 0 {
		return errors.New("sim: negative Workers")
	}
	return s.Model.Validate()
}

// AlgorithmOutcome aggregates one algorithm's server counts over the runs.
type AlgorithmOutcome struct {
	Name string
	// Servers is the mean used-server count with a 95% CI over runs.
	Servers stats.Interval
	// MeanUtilization averages per-run placement utilization.
	MeanUtilization float64
	// PerRun holds the raw used-server counts.
	PerRun []float64
}

// ConsolidationResult is one Figure 6 bar: the relative server savings of
// algorithm A over baseline B with a 95% confidence interval.
type ConsolidationResult struct {
	Distribution string
	A, B         AlgorithmOutcome
	// SavingsPct is the paper's relative difference
	// (B−A)/A × 100% per run, aggregated with a 95% CI.
	SavingsPct stats.Interval
}

// RunConsolidation executes the repeated-run comparison of algorithm a
// (CubeFit in the paper) against baseline b (RFI). With spec.Workers > 1
// the runs execute on a worker pool; the per-run seeds are pre-derived
// from spec.Seed in run order and the outcomes merged in run order, so
// the result is bit-identical to the serial execution.
func RunConsolidation(spec ConsolidationSpec, a, b Factory) (ConsolidationResult, error) {
	if err := spec.Validate(); err != nil {
		return ConsolidationResult{}, err
	}
	// Derive each run's seed serially before fanning out: this is the only
	// consumption of the shared seed stream, so its order is fixed no
	// matter how the runs interleave.
	seeds := rng.New(spec.Seed)
	runSeeds := make([]uint64, spec.Runs)
	for run := range runSeeds {
		runSeeds[run] = seeds.Uint64()
	}
	type runOutcome struct {
		servedA, servedB int
		utilA, utilB     float64
	}
	outcomes, err := Trials(spec.Workers, spec.Runs, func(run int) (runOutcome, error) {
		src, err := workload.NewClientSource(spec.Model, spec.Dist, runSeeds[run])
		if err != nil {
			return runOutcome{}, err
		}
		tenants := workload.Take(src, spec.Tenants)

		servedA, uA, err := runOnce(a, tenants)
		if err != nil {
			return runOutcome{}, fmt.Errorf("sim: %s run %d: %w", a.Name, run, err)
		}
		servedB, uB, err := runOnce(b, tenants)
		if err != nil {
			return runOutcome{}, fmt.Errorf("sim: %s run %d: %w", b.Name, run, err)
		}
		return runOutcome{servedA: servedA, servedB: servedB, utilA: uA, utilB: uB}, nil
	})
	if err != nil {
		return ConsolidationResult{}, err
	}
	res := ConsolidationResult{
		Distribution: spec.Dist.Name(),
		A:            AlgorithmOutcome{Name: a.Name},
		B:            AlgorithmOutcome{Name: b.Name},
	}
	savings := make([]float64, 0, spec.Runs)
	var utilA, utilB float64
	for _, out := range outcomes {
		res.A.PerRun = append(res.A.PerRun, float64(out.servedA))
		res.B.PerRun = append(res.B.PerRun, float64(out.servedB))
		savings = append(savings, stats.RelativeDifference(float64(out.servedB), float64(out.servedA)))
		utilA += out.utilA
		utilB += out.utilB
	}
	if res.A.Servers, err = stats.CI95(res.A.PerRun); err != nil {
		return ConsolidationResult{}, err
	}
	if res.B.Servers, err = stats.CI95(res.B.PerRun); err != nil {
		return ConsolidationResult{}, err
	}
	if res.SavingsPct, err = stats.CI95(savings); err != nil {
		return ConsolidationResult{}, err
	}
	res.A.MeanUtilization = utilA / float64(spec.Runs)
	res.B.MeanUtilization = utilB / float64(spec.Runs)
	return res, nil
}

func runOnce(f Factory, tenants []packing.Tenant) (servers int, utilization float64, err error) {
	alg, err := f.New()
	if err != nil {
		return 0, 0, err
	}
	if err := packing.PlaceAll(alg, tenants); err != nil {
		return 0, 0, err
	}
	p := alg.Placement()
	return p.NumUsedServers(), p.Utilization(), nil
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Distribution    string
	BaselineServers int // RFI
	ImprovedServers int // CubeFit
	SavedServers    int
	YearlySavings   float64
}

// TableI converts a consolidation result into the paper's yearly cost
// saving row using mean server counts.
func TableI(res ConsolidationResult, m costs.Model) (TableIRow, error) {
	baseline := int(res.B.Servers.Mean + 0.5)
	improved := int(res.A.Servers.Mean + 0.5)
	if improved > baseline {
		// CubeFit used more servers than the baseline: negative savings are
		// reported as zero saved dollars rather than an error.
		improved = baseline
	}
	dollars, err := m.Savings(baseline, improved)
	if err != nil {
		return TableIRow{}, err
	}
	return TableIRow{
		Distribution:    res.Distribution,
		BaselineServers: baseline,
		ImprovedServers: improved,
		SavedServers:    baseline - improved,
		YearlySavings:   dollars,
	}, nil
}

// FillToCapacity feeds tenants from the source into a fresh instance of
// the factory until admitting one more tenant would exceed maxServers
// (the paper's "keep adding tenants until CubeFit fills up all 69
// servers"). It returns the algorithm rebuilt on exactly the accepted
// prefix along with that prefix.
func FillToCapacity(f Factory, src workload.Source, maxServers int) (packing.Algorithm, []packing.Tenant, error) {
	if maxServers <= 0 {
		return nil, nil, errors.New("sim: maxServers must be positive")
	}
	alg, err := f.New()
	if err != nil {
		return nil, nil, err
	}
	var accepted []packing.Tenant
	const hardCap = 1 << 22 // defensive bound against a source that never fills
	for len(accepted) < hardCap {
		t := src.Next()
		if err := alg.Place(t); err != nil {
			return nil, nil, fmt.Errorf("sim: fill: %w", err)
		}
		if alg.Placement().NumServers() > maxServers {
			// The overshooting tenant is rejected; rebuild deterministically
			// on the accepted prefix.
			rebuilt, err := f.New()
			if err != nil {
				return nil, nil, err
			}
			if err := packing.PlaceAll(rebuilt, accepted); err != nil {
				return nil, nil, fmt.Errorf("sim: rebuild: %w", err)
			}
			return rebuilt, accepted, nil
		}
		accepted = append(accepted, t)
	}
	return nil, nil, errors.New("sim: fill never reached capacity")
}

// ClusterSpec parameterizes one Figure 5 series: fill a cluster, fail the
// worst-case servers, measure tail latency.
type ClusterSpec struct {
	// Servers is the data-store cluster size (the paper uses 69).
	Servers int
	// Failures lists the failure counts to measure (the paper shows 1, 2).
	Failures []int
	// Model and Dist generate the tenant stream.
	Model workload.LoadModel
	Dist  workload.Distribution
	// Seed derives the tenant stream.
	Seed uint64
	// Cluster configures the latency simulation.
	Cluster cluster.Config
	// Transient, when set, applies the worst-case failures DURING the run
	// (at the start of the measurement window) instead of as a pre-failed
	// steady state, capturing the reconnect-and-retry transient.
	Transient bool
}

// Validate reports whether the spec is usable.
func (s ClusterSpec) Validate() error {
	if s.Servers <= 0 {
		return errors.New("sim: Servers must be positive")
	}
	if len(s.Failures) == 0 {
		return errors.New("sim: no failure counts")
	}
	for _, f := range s.Failures {
		if f < 0 || f >= s.Servers {
			return fmt.Errorf("sim: failure count %d out of range", f)
		}
	}
	if s.Dist == nil {
		return errors.New("sim: nil distribution")
	}
	return s.Model.Validate()
}

// ClusterPoint is one bar of Figure 5.
type ClusterPoint struct {
	Algorithm string
	Failures  int
	// Plan records which servers were failed and the predicted overload.
	Plan failure.Plan
	// Latency is the measured run.
	Latency cluster.Result
	// Tenants admitted during the fill.
	Tenants int
	// ServersUsed after the fill.
	ServersUsed int
}

// RunCluster executes the Figure 5 protocol for one algorithm factory.
func RunCluster(spec ClusterSpec, f Factory) ([]ClusterPoint, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src, err := workload.NewClientSource(spec.Model, spec.Dist, spec.Seed)
	if err != nil {
		return nil, err
	}
	alg, tenants, err := FillToCapacity(f, src, spec.Servers)
	if err != nil {
		return nil, err
	}
	p := alg.Placement()
	points := make([]ClusterPoint, 0, len(spec.Failures))
	for _, fails := range spec.Failures {
		plan, err := failure.WorstCase(p, fails)
		if err != nil {
			return nil, err
		}
		assign := failure.NewAssignment(p)
		ccfg := spec.Cluster
		if spec.Transient {
			for _, srv := range plan.Servers {
				ccfg.TimedFailures = append(ccfg.TimedFailures,
					cluster.TimedFailure{Time: ccfg.Warmup, Server: srv})
			}
		} else {
			assign, err = failure.Apply(p, plan)
			if err != nil {
				return nil, err
			}
		}
		lat, err := cluster.Run(p, assign, ccfg)
		if err != nil {
			return nil, err
		}
		points = append(points, ClusterPoint{
			Algorithm:   f.Name,
			Failures:    fails,
			Plan:        plan,
			Latency:     lat,
			Tenants:     len(tenants),
			ServersUsed: p.NumUsedServers(),
		})
	}
	return points, nil
}

// DefaultSweep returns the Figure 6 distribution sweep described in
// DESIGN.md §3: uniform client counts 1..M for growing M, and zipfian
// exponents over the full 1..52 range. It includes the two distributions
// of the system experiments (uniform 1..15, zipf exponent 3).
func DefaultSweep() ([]workload.Distribution, error) {
	var out []workload.Distribution
	for _, m := range []int{5, 15, 25, 35, 45, 52} {
		u, err := workload.NewUniform(1, m)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	for _, s := range []float64{1.5, 2, 2.5, 3, 4} {
		z, err := workload.NewZipf(s, workload.MaxClientsPerServer)
		if err != nil {
			return nil, err
		}
		out = append(out, z)
	}
	return out, nil
}
