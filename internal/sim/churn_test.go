package sim

import (
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/workload"
)

func churnSpec(t *testing.T) ChurnSpec {
	t.Helper()
	return ChurnSpec{
		Steps:          3000,
		DepartFraction: 0.45,
		Seed:           9,
		Model:          workload.DefaultLoadModel(),
		Dist:           uniformDist(t, 15),
		Config:         core.Config{Gamma: 2, K: 10},
	}
}

func TestChurnSpecValidation(t *testing.T) {
	good := churnSpec(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Steps = 0
	if bad.Validate() == nil {
		t.Fatal("zero steps accepted")
	}
	bad = good
	bad.DepartFraction = 1
	if bad.Validate() == nil {
		t.Fatal("depart fraction 1 accepted")
	}
	bad = good
	bad.Dist = nil
	if bad.Validate() == nil {
		t.Fatal("nil dist accepted")
	}
	bad = good
	bad.Config.Gamma = 0
	if bad.Validate() == nil {
		t.Fatal("bad config accepted")
	}
}

func TestChurnBalancesAndStaysRobust(t *testing.T) {
	res, err := RunChurn(churnSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals+res.Departures != 3000 {
		t.Fatalf("event count wrong: %+v", res)
	}
	if res.LiveTenants != res.Arrivals-res.Departures {
		t.Fatalf("live tenants inconsistent: %+v", res)
	}
	if res.FinalServers == 0 || res.FinalUtilization <= 0 {
		t.Fatalf("degenerate end state: %+v", res)
	}
	if res.MeanUtilization <= 0 || res.MeanUtilization > 1 {
		t.Fatalf("mean utilization %v out of range", res.MeanUtilization)
	}
}

// TestChurnFragmentationRepackable: sustained churn leaves reclaimable
// fragmentation, and the repack plan quantifies it.
func TestChurnFragmentationRepackable(t *testing.T) {
	res, err := RunChurn(churnSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.RepackPlan.BeforeServers != res.FinalServers {
		t.Fatalf("repack plan disagrees with final state: %+v", res)
	}
	if res.RepackPlan.AfterServers > res.RepackPlan.BeforeServers {
		t.Fatalf("repack would grow the cluster: %+v", res.RepackPlan)
	}
}

// TestChurnUtilizationBeatsNoReuse: the departure extension actually reuses
// freed capacity — final utilization under churn should be in the same
// league as arrival-only placement.
func TestChurnUtilizationReasonable(t *testing.T) {
	res, err := RunChurn(churnSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalUtilization < 0.3 {
		t.Fatalf("final utilization %v: freed capacity is not being reused", res.FinalUtilization)
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := RunChurn(churnSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(churnSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Departures != b.Departures ||
		a.FinalServers != b.FinalServers ||
		a.FinalUtilization != b.FinalUtilization ||
		len(a.RepackPlan.Moves) != len(b.RepackPlan.Moves) {
		t.Fatalf("non-deterministic churn:\n%+v\n%+v", a, b)
	}
}

func TestChurnArrivalOnly(t *testing.T) {
	spec := churnSpec(t)
	spec.Steps = 500
	spec.DepartFraction = 0
	res, err := RunChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures != 0 || res.Arrivals != 500 || res.LiveTenants != 500 {
		t.Fatalf("arrival-only run wrong: %+v", res)
	}
}
