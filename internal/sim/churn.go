package sim

import (
	"errors"
	"fmt"

	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/rebalance"
	"cubefit/internal/rng"
	"cubefit/internal/stats"
	"cubefit/internal/workload"
)

// ChurnSpec simulates a long-running deployment with tenant churn (the
// dynamic extension of DESIGN.md §7): a stream of arrival/departure events
// is applied to an online CubeFit instance, tracking how fragmentation
// develops and how much a maintenance repack would reclaim.
type ChurnSpec struct {
	// Steps is the number of events to simulate.
	Steps int
	// DepartFraction is the probability that an event is a departure of a
	// uniformly random live tenant (when any exists); the rest are
	// arrivals. 0.5 holds the population roughly steady.
	DepartFraction float64
	// Seed drives the event stream.
	Seed uint64
	// Model and Dist generate arriving tenants.
	Model workload.LoadModel
	Dist  workload.Distribution
	// Config is the CubeFit configuration under test.
	Config core.Config
}

// Validate reports whether the spec is usable.
func (s ChurnSpec) Validate() error {
	if s.Steps <= 0 {
		return errors.New("sim: Steps must be positive")
	}
	if s.DepartFraction < 0 || s.DepartFraction >= 1 {
		return errors.New("sim: DepartFraction outside [0,1)")
	}
	if s.Dist == nil {
		return errors.New("sim: nil distribution")
	}
	if err := s.Model.Validate(); err != nil {
		return err
	}
	return s.Config.Validate()
}

// ChurnResult summarizes a churn simulation.
type ChurnResult struct {
	Arrivals   int
	Departures int
	// LiveTenants at the end of the run.
	LiveTenants int
	// FinalServers and FinalUtilization describe the end state.
	FinalServers     int
	FinalUtilization float64
	// MeanUtilization averages utilization sampled after every event.
	MeanUtilization float64
	// RepackPlan is the maintenance plan computed on the final state: how
	// many servers an offline repack would reclaim and at what migration
	// cost.
	RepackPlan rebalance.Plan
}

// RunChurn executes the churn simulation.
func RunChurn(spec ChurnSpec) (ChurnResult, error) {
	if err := spec.Validate(); err != nil {
		return ChurnResult{}, err
	}
	cfg := spec.Config
	cf, err := core.New(cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	src, err := workload.NewClientSource(spec.Model, spec.Dist, spec.Seed)
	if err != nil {
		return ChurnResult{}, err
	}
	r := rng.New(spec.Seed + 0x9e3779b9)

	var (
		live  []packing.TenantID
		res   ChurnResult
		util  stats.Online
		check = spec.Steps / 20
	)
	if check == 0 {
		check = 1
	}
	for step := 0; step < spec.Steps; step++ {
		if len(live) > 0 && r.Float64() < spec.DepartFraction {
			i := r.Intn(len(live))
			if err := cf.Remove(live[i]); err != nil {
				return ChurnResult{}, fmt.Errorf("sim: churn departure: %w", err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			res.Departures++
		} else {
			t := src.Next()
			if err := cf.Place(t); err != nil {
				return ChurnResult{}, fmt.Errorf("sim: churn arrival: %w", err)
			}
			live = append(live, t.ID)
			res.Arrivals++
		}
		util.Add(cf.Placement().Utilization())
		// Periodic invariant audit: churn must never break robustness.
		if step%check == 0 {
			if err := cf.Placement().ValidateRobustness(); err != nil {
				return ChurnResult{}, fmt.Errorf("sim: invariant broken at step %d: %w", step, err)
			}
		}
	}
	p := cf.Placement()
	if err := p.Validate(); err != nil {
		return ChurnResult{}, err
	}
	res.LiveTenants = len(live)
	res.FinalServers = p.NumUsedServers()
	res.FinalUtilization = p.Utilization()
	res.MeanUtilization = util.Mean()
	if _, plan, err := rebalance.Repack(p); err == nil {
		res.RepackPlan = plan
	} else {
		return ChurnResult{}, err
	}
	return res, nil
}
