// Package tpch models the paper's analytics workload: the 22 TPC-H query
// templates plus update statements, scaled so the paper's experimental
// setup holds — 95% reads / 5% updates (§V-A), and a server saturated with
// MaxClientsPerServer concurrent clients exhibits a 99th-percentile
// response time equal to the 5-second SLA.
//
// The authors ran real TPC-H against PostgreSQL; this package substitutes
// a synthetic service-demand distribution with the same role (see
// DESIGN.md §3): per-template base demands spanning roughly 20×, a
// log-normal per-execution jitter, and a self-calibrating scale factor
// anchored to the SLA.
package tpch

import (
	"errors"
	"fmt"
	"sync"

	"cubefit/internal/rng"
	"cubefit/internal/stats"
)

// NumTemplates is the number of TPC-H read query templates.
const NumTemplates = 22

// DefaultReadFraction is the paper's read share of the workload.
const DefaultReadFraction = 0.95

// UpdateTemplate is the template index reported for update statements.
const UpdateTemplate = 0

// Query is one sampled statement.
type Query struct {
	// Template is the TPC-H query number 1..22, or UpdateTemplate for an
	// update statement.
	Template int
	// Demand is the server work the statement requires, in seconds of an
	// otherwise idle server.
	Demand float64
	// Update marks write statements, which execute against every replica
	// of the tenant to preserve consistency.
	Update bool
}

// baseDemands holds relative per-template service demands for Q1..Q22.
// The values reflect the familiar ordering of TPC-H query weights (Q1, Q9,
// Q18, Q21 heavy; Q2, Q6, Q14 light); only their relative spread matters
// because Calibrate rescales the whole mix against the SLA.
var baseDemands = [NumTemplates]float64{
	1.00, // Q1  pricing summary (heavy scan+aggregate)
	0.12, // Q2  minimum cost supplier
	0.45, // Q3  shipping priority
	0.38, // Q4  order priority
	0.52, // Q5  local supplier volume
	0.10, // Q6  forecast revenue (light scan)
	0.48, // Q7  volume shipping
	0.55, // Q8  national market share
	0.95, // Q9  product type profit (heavy join)
	0.42, // Q10 returned items
	0.18, // Q11 important stock
	0.35, // Q12 shipping modes
	0.60, // Q13 customer distribution
	0.14, // Q14 promotion effect
	0.25, // Q15 top supplier
	0.30, // Q16 parts/supplier relationship
	0.40, // Q17 small-quantity-order revenue
	0.85, // Q18 large volume customer (heavy)
	0.28, // Q19 discounted revenue
	0.46, // Q20 potential part promotion
	0.90, // Q21 suppliers who kept orders waiting (heavy)
	0.22, // Q22 global sales opportunity
}

// updateBaseDemand is the relative demand of one update statement; updates
// are short row operations compared to analytic scans.
const updateBaseDemand = 0.05

// jitterSigma is the standard deviation of the log-normal per-execution
// demand multiplier.
const jitterSigma = 0.20

// calibrationSamples is the sample count used to anchor the demand P99.
const calibrationSamples = 200_000

// Mix is a sampleable statement workload. Construct with NewMix; a Mix is
// immutable and safe for concurrent Sample calls with distinct RNGs.
type Mix struct {
	readFraction float64
	scale        float64
	cdf          [NumTemplates]float64 // uniform across templates, kept for clarity
}

// Option configures NewMix.
type Option interface {
	apply(*mixOptions)
}

type mixOptions struct {
	readFraction float64
	targetP99    float64
}

type readFractionOption float64

func (o readFractionOption) apply(m *mixOptions) { m.readFraction = float64(o) }

// WithReadFraction overrides the read share (default 0.95).
func WithReadFraction(f float64) Option { return readFractionOption(f) }

type targetP99Option float64

func (o targetP99Option) apply(m *mixOptions) { m.targetP99 = float64(o) }

// WithTargetP99 calibrates the mix so the 99th percentile of sampled
// demands equals the given value in seconds. The default anchors a
// 52-client saturated server at a 5-second P99, i.e. 5/52.
func WithTargetP99(p99 float64) Option { return targetP99Option(p99) }

// DefaultTargetP99 is the default demand P99: the 5 s SLA divided by the
// 52-client server capacity.
const DefaultTargetP99 = 5.0 / 52

// NewMix builds a calibrated statement mix.
func NewMix(opts ...Option) (*Mix, error) {
	o := mixOptions{readFraction: DefaultReadFraction, targetP99: DefaultTargetP99}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.readFraction < 0 || o.readFraction > 1 {
		return nil, fmt.Errorf("tpch: read fraction %v outside [0,1]", o.readFraction)
	}
	if o.targetP99 <= 0 {
		return nil, errors.New("tpch: target P99 must be positive")
	}
	m := &Mix{readFraction: o.readFraction, scale: 1}
	for i := range m.cdf {
		m.cdf[i] = float64(i+1) / NumTemplates
	}
	m.scale = o.targetP99 / m.demandP99()
	return m, nil
}

// calCache memoizes the unscaled demand P99 per read fraction. Calibration
// is deterministic (fixed internal random stream), so every NewMix with
// the same read fraction would recompute the identical value from 200k
// samples; the experiment driver builds one Mix per simulation run, which
// made calibration a dominant cost of short runs. sync.Map keeps the cache
// safe under the parallel trial runner.
var calCache sync.Map // map[float64]float64: readFraction → unscaled P99

// demandP99 estimates the mix's unscaled demand P99 with a fixed internal
// random stream, making calibration deterministic (and therefore safely
// memoizable per read fraction).
func (m *Mix) demandP99() float64 {
	if v, ok := calCache.Load(m.readFraction); ok {
		return v.(float64)
	}
	r := rng.New(0x7c9c0221)
	demands := make([]float64, calibrationSamples)
	for i := range demands {
		demands[i] = m.Sample(r).Demand
	}
	idx := int(0.99 * float64(len(demands)-1))
	// The idx-th order statistic, selected in place — identical to sorting
	// and indexing, in O(n) instead of O(n log n).
	p99, err := stats.OrderStatInPlace(demands, idx)
	if err != nil {
		// Unreachable: demands is non-empty and idx is in range.
		panic(err)
	}
	calCache.Store(m.readFraction, p99)
	return p99
}

// ReadFraction returns the read share of the mix.
func (m *Mix) ReadFraction() float64 { return m.readFraction }

// Scale returns the calibrated demand scale factor.
func (m *Mix) Scale() float64 { return m.scale }

// Sample draws one statement.
func (m *Mix) Sample(r *rng.RNG) Query {
	jitter := r.LogNormFloat64(0, jitterSigma)
	if r.Float64() >= m.readFraction {
		return Query{
			Template: UpdateTemplate,
			Demand:   updateBaseDemand * jitter * m.scale,
			Update:   true,
		}
	}
	t := r.Intn(NumTemplates)
	return Query{
		Template: t + 1,
		Demand:   baseDemands[t] * jitter * m.scale,
	}
}

// MeanDemand estimates the average statement demand via sampling with a
// fixed stream (deterministic).
func (m *Mix) MeanDemand() float64 {
	r := rng.New(0x51a7e)
	sum := 0.0
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += m.Sample(r).Demand
	}
	return sum / n
}
