package tpch

import (
	"math"
	"sort"
	"testing"

	"cubefit/internal/rng"
)

func TestNewMixDefaults(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadFraction() != DefaultReadFraction {
		t.Fatalf("read fraction = %v", m.ReadFraction())
	}
	if m.Scale() <= 0 {
		t.Fatalf("scale = %v", m.Scale())
	}
}

func TestNewMixErrors(t *testing.T) {
	if _, err := NewMix(WithReadFraction(-0.1)); err == nil {
		t.Fatal("negative read fraction accepted")
	}
	if _, err := NewMix(WithReadFraction(1.1)); err == nil {
		t.Fatal("read fraction > 1 accepted")
	}
	if _, err := NewMix(WithTargetP99(0)); err == nil {
		t.Fatal("zero target accepted")
	}
}

// TestCalibration is the anchor of the whole cluster substitution: the
// sampled demand P99 must equal SLA/52 so a saturated 52-client server
// sits exactly at the SLA.
func TestCalibration(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	var n = 100_000
	demands := make([]float64, n)
	for i := range demands {
		q := m.Sample(r)
		if q.Demand <= 0 {
			t.Fatalf("non-positive demand %v", q.Demand)
		}
		demands[i] = q.Demand
	}
	sort.Float64s(demands)
	p99 := demands[int(0.99*float64(n-1))]
	if math.Abs(p99-DefaultTargetP99)/DefaultTargetP99 > 0.03 {
		t.Fatalf("demand P99 = %v, want about %v", p99, DefaultTargetP99)
	}
	// Implied saturated-server P99 = 52 × demand P99 ≈ 5 s.
	if sat := p99 * 52; sat < 4.7 || sat > 5.3 {
		t.Fatalf("implied saturated P99 = %v s, want about 5", sat)
	}
}

func TestReadWriteMix(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	updates := 0
	var n = 100_000
	for i := 0; i < n; i++ {
		q := m.Sample(r)
		if q.Update {
			updates++
			if q.Template != UpdateTemplate {
				t.Fatalf("update with template %d", q.Template)
			}
		} else if q.Template < 1 || q.Template > NumTemplates {
			t.Fatalf("read template %d out of range", q.Template)
		}
	}
	frac := float64(updates) / float64(n)
	if math.Abs(frac-0.05) > 0.005 {
		t.Fatalf("update fraction = %v, want 0.05", frac)
	}
}

func TestAllTemplatesAppear(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	seen := make(map[int]bool)
	for i := 0; i < 10_000; i++ {
		q := m.Sample(r)
		if !q.Update {
			seen[q.Template] = true
		}
	}
	if len(seen) != NumTemplates {
		t.Fatalf("only %d of %d templates sampled", len(seen), NumTemplates)
	}
}

func TestUpdatesAreCheap(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	var readSum, updSum float64
	var reads, upds int
	for i := 0; i < 50_000; i++ {
		q := m.Sample(r)
		if q.Update {
			updSum += q.Demand
			upds++
		} else {
			readSum += q.Demand
			reads++
		}
	}
	if upds == 0 || reads == 0 {
		t.Fatal("mix degenerate")
	}
	if updSum/float64(upds) >= readSum/float64(reads) {
		t.Fatal("updates are not cheaper than reads on average")
	}
}

func TestCustomTarget(t *testing.T) {
	m, err := NewMix(WithTargetP99(0.5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	var n = 100_000
	demands := make([]float64, n)
	for i := range demands {
		demands[i] = m.Sample(r).Demand
	}
	sort.Float64s(demands)
	p99 := demands[int(0.99*float64(n-1))]
	if math.Abs(p99-0.5)/0.5 > 0.03 {
		t.Fatalf("custom target P99 = %v, want 0.5", p99)
	}
}

func TestReadOnlyMix(t *testing.T) {
	m, err := NewMix(WithReadFraction(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for i := 0; i < 10_000; i++ {
		if m.Sample(r).Update {
			t.Fatal("update sampled from read-only mix")
		}
	}
}

func TestMeanDemandDeterministic(t *testing.T) {
	m, err := NewMix()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := m.MeanDemand(), m.MeanDemand(); a != b {
		t.Fatalf("MeanDemand not deterministic: %v vs %v", a, b)
	}
	if m.MeanDemand() <= 0 {
		t.Fatal("mean demand not positive")
	}
}
