package packing

// Algorithm is an online server-consolidation algorithm: it receives
// tenants one at a time and must place each tenant's γ replicas on γ
// distinct servers of the placement it manages, without knowledge of
// forthcoming tenants.
type Algorithm interface {
	// Name identifies the algorithm in reports (e.g. "cubefit(k=10,γ=2)").
	Name() string
	// Place admits one tenant, placing all of its replicas.
	Place(t Tenant) error
	// Placement exposes the placement built so far. Callers must treat it
	// as read-only.
	Placement() *Placement
}

// PlaceAll feeds every tenant of the sequence to the algorithm, stopping at
// the first error.
func PlaceAll(a Algorithm, tenants []Tenant) error {
	for _, t := range tenants {
		if err := a.Place(t); err != nil {
			return err
		}
	}
	return nil
}

// EachShared calls fn for every server j with |Si ∩ Sj| > 0 for this
// server Si. Iteration order is unspecified. fn must not mutate the
// placement.
//
//cubefit:hotpath
func (s *Server) EachShared(fn func(j int, load float64)) {
	//cubefit:vet-allow maprange -- iteration order is documented unspecified; order-sensitive callers must sort or select (TopShared, TopSharedSet)
	for j, v := range s.shared {
		fn(j, v)
	}
}

// NumShared returns the number of servers this server shares tenants with.
func (s *Server) NumShared() int { return len(s.shared) }
