// Package packing defines the shared model of the robust tenant placement
// problem from Mate, Daudjee and Kamali (ICDCS 2017): tenants, replicas,
// servers, placements, and the robustness invariant
//
//	|Si| + Σ_{Sj ∈ S*} |Si ∩ Sj| ≤ 1
//
// for every server Si and every set S* of at most γ−1 other servers, where
// |Si| is the total replica load on Si and |Si ∩ Sj| the load of Si's
// replicas whose tenant also has a replica on Sj.
//
// All consolidation algorithms in this repository (CubeFit, RFI, the naive
// baselines) build on this package, and the Validate family of functions is
// the ground truth used by their tests.
package packing

import (
	"errors"
	"fmt"
	"sort"
)

// TenantID identifies a tenant within one placement.
type TenantID int

// Tenant is one arriving client application. Load is the normalized
// in-memory server load in (0, 1] from the paper's linear model
// load = δ·clients + β. Clients is carried along for the cluster simulator
// and may be zero in pure packing experiments.
type Tenant struct {
	ID      TenantID
	Load    float64
	Clients int
}

// Validate reports whether the tenant is well formed.
func (t Tenant) Validate() error {
	if t.Load <= 0 || t.Load > 1 {
		return fmt.Errorf("packing: tenant %d load %v outside (0,1]", t.ID, t.Load)
	}
	if t.Clients < 0 {
		return fmt.Errorf("packing: tenant %d has negative clients", t.ID)
	}
	return nil
}

// Replica is one of the γ copies of a tenant. Size is Load/γ; Clients is
// the number of this tenant's clients routed to this replica.
type Replica struct {
	Tenant  TenantID
	Index   int // 0-based replica index within the tenant
	Size    float64
	Clients int
}

// Server is one unit-capacity machine in a placement. Fields are managed by
// Placement; read-only for callers.
type Server struct {
	id       int
	level    float64
	replicas map[TenantID]Replica
	// shared[j] = total load of replicas on this server whose tenant also
	// has a replica on server j, i.e. |Si ∩ Sj|.
	shared map[int]float64
}

// ID returns the server's index within its placement.
func (s *Server) ID() int { return s.id }

// Level returns the total replica load currently hosted (|Si|).
func (s *Server) Level() float64 { return s.level }

// NumReplicas returns the number of replicas hosted.
func (s *Server) NumReplicas() int { return len(s.replicas) }

// Replicas returns a copy of the hosted replicas in tenant order.
func (s *Server) Replicas() []Replica {
	out := make([]Replica, 0, len(s.replicas))
	//cubefit:vet-allow maprange -- collects replicas only; sorted by tenant (unique per server) before returning
	for _, r := range s.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Hosts reports whether the server hosts a replica of tenant id.
func (s *Server) Hosts(id TenantID) bool {
	_, ok := s.replicas[id]
	return ok
}

// SharedWith returns |Si ∩ Sj| for this server Si and server j.
func (s *Server) SharedWith(j int) float64 { return s.shared[j] }

// TopShared returns the sum of the k largest shared loads with other
// servers: the worst-case extra load under any simultaneous failure of k
// other servers (the reserve this server must hold).
//
//cubefit:hotpath
func (s *Server) TopShared(k int) float64 {
	if k <= 0 || len(s.shared) == 0 {
		return 0
	}
	if k > len(s.shared) {
		// Clamp: failing more peers than exist adds nothing. The clamped k
		// then routes through one of the order-deterministic paths below —
		// summing the map directly would add floats in iteration order,
		// perturbing the last ulp from run to run and breaking the
		// byte-identical parity contract.
		k = len(s.shared)
	}
	if k <= topSharedFastK {
		// Single pass keeping the k largest values; γ−1 is 1 or 2 in the
		// paper's configurations, so this path dominates.
		var top [topSharedFastK]float64
		//cubefit:vet-allow maprange -- selects the k largest values; the selected multiset and its descending-order sum are iteration-order independent
		for _, v := range s.shared {
			for i := 0; i < k; i++ {
				if v > top[i] {
					copy(top[i+1:k], top[i:k-1])
					top[i] = v
					break
				}
			}
		}
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += top[i]
		}
		return sum
	}
	//cubefit:vet-allow hotpath -- k > topSharedFastK only when γ−1 > 4, outside every paper configuration; the fast path above is allocation-free
	vals := make([]float64, 0, len(s.shared))
	//cubefit:vet-allow maprange -- collects values only; sorted descending before the sum
	for _, v := range s.shared {
		vals = append(vals, v) //cubefit:vet-allow hotpath -- cold k > topSharedFastK path; vals has full capacity reserved above
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += vals[i]
	}
	return sum
}

// topSharedFastK is the largest k served by TopShared's allocation-free
// fast path.
const topSharedFastK = 4

// TopSharedSet returns the sum of the k largest shared loads together
// with the peer servers realizing it — the arg-max failure set of the
// robustness invariant: the (at most) k peers whose simultaneous failure
// redirects the most load onto this server. The set is deterministic:
// peers are ranked by decreasing shared load with ties broken by
// ascending server ID, and only peers actually sharing load appear
// (failing a non-sharing server adds nothing to the worst case).
func (s *Server) TopSharedSet(k int) (float64, []int) {
	if k <= 0 || len(s.shared) == 0 {
		return 0, nil
	}
	type peerShare struct {
		id int
		v  float64
	}
	peers := make([]peerShare, 0, len(s.shared))
	//cubefit:vet-allow maprange -- collects pairs only; sorted below under a strict total order (load desc, ID asc)
	for j, v := range s.shared {
		peers = append(peers, peerShare{id: j, v: v})
	}
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].v != peers[j].v { //cubefit:vet-allow floatcmp -- exact tie-break keeps the ranking a strict weak order
			return peers[i].v > peers[j].v
		}
		return peers[i].id < peers[j].id
	})
	if k > len(peers) {
		k = len(peers)
	}
	sum := 0.0
	set := make([]int, k)
	for i := 0; i < k; i++ {
		sum += peers[i].v
		set[i] = peers[i].id
	}
	return sum, set
}

// Free returns the spare capacity 1 − Level().
func (s *Server) Free() float64 { return 1 - s.level }

// Placement is a mutable assignment of tenant replicas to servers. It
// maintains pairwise shared loads incrementally so that robustness checks
// and m-fit tests are cheap. Placement is not safe for concurrent use.
type Placement struct {
	gamma   int
	servers []*Server
	// tenantHosts[t] = server IDs hosting each replica of t, indexed by
	// replica index; -1 for not-yet-placed replicas.
	tenantHosts map[TenantID][]int
	tenants     map[TenantID]Tenant
	// sharedHook, when non-nil, observes every pairwise shared-load
	// mutation (see SetSharedHook).
	sharedHook func(server, peer int, value float64)
}

// Errors returned by Placement mutations.
var (
	ErrNoServer        = errors.New("packing: no such server")
	ErrDuplicateTenant = errors.New("packing: tenant already placed on server")
	ErrOverflow        = errors.New("packing: server capacity exceeded")
	ErrUnknownTenant   = errors.New("packing: unknown tenant")
	ErrBadReplica      = errors.New("packing: invalid replica")
)

// NewPlacement creates an empty placement with the given replication
// factor γ ≥ 1.
func NewPlacement(gamma int) (*Placement, error) {
	if gamma < 1 {
		return nil, fmt.Errorf("packing: replication factor %d < 1", gamma)
	}
	return &Placement{
		gamma:       gamma,
		tenantHosts: make(map[TenantID][]int),
		tenants:     make(map[TenantID]Tenant),
	}, nil
}

// Gamma returns the replication factor.
func (p *Placement) Gamma() int { return p.gamma }

// SetSharedHook registers fn to run synchronously after every mutation of
// a pairwise shared load: fn(server, peer, value) reports that server's
// shared load with peer is now value, where value == 0 means the entry was
// removed (shared loads are strictly positive while present). Place fires
// it twice per affected pair (once per direction). The placement engines
// use it to maintain incremental top-k reserve digests; fn must not
// mutate the placement. A nil fn detaches the hook.
func (p *Placement) SetSharedHook(fn func(server, peer int, value float64)) { p.sharedHook = fn }

// NumServers returns the number of servers ever opened.
func (p *Placement) NumServers() int { return len(p.servers) }

// NumUsedServers returns the number of servers hosting at least one replica.
func (p *Placement) NumUsedServers() int {
	n := 0
	for _, s := range p.servers {
		if len(s.replicas) > 0 {
			n++
		}
	}
	return n
}

// NumTenants returns the number of tenants known to the placement.
func (p *Placement) NumTenants() int { return len(p.tenants) }

// Server returns the server with the given ID, or nil.
func (p *Placement) Server(id int) *Server {
	if id < 0 || id >= len(p.servers) {
		return nil
	}
	return p.servers[id]
}

// Servers returns the internal server slice; callers must not mutate it.
func (p *Placement) Servers() []*Server { return p.servers }

// Tenant returns the stored tenant and whether it exists.
func (p *Placement) Tenant(id TenantID) (Tenant, bool) {
	t, ok := p.tenants[id]
	return t, ok
}

// Tenants returns all tenants in ID order.
func (p *Placement) Tenants() []Tenant {
	out := make([]Tenant, 0, len(p.tenants))
	//cubefit:vet-allow maprange -- collects tenants only; sorted by unique ID before returning
	for _, t := range p.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TenantHosts returns the server IDs hosting tenant id's replicas by replica
// index (-1 where unplaced), or nil if the tenant is unknown. The returned
// slice is a copy; use TenantHostsInto or EachTenantHost on hot paths.
func (p *Placement) TenantHosts(id TenantID) []int {
	hosts, ok := p.tenantHosts[id]
	if !ok {
		return nil
	}
	out := make([]int, len(hosts))
	copy(out, hosts)
	return out
}

// TenantHostsInto is the allocation-free variant of TenantHosts: the host
// IDs are appended to buf[:0] (growing it only when its capacity is
// insufficient) and the filled slice is returned. It returns nil for an
// unknown tenant. The result aliases buf and is only valid until the next
// call with the same buffer or the next placement mutation.
//
//cubefit:hotpath
func (p *Placement) TenantHostsInto(id TenantID, buf []int) []int {
	hosts, ok := p.tenantHosts[id]
	if !ok {
		return nil
	}
	return append(buf[:0], hosts...)
}

// EachTenantHost calls fn for every replica of tenant id with the replica
// index and its hosting server (-1 where unplaced). It visits replicas in
// index order and allocates nothing. fn must not mutate the placement.
//
//cubefit:hotpath
func (p *Placement) EachTenantHost(id TenantID, fn func(idx, server int)) {
	for i, h := range p.tenantHosts[id] {
		fn(i, h)
	}
}

// OpenServer allocates a new empty server and returns its ID.
func (p *Placement) OpenServer() int {
	s := &Server{
		id:       len(p.servers),
		replicas: make(map[TenantID]Replica),
		shared:   make(map[int]float64),
	}
	p.servers = append(p.servers, s)
	return s.id
}

// AddTenant registers a tenant without placing any replicas. Registration is
// idempotent for identical tenants and fails on conflicting re-registration.
func (p *Placement) AddTenant(t Tenant) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if prev, ok := p.tenants[t.ID]; ok {
		if prev != t {
			return fmt.Errorf("packing: tenant %d re-registered with different attributes", t.ID)
		}
		return nil
	}
	p.tenants[t.ID] = t
	hosts := make([]int, p.gamma)
	for i := range hosts {
		hosts[i] = -1
	}
	p.tenantHosts[t.ID] = hosts
	return nil
}

// ReplicaSize returns the per-replica load of tenant t under this
// placement's replication factor.
func (p *Placement) ReplicaSize(t Tenant) float64 { return t.Load / float64(p.gamma) }

// Replicas builds the γ replicas of tenant t, distributing its clients
// round-robin across replica indices.
func (p *Placement) Replicas(t Tenant) []Replica {
	return p.ReplicasInto(t, make([]Replica, 0, p.gamma))
}

// ReplicasInto is the allocation-free variant of Replicas: the γ replicas
// are appended to buf[:0] and the filled slice is returned. The result
// aliases buf and is only valid until the next call with the same buffer.
//
//cubefit:hotpath
func (p *Placement) ReplicasInto(t Tenant, buf []Replica) []Replica {
	size := p.ReplicaSize(t)
	buf = buf[:0]
	for i := 0; i < p.gamma; i++ {
		buf = append(buf, Replica{
			Tenant: t.ID, Index: i, Size: size,
			Clients: ReplicaClients(t.Clients, p.gamma, i),
		})
	}
	return buf
}

// ReplicaClients returns the client count routed to replica index of a
// tenant with the given total clients under γ-replication: clients are
// distributed round-robin, so the first clients%gamma replicas carry one
// extra. Event-log replay uses it to reconstruct routing exactly.
func ReplicaClients(clients, gamma, index int) int {
	c := clients / gamma
	if index < clients%gamma {
		c++
	}
	return c
}

// Place puts replica r of a registered tenant onto server sid. It enforces
// that a server hosts at most one replica per tenant and that the server's
// direct load does not exceed unit capacity. It does NOT enforce the
// robustness reserve; that is the placing algorithm's job (checked by
// Validate).
func (p *Placement) Place(sid int, r Replica) error {
	s := p.Server(sid)
	if s == nil {
		return fmt.Errorf("%w: %d", ErrNoServer, sid)
	}
	hosts, ok := p.tenantHosts[r.Tenant]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTenant, r.Tenant)
	}
	if r.Index < 0 || r.Index >= p.gamma {
		return fmt.Errorf("%w: index %d with gamma %d", ErrBadReplica, r.Index, p.gamma)
	}
	if r.Size <= 0 {
		return fmt.Errorf("%w: size %v", ErrBadReplica, r.Size)
	}
	if hosts[r.Index] != -1 {
		return fmt.Errorf("%w: replica %d of tenant %d already on server %d",
			ErrBadReplica, r.Index, r.Tenant, hosts[r.Index])
	}
	if s.Hosts(r.Tenant) {
		return fmt.Errorf("%w: tenant %d on server %d", ErrDuplicateTenant, r.Tenant, sid)
	}
	if !WithinCapacity(s.level + r.Size) {
		return fmt.Errorf("%w: server %d level %v + %v", ErrOverflow, sid, s.level, r.Size)
	}

	s.replicas[r.Tenant] = r
	s.level += r.Size
	hosts[r.Index] = sid

	// Update pairwise shared loads with the tenant's other hosts.
	for i, other := range hosts {
		if i == r.Index || other == -1 {
			continue
		}
		o := p.servers[other]
		s.shared[other] += r.Size
		o.shared[sid] += o.replicas[r.Tenant].Size
		if p.sharedHook != nil {
			p.sharedHook(sid, other, s.shared[other])
			p.sharedHook(other, sid, o.shared[sid])
		}
	}
	return nil
}

// Unplace removes replica index idx of tenant id from its server. Used for
// first-stage rollback in CubeFit and for the tenant-departure extension.
func (p *Placement) Unplace(id TenantID, idx int) error {
	hosts, ok := p.tenantHosts[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTenant, id)
	}
	if idx < 0 || idx >= p.gamma || hosts[idx] == -1 {
		return fmt.Errorf("%w: replica %d of tenant %d not placed", ErrBadReplica, idx, id)
	}
	sid := hosts[idx]
	s := p.servers[sid]
	r := s.replicas[id]

	for i, other := range hosts {
		if i == idx || other == -1 {
			continue
		}
		o := p.servers[other]
		s.shared[other] -= r.Size
		if Negligible(s.shared[other]) {
			delete(s.shared, other)
		}
		o.shared[sid] -= o.replicas[id].Size
		if Negligible(o.shared[sid]) {
			delete(o.shared, sid)
		}
		if p.sharedHook != nil {
			p.sharedHook(sid, other, s.shared[other])
			p.sharedHook(other, sid, o.shared[sid])
		}
	}
	delete(s.replicas, id)
	s.level -= r.Size
	if s.level < 0 {
		s.level = 0
	}
	hosts[idx] = -1
	return nil
}

// RemoveTenant unplaces every replica of the tenant and forgets it
// (the dynamic-departure extension; see DESIGN.md §7).
func (p *Placement) RemoveTenant(id TenantID) error {
	hosts, ok := p.tenantHosts[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTenant, id)
	}
	for i, sid := range hosts {
		if sid == -1 {
			continue
		}
		if err := p.Unplace(id, i); err != nil {
			return err
		}
	}
	delete(p.tenantHosts, id)
	delete(p.tenants, id)
	return nil
}

// TotalLoad returns the sum of all placed replica loads.
func (p *Placement) TotalLoad() float64 {
	sum := 0.0
	for _, s := range p.servers {
		sum += s.level
	}
	return sum
}

// Utilization returns TotalLoad divided by the number of used servers
// (0 when no server is used).
func (p *Placement) Utilization() float64 {
	used := p.NumUsedServers()
	if used == 0 {
		return 0
	}
	return p.TotalLoad() / float64(used)
}
