package packing

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotRobust indicates a violated robustness constraint.
var ErrNotRobust = errors.New("packing: placement is not robust")

// ErrIncomplete indicates a tenant with unplaced replicas.
var ErrIncomplete = errors.New("packing: tenant has unplaced replicas")

// Validate checks the full correctness of the placement:
//
//  1. every registered tenant has all γ replicas placed, on γ distinct
//     servers;
//  2. no server's direct load exceeds 1;
//  3. the robustness invariant holds: for every server Si,
//     |Si| + (sum of the γ−1 largest |Si ∩ Sj|) ≤ 1.
//
// Condition 3 is equivalent to quantifying over all sets S* of at most γ−1
// other servers because the left side is maximized by the top γ−1 shared
// loads (see TestValidateMatchesExhaustive).
func (p *Placement) Validate() error {
	// Scan tenants in ID order so the first violation reported is a pure
	// function of the placement, not of map iteration order.
	ids := make([]TenantID, 0, len(p.tenantHosts))
	//cubefit:vet-allow maprange -- collects keys only; sorted before the scan
	for id := range p.tenantHosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		hosts := p.tenantHosts[id]
		seen := make(map[int]bool, len(hosts))
		for idx, sid := range hosts {
			if sid == -1 {
				return fmt.Errorf("%w: tenant %d replica %d", ErrIncomplete, id, idx)
			}
			if seen[sid] {
				return fmt.Errorf("%w: tenant %d twice on server %d", ErrDuplicateTenant, id, sid)
			}
			seen[sid] = true
		}
	}
	return p.ValidateRobustness()
}

// ValidateRobustness checks conditions 2 and 3 of Validate without
// requiring all replicas to be placed (useful mid-stream).
func (p *Placement) ValidateRobustness() error {
	for _, s := range p.servers {
		if !WithinCapacity(s.level) {
			return fmt.Errorf("%w: server %d level %v > 1", ErrOverflow, s.id, s.level)
		}
		reserve := s.TopShared(p.gamma - 1)
		if !WithinCapacity(s.level + reserve) {
			return fmt.Errorf("%w: server %d level %v + worst-case redirected %v > 1",
				ErrNotRobust, s.id, s.level, reserve)
		}
	}
	return nil
}

// ValidateExhaustive checks the robustness invariant by enumerating every
// set S* of exactly γ−1 other servers for every server. It is exponential
// in γ−1 and meant for cross-checking the incremental validator in tests on
// small placements.
func (p *Placement) ValidateExhaustive() error {
	k := p.gamma - 1
	n := len(p.servers)
	for _, s := range p.servers {
		if !WithinCapacity(s.level) {
			return fmt.Errorf("%w: server %d level %v > 1", ErrOverflow, s.id, s.level)
		}
		others := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != s.id {
				others = append(others, j)
			}
		}
		if err := p.checkSubsets(s, others, k); err != nil {
			return err
		}
	}
	return nil
}

func (p *Placement) checkSubsets(s *Server, others []int, k int) error {
	if k > len(others) {
		k = len(others)
	}
	idx := make([]int, k)
	var rec func(start, depth int, extra float64) error
	rec = func(start, depth int, extra float64) error {
		if !WithinCapacity(s.level + extra) {
			chosen := make([]int, depth)
			for i := 0; i < depth; i++ {
				chosen[i] = others[idx[i]]
			}
			return fmt.Errorf("%w: server %d overloads to %v if servers %v fail",
				ErrNotRobust, s.id, s.level+extra, chosen)
		}
		if depth == k {
			return nil
		}
		for i := start; i < len(others); i++ {
			idx[depth] = i
			if err := rec(i+1, depth+1, extra+s.shared[others[i]]); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0, 0)
}

// FailureImpact returns, for each server, the worst-case extra load
// redirected to it if all servers in failed go down simultaneously
// (Σ_{Sj ∈ failed} |Si ∩ Sj| for surviving Si; 0 for failed servers).
func (p *Placement) FailureImpact(failed []int) map[int]float64 {
	// Dedupe the failed set preserving the caller's order: the per-server
	// sum below adds floats in that order, keeping the result a pure
	// function of the arguments (summing s.shared in map iteration order
	// would perturb the last ulp from run to run).
	down := make(map[int]bool, len(failed))
	uniq := make([]int, 0, len(failed))
	for _, f := range failed {
		if !down[f] {
			down[f] = true
			uniq = append(uniq, f)
		}
	}
	impact := make(map[int]float64, len(p.servers))
	for _, s := range p.servers {
		if down[s.id] {
			continue
		}
		extra := 0.0
		for _, j := range uniq {
			extra += s.shared[j]
		}
		impact[s.id] = extra
	}
	return impact
}

// MaxPostFailureLoad returns the maximum over surviving servers of
// level + redirected load when the given servers fail.
func (p *Placement) MaxPostFailureLoad(failed []int) float64 {
	impact := p.FailureImpact(failed)
	maxLoad := 0.0
	//cubefit:vet-allow maprange -- max selection yields the same value in any iteration order
	for id, extra := range impact {
		if l := p.servers[id].level + extra; l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}
