package packing

import "math"

// This file is the single home of the repository's floating-point
// tolerances. Every capacity, robustness, and shared-load comparison in the
// code base must go through these constants or the helpers below; the
// `epsconst` and `floatcmp` analyzers in internal/analysis enforce that no
// other package (re-)introduces bare tolerance literals or raw comparisons
// against the unit capacity.
const (
	// CapacityEps absorbs accumulated floating-point error in server level
	// sums. It is shared by the unit-capacity check in Place, the
	// robustness validators, and every algorithm's m-fit/feasibility tests,
	// so that "fits" means the same thing on both sides of the
	// |Si| + Σ|Si∩Sj| ≤ 1 invariant.
	CapacityEps = 1e-9
	// SharedEps is the bookkeeping tolerance for pairwise shared loads:
	// residuals at or below it are treated as rounding noise and dropped
	// from the shared-load maps when replicas are unplaced.
	SharedEps = 1e-12
)

// WithinCapacity reports whether a total load fits a unit-capacity server,
// absorbing up to CapacityEps of accumulated rounding error. It is the
// blessed form of the raw comparison `load <= 1`.
func WithinCapacity(load float64) bool { return load <= 1+CapacityEps }

// FitsWithin reports whether load fits the given capacity budget within
// CapacityEps (the generalization of WithinCapacity to budgets other than
// the unit capacity, e.g. slot sizes or RFI's μ threshold).
func FitsWithin(load, budget float64) bool { return load <= budget+CapacityEps }

// AlmostEqual reports whether two load values are equal within CapacityEps.
func AlmostEqual(a, b float64) bool { return AlmostEqualTol(a, b, CapacityEps) }

// AlmostEqualTol reports whether two values are equal within the given
// non-negative tolerance.
func AlmostEqualTol(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Negligible reports whether a residual shared-load value is floating-point
// noise (at most SharedEps) rather than real load.
func Negligible(x float64) bool { return x <= SharedEps }
