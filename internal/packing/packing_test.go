package packing

import (
	"errors"
	"testing"

	"cubefit/internal/rng"
)

func mustPlacement(t *testing.T, gamma int) *Placement {
	t.Helper()
	p, err := NewPlacement(gamma)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// addAndPlace registers a tenant and places its replicas on the given
// servers (one per replica index).
func addAndPlace(t *testing.T, p *Placement, tn Tenant, servers ...int) {
	t.Helper()
	if err := p.AddTenant(tn); err != nil {
		t.Fatalf("AddTenant(%v): %v", tn, err)
	}
	reps := p.Replicas(tn)
	if len(servers) != len(reps) {
		t.Fatalf("tenant %d: %d servers for %d replicas", tn.ID, len(servers), len(reps))
	}
	for i, sid := range servers {
		if err := p.Place(sid, reps[i]); err != nil {
			t.Fatalf("Place tenant %d replica %d on %d: %v", tn.ID, i, sid, err)
		}
	}
}

func TestTenantValidate(t *testing.T) {
	tests := []struct {
		name   string
		give   Tenant
		wantOK bool
	}{
		{name: "ok", give: Tenant{ID: 1, Load: 0.5}, wantOK: true},
		{name: "full load", give: Tenant{ID: 1, Load: 1}, wantOK: true},
		{name: "zero load", give: Tenant{ID: 1, Load: 0}},
		{name: "negative load", give: Tenant{ID: 1, Load: -0.1}},
		{name: "overload", give: Tenant{ID: 1, Load: 1.01}},
		{name: "negative clients", give: Tenant{ID: 1, Load: 0.5, Clients: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err == nil) != tt.wantOK {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.give, err, tt.wantOK)
			}
		})
	}
}

func TestNewPlacementRejectsBadGamma(t *testing.T) {
	if _, err := NewPlacement(0); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	if _, err := NewPlacement(-2); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestReplicasSplitLoadAndClients(t *testing.T) {
	p := mustPlacement(t, 3)
	reps := p.Replicas(Tenant{ID: 7, Load: 0.6, Clients: 8})
	if len(reps) != 3 {
		t.Fatalf("got %d replicas", len(reps))
	}
	totalClients := 0
	for i, r := range reps {
		if !AlmostEqualTol(r.Size, 0.2, SharedEps) {
			t.Fatalf("replica %d size %v, want 0.2", i, r.Size)
		}
		if r.Tenant != 7 || r.Index != i {
			t.Fatalf("replica %d mislabelled: %+v", i, r)
		}
		totalClients += r.Clients
	}
	if totalClients != 8 {
		t.Fatalf("clients split to %d, want 8", totalClients)
	}
	// Round-robin: 8 = 3+3+2, earliest replicas get the extras.
	if reps[0].Clients != 3 || reps[1].Clients != 3 || reps[2].Clients != 2 {
		t.Fatalf("client split = %d,%d,%d", reps[0].Clients, reps[1].Clients, reps[2].Clients)
	}
}

func TestPlaceBasics(t *testing.T) {
	p := mustPlacement(t, 2)
	s1 := p.OpenServer()
	s2 := p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, s1, s2)

	if p.NumServers() != 2 || p.NumUsedServers() != 2 || p.NumTenants() != 1 {
		t.Fatalf("counts wrong: %d servers, %d used, %d tenants",
			p.NumServers(), p.NumUsedServers(), p.NumTenants())
	}
	if got := p.Server(s1).Level(); !AlmostEqualTol(got, 0.3, SharedEps) {
		t.Fatalf("level = %v, want 0.3", got)
	}
	if !p.Server(s1).Hosts(1) || !p.Server(s2).Hosts(1) {
		t.Fatal("servers do not host tenant 1")
	}
	hosts := p.TenantHosts(1)
	if len(hosts) != 2 || hosts[0] != s1 || hosts[1] != s2 {
		t.Fatalf("hosts = %v", hosts)
	}
	if !AlmostEqualTol(p.TotalLoad(), 0.6, SharedEps) {
		t.Fatalf("total load = %v", p.TotalLoad())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
}

func TestPlaceErrors(t *testing.T) {
	p := mustPlacement(t, 2)
	s1 := p.OpenServer()
	tn := Tenant{ID: 1, Load: 0.5}
	if err := p.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	reps := p.Replicas(tn)

	if err := p.Place(99, reps[0]); !errors.Is(err, ErrNoServer) {
		t.Fatalf("missing server error = %v", err)
	}
	if err := p.Place(s1, Replica{Tenant: 42, Index: 0, Size: 0.1}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v", err)
	}
	if err := p.Place(s1, Replica{Tenant: 1, Index: 5, Size: 0.1}); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("bad index error = %v", err)
	}
	if err := p.Place(s1, Replica{Tenant: 1, Index: 0, Size: 0}); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("zero size error = %v", err)
	}
	if err := p.Place(s1, reps[0]); err != nil {
		t.Fatal(err)
	}
	// Same replica again.
	if err := p.Place(s1, reps[0]); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("double place error = %v", err)
	}
	// Other replica of the same tenant on the same server.
	if err := p.Place(s1, reps[1]); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("same-server replica error = %v", err)
	}
}

func TestPlaceOverflow(t *testing.T) {
	p := mustPlacement(t, 1)
	s := p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.8}, s)
	tn := Tenant{ID: 2, Load: 0.3}
	if err := p.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(s, p.Replicas(tn)[0]); !errors.Is(err, ErrOverflow) {
		t.Fatalf("overflow error = %v", err)
	}
}

func TestAddTenantIdempotentAndConflict(t *testing.T) {
	p := mustPlacement(t, 2)
	tn := Tenant{ID: 1, Load: 0.5}
	if err := p.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTenant(tn); err != nil {
		t.Fatalf("idempotent re-add failed: %v", err)
	}
	if err := p.AddTenant(Tenant{ID: 1, Load: 0.6}); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
}

func TestSharedLoadsMaintained(t *testing.T) {
	p := mustPlacement(t, 2)
	s1, s2, s3 := p.OpenServer(), p.OpenServer(), p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, s1, s2) // replicas 0.3
	addAndPlace(t, p, Tenant{ID: 2, Load: 0.4}, s1, s2) // replicas 0.2
	addAndPlace(t, p, Tenant{ID: 3, Load: 0.2}, s2, s3) // replicas 0.1

	if got := p.Server(s1).SharedWith(s2); !AlmostEqualTol(got, 0.5, SharedEps) {
		t.Fatalf("shared(s1,s2) = %v, want 0.5", got)
	}
	if got := p.Server(s2).SharedWith(s1); !AlmostEqualTol(got, 0.5, SharedEps) {
		t.Fatalf("shared(s2,s1) = %v, want 0.5", got)
	}
	if got := p.Server(s2).SharedWith(s3); !AlmostEqualTol(got, 0.1, SharedEps) {
		t.Fatalf("shared(s2,s3) = %v, want 0.1", got)
	}
	if got := p.Server(s1).SharedWith(s3); got != 0 {
		t.Fatalf("shared(s1,s3) = %v, want 0", got)
	}
	// Reserve for one failure on s2 is the largest shared value: 0.5.
	if got := p.Server(s2).TopShared(1); !AlmostEqualTol(got, 0.5, SharedEps) {
		t.Fatalf("TopShared(1) = %v, want 0.5", got)
	}
	if got := p.Server(s2).TopShared(2); !AlmostEqualTol(got, 0.6, SharedEps) {
		t.Fatalf("TopShared(2) = %v, want 0.6", got)
	}
	if got := p.Server(s2).TopShared(0); got != 0 {
		t.Fatalf("TopShared(0) = %v", got)
	}
}

func TestValidateRobustnessViolation(t *testing.T) {
	p := mustPlacement(t, 2)
	s1, s2 := p.OpenServer(), p.OpenServer()
	// Two tenants of load 1.0 fully shared across two servers: each server
	// has level 1.0 and would take 1.0 extra if the other fails.
	addAndPlace(t, p, Tenant{ID: 1, Load: 1}, s1, s2)
	addAndPlace(t, p, Tenant{ID: 2, Load: 1}, s1, s2)
	if err := p.Validate(); !errors.Is(err, ErrNotRobust) {
		t.Fatalf("expected ErrNotRobust, got %v", err)
	}
	if err := p.ValidateExhaustive(); !errors.Is(err, ErrNotRobust) {
		t.Fatalf("exhaustive expected ErrNotRobust, got %v", err)
	}
}

func TestValidateIncomplete(t *testing.T) {
	p := mustPlacement(t, 2)
	s1 := p.OpenServer()
	tn := Tenant{ID: 1, Load: 0.5}
	if err := p.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(s1, p.Replicas(tn)[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("expected ErrIncomplete, got %v", err)
	}
}

func TestUnplaceRestoresState(t *testing.T) {
	p := mustPlacement(t, 2)
	s1, s2, s3 := p.OpenServer(), p.OpenServer(), p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, s1, s2)
	addAndPlace(t, p, Tenant{ID: 2, Load: 0.4}, s2, s3)

	if err := p.Unplace(1, 1); err != nil {
		t.Fatal(err)
	}
	if p.Server(s2).Hosts(1) {
		t.Fatal("server still hosts unplaced replica")
	}
	if got := p.Server(s1).SharedWith(s2); got != 0 {
		t.Fatalf("shared(s1,s2) after unplace = %v", got)
	}
	if got := p.Server(s2).SharedWith(s3); !AlmostEqualTol(got, 0.2, SharedEps) {
		t.Fatalf("unrelated shared load disturbed: %v", got)
	}
	if hosts := p.TenantHosts(1); hosts[1] != -1 || hosts[0] != s1 {
		t.Fatalf("hosts after unplace = %v", hosts)
	}
	// Re-place somewhere else.
	if err := p.Place(s3, Replica{Tenant: 1, Index: 1, Size: 0.3}); err != nil {
		t.Fatalf("re-place failed: %v", err)
	}
	if got := p.Server(s3).SharedWith(s1); !AlmostEqualTol(got, 0.3, SharedEps) {
		t.Fatalf("shared(s3,s1) = %v, want 0.3", got)
	}
}

func TestUnplaceErrors(t *testing.T) {
	p := mustPlacement(t, 2)
	if err := p.Unplace(9, 0); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant unplace error = %v", err)
	}
	if err := p.AddTenant(Tenant{ID: 1, Load: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := p.Unplace(1, 0); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("unplaced replica unplace error = %v", err)
	}
}

func TestRemoveTenant(t *testing.T) {
	p := mustPlacement(t, 2)
	s1, s2 := p.OpenServer(), p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, s1, s2)
	addAndPlace(t, p, Tenant{ID: 2, Load: 0.2}, s1, s2)
	if err := p.RemoveTenant(1); err != nil {
		t.Fatal(err)
	}
	if p.NumTenants() != 1 {
		t.Fatalf("tenants = %d, want 1", p.NumTenants())
	}
	if !AlmostEqualTol(p.TotalLoad(), 0.2, SharedEps) {
		t.Fatalf("total load = %v, want 0.2", p.TotalLoad())
	}
	if got := p.Server(s1).SharedWith(s2); !AlmostEqualTol(got, 0.1, SharedEps) {
		t.Fatalf("shared after removal = %v, want 0.1", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("placement invalid after removal: %v", err)
	}
	if err := p.RemoveTenant(1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("double removal error = %v", err)
	}
}

func TestFailureImpact(t *testing.T) {
	p := mustPlacement(t, 3)
	ids := make([]int, 4)
	for i := range ids {
		ids[i] = p.OpenServer()
	}
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, ids[0], ids[1], ids[2]) // 0.2 each
	addAndPlace(t, p, Tenant{ID: 2, Load: 0.3}, ids[1], ids[2], ids[3]) // 0.1 each

	impact := p.FailureImpact([]int{ids[0], ids[1]})
	if len(impact) != 2 {
		t.Fatalf("impact map size %d, want 2 survivors", len(impact))
	}
	// Server 2 shares tenant 1 with both failed servers (0.2 each) and
	// tenant 2 with failed server 1 (0.1).
	if got := impact[ids[2]]; !AlmostEqualTol(got, 0.5, SharedEps) {
		t.Fatalf("impact on server 2 = %v, want 0.5", got)
	}
	if got := impact[ids[3]]; !AlmostEqualTol(got, 0.1, SharedEps) {
		t.Fatalf("impact on server 3 = %v, want 0.1", got)
	}
	want := p.Server(ids[2]).Level() + 0.5
	if got := p.MaxPostFailureLoad([]int{ids[0], ids[1]}); !AlmostEqualTol(got, want, SharedEps) {
		t.Fatalf("MaxPostFailureLoad = %v, want %v", got, want)
	}
}

// TestValidateMatchesExhaustive cross-checks the incremental top-(γ−1)
// validator against full subset enumeration on random placements.
func TestValidateMatchesExhaustive(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 200; trial++ {
		gamma := r.IntRange(2, 4)
		p := mustPlacement(t, gamma)
		nServers := r.IntRange(gamma, 8)
		for i := 0; i < nServers; i++ {
			p.OpenServer()
		}
		nTenants := r.IntRange(1, 12)
		for id := 0; id < nTenants; id++ {
			tn := Tenant{ID: TenantID(id), Load: 0.05 + 0.95*r.Float64()}
			if err := p.AddTenant(tn); err != nil {
				t.Fatal(err)
			}
			perm := r.Perm(nServers)
			for j, rep := range p.Replicas(tn) {
				// Ignore overflow errors: we want a mix of valid and
				// invalid placements, but Place enforces capacity.
				_ = p.Place(perm[j], rep)
			}
		}
		fast := p.ValidateRobustness()
		slow := p.ValidateExhaustive()
		if (fast == nil) != (slow == nil) {
			t.Fatalf("trial %d (gamma=%d): fast=%v slow=%v", trial, gamma, fast, slow)
		}
	}
}

func TestUtilization(t *testing.T) {
	p := mustPlacement(t, 2)
	if p.Utilization() != 0 {
		t.Fatal("empty utilization not 0")
	}
	s1, s2 := p.OpenServer(), p.OpenServer()
	p.OpenServer() // opened but unused
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.8}, s1, s2)
	if got := p.Utilization(); !AlmostEqualTol(got, 0.4, SharedEps) {
		t.Fatalf("utilization = %v, want 0.4", got)
	}
	if p.NumUsedServers() != 2 {
		t.Fatalf("used servers = %d, want 2", p.NumUsedServers())
	}
}

func TestServerReplicasSorted(t *testing.T) {
	p := mustPlacement(t, 1)
	s := p.OpenServer()
	for _, id := range []TenantID{5, 1, 3} {
		addAndPlace(t, p, Tenant{ID: id, Load: 0.1}, s)
	}
	reps := p.Server(s).Replicas()
	if len(reps) != 3 || reps[0].Tenant != 1 || reps[1].Tenant != 3 || reps[2].Tenant != 5 {
		t.Fatalf("replicas not sorted: %+v", reps)
	}
}

func TestTenantsSorted(t *testing.T) {
	p := mustPlacement(t, 1)
	for _, id := range []TenantID{5, 1, 3} {
		if err := p.AddTenant(Tenant{ID: id, Load: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	ts := p.Tenants()
	if len(ts) != 3 || ts[0].ID != 1 || ts[1].ID != 3 || ts[2].ID != 5 {
		t.Fatalf("tenants not sorted: %+v", ts)
	}
}

func TestTenantHostsUnknown(t *testing.T) {
	p := mustPlacement(t, 2)
	if hosts := p.TenantHosts(42); hosts != nil {
		t.Fatalf("unknown tenant hosts = %v, want nil", hosts)
	}
}

// naiveTopK recomputes TopShared by full sort for cross-checking.
func naiveTopK(s *Server, k int) float64 {
	var vals []float64
	s.EachShared(func(_ int, v float64) { vals = append(vals, v) })
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[j] > vals[i] {
				vals[i], vals[j] = vals[j], vals[i]
			}
		}
	}
	sum := 0.0
	for i := 0; i < k && i < len(vals); i++ {
		sum += vals[i]
	}
	return sum
}

func TestTopSharedMatchesNaive(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 100; trial++ {
		gamma := r.IntRange(2, 5)
		p := mustPlacement(t, gamma)
		n := r.IntRange(gamma, 10)
		for i := 0; i < n; i++ {
			p.OpenServer()
		}
		for id := 0; id < r.IntRange(1, 20); id++ {
			tn := Tenant{ID: TenantID(id), Load: 0.01 + 0.3*r.Float64()}
			if err := p.AddTenant(tn); err != nil {
				t.Fatal(err)
			}
			perm := r.Perm(n)
			for j, rep := range p.Replicas(tn) {
				_ = p.Place(perm[j], rep)
			}
		}
		for _, s := range p.Servers() {
			for k := 0; k <= 6; k++ {
				if got, want := s.TopShared(k), naiveTopK(s, k); !AlmostEqual(got, want) {
					t.Fatalf("TopShared(%d) on server %d = %v, want %v", k, s.ID(), got, want)
				}
			}
		}
	}
}

func TestPlaceAll(t *testing.T) {
	// A trivial algorithm placing every replica on its own server.
	p := mustPlacement(t, 2)
	a := &oneServerPerReplica{p: p}
	tenants := []Tenant{{ID: 1, Load: 0.4}, {ID: 2, Load: 0.6}}
	if err := PlaceAll(a, tenants); err != nil {
		t.Fatal(err)
	}
	if p.NumUsedServers() != 4 {
		t.Fatalf("used servers = %d, want 4", p.NumUsedServers())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Invalid tenant stops the stream.
	if err := PlaceAll(a, []Tenant{{ID: 3, Load: -1}}); err == nil {
		t.Fatal("invalid tenant accepted")
	}
}

type oneServerPerReplica struct{ p *Placement }

func (a *oneServerPerReplica) Name() string          { return "one-server-per-replica" }
func (a *oneServerPerReplica) Placement() *Placement { return a.p }

func (a *oneServerPerReplica) Place(t Tenant) error {
	if err := a.p.AddTenant(t); err != nil {
		return err
	}
	for _, r := range a.p.Replicas(t) {
		if err := a.p.Place(a.p.OpenServer(), r); err != nil {
			return err
		}
	}
	return nil
}

func TestAccessors(t *testing.T) {
	p := mustPlacement(t, 2)
	if p.Gamma() != 2 {
		t.Fatalf("Gamma = %d", p.Gamma())
	}
	s1, s2 := p.OpenServer(), p.OpenServer()
	addAndPlace(t, p, Tenant{ID: 1, Load: 0.6}, s1, s2)
	srv := p.Server(s1)
	if srv.ID() != s1 {
		t.Fatalf("ID = %d", srv.ID())
	}
	if srv.NumReplicas() != 1 {
		t.Fatalf("NumReplicas = %d", srv.NumReplicas())
	}
	if got := srv.Free(); !AlmostEqualTol(got, 0.7, SharedEps) {
		t.Fatalf("Free = %v", got)
	}
	if srv.NumShared() != 1 {
		t.Fatalf("NumShared = %d", srv.NumShared())
	}
	tn, ok := p.Tenant(1)
	if !ok || tn.Load != 0.6 {
		t.Fatalf("Tenant lookup = %+v, %v", tn, ok)
	}
	if _, ok := p.Tenant(99); ok {
		t.Fatal("phantom tenant found")
	}
}

// TestSharedLoadsMatchRecomputation interleaves random placements and
// removals, then cross-checks the incrementally maintained pairwise shared
// loads against a from-scratch recomputation over the replica lists.
func TestSharedLoadsMatchRecomputation(t *testing.T) {
	r := rng.New(987)
	for trial := 0; trial < 30; trial++ {
		gamma := r.IntRange(2, 4)
		p := mustPlacement(t, gamma)
		n := r.IntRange(gamma, 9)
		for i := 0; i < n; i++ {
			p.OpenServer()
		}
		var live []TenantID
		nextID := TenantID(0)
		for step := 0; step < 120; step++ {
			if len(live) > 0 && r.Float64() < 0.35 {
				i := r.Intn(len(live))
				if err := p.RemoveTenant(live[i]); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			tn := Tenant{ID: nextID, Load: 0.02 + 0.3*r.Float64()}
			nextID++
			if err := p.AddTenant(tn); err != nil {
				t.Fatal(err)
			}
			perm := r.Perm(n)
			ok := true
			for j, rep := range p.Replicas(tn) {
				if err := p.Place(perm[j], rep); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				// Roll the partial tenant back entirely.
				if err := p.RemoveTenant(tn.ID); err != nil {
					t.Fatal(err)
				}
				continue
			}
			live = append(live, tn.ID)
		}
		// Recompute every pairwise shared load from the replica lists.
		for _, si := range p.Servers() {
			for _, sj := range p.Servers() {
				if si.ID() == sj.ID() {
					continue
				}
				want := 0.0
				for _, rep := range si.Replicas() {
					if sj.Hosts(rep.Tenant) {
						want += rep.Size
					}
				}
				if got := si.SharedWith(sj.ID()); !AlmostEqual(got, want) {
					t.Fatalf("trial %d: shared(%d,%d) = %v, recomputed %v",
						trial, si.ID(), sj.ID(), got, want)
				}
			}
		}
		// Levels must also match replica sums.
		for _, s := range p.Servers() {
			want := 0.0
			for _, rep := range s.Replicas() {
				want += rep.Size
			}
			if !AlmostEqual(s.Level(), want) {
				t.Fatalf("trial %d: level(%d) = %v, recomputed %v", trial, s.ID(), s.Level(), want)
			}
		}
	}
}
