// Package costs implements the paper's Table I dollar model: the yearly
// cost of continuously operating server instances, priced per Amazon EC2
// c4.4xlarge hour as of the paper's evaluation.
package costs

import (
	"errors"
	"fmt"
)

// DefaultPricePerHour is the paper's c4.4xlarge on-demand price ($/hour).
const DefaultPricePerHour = 0.822

// HoursPerYear is the continuous-operation year of Table I.
const HoursPerYear = 24 * 365

// Model prices continuously operated servers.
type Model struct {
	// PricePerHour is the per-server hourly cost; zero means
	// DefaultPricePerHour.
	PricePerHour float64
}

// DefaultModel returns the paper's pricing.
func DefaultModel() Model { return Model{PricePerHour: DefaultPricePerHour} }

func (m Model) withDefaults() Model {
	if m.PricePerHour == 0 {
		m.PricePerHour = DefaultPricePerHour
	}
	return m
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.withDefaults().PricePerHour < 0 {
		return errors.New("costs: negative price")
	}
	return nil
}

// Yearly returns the cost of running the given number of servers for one
// year of continuous operation.
func (m Model) Yearly(servers int) (float64, error) {
	m = m.withDefaults()
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if servers < 0 {
		return 0, fmt.Errorf("costs: negative server count %d", servers)
	}
	return float64(servers) * m.PricePerHour * HoursPerYear, nil
}

// Savings compares two server counts (baseline vs. improved) and returns
// the yearly dollar savings, as in Table I where the baseline is RFI and
// the improved count is CubeFit's.
func (m Model) Savings(baselineServers, improvedServers int) (float64, error) {
	if improvedServers > baselineServers {
		return 0, fmt.Errorf("costs: improved count %d exceeds baseline %d",
			improvedServers, baselineServers)
	}
	return m.Yearly(baselineServers - improvedServers)
}
