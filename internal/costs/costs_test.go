package costs

import (
	"math"
	"testing"
)

func TestYearly(t *testing.T) {
	m := DefaultModel()
	got, err := m.Yearly(1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.822 * 8760
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Yearly(1) = %v, want %v", got, want)
	}
}

// TestTableIUniform reproduces the paper's Table I arithmetic: 2,506
// servers saved at $0.822/hour yields $18,045,004 per year (the paper's
// printed figure, ±rounding).
func TestTableIUniform(t *testing.T) {
	m := DefaultModel()
	got, err := m.Savings(10951, 10951-2506)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-18045004) > 1 {
		t.Fatalf("uniform Table I savings = %v, paper prints 18,045,004", got)
	}
}

// TestTableIZipfian: 496 servers saved yields $3,571,557 per year.
func TestTableIZipfian(t *testing.T) {
	m := DefaultModel()
	got, err := m.Savings(2218, 2218-496)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3571557) > 1 {
		t.Fatalf("zipfian Table I savings = %v, paper prints 3,571,557", got)
	}
}

func TestZeroValueUsesDefaultPrice(t *testing.T) {
	var m Model
	got, err := m.Yearly(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2*0.822*8760) > 1e-9 {
		t.Fatalf("zero-value model Yearly(2) = %v", got)
	}
}

func TestErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.Yearly(-1); err == nil {
		t.Fatal("negative servers accepted")
	}
	if _, err := m.Savings(5, 6); err == nil {
		t.Fatal("negative savings accepted")
	}
	bad := Model{PricePerHour: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative price accepted")
	}
	if _, err := bad.Yearly(1); err == nil {
		t.Fatal("negative price Yearly accepted")
	}
}

func TestSavingsZero(t *testing.T) {
	m := DefaultModel()
	got, err := m.Savings(100, 100)
	if err != nil || got != 0 {
		t.Fatalf("Savings(100,100) = %v, %v", got, err)
	}
}
