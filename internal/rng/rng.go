// Package rng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256**) for reproducible simulation experiments.
//
// math/rand is deliberately avoided so that experiment results are stable
// across Go releases: the stream produced for a given seed is fixed by this
// package alone. The generator is not safe for concurrent use; create one
// RNG per goroutine (see Split).
package rng

import "math"

// RNG is a xoshiro256** generator seeded via splitmix64.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator whose stream is independent of the
// receiver's. It consumes one value from the receiver.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling, simplified: the modulo
	// bias for n << 2^64 is far below anything observable in our experiments,
	// but we reject to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// ExpFloat64 returns an exponentially distributed value with the given mean.
func (r *RNG) ExpFloat64(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// NormFloat64 returns a normally distributed value with mean mu and standard
// deviation sigma, using the Box-Muller transform.
func (r *RNG) NormFloat64(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormFloat64 returns a log-normally distributed value whose underlying
// normal has mean mu and standard deviation sigma.
func (r *RNG) LogNormFloat64(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64(mu, sigma))
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 {
	return (x << k) | (x >> (64 - k))
}
