package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced duplicates: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 15)
		if v < 5 || v > 15 {
			t.Fatalf("IntRange out of [5,15]: %d", v)
		}
	}
	// Degenerate range.
	if v := r.IntRange(3, 3); v != 3 {
		t.Fatalf("IntRange(3,3) = %d", v)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5,4) did not panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(2.5)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exponential mean %v too far from 2.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean %v too far from 3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance %v too far from 4", variance)
	}
}

func TestLogNormPositive(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormFloat64(0, 1); v <= 0 {
			t.Fatalf("lognormal sample not positive: %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child stream should not equal a freshly advanced parent stream.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("split stream collided with parent %d/100 times", equal)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
