package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
)

func TestMonitorScrapeDerivedSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.NewCounter("reqs_total", "requests")
	g := reg.NewFGauge("slack_gauge", "slack")
	hv := reg.NewHistogramVec("lat_seconds", "latency", []string{"route"}, 0.01, 0.1, 1)
	h := hv.With("place")

	cfg := testConfig()
	cfg.Burn.Targets = []string{`lat_seconds{route="place"}`}
	fake := clock.NewFake(time.Unix(0, 0))
	m := New(reg, cfg, fake)

	c.Add(10)
	g.Set(0.5)
	h.Observe(0.05)
	h.Observe(0.05)
	fake.Advance(time.Second)
	m.Tick()
	c.Add(30)
	h.Observe(0.5)
	h.Observe(0.05)
	fake.Advance(time.Second)
	m.Tick()

	get := func(series string) []Point {
		t.Helper()
		pts, ok := m.Timeline(series, 0)
		if !ok {
			t.Fatalf("series %s missing; have %v", series, m.SeriesKeys())
		}
		return pts
	}
	if pts := get("reqs_total"); len(pts) != 2 || pts[1].Value != 40 {
		t.Fatalf("counter points = %+v", pts)
	}
	// Rate derives from the previous tick: 30 more in 1s.
	if pts := get("reqs_total:rate"); len(pts) != 1 || pts[0].Value != 30 {
		t.Fatalf("rate points = %+v", pts)
	}
	if pts := get("slack_gauge"); pts[len(pts)-1].Value != 0.5 {
		t.Fatalf("gauge points = %+v", pts)
	}
	key := `lat_seconds{route="place"}`
	if pts := get(key + ":count"); pts[len(pts)-1].Value != 4 {
		t.Fatalf("hist count points = %+v", pts)
	}
	// Tick 2's delta is {0.05, 0.5}: P99 interpolates inside the (0.1,1]
	// bucket, so it must exceed 0.1; tick 1's delta was all ≤0.1.
	p99 := get(key + ":p99")
	if len(p99) != 2 || p99[0].Value > 0.1 || p99[1].Value <= 0.1 {
		t.Fatalf("hist p99 points = %+v", p99)
	}
	// Burn target derives :good at the 100ms objective: 3 of 4
	// observations landed in buckets bounded ≤ 0.1.
	good := get(key + ":good")
	if good[len(good)-1].Value != 3 {
		t.Fatalf("good points = %+v", good)
	}
	if _, ok := m.Timeline("never-seen", 0); ok {
		t.Fatal("unknown series reported ok")
	}
}

func TestMonitorTimelineWindow(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.NewGauge("g", "gauge")
	fake := clock.NewFake(time.Unix(0, 0))
	m := New(reg, testConfig(), fake)
	for i := 1; i <= 10; i++ {
		g.Set(int64(i))
		fake.Advance(time.Second)
		m.Tick()
	}
	pts, ok := m.Timeline("g", 3*time.Second)
	if !ok || len(pts) != 4 { // samples at t-3s, t-2s, t-1s, t
		t.Fatalf("windowed points = %+v (ok=%v)", pts, ok)
	}
	if pts[len(pts)-1].Value != 10 {
		t.Fatalf("latest point = %+v", pts[len(pts)-1])
	}
}

// TestMonitorReplayParity drives a live monitor through a full
// healthy→critical→healthy cycle (via the WAL rule) while logging to a
// health JSONL buffer, then replays the log and requires the
// reconstructed verdict timeline to match the live one exactly.
func TestMonitorReplayParity(t *testing.T) {
	reg := metrics.NewRegistry()
	wal := reg.NewGauge(SeriesWALStickyError, "sticky wal error")
	slack := reg.NewFGauge(SeriesHeadroomMinSlack, "min slack")
	slack.Set(0.5)

	var buf bytes.Buffer
	sink := obs.NewHealthJSONL(&buf)
	cfg := testConfig()
	cfg.WAL.Series = SeriesWALStickyError
	cfg.Headroom.Series = SeriesHeadroomMinSlack
	fake := clock.NewFake(time.Unix(0, 0))
	m := New(reg, cfg, fake, WithSink(sink))

	tick := func() { fake.Advance(time.Second); m.Tick() }
	tick()
	tick()
	wal.Set(1)
	tick() // critical
	wal.Set(0)
	slack.Set(0.02) // below floor: stays critical on a different rule
	tick()
	slack.Set(0.6)
	tick()
	tick()
	tick() // recovery after hysteresis
	tick()

	live := m.Status()
	if live.State != Healthy || live.TransitionsTotal != 2 {
		t.Fatalf("live status = %+v", live)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadHealthJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Kind != obs.HealthKindConfig {
		t.Fatalf("first record kind = %q, want config", recs[0].Kind)
	}
	res, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 8 || res.Final != Healthy {
		t.Fatalf("replay result = %+v", res)
	}
	if !res.ParityOK() {
		t.Fatalf("parity failed:\nreplayed %+v\nrecorded %+v", res.Transitions, res.Recorded)
	}
	if len(res.Transitions) != len(live.Transitions) {
		t.Fatalf("replayed %d transitions, live %d", len(res.Transitions), len(live.Transitions))
	}
	for i, tr := range res.Transitions {
		lt := live.Transitions[i]
		if tr.TNs != lt.TNs || tr.From != lt.From || tr.To != lt.To {
			t.Fatalf("transition %d: replay %+v live %+v", i, tr, lt)
		}
	}
	// The critical transition must carry the WAL rule.
	if res.Transitions[0].To != Critical || res.Transitions[0].Rules[0] != "wal-sticky-error" {
		t.Fatalf("critical transition = %+v", res.Transitions[0])
	}
}

func TestReplayRejectsMalformedLogs(t *testing.T) {
	if _, err := Replay(nil); err == nil {
		t.Fatal("empty log replayed without error")
	}
	if _, err := Replay([]obs.HealthRecord{{Kind: obs.HealthKindSample, TNs: 1}}); err == nil {
		t.Fatal("sample before config replayed without error")
	}
	if _, err := Replay([]obs.HealthRecord{{Kind: "bogus"}}); err == nil {
		t.Fatal("unknown record kind replayed without error")
	}
}

// TestMonitorConcurrentWithWriters exercises the sampler loop against
// concurrent metric writers and readers; run with -race (the CI test job
// does) to catch torn scrapes.
func TestMonitorConcurrentWithWriters(t *testing.T) {
	reg := metrics.NewRegistry()
	hv := reg.NewHistogramVec("lat_seconds", "latency", []string{"route"}, 0.001, 0.01, 0.1, 1)
	h := hv.With("place")
	c := reg.NewCounter("reqs_total", "requests")
	g := reg.NewFGauge(SeriesHeadroomMinSlack, "slack")
	proc := metrics.NewProcessMetrics(reg)

	cfg := testConfig()
	cfg.Interval = time.Millisecond
	cfg.Burn.Targets = []string{`lat_seconds{route="place"}`}
	var buf bytes.Buffer
	m := New(reg, cfg, clock.Real(), WithSink(obs.NewHealthJSONL(&buf)), WithHook(proc.Update))
	m.Start()
	defer m.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				c.Inc()
				g.Set(v)
				v += 0.003
				if v > 1 {
					v -= 1
				}
			}
		}(0.1 * float64(w+1))
	}
	deadline := time.After(50 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			m.Status()
			m.Tick()
			m.Timeline(`lat_seconds{route="place"}:p99`, time.Second)
		}
	}
	close(stop)
	wg.Wait()
	m.Stop()
	if st := m.Status(); st.Ticks == 0 {
		t.Fatal("monitor never ticked")
	}
}

func TestMonitorStartStopIdempotent(t *testing.T) {
	m := New(metrics.NewRegistry(), testConfig(), clock.Real())
	m.Stop() // never started: no-op
	m.Start()
	m.Start()
	m.Stop()
	m.Stop()
}
