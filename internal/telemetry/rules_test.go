package telemetry

import (
	"testing"
	"time"
)

// testConfig returns short-window rule settings the table tests drive
// with 1-second ticks.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RecoverTicks = 3
	cfg.Burn = BurnConfig{
		Objective:    100 * time.Millisecond,
		Budget:       0.01,
		FastWindow:   10 * time.Second,
		SlowWindow:   30 * time.Second,
		DegradedBurn: 3,
		CriticalBurn: 14.4,
		Targets:      []string{"h"},
	}
	cfg.Headroom = HeadroomConfig{
		Series: "slack", Floor: 0.05,
		TrendWindow: 10 * time.Second, ProjectionHorizon: 60 * time.Second,
	}
	cfg.Queue = QueueConfig{
		DepthSeries: "depth", Capacity: 100,
		DegradedFraction: 0.5, CriticalFraction: 0.9,
		OldestWaitSeries:    "wait",
		DegradedWaitSeconds: 1, CriticalWaitSeconds: 5,
	}
	cfg.WAL = WALConfig{Series: "wal"}
	cfg.Stall = StallConfig{DepthSeries: "depth", ProgressSeries: "prog", Window: 5 * time.Second}
	return cfg
}

func sec(s int) int64 { return int64(s) * int64(time.Second) }

// transitionsOf collects (tick-second, to-state) pairs from a scripted
// run: script(tick) returns the values for tick t (in seconds).
func transitionsOf(t *testing.T, e *engine, ticks int, script func(int) map[string]float64) []Transition {
	t.Helper()
	var out []Transition
	for i := 1; i <= ticks; i++ {
		_, tr := e.ingest(sec(i), script(i))
		if tr != nil {
			out = append(out, *tr)
		}
	}
	return out
}

func wantTransitions(t *testing.T, got []Transition, want []Transition) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i].TNs != want[i].TNs || got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBurnRuleMultiWindow(t *testing.T) {
	e := newEngine(testConfig())
	// 100 requests per second; good through t=40, all-bad from t=41,
	// good again from t=46. Fast window 10s, slow window 30s.
	script := func(i int) map[string]float64 {
		count := float64(100 * i)
		good := count
		switch {
		case i > 45:
			good = float64(100*40 + 100*(i-45)) // 5 bad ticks excluded
		case i > 40:
			good = float64(100 * 40)
		}
		return map[string]float64{"h:count": count, "h:good": good}
	}
	got := transitionsOf(t, e, 60, script)
	wantTransitions(t, got, []Transition{
		// Slow-window burn crosses 3× one tick into the incident
		// (fast is already at 10×): degraded.
		{TNs: sec(41), From: Healthy, To: Degraded},
		// Five all-bad ticks push the slow window past 14.4×: critical.
		{TNs: sec(45), From: Degraded, To: Critical},
		// Recovery: the binding min() of the two windows drops below
		// critical at t=54, and after 3 cleaner ticks the state steps
		// straight to the then-observed severity (healthy by t=56).
		{TNs: sec(56), From: Critical, To: Healthy},
	})
	if len(got[0].Rules) != 1 || got[0].Rules[0] != "slo-burn:h" {
		t.Fatalf("degraded rules = %v", got[0].Rules)
	}
}

func TestBurnRuleQuietWithoutTraffic(t *testing.T) {
	e := newEngine(testConfig())
	// A flat count (no requests) must not divide by zero or fire.
	got := transitionsOf(t, e, 20, func(int) map[string]float64 {
		return map[string]float64{"h:count": 500, "h:good": 100}
	})
	wantTransitions(t, got, nil)
}

func TestWALRuleAndHysteresis(t *testing.T) {
	e := newEngine(testConfig())
	script := func(i int) map[string]float64 {
		wal := 0.0
		// Sticky error from t=3..5; a second dirty tick at t=8 resets
		// the recovery countdown.
		if (i >= 3 && i <= 5) || i == 8 {
			wal = 1
		}
		return map[string]float64{"wal": wal}
	}
	got := transitionsOf(t, e, 12, script)
	wantTransitions(t, got, []Transition{
		// Sticky WAL error is immediately critical — no trend needed.
		{TNs: sec(3), From: Healthy, To: Critical},
		// Clean at t=6,7; dirty t=8 resets; clean t=9,10,11 recovers.
		{TNs: sec(11), From: Critical, To: Healthy},
	})
	if len(got[0].Rules) != 1 || got[0].Rules[0] != "wal-sticky-error" {
		t.Fatalf("critical rules = %v", got[0].Rules)
	}
}

func TestHeadroomRedlineFloor(t *testing.T) {
	e := newEngine(testConfig())
	script := func(i int) map[string]float64 {
		slack := 0.4
		if i >= 4 {
			slack = 0.04 // below the 0.05 floor
		}
		if i >= 5 {
			slack = 0.5 // repaired
		}
		return map[string]float64{"slack": slack}
	}
	got := transitionsOf(t, e, 10, script)
	wantTransitions(t, got, []Transition{
		{TNs: sec(4), From: Healthy, To: Critical},
		{TNs: sec(7), From: Critical, To: Healthy},
	})
}

func TestHeadroomErosionProjection(t *testing.T) {
	e := newEngine(testConfig())
	// Slack erodes 0.01/s from 0.5: the red line (0.05) is ~40s out,
	// inside the 60s horizon. The slope needs ≥5s of history (half the
	// 10s trend window), so the first possible firing tick is t=6.
	got := transitionsOf(t, e, 8, func(i int) map[string]float64 {
		return map[string]float64{"slack": 0.5 - 0.01*float64(i-1)}
	})
	wantTransitions(t, got, []Transition{{TNs: sec(6), From: Healthy, To: Degraded}})
	if got[0].Rules[0] != "headroom-erosion" {
		t.Fatalf("rules = %v", got[0].Rules)
	}

	// A shallow trend (red line ~450s out) stays healthy.
	e2 := newEngine(testConfig())
	got = transitionsOf(t, e2, 8, func(i int) map[string]float64 {
		return map[string]float64{"slack": 0.5 - 0.001*float64(i-1)}
	})
	wantTransitions(t, got, nil)
}

func TestQueueSaturationAndWait(t *testing.T) {
	e := newEngine(testConfig())
	script := func(i int) map[string]float64 {
		depth, wait := 10.0, 0.1
		switch {
		case i == 3:
			depth = 60 // 60% of capacity 100 → degraded
		case i == 4:
			depth = 95 // 95% → critical
		}
		return map[string]float64{"depth": depth, "wait": wait, "prog": float64(i)}
	}
	got := transitionsOf(t, e, 8, script)
	wantTransitions(t, got, []Transition{
		{TNs: sec(3), From: Healthy, To: Degraded},
		{TNs: sec(4), From: Degraded, To: Critical},
		{TNs: sec(7), From: Critical, To: Healthy},
	})
	if got[0].Rules[0] != "queue-saturation" {
		t.Fatalf("rules = %v", got[0].Rules)
	}

	e2 := newEngine(testConfig())
	got = transitionsOf(t, e2, 6, func(i int) map[string]float64 {
		wait := 0.2
		if i == 3 {
			wait = 2 // past the 1s degraded threshold
		}
		return map[string]float64{"depth": 1, "wait": wait, "prog": float64(i)}
	})
	wantTransitions(t, got, []Transition{
		{TNs: sec(3), From: Healthy, To: Degraded},
		{TNs: sec(6), From: Degraded, To: Healthy},
	})
	if got[0].Rules[0] != "queue-wait" {
		t.Fatalf("rules = %v", got[0].Rules)
	}
}

func TestPlacerStallWatchdog(t *testing.T) {
	e := newEngine(testConfig())
	// The placer makes progress through t=3, then freezes while the
	// queue holds 3 jobs from t=4 on; progress resumes at t=15. The 5s
	// stall window ⇒ degraded once depth>0 spans 5s with no progress
	// (t=9), critical at 10s (t=14, the first tick where the full 10s
	// lookback has a non-empty queue throughout).
	script := func(i int) map[string]float64 {
		prog, depth := float64(10*i), 0.0
		if i >= 4 {
			prog = 30
			depth = 3
		}
		if i >= 15 {
			prog = 30 + float64(10*(i-14))
			depth = 0
		}
		return map[string]float64{"depth": depth, "wait": 0, "prog": prog}
	}
	got := transitionsOf(t, e, 18, script)
	wantTransitions(t, got, []Transition{
		{TNs: sec(9), From: Healthy, To: Degraded},
		{TNs: sec(14), From: Degraded, To: Critical},
		{TNs: sec(17), From: Critical, To: Healthy},
	})
	if got[1].Rules[0] != "placer-stall" {
		t.Fatalf("critical rules = %v", got[1].Rules)
	}
}

func TestFindingsReportedInStatus(t *testing.T) {
	e := newEngine(testConfig())
	e.ingest(sec(1), map[string]float64{"wal": 1, "slack": 0.01})
	if e.state != Critical {
		t.Fatalf("state = %v, want critical", e.state)
	}
	if len(e.findings) != 2 {
		t.Fatalf("findings = %+v, want headroom + wal", e.findings)
	}
	for _, f := range e.findings {
		if f.Severity != Critical || f.Evidence == "" {
			t.Fatalf("finding %+v lacks severity/evidence", f)
		}
	}
}

func TestTransitionHistoryBounded(t *testing.T) {
	e := newEngine(testConfig())
	for i := 1; i <= 4*transitionWindow; i++ {
		// Alternate critical/healthy every tick via the WAL rule with
		// RecoverTicks bypassed by escalation being immediate: odd ticks
		// escalate, and we force recovery fast by re-ingesting clean
		// ticks RecoverTicks times.
		e.ingest(sec(10*i), map[string]float64{"wal": 1})
		for j := 0; j < e.cfg.RecoverTicks; j++ {
			e.ingest(sec(10*i)+int64(j+1), map[string]float64{"wal": 0})
		}
	}
	if len(e.transitions) != transitionWindow {
		t.Fatalf("retained transitions = %d, want %d", len(e.transitions), transitionWindow)
	}
	if e.transitionsTotal != uint64(8*transitionWindow) {
		t.Fatalf("total transitions = %d, want %d", e.transitionsTotal, 8*transitionWindow)
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	for _, s := range []State{Healthy, Degraded, Critical} {
		b, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %s -> %v", s, b, back)
		}
	}
}
