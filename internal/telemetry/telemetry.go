// Package telemetry turns the instantaneous gauges of internal/metrics
// into trends and verdicts: a fixed-interval sampler scrapes the
// registry (via Registry.Snapshot) into bounded in-memory ring
// time-series — counter values and rates, gauge samples, histogram-delta
// percentiles — and a declarative rule engine evaluates SLOs and
// invariants against those series every tick:
//
//   - multi-window burn rate on admission latency (fast and slow windows
//     against a configurable objective, SRE-workbook style),
//   - a headroom red-line floor on cubefit_headroom_min_slack with an
//     erosion-rate projection ("time until red line at current trend"),
//   - queue-saturation and oldest-wait thresholds from the pipeline
//     tracer gauges,
//   - WAL sticky-error detection (fail-closed ⇒ immediately critical),
//   - a placer-stall watchdog (no placement progress while the queue
//     stays non-empty).
//
// Rule outcomes drive a healthy→degraded→critical state machine with
// hysteresis (escalation is immediate, de-escalation waits for
// RecoverTicks consecutive cleaner ticks), exposed by internal/api as
// /healthz, /readyz, /debug/health, and /debug/timeline.
//
// Every tick's sample set and every state transition can stream to an
// obs.HealthRecorder as JSONL. The rule engine consumes nothing but the
// sample stream and its own configuration (written as the log's first
// record), so Replay deterministically reproduces the live verdict
// timeline from a recorded log (`cubefit-inspect health`).
package telemetry

import (
	"fmt"
	"time"
)

// State is the health verdict.
type State int

// Health states, in escalation order.
const (
	Healthy State = iota
	Degraded
	Critical
)

var stateNames = [...]string{"healthy", "degraded", "critical"}

func (s State) String() string {
	if s < Healthy || s > Critical {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	for i, n := range stateNames {
		if string(b) == `"`+n+`"` {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown state %s", b)
}

// Finding is one rule firing at one tick.
type Finding struct {
	// Rule names the firing rule; burn-rate findings embed their target
	// series ("slo-burn:<series>").
	Rule     string `json:"rule"`
	Severity State  `json:"severity"`
	// Value is the rule's observed quantity and Threshold the limit it
	// crossed, in the rule's own unit (burn multiple, slack fraction,
	// queue fraction, seconds).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Evidence is one human-readable line justifying the finding.
	Evidence string `json:"evidence"`
}

// Transition is one health-state change.
type Transition struct {
	// TNs is the tick timestamp on the sampler's monotonic scale.
	TNs  int64 `json:"tNs"`
	From State `json:"from"`
	To   State `json:"to"`
	// Rules and Evidence describe the findings at the new state's
	// severity (empty on a recovery to healthy).
	Rules    []string `json:"rules,omitempty"`
	Evidence []string `json:"evidence,omitempty"`
}

// Point is one retained sample of one series.
type Point struct {
	TNs   int64   `json:"tNs"`
	Value float64 `json:"value"`
}

// Status is the full health verdict reported by /debug/health.
type Status struct {
	State State `json:"state"`
	// Ticks is the number of evaluated sample ticks.
	Ticks uint64 `json:"ticks"`
	// Findings are the rules firing as of the last tick.
	Findings []Finding `json:"findings"`
	// Transitions are the most recent state changes (oldest first,
	// bounded); TransitionsTotal counts all of them.
	Transitions      []Transition `json:"transitions"`
	TransitionsTotal uint64       `json:"transitionsTotal"`
}

// Default rule thresholds; every Config zero value falls back to these.
const (
	// DefaultInterval is the sampling period.
	DefaultInterval = time.Second
	// DefaultRingCapacity bounds each series ring (samples retained).
	DefaultRingCapacity = 4096
	// DefaultRecoverTicks is the de-escalation hysteresis: consecutive
	// cleaner ticks required before the state steps down.
	DefaultRecoverTicks = 3
	// DefaultObjective is the admission latency objective ("good"
	// requests complete within it).
	DefaultObjective = 100 * time.Millisecond
	// DefaultBudget is the allowed bad-request fraction (99% objective).
	DefaultBudget = 0.01
	// DefaultFastBurnWindow / DefaultSlowBurnWindow are the two burn-rate
	// windows; both must breach for the rule to fire.
	DefaultFastBurnWindow = time.Minute
	DefaultSlowBurnWindow = time.Hour
	// DefaultDegradedBurn / DefaultCriticalBurn are burn-rate multiples
	// of the budget (14.4× ≈ a 30-day budget gone in 2 days).
	DefaultDegradedBurn = 3.0
	DefaultCriticalBurn = 14.4
	// DefaultHeadroomTrendWindow is the span the erosion slope is fit
	// over; DefaultHeadroomProjection the look-ahead horizon that makes a
	// negative trend degraded.
	DefaultHeadroomTrendWindow = 5 * time.Minute
	DefaultHeadroomProjection  = 15 * time.Minute
	// DefaultQueueDegradedFraction / DefaultQueueCriticalFraction are
	// queue depth over capacity thresholds.
	DefaultQueueDegradedFraction = 0.5
	DefaultQueueCriticalFraction = 0.9
	// DefaultDegradedWaitSeconds / DefaultCriticalWaitSeconds bound the
	// oldest queued admission's wait.
	DefaultDegradedWaitSeconds = 1.0
	DefaultCriticalWaitSeconds = 5.0
	// DefaultStallWindow is the no-progress span after which a non-empty
	// queue marks the placer degraded (critical after twice that).
	DefaultStallWindow = 10 * time.Second
)

// Well-known series the default rules watch. Histogram-derived series
// append a suffix to the metrics.SeriesKey of their histogram child:
// ":count" (cumulative observations), ":p50"/":p99" (per-tick-delta
// percentile estimates), and ":good" (cumulative observations at or
// under the burn objective, burn targets only). Counters likewise get a
// derived ":rate" (per-second) alongside their cumulative value.
const (
	SeriesHeadroomMinSlack = "cubefit_headroom_min_slack"
	SeriesQueueDepth       = "cubefit_pipeline_queue_depth"
	SeriesOldestWait       = "cubefit_pipeline_oldest_wait_seconds"
	SeriesWALStickyError   = "cubefit_wal_sticky_error"
	SeriesPlaceProgress    = `cubefit_pipeline_stage_duration_seconds{stage="place"}:count`
)

// BurnConfig parameterizes the multi-window SLO burn-rate rule.
type BurnConfig struct {
	// Objective is the latency objective: an observation is "good" when
	// its histogram bucket bound is at or under it.
	Objective time.Duration `json:"objectiveNs"`
	// Budget is the allowed bad fraction (0.01 ⇒ 99% within objective).
	Budget float64 `json:"budget"`
	// FastWindow and SlowWindow are the two lookbacks; the burn rate must
	// exceed the threshold over both to fire (short blips and stale
	// incidents both stay quiet).
	FastWindow time.Duration `json:"fastWindowNs"`
	SlowWindow time.Duration `json:"slowWindowNs"`
	// DegradedBurn and CriticalBurn are budget-burn multiples.
	DegradedBurn float64 `json:"degradedBurn"`
	CriticalBurn float64 `json:"criticalBurn"`
	// Targets are histogram series keys (metrics.SeriesKey form) whose
	// ":count"/":good" derived series feed the rule.
	Targets []string `json:"targets"`
}

// HeadroomConfig parameterizes the red-line floor and erosion projection.
type HeadroomConfig struct {
	Series string `json:"series"`
	// Floor is the red-line slack: below it the cluster cannot absorb its
	// worst-case failure set and the rule is immediately critical.
	Floor float64 `json:"floor"`
	// TrendWindow is the span the erosion slope is estimated over (at
	// least half of it must be covered by samples before projecting).
	TrendWindow time.Duration `json:"trendWindowNs"`
	// ProjectionHorizon marks the rule degraded when the current negative
	// trend would cross the floor within it.
	ProjectionHorizon time.Duration `json:"projectionHorizonNs"`
}

// QueueConfig parameterizes the queue-saturation and oldest-wait rules.
type QueueConfig struct {
	DepthSeries string `json:"depthSeries"`
	// Capacity is the admission queue's bound (the api layer wires the
	// pipeline's real capacity in).
	Capacity         int     `json:"capacity"`
	DegradedFraction float64 `json:"degradedFraction"`
	CriticalFraction float64 `json:"criticalFraction"`

	OldestWaitSeries    string  `json:"oldestWaitSeries"`
	DegradedWaitSeconds float64 `json:"degradedWaitSeconds"`
	CriticalWaitSeconds float64 `json:"criticalWaitSeconds"`
}

// WALConfig parameterizes sticky-WAL-error detection.
type WALConfig struct {
	// Series is a gauge that is ≥1 while the write-ahead log carries a
	// sticky commit error (admissions failing closed).
	Series string `json:"series"`
}

// StallConfig parameterizes the placer-stall watchdog.
type StallConfig struct {
	DepthSeries string `json:"depthSeries"`
	// ProgressSeries is a cumulative count that advances whenever the
	// placer completes work (the place-stage histogram count by default).
	ProgressSeries string `json:"progressSeries"`
	// Window: no progress for a full Window with the queue continuously
	// non-empty is degraded; for two Windows, critical.
	Window time.Duration `json:"windowNs"`
}

// Config is the full telemetry configuration. It marshals losslessly to
// JSON and is written verbatim as the health log's first record, so a
// replay rebuilds an identical rule engine.
type Config struct {
	// Interval is the sampling period of the background loop.
	Interval time.Duration `json:"intervalNs"`
	// RingCapacity bounds every series ring.
	RingCapacity int `json:"ringCapacity"`
	// RecoverTicks is the de-escalation hysteresis.
	RecoverTicks int `json:"recoverTicks"`

	Burn     BurnConfig     `json:"burn"`
	Headroom HeadroomConfig `json:"headroom"`
	Queue    QueueConfig    `json:"queue"`
	WAL      WALConfig      `json:"wal"`
	Stall    StallConfig    `json:"stall"`
}

// DefaultConfig returns the default rule set, watching the admission
// latency histograms, the headroom auditor, the pipeline tracer gauges,
// and the WAL error gauge.
func DefaultConfig() Config {
	return Config{
		Interval:     DefaultInterval,
		RingCapacity: DefaultRingCapacity,
		RecoverTicks: DefaultRecoverTicks,
		Burn: BurnConfig{
			Objective:    DefaultObjective,
			Budget:       DefaultBudget,
			FastWindow:   DefaultFastBurnWindow,
			SlowWindow:   DefaultSlowBurnWindow,
			DegradedBurn: DefaultDegradedBurn,
			CriticalBurn: DefaultCriticalBurn,
			Targets: []string{
				`cubefit_http_request_duration_seconds{route="place"}`,
				`cubefit_http_request_duration_seconds{route="place_batch"}`,
			},
		},
		Headroom: HeadroomConfig{
			Series:            SeriesHeadroomMinSlack,
			Floor:             0.05,
			TrendWindow:       DefaultHeadroomTrendWindow,
			ProjectionHorizon: DefaultHeadroomProjection,
		},
		Queue: QueueConfig{
			DepthSeries:         SeriesQueueDepth,
			Capacity:            0, // wired by the api layer
			DegradedFraction:    DefaultQueueDegradedFraction,
			CriticalFraction:    DefaultQueueCriticalFraction,
			OldestWaitSeries:    SeriesOldestWait,
			DegradedWaitSeconds: DefaultDegradedWaitSeconds,
			CriticalWaitSeconds: DefaultCriticalWaitSeconds,
		},
		WAL:   WALConfig{Series: SeriesWALStickyError},
		Stall: StallConfig{DepthSeries: SeriesQueueDepth, ProgressSeries: SeriesPlaceProgress, Window: DefaultStallWindow},
	}
}

// withDefaults fills zero operational fields so a partially specified
// Config behaves predictably and marshals fully populated.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = DefaultRingCapacity
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = DefaultRecoverTicks
	}
	if c.Burn.Budget <= 0 {
		c.Burn.Budget = DefaultBudget
	}
	if c.Burn.Objective <= 0 {
		c.Burn.Objective = DefaultObjective
	}
	if c.Burn.FastWindow <= 0 {
		c.Burn.FastWindow = DefaultFastBurnWindow
	}
	if c.Burn.SlowWindow <= 0 {
		c.Burn.SlowWindow = DefaultSlowBurnWindow
	}
	if c.Burn.DegradedBurn <= 0 {
		c.Burn.DegradedBurn = DefaultDegradedBurn
	}
	if c.Burn.CriticalBurn <= 0 {
		c.Burn.CriticalBurn = DefaultCriticalBurn
	}
	return c
}
