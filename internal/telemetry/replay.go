package telemetry

import (
	"encoding/json"
	"fmt"

	"cubefit/internal/obs"
)

// ReplayResult is the verdict timeline reconstructed from a health log.
type ReplayResult struct {
	// Config is the effective configuration from the log's config record.
	Config Config `json:"config"`
	// Ticks is the number of sample records replayed.
	Ticks int `json:"ticks"`
	// Final is the state after the last sample.
	Final State `json:"final"`
	// Transitions is the full reconstructed transition sequence.
	Transitions []Transition `json:"transitions"`
	// Recorded is the transition sequence the live run wrote into the
	// log, for parity comparison against Transitions.
	Recorded []Transition `json:"recorded"`
}

// ParityOK reports whether the reconstructed transitions exactly match
// the recorded ones (timestamps, states, and firing rules).
func (r ReplayResult) ParityOK() bool {
	if len(r.Transitions) != len(r.Recorded) {
		return false
	}
	for i, tr := range r.Transitions {
		rec := r.Recorded[i]
		if tr.TNs != rec.TNs || tr.From != rec.From || tr.To != rec.To {
			return false
		}
		if len(tr.Rules) != len(rec.Rules) {
			return false
		}
		for j := range tr.Rules {
			if tr.Rules[j] != rec.Rules[j] {
				return false
			}
		}
	}
	return true
}

// Replay feeds a recorded health log through a fresh rule engine and
// returns the reconstructed verdict timeline. Because the live engine
// consumes nothing but the sample stream and the configuration embedded
// in the log, the reconstruction is exact: same transitions at the same
// tick timestamps with the same firing rules.
func Replay(recs []obs.HealthRecord) (ReplayResult, error) {
	var (
		res ReplayResult
		eng *engine
	)
	for i, rec := range recs {
		switch rec.Kind {
		case obs.HealthKindConfig:
			var cfg Config
			if err := json.Unmarshal(rec.Config, &cfg); err != nil {
				return res, fmt.Errorf("telemetry: replay config record %d: %w", i+1, err)
			}
			eng = newEngine(cfg)
			res.Config = eng.cfg
		case obs.HealthKindSample:
			if eng == nil {
				return res, fmt.Errorf("telemetry: replay record %d: sample before config record", i+1)
			}
			_, tr := eng.ingest(rec.TNs, rec.Values)
			res.Ticks++
			if tr != nil {
				res.Transitions = append(res.Transitions, *tr)
			}
		case obs.HealthKindTransition:
			tr := Transition{TNs: rec.TNs, Rules: rec.Rules, Evidence: rec.Evidence}
			if err := parseState(rec.From, &tr.From); err != nil {
				return res, fmt.Errorf("telemetry: replay record %d: %w", i+1, err)
			}
			if err := parseState(rec.To, &tr.To); err != nil {
				return res, fmt.Errorf("telemetry: replay record %d: %w", i+1, err)
			}
			res.Recorded = append(res.Recorded, tr)
		default:
			return res, fmt.Errorf("telemetry: replay record %d: unknown kind %q", i+1, rec.Kind)
		}
	}
	if eng == nil {
		return res, fmt.Errorf("telemetry: health log holds no config record")
	}
	res.Final = eng.state
	return res, nil
}

func parseState(name string, out *State) error {
	for i, n := range stateNames {
		if name == n {
			*out = State(i)
			return nil
		}
	}
	return fmt.Errorf("unknown state %q", name)
}
