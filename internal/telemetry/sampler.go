package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
)

// histPrev keeps one histogram child's previous bucket counts plus a
// reusable delta buffer, so per-tick percentile estimation allocates
// only when a histogram grows a new child.
type histPrev struct {
	counts []uint64
	delta  []uint64
}

// Monitor is the live telemetry loop: scrape the registry, feed the rule
// engine, expose the verdict, and stream the sample/transition log.
// Construct with New, then either Start the background loop or drive
// Tick directly (tests, single-shot probes).
type Monitor struct {
	reg *metrics.Registry
	clk clock.Clock
	// base anchors the monotonic nanosecond scale of every sample.
	base time.Time
	// hooks run before each scrape (process-metrics refresh, WAL gauge);
	// fixed after construction.
	hooks []func()
	// sink receives sample and transition records; fixed after
	// construction, nil to disable logging.
	sink        obs.HealthRecorder
	burnTargets map[string]bool

	mu sync.Mutex
	//cubefit:guarded-by mu
	eng *engine
	//cubefit:guarded-by mu
	prevHist map[string]*histPrev
	//cubefit:guarded-by mu
	configWritten bool
	//cubefit:guarded-by mu
	running bool
	//cubefit:guarded-by mu
	stop chan struct{}
	//cubefit:guarded-by mu
	done chan struct{}
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithSink streams every tick's samples and every state transition to
// rec (the configuration is written first, once).
func WithSink(rec obs.HealthRecorder) Option {
	return func(m *Monitor) { m.sink = rec }
}

// WithHook runs f before every scrape, for metrics that are computed on
// demand rather than maintained on the hot path.
func WithHook(f func()) Option {
	return func(m *Monitor) { m.hooks = append(m.hooks, f) }
}

// New builds a Monitor sampling reg on clk. The background loop does not
// run until Start.
func New(reg *metrics.Registry, cfg Config, clk clock.Clock, opts ...Option) *Monitor {
	eng := newEngine(cfg)
	m := &Monitor{
		reg:         reg,
		clk:         clk,
		base:        clk.Now(),
		eng:         eng,
		prevHist:    make(map[string]*histPrev),
		burnTargets: make(map[string]bool),
	}
	for _, t := range eng.cfg.Burn.Targets {
		m.burnTargets[t] = true
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Config returns the effective (default-filled) configuration.
func (m *Monitor) Config() Config {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.cfg
}

// Start launches the background sampling loop (idempotent).
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	interval := m.eng.cfg.Interval
	m.mu.Unlock()
	go m.run(interval, stop, done)
}

func (m *Monitor) run(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			m.Tick()
		}
	}
}

// Stop halts the background loop and waits for it (idempotent; a Monitor
// that never started is a no-op).
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

// Tick performs one sample-evaluate cycle: run the pre-sample hooks,
// snapshot the registry, derive the tick's series values, feed the rule
// engine, and stream the records. Safe to call concurrently with the
// background loop and with registry writers.
func (m *Monitor) Tick() {
	for _, h := range m.hooks {
		h()
	}
	snap := m.reg.Snapshot()
	m.mu.Lock()
	m.writeConfigLocked()
	nowNs := m.clk.Since(m.base).Nanoseconds()
	values := m.scrapeLocked(snap, nowNs)
	tNs, tr := m.eng.ingest(nowNs, values)
	m.mu.Unlock()
	if m.sink == nil {
		return
	}
	m.sink.RecordHealth(obs.HealthRecord{Kind: obs.HealthKindSample, TNs: tNs, Values: values})
	if tr != nil {
		m.sink.RecordHealth(obs.HealthRecord{
			Kind: obs.HealthKindTransition, TNs: tr.TNs,
			From: tr.From.String(), To: tr.To.String(),
			Rules: tr.Rules, Evidence: tr.Evidence,
		})
	}
}

// writeConfigLocked emits the config record once, before any sample, so
// a replay rebuilds the identical rule engine.
func (m *Monitor) writeConfigLocked() {
	if m.configWritten || m.sink == nil {
		return
	}
	m.configWritten = true
	raw, err := json.Marshal(m.eng.cfg)
	if err != nil {
		// Config is a fixed flat struct; marshalling cannot fail in
		// practice, and a missing config record is detected by Replay.
		return
	}
	m.sink.RecordHealth(obs.HealthRecord{Kind: obs.HealthKindConfig, Config: raw})
}

// scrapeLocked turns one registry snapshot into the tick's series
// values: counters keep their cumulative value plus a derived ":rate"
// per second; gauges sample directly; histogram children derive
// ":count" (cumulative), ":p50"/":p99" (estimated over this tick's
// bucket delta), and — for burn targets — ":good" (cumulative
// observations at or under the objective). Values are sanitized so the
// map always marshals (no NaN/Inf).
func (m *Monitor) scrapeLocked(snap []metrics.FamilySnapshot, nowNs int64) map[string]float64 {
	values := make(map[string]float64, 64)
	objective := m.eng.cfg.Burn.Objective.Seconds()
	for _, fam := range snap {
		for _, s := range fam.Samples {
			key := metrics.SeriesKey(fam.Name, s.Labels)
			switch s.Kind {
			case metrics.KindCounterSample:
				values[key] = sanitize(s.Value)
				if tl, vl, ok := m.eng.store.lookup(key).latest(); ok && nowNs > tl {
					values[key+":rate"] = sanitize((s.Value - vl) / (float64(nowNs-tl) / 1e9))
				}
			case metrics.KindGaugeSample:
				values[key] = sanitize(s.Value)
			case metrics.KindHistogramSample:
				m.scrapeHistogramLocked(values, key, s.Hist, objective)
			}
		}
	}
	return values
}

func (m *Monitor) scrapeHistogramLocked(values map[string]float64, key string, h metrics.HistogramSnapshot, objective float64) {
	values[key+":count"] = float64(h.Count)
	prev := m.prevHist[key]
	if prev == nil || len(prev.counts) != len(h.Counts) {
		prev = &histPrev{counts: make([]uint64, len(h.Counts)), delta: make([]uint64, len(h.Counts))}
		m.prevHist[key] = prev
	}
	for i, c := range h.Counts {
		if c >= prev.counts[i] {
			prev.delta[i] = c - prev.counts[i]
		} else {
			prev.delta[i] = c // counter reset (new registry); treat as fresh
		}
		prev.counts[i] = c
	}
	values[key+":p50"] = sanitize(metrics.QuantileFromBuckets(h.Bounds, prev.delta, 0.50))
	values[key+":p99"] = sanitize(metrics.QuantileFromBuckets(h.Bounds, prev.delta, 0.99))
	if m.burnTargets[key] {
		var good uint64
		for i, b := range h.Bounds {
			if b > objective {
				break
			}
			good += h.Counts[i]
		}
		values[key+":good"] = float64(good)
	}
}

// sanitize maps NaN/±Inf to 0 so sample records always marshal and ring
// math stays finite.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Status reports the current verdict, firing rules, and recent
// transitions.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Status{
		State:            m.eng.state,
		Ticks:            m.eng.ticks,
		Findings:         append([]Finding(nil), m.eng.findings...),
		Transitions:      append([]Transition(nil), m.eng.transitions...),
		TransitionsTotal: m.eng.transitionsTotal,
	}
}

// State returns the current health state.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.state
}

// Timeline returns series' retained samples from the last window
// (window ≤ 0 returns everything retained) and whether the series
// exists.
func (m *Monitor) Timeline(series string, window time.Duration) ([]Point, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.eng.store.lookup(series)
	if r == nil {
		return nil, false
	}
	cut := int64(0)
	if window > 0 {
		cut = m.eng.lastNs - window.Nanoseconds()
	}
	return r.since(cut), true
}

// SeriesKeys lists every series the sampler has seen, sorted.
func (m *Monitor) SeriesKeys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.store.keys()
}
