package telemetry

import "sort"

// seriesRing is one series' bounded sample history: parallel timestamp
// and value rings, oldest at head. All access is serialized by the
// owning Monitor (or by Replay's single goroutine); the ring itself does
// no locking.
type seriesRing struct {
	key string
	t   []int64
	v   []float64
	// head indexes the oldest retained sample; n is the retained count.
	head, n int
}

func newSeriesRing(key string, capacity int) *seriesRing {
	return &seriesRing{key: key, t: make([]int64, capacity), v: make([]float64, capacity)}
}

// push appends one sample, evicting the oldest at capacity.
//
//cubefit:hotpath
func (r *seriesRing) push(tNs int64, v float64) {
	if r.n < len(r.t) {
		i := (r.head + r.n) % len(r.t)
		r.t[i] = tNs
		r.v[i] = v
		r.n++
		return
	}
	r.t[r.head] = tNs
	r.v[r.head] = v
	r.head = (r.head + 1) % len(r.t)
}

// latest returns the newest sample.
func (r *seriesRing) latest() (tNs int64, v float64, ok bool) {
	if r == nil || r.n == 0 {
		return 0, 0, false
	}
	i := (r.head + r.n - 1) % len(r.t)
	return r.t[i], r.v[i], true
}

// at returns the newest sample with timestamp ≤ tNs, falling back to the
// oldest retained sample when the whole ring is newer.
func (r *seriesRing) at(tNs int64) (int64, float64, bool) {
	if r == nil || r.n == 0 {
		return 0, 0, false
	}
	// Binary search over the logically ordered ring: timestamps are
	// strictly increasing by construction (the engine clamps each tick
	// past the previous one).
	lo := sort.Search(r.n, func(i int) bool {
		return r.t[(r.head+i)%len(r.t)] > tNs
	})
	if lo == 0 {
		j := r.head
		return r.t[j], r.v[j], true
	}
	j := (r.head + lo - 1) % len(r.t)
	return r.t[j], r.v[j], true
}

// delta returns latest − at(nowNs−windowNs) and the time span between
// those two samples. ok requires two distinct samples.
func (r *seriesRing) delta(nowNs, windowNs int64) (dv float64, spanNs int64, ok bool) {
	if r == nil || r.n < 2 {
		return 0, 0, false
	}
	tl, vl, _ := r.latest()
	t0, v0, _ := r.at(nowNs - windowNs)
	if tl <= t0 {
		return 0, 0, false
	}
	return vl - v0, tl - t0, true
}

// minSince returns the minimum value among samples with timestamp ≥ tNs.
func (r *seriesRing) minSince(tNs int64) (min float64, ok bool) {
	if r == nil {
		return 0, false
	}
	for i := 0; i < r.n; i++ {
		j := (r.head + i) % len(r.t)
		if r.t[j] < tNs {
			continue
		}
		if !ok || r.v[j] < min {
			min, ok = r.v[j], true
		}
	}
	return min, ok
}

// since returns the retained samples with timestamp ≥ tNs, oldest first.
func (r *seriesRing) since(tNs int64) []Point {
	if r == nil {
		return nil
	}
	var out []Point
	for i := 0; i < r.n; i++ {
		j := (r.head + i) % len(r.t)
		if r.t[j] >= tNs {
			out = append(out, Point{TNs: r.t[j], Value: r.v[j]})
		}
	}
	return out
}

// seriesStore holds every series ring, ordered by first appearance, with
// a name index for rule lookups.
type seriesStore struct {
	rings    []*seriesRing
	index    map[string]int
	capacity int
}

func newSeriesStore(capacity int) *seriesStore {
	return &seriesStore{index: make(map[string]int), capacity: capacity}
}

// ring returns the series' ring, creating it on first use.
func (s *seriesStore) ring(key string) *seriesRing {
	if i, ok := s.index[key]; ok {
		return s.rings[i]
	}
	r := newSeriesRing(key, s.capacity)
	s.index[key] = len(s.rings)
	s.rings = append(s.rings, r)
	return r
}

// lookup returns the series' ring or nil; rules treat an absent series
// as "nothing to say" rather than an error, so a controller without
// tracing or a WAL simply never trips the corresponding rules.
func (s *seriesStore) lookup(key string) *seriesRing {
	if i, ok := s.index[key]; ok {
		return s.rings[i]
	}
	return nil
}

// keys returns every series key, sorted.
func (s *seriesStore) keys() []string {
	out := make([]string, len(s.rings))
	for i, r := range s.rings {
		out[i] = r.key
	}
	sort.Strings(out)
	return out
}
