package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// transitionWindow bounds the retained transition history; the total
// count keeps climbing past it.
const transitionWindow = 256

// engine is the sample-stream consumer shared verbatim between the live
// Monitor and offline Replay: rings, rule evaluation, and the hysteresis
// state machine. It deliberately sees nothing but (tNs, values) ticks —
// that blindness is what makes a recorded sample log replay into the
// exact live verdict sequence. Callers serialize access.
type engine struct {
	cfg   Config
	store *seriesStore

	state State
	// clean counts consecutive ticks whose observed severity was below
	// the held state; RecoverTicks of them de-escalate.
	clean    int
	findings []Finding

	transitions      []Transition
	transitionsTotal uint64

	lastNs int64
	ticks  uint64
}

func newEngine(cfg Config) *engine {
	cfg = cfg.withDefaults()
	return &engine{cfg: cfg, store: newSeriesStore(cfg.RingCapacity)}
}

// ingest runs one tick: record the sample set, evaluate every rule, and
// advance the state machine. It returns the effective (monotonic)
// timestamp and the transition, if this tick caused one.
func (e *engine) ingest(tNs int64, values map[string]float64) (int64, *Transition) {
	if tNs <= e.lastNs {
		tNs = e.lastNs + 1
	}
	e.lastNs = tNs
	for key, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		e.store.ring(key).push(tNs, v)
	}
	e.ticks++
	e.findings = e.evaluate(tNs)
	observed := Healthy
	for _, f := range e.findings {
		if f.Severity > observed {
			observed = f.Severity
		}
	}
	switch {
	case observed > e.state:
		// Escalate immediately.
		tr := e.transition(tNs, observed)
		return tNs, tr
	case observed < e.state:
		e.clean++
		if e.clean >= e.cfg.RecoverTicks {
			tr := e.transition(tNs, observed)
			return tNs, tr
		}
	default:
		e.clean = 0
	}
	return tNs, nil
}

// transition moves the state machine to next and records the change.
func (e *engine) transition(tNs int64, next State) *Transition {
	tr := Transition{TNs: tNs, From: e.state, To: next}
	for _, f := range e.findings {
		if f.Severity == next {
			tr.Rules = append(tr.Rules, f.Rule)
			tr.Evidence = append(tr.Evidence, f.Evidence)
		}
	}
	e.state = next
	e.clean = 0
	if len(e.transitions) == transitionWindow {
		copy(e.transitions, e.transitions[1:])
		e.transitions = e.transitions[:transitionWindow-1]
	}
	e.transitions = append(e.transitions, tr)
	e.transitionsTotal++
	return &tr
}

// evaluate runs every rule in a fixed order (burn targets in config
// order, then headroom, queue, WAL, stall), so finding and evidence
// lists are deterministic for a given sample history.
func (e *engine) evaluate(nowNs int64) []Finding {
	var out []Finding
	targets := append([]string(nil), e.cfg.Burn.Targets...)
	sort.Strings(targets)
	for _, target := range targets {
		if f, ok := e.burnFinding(nowNs, target); ok {
			out = append(out, f)
		}
	}
	if f, ok := e.headroomFinding(nowNs); ok {
		out = append(out, f)
	}
	if f, ok := e.queueSaturationFinding(); ok {
		out = append(out, f)
	}
	if f, ok := e.oldestWaitFinding(); ok {
		out = append(out, f)
	}
	if f, ok := e.walFinding(); ok {
		out = append(out, f)
	}
	if f, ok := e.stallFinding(nowNs); ok {
		out = append(out, f)
	}
	return out
}

// burnFinding implements the multi-window burn rate for one latency
// histogram: burn = (bad fraction over window) / budget, and both the
// fast and slow windows must exceed the threshold. Windows shorter than
// configured (cold start, short test runs) evaluate over the available
// history once two samples exist — documented semantics, not a special
// case: the burn over "everything we have seen" is the best estimate of
// both windows until the rings fill.
func (e *engine) burnFinding(nowNs int64, target string) (Finding, bool) {
	cfg := e.cfg.Burn
	countR := e.store.lookup(target + ":count")
	goodR := e.store.lookup(target + ":good")
	if countR == nil || goodR == nil {
		return Finding{}, false
	}
	fastBurn, fastOK := burnOver(countR, goodR, nowNs, cfg.FastWindow.Nanoseconds(), cfg.Budget)
	slowBurn, slowOK := burnOver(countR, goodR, nowNs, cfg.SlowWindow.Nanoseconds(), cfg.Budget)
	if !fastOK || !slowOK {
		return Finding{}, false
	}
	burn := math.Min(fastBurn, slowBurn) // the binding window
	f := Finding{
		Value: burn,
		Evidence: fmt.Sprintf("latency burn %.1f×/%.1f× (fast/slow) of %.3g budget at objective %s on %s",
			fastBurn, slowBurn, cfg.Budget, cfg.Objective, target),
	}
	switch {
	case burn >= cfg.CriticalBurn:
		f.Severity, f.Threshold = Critical, cfg.CriticalBurn
	case burn >= cfg.DegradedBurn:
		f.Severity, f.Threshold = Degraded, cfg.DegradedBurn
	default:
		return Finding{}, false
	}
	f.Rule = "slo-burn:" + target
	return f, true
}

// burnOver computes the budget-burn multiple over one window; ok is
// false until the window has two samples and at least one observation.
func burnOver(countR, goodR *seriesRing, nowNs, windowNs int64, budget float64) (float64, bool) {
	dN, _, okN := countR.delta(nowNs, windowNs)
	dGood, _, okG := goodR.delta(nowNs, windowNs)
	if !okN || !okG || dN < 0.5 {
		return 0, false
	}
	bad := (dN - dGood) / dN
	if bad < 0 {
		bad = 0
	}
	return bad / budget, true
}

// headroomFinding enforces the red-line floor (critical) and projects
// the erosion trend (degraded when the current slope crosses the floor
// within the projection horizon).
func (e *engine) headroomFinding(nowNs int64) (Finding, bool) {
	cfg := e.cfg.Headroom
	r := e.store.lookup(cfg.Series)
	_, v, ok := r.latest()
	if !ok {
		return Finding{}, false
	}
	if v < cfg.Floor {
		return Finding{
			Rule: "headroom-redline", Severity: Critical,
			Value: v, Threshold: cfg.Floor,
			Evidence: fmt.Sprintf("min failover slack %.3f below red line %.3f", v, cfg.Floor),
		}, true
	}
	if cfg.TrendWindow <= 0 || cfg.ProjectionHorizon <= 0 {
		return Finding{}, false
	}
	dv, spanNs, ok := r.delta(nowNs, cfg.TrendWindow.Nanoseconds())
	// Project only from a slope fit over at least half the trend window;
	// two adjacent boot ticks are noise, not a trend.
	if !ok || 2*spanNs < cfg.TrendWindow.Nanoseconds() || dv >= 0 {
		return Finding{}, false
	}
	nsUntil := (v - cfg.Floor) * float64(spanNs) / -dv
	horizon := float64(cfg.ProjectionHorizon.Nanoseconds())
	if nsUntil > horizon {
		return Finding{}, false
	}
	eta := time.Duration(nsUntil).Round(time.Second)
	return Finding{
		Rule: "headroom-erosion", Severity: Degraded,
		Value: nsUntil / 1e9, Threshold: horizon / 1e9,
		Evidence: fmt.Sprintf("min slack %.3f eroding toward red line %.3f, crossing in ~%s at current trend",
			v, cfg.Floor, eta),
	}, true
}

// queueSaturationFinding thresholds queue depth over capacity.
func (e *engine) queueSaturationFinding() (Finding, bool) {
	cfg := e.cfg.Queue
	if cfg.Capacity <= 0 {
		return Finding{}, false
	}
	_, depth, ok := e.store.lookup(cfg.DepthSeries).latest()
	if !ok {
		return Finding{}, false
	}
	frac := depth / float64(cfg.Capacity)
	f := Finding{
		Value: frac,
		Evidence: fmt.Sprintf("admission queue %d/%d (%.0f%% full)",
			int(depth), cfg.Capacity, 100*frac),
	}
	switch {
	case cfg.CriticalFraction > 0 && frac >= cfg.CriticalFraction:
		f.Severity, f.Threshold = Critical, cfg.CriticalFraction
	case cfg.DegradedFraction > 0 && frac >= cfg.DegradedFraction:
		f.Severity, f.Threshold = Degraded, cfg.DegradedFraction
	default:
		return Finding{}, false
	}
	f.Rule = "queue-saturation"
	return f, true
}

// oldestWaitFinding thresholds the oldest queued admission's wait.
func (e *engine) oldestWaitFinding() (Finding, bool) {
	cfg := e.cfg.Queue
	_, wait, ok := e.store.lookup(cfg.OldestWaitSeries).latest()
	if !ok {
		return Finding{}, false
	}
	f := Finding{
		Value:    wait,
		Evidence: fmt.Sprintf("oldest queued admission waiting %.2fs", wait),
	}
	switch {
	case cfg.CriticalWaitSeconds > 0 && wait >= cfg.CriticalWaitSeconds:
		f.Severity, f.Threshold = Critical, cfg.CriticalWaitSeconds
	case cfg.DegradedWaitSeconds > 0 && wait >= cfg.DegradedWaitSeconds:
		f.Severity, f.Threshold = Degraded, cfg.DegradedWaitSeconds
	default:
		return Finding{}, false
	}
	f.Rule = "queue-wait"
	return f, true
}

// walFinding marks a sticky WAL error immediately critical: the
// admission path is failing closed, so readiness must drop now, not
// after a trend.
func (e *engine) walFinding() (Finding, bool) {
	_, v, ok := e.store.lookup(e.cfg.WAL.Series).latest()
	if !ok || v < 0.5 {
		return Finding{}, false
	}
	return Finding{
		Rule: "wal-sticky-error", Severity: Critical,
		Value: v, Threshold: 1,
		Evidence: "write-ahead log carries a sticky commit error; admissions are failing closed",
	}, true
}

// stallFinding is the placer watchdog: the queue has stayed non-empty
// across a full window with zero placement progress. One window is
// degraded, two are critical, so an unfolding stall walks the state
// machine through both stages.
func (e *engine) stallFinding(nowNs int64) (Finding, bool) {
	cfg := e.cfg.Stall
	if cfg.Window <= 0 {
		return Finding{}, false
	}
	depthR := e.store.lookup(cfg.DepthSeries)
	progR := e.store.lookup(cfg.ProgressSeries)
	_, depth, ok := depthR.latest()
	if !ok || depth < 0.5 {
		return Finding{}, false
	}
	windowNs := cfg.Window.Nanoseconds()
	stalled := func(spanWindowNs int64) (int64, bool) {
		dProg, spanNs, ok := progR.delta(nowNs, spanWindowNs)
		if !ok || spanNs < spanWindowNs || dProg >= 0.5 {
			return 0, false
		}
		minDepth, ok := depthR.minSince(nowNs - spanNs)
		if !ok || minDepth < 0.5 {
			return 0, false
		}
		return spanNs, true
	}
	span, isStalled := stalled(windowNs)
	if !isStalled {
		return Finding{}, false
	}
	sev, threshold := Degraded, float64(windowNs)/1e9
	if span2, crit := stalled(2 * windowNs); crit {
		sev, threshold, span = Critical, 2*float64(windowNs)/1e9, span2
	}
	return Finding{
		Rule: "placer-stall", Severity: sev,
		Value: float64(span) / 1e9, Threshold: threshold,
		Evidence: fmt.Sprintf("no placement progress for %s with %d admissions queued",
			time.Duration(span).Round(time.Millisecond), int(depth)),
	}, true
}
