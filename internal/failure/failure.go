// Package failure implements the paper's worst-overload failure planning
// (§V-B): "To cause f server failures, we select f servers that result in
// the distribution of the highest number of clients to a single server
// (resulting in the highest possible load on a server)."
//
// Following the paper's system model (§IV), a tenant's analytic workload
// is shared between its γ replicas: each of the tenant's clients spreads
// its queries evenly over the tenant's surviving replica servers. A server
// therefore carries a (fractional) client load of Σ_t clients_t/s_t over
// its hosted tenants t, where s_t is the tenant's surviving replica count.
// When a server fails, each affected tenant's client load redistributes to
// its remaining replicas; tenants whose servers all failed become
// unavailable.
package failure

import (
	"fmt"
	"math"

	"cubefit/internal/packing"
)

// Assignment tracks the fractional client load each server carries, derived
// from a placement and mutated by failures.
type Assignment struct {
	p      *packing.Placement
	failed map[int]bool
	// survivors[t] = number of live replicas of tenant t.
	survivors map[packing.TenantID]int
	// load[s] = Σ clients_t / survivors_t over live tenants t hosted on s.
	load []float64
	// lost counts clients of tenants that lost all replicas.
	lost int
}

// NewAssignment derives the initial per-server client loads from the
// placement: every tenant's clients spread evenly over its γ replicas.
func NewAssignment(p *packing.Placement) *Assignment {
	a := &Assignment{
		p:         p,
		failed:    make(map[int]bool),
		survivors: make(map[packing.TenantID]int, p.NumTenants()),
		load:      make([]float64, p.NumServers()),
	}
	for _, t := range p.Tenants() {
		live := 0
		for _, h := range p.TenantHosts(t.ID) {
			if h >= 0 {
				live++
			}
		}
		a.survivors[t.ID] = live
	}
	for _, s := range p.Servers() {
		a.load[s.ID()] = a.computeLoad(s)
	}
	return a
}

func (a *Assignment) computeLoad(s *packing.Server) float64 {
	sum := 0.0
	for _, r := range s.Replicas() {
		t, ok := a.p.Tenant(r.Tenant)
		if !ok {
			continue
		}
		if live := a.survivors[r.Tenant]; live > 0 {
			sum += float64(t.Clients) / float64(live)
		}
	}
	return sum
}

// ClientLoad returns the fractional client load on server s (0 if failed).
func (a *Assignment) ClientLoad(s int) float64 {
	if s < 0 || s >= len(a.load) || a.failed[s] {
		return 0
	}
	return a.load[s]
}

// TenantShare returns the client load tenant id contributes to each of its
// surviving servers (clients divided by surviving replicas; 0 if the
// tenant is unavailable).
func (a *Assignment) TenantShare(id packing.TenantID) float64 {
	t, ok := a.p.Tenant(id)
	if !ok {
		return 0
	}
	live := a.survivors[id]
	if live == 0 {
		return 0
	}
	return float64(t.Clients) / float64(live)
}

// SurvivingHosts returns the live servers hosting tenant id.
func (a *Assignment) SurvivingHosts(id packing.TenantID) []int {
	var out []int
	for _, h := range a.p.TenantHosts(id) {
		if h >= 0 && !a.failed[h] {
			out = append(out, h)
		}
	}
	return out
}

// Lost returns the total clients of tenants that lost every replica.
func (a *Assignment) Lost() int { return a.lost }

// Failed reports whether server s has been failed.
func (a *Assignment) Failed(s int) bool { return a.failed[s] }

// MaxClientLoad returns the highest client load across surviving servers
// and the server holding it (-1 when no server survives).
func (a *Assignment) MaxClientLoad() (server int, clients float64) {
	server = -1
	for s, c := range a.load {
		if a.failed[s] {
			continue
		}
		if server == -1 || c > clients {
			server, clients = s, c
		}
	}
	return server, clients
}

// Snapshot returns a copy of the live client loads keyed by server.
func (a *Assignment) Snapshot() map[int]float64 {
	out := make(map[int]float64, len(a.load))
	for s, c := range a.load {
		if !a.failed[s] {
			out[s] = c
		}
	}
	return out
}

// Fail marks server s failed: each hosted tenant's client load
// redistributes evenly over its remaining replicas. Clients of
// fully-failed tenants are counted as lost.
func (a *Assignment) Fail(s int) error {
	if s < 0 || s >= len(a.load) {
		return fmt.Errorf("failure: no such server %d", s)
	}
	if a.failed[s] {
		return fmt.Errorf("failure: server %d already failed", s)
	}
	a.failed[s] = true
	a.load[s] = 0
	for _, r := range a.p.Server(s).Replicas() {
		id := r.Tenant
		t, ok := a.p.Tenant(id)
		if !ok {
			continue
		}
		before := a.survivors[id]
		if before <= 0 {
			continue
		}
		after := before - 1
		a.survivors[id] = after
		if after == 0 {
			a.lost += t.Clients
			continue
		}
		delta := float64(t.Clients) * (1/float64(after) - 1/float64(before))
		for _, h := range a.p.TenantHosts(id) {
			if h >= 0 && h != s && !a.failed[h] {
				a.load[h] += delta
			}
		}
	}
	return nil
}

// Clone deep-copies the assignment (the placement is shared, read-only).
func (a *Assignment) Clone() *Assignment {
	cp := &Assignment{
		p:         a.p,
		failed:    make(map[int]bool, len(a.failed)),
		survivors: make(map[packing.TenantID]int, len(a.survivors)),
		load:      make([]float64, len(a.load)),
		lost:      a.lost,
	}
	for k, v := range a.failed {
		cp.failed[k] = v
	}
	for k, v := range a.survivors {
		cp.survivors[k] = v
	}
	copy(cp.load, a.load)
	return cp
}

// Plan is a chosen set of servers to fail and the resulting overload.
type Plan struct {
	// Servers to fail, in failure order.
	Servers []int
	// MaxClientLoad is the highest client load on any surviving server
	// after all failures.
	MaxClientLoad float64
	// MaxServer is the surviving server carrying MaxClientLoad.
	MaxServer int
	// LostClients counts clients of tenants that lost every replica.
	LostClients int
}

// WorstCase finds the set of f servers whose simultaneous failure pushes
// the most client load onto a single surviving server. For f ≤ 2 the
// search is exhaustive over all server subsets (as is feasible for the
// paper's 69-server cluster); larger f extends the exhaustive pair search
// greedily.
func WorstCase(p *packing.Placement, f int) (Plan, error) {
	n := p.NumServers()
	if f < 0 {
		return Plan{}, fmt.Errorf("failure: negative failure count %d", f)
	}
	if f > n {
		return Plan{}, fmt.Errorf("failure: cannot fail %d of %d servers", f, n)
	}
	base := NewAssignment(p)
	if f == 0 {
		srv, c := base.MaxClientLoad()
		return Plan{MaxClientLoad: c, MaxServer: srv}, nil
	}

	exhaustive := 2
	if f < exhaustive {
		exhaustive = f
	}
	best := Plan{MaxClientLoad: math.Inf(-1), MaxServer: -1}
	var rec func(start int, chosen []int, a *Assignment)
	rec = func(start int, chosen []int, a *Assignment) {
		if len(chosen) == exhaustive {
			plan := a
			tail := make([]int, 0, f-exhaustive)
			if f > exhaustive {
				plan = a.Clone()
				tail = greedyExtend(plan, f-exhaustive)
			}
			srv, c := plan.MaxClientLoad()
			if c > best.MaxClientLoad {
				servers := append(append([]int{}, chosen...), tail...)
				best = Plan{
					Servers:       servers,
					MaxClientLoad: c,
					MaxServer:     srv,
					LostClients:   plan.Lost(),
				}
			}
			return
		}
		for s := start; s < n; s++ {
			next := a.Clone()
			if err := next.Fail(s); err != nil {
				continue
			}
			rec(s+1, append(chosen, s), next)
		}
	}
	rec(0, nil, base)
	if best.MaxServer == -1 && len(best.Servers) == 0 {
		return Plan{}, fmt.Errorf("failure: no feasible plan for f=%d", f)
	}
	return best, nil
}

// greedyExtend fails `extra` more servers one at a time, each time picking
// the failure that maximizes the resulting single-server client load.
// It mutates a and returns the chosen servers.
func greedyExtend(a *Assignment, extra int) []int {
	var chosen []int
	for k := 0; k < extra; k++ {
		bestS := -1
		bestC := math.Inf(-1)
		for s := range a.load {
			if a.failed[s] {
				continue
			}
			trial := a.Clone()
			if err := trial.Fail(s); err != nil {
				continue
			}
			if _, c := trial.MaxClientLoad(); c > bestC {
				bestS, bestC = s, c
			}
		}
		if bestS < 0 {
			break
		}
		_ = a.Fail(bestS)
		chosen = append(chosen, bestS)
	}
	return chosen
}

// Apply executes a plan against a fresh assignment derived from the
// placement and returns the post-failure assignment.
func Apply(p *packing.Placement, plan Plan) (*Assignment, error) {
	a := NewAssignment(p)
	for _, s := range plan.Servers {
		if err := a.Fail(s); err != nil {
			return nil, err
		}
	}
	return a, nil
}
