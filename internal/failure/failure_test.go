package failure

import (
	"math"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/workload"

	"cubefit/internal/core"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// buildPlacement constructs a placement with explicit replica hosts for
// hand-verified scenarios.
func buildPlacement(t *testing.T, gamma int, tenants []packing.Tenant, hosts map[packing.TenantID][]int) *packing.Placement {
	t.Helper()
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		t.Fatal(err)
	}
	maxServer := -1
	for _, hs := range hosts {
		for _, h := range hs {
			if h > maxServer {
				maxServer = h
			}
		}
	}
	for s := 0; s <= maxServer; s++ {
		p.OpenServer()
	}
	for _, tn := range tenants {
		if err := p.AddTenant(tn); err != nil {
			t.Fatal(err)
		}
		for i, r := range p.Replicas(tn) {
			if err := p.Place(hosts[tn.ID][i], r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

func TestAssignmentInitialLoads(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{
			{ID: 1, Load: 0.4, Clients: 10},
			{ID: 2, Load: 0.2, Clients: 5},
		},
		map[packing.TenantID][]int{
			1: {0, 1},
			2: {1, 2},
		})
	a := NewAssignment(p)
	// Tenant 1 spreads 10 clients over servers {0,1}: 5 each. Tenant 2
	// spreads 5 over {1,2}: 2.5 each.
	if got := a.ClientLoad(0); !almost(got, 5) {
		t.Fatalf("server 0 load = %v, want 5", got)
	}
	if got := a.ClientLoad(1); !almost(got, 7.5) {
		t.Fatalf("server 1 load = %v, want 7.5", got)
	}
	if got := a.ClientLoad(2); !almost(got, 2.5) {
		t.Fatalf("server 2 load = %v, want 2.5", got)
	}
	srv, c := a.MaxClientLoad()
	if srv != 1 || !almost(c, 7.5) {
		t.Fatalf("max = server %d with %v, want server 1 with 7.5", srv, c)
	}
	if got := a.TenantShare(1); !almost(got, 5) {
		t.Fatalf("tenant 1 share = %v, want 5", got)
	}
}

func TestFailRedistributesLoad(t *testing.T) {
	p := buildPlacement(t, 3,
		[]packing.Tenant{{ID: 1, Load: 0.3, Clients: 9}},
		map[packing.TenantID][]int{1: {0, 1, 2}})
	a := NewAssignment(p)
	// 9 clients over 3 replicas: 3 each.
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	// Now 9 clients over 2 survivors: 4.5 each.
	if got := a.ClientLoad(1); !almost(got, 4.5) {
		t.Fatalf("server 1 load = %v, want 4.5", got)
	}
	if got := a.ClientLoad(2); !almost(got, 4.5) {
		t.Fatalf("server 2 load = %v, want 4.5", got)
	}
	if a.ClientLoad(0) != 0 || !a.Failed(0) {
		t.Fatal("failed server still reports load")
	}
	if a.Lost() != 0 {
		t.Fatalf("lost = %d, want 0", a.Lost())
	}
	if hosts := a.SurvivingHosts(1); len(hosts) != 2 {
		t.Fatalf("surviving hosts = %v", hosts)
	}
}

// TestFractionalSingleClient is the integrality case that motivates the
// query-level sharing model: a 1-client tenant on 3 replicas contributes
// 1/3 to each, and after one failure 1/2 to each survivor — never a whole
// client to a single server.
func TestFractionalSingleClient(t *testing.T) {
	p := buildPlacement(t, 3,
		[]packing.Tenant{{ID: 1, Load: 0.1, Clients: 1}},
		map[packing.TenantID][]int{1: {0, 1, 2}})
	a := NewAssignment(p)
	if got := a.ClientLoad(0); !almost(got, 1.0/3) {
		t.Fatalf("initial share = %v, want 1/3", got)
	}
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	if got := a.ClientLoad(1); !almost(got, 0.5) {
		t.Fatalf("post-failure share = %v, want 1/2", got)
	}
}

func TestFailCascadeLosesTenant(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 8}},
		map[packing.TenantID][]int{1: {0, 1}})
	a := NewAssignment(p)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	if got := a.ClientLoad(1); !almost(got, 8) {
		t.Fatalf("server 1 load after first failure = %v, want 8", got)
	}
	if err := a.Fail(1); err != nil {
		t.Fatal(err)
	}
	if a.Lost() != 8 {
		t.Fatalf("lost = %d, want 8", a.Lost())
	}
	if a.TenantShare(1) != 0 {
		t.Fatal("dead tenant still reports a share")
	}
}

func TestFailErrors(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 4}},
		map[packing.TenantID][]int{1: {0, 1}})
	a := NewAssignment(p)
	if err := a.Fail(99); err == nil {
		t.Fatal("failing unknown server succeeded")
	}
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Fail(0); err == nil {
		t.Fatal("double failure succeeded")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 8}},
		map[packing.TenantID][]int{1: {0, 1}})
	a := NewAssignment(p)
	b := a.Clone()
	if err := b.Fail(0); err != nil {
		t.Fatal(err)
	}
	if a.Failed(0) || !almost(a.ClientLoad(1), 4) {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestWorstCaseSingleFailure(t *testing.T) {
	// Server 1 is the shared neighbour of both tenants; failing server 0
	// moves tenant 1's full 8 clients onto it (4+4+3 = 11 total), failing
	// server 2 moves tenant 2's full 6 (4+3+3 = 10). Worst is server 0.
	p := buildPlacement(t, 2,
		[]packing.Tenant{
			{ID: 1, Load: 0.4, Clients: 8},
			{ID: 2, Load: 0.3, Clients: 6},
		},
		map[packing.TenantID][]int{
			1: {0, 1},
			2: {1, 2},
		})
	plan, err := WorstCase(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Servers) != 1 || plan.Servers[0] != 0 {
		t.Fatalf("worst plan failed servers %v, want [0]", plan.Servers)
	}
	if plan.MaxServer != 1 || !almost(plan.MaxClientLoad, 11) {
		t.Fatalf("worst overload = server %d with %v, want server 1 with 11",
			plan.MaxServer, plan.MaxClientLoad)
	}
}

func TestWorstCaseZeroFailures(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 8}},
		map[packing.TenantID][]int{1: {0, 1}})
	plan, err := WorstCase(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Servers) != 0 || !almost(plan.MaxClientLoad, 4) {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestWorstCaseErrors(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 8}},
		map[packing.TenantID][]int{1: {0, 1}})
	if _, err := WorstCase(p, -1); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := WorstCase(p, 3); err == nil {
		t.Fatal("f > n accepted")
	}
}

// TestWorstCasePairBeatsRandomPairs: the exhaustive pair search must find
// an overload at least as bad as any other pair.
func TestWorstCasePairBeatsRandomPairs(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := cf.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	p := cf.Placement()
	plan, err := WorstCase(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumServers()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			a := NewAssignment(p)
			if err := a.Fail(x); err != nil {
				t.Fatal(err)
			}
			if err := a.Fail(y); err != nil {
				t.Fatal(err)
			}
			if _, c := a.MaxClientLoad(); c > plan.MaxClientLoad+1e-9 {
				t.Fatalf("pair {%d,%d} yields %v clients > plan %v", x, y, c, plan.MaxClientLoad)
			}
		}
	}
}

// TestCubeFitReserveBoundsClientLoad ties the failure model back to
// Theorem 1: for a CubeFit γ=3 placement, ANY two failures leave every
// server's client load within the calibrated capacity.
func TestCubeFitReserveBoundsClientLoad(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := workload.NewZipf(3, workload.MaxClientsPerServer)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := cf.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := WorstCase(cf.Placement(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxClientLoad > workload.MaxClientsPerServer+1e-9 {
		t.Fatalf("worst 2-failure client load %v exceeds capacity %d",
			plan.MaxClientLoad, workload.MaxClientsPerServer)
	}
}

func TestApply(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{
			{ID: 1, Load: 0.4, Clients: 8},
			{ID: 2, Load: 0.3, Clients: 6},
		},
		map[packing.TenantID][]int{
			1: {0, 1},
			2: {1, 2},
		})
	plan, err := WorstCase(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, c := a.MaxClientLoad(); !almost(c, plan.MaxClientLoad) {
		t.Fatalf("applied max %v != planned %v", c, plan.MaxClientLoad)
	}
	// Applying a plan with a bogus server errors.
	if _, err := Apply(p, Plan{Servers: []int{42}}); err == nil {
		t.Fatal("bogus plan applied")
	}
}

func TestSnapshot(t *testing.T) {
	p := buildPlacement(t, 2,
		[]packing.Tenant{{ID: 1, Load: 0.4, Clients: 8}},
		map[packing.TenantID][]int{1: {0, 1}})
	a := NewAssignment(p)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if _, ok := snap[0]; ok {
		t.Fatal("failed server present in snapshot")
	}
	if !almost(snap[1], 8) {
		t.Fatalf("snapshot[1] = %v, want 8", snap[1])
	}
}

// TestGreedyExtendBeyondPairs exercises f=3 (greedy extension).
func TestGreedyExtendBeyondPairs(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := cf.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	plan3, err := WorstCase(cf.Placement(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan3.Servers) != 3 {
		t.Fatalf("plan servers = %v", plan3.Servers)
	}
	plan2, err := WorstCase(cf.Placement(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.MaxClientLoad < plan2.MaxClientLoad-1e-9 {
		t.Fatalf("three failures %v milder than two %v", plan3.MaxClientLoad, plan2.MaxClientLoad)
	}
}
