package rebalance

import (
	"math"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/workload"
)

// churned builds a CubeFit placement, then removes a large fraction of
// tenants to create fragmentation.
func churned(t *testing.T, n int, removeFrac float64, seed uint64) *packing.Placement {
	t.Helper()
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewLoadSource(1, seed)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, n)
	if err := packing.PlaceAll(cf, tenants); err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1)
	for _, tn := range tenants {
		if r.Float64() < removeFrac {
			if err := cf.Remove(tn.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cf.Placement()
}

func TestRepackReducesServersAfterChurn(t *testing.T) {
	p := churned(t, 800, 0.6, 42)
	fresh, plan, err := Repack(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BeforeServers != p.NumUsedServers() {
		t.Fatalf("plan.Before = %d, placement has %d", plan.BeforeServers, p.NumUsedServers())
	}
	if plan.AfterServers != fresh.NumUsedServers() {
		t.Fatalf("plan.After = %d, fresh has %d", plan.AfterServers, fresh.NumUsedServers())
	}
	if plan.AfterServers >= plan.BeforeServers {
		t.Fatalf("repack did not consolidate: %d -> %d", plan.BeforeServers, plan.AfterServers)
	}
	if !plan.Worthwhile(1) {
		t.Fatal("plan not worthwhile despite saving servers")
	}
	if err := fresh.Validate(); err != nil {
		t.Fatalf("repacked placement not robust: %v", err)
	}
}

func TestPlanMovesConsistent(t *testing.T) {
	p := churned(t, 400, 0.5, 7)
	fresh, plan, err := Repack(p)
	if err != nil {
		t.Fatal(err)
	}
	movedLoad := 0.0
	for _, m := range plan.Moves {
		tn, ok := p.Tenant(m.Tenant)
		if !ok {
			t.Fatalf("move references unknown tenant %d", m.Tenant)
		}
		hosts := p.TenantHosts(m.Tenant)
		if hosts[m.Replica] != m.From {
			t.Fatalf("move %+v: replica lives on %d", m, hosts[m.Replica])
		}
		if m.From == m.To {
			t.Fatalf("no-op move %+v", m)
		}
		if !fresh.Server(m.To).Hosts(m.Tenant) {
			t.Fatalf("move %+v: destination does not host tenant in fresh placement", m)
		}
		movedLoad += p.ReplicaSize(tn)
	}
	if math.Abs(movedLoad-plan.MovedLoad) > 1e-9 {
		t.Fatalf("moved load %v != plan %v", movedLoad, plan.MovedLoad)
	}
}

func TestRepackMinimizesStayingReplicas(t *testing.T) {
	// A replica whose server coincides between old and new placements must
	// not be moved.
	p := churned(t, 300, 0.4, 13)
	fresh, plan, err := Repack(p)
	if err != nil {
		t.Fatal(err)
	}
	moved := make(map[packing.TenantID]int)
	for _, m := range plan.Moves {
		moved[m.Tenant]++
	}
	for _, tn := range p.Tenants() {
		old := p.TenantHosts(tn.ID)
		new_ := fresh.TenantHosts(tn.ID)
		common := 0
		used := make(map[int]bool)
		for _, oh := range old {
			for _, nh := range new_ {
				if oh == nh && !used[nh] {
					used[nh] = true
					common++
					break
				}
			}
		}
		wantMoves := len(old) - common
		if moved[tn.ID] != wantMoves {
			t.Fatalf("tenant %d: %d moves, want %d (old %v new %v)",
				tn.ID, moved[tn.ID], wantMoves, old, new_)
		}
	}
}

func TestApplyReproducesFreshPlacement(t *testing.T) {
	p := churned(t, 400, 0.5, 99)
	fresh, plan, err := Repack(p)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if applied.NumUsedServers() != fresh.NumUsedServers() {
		t.Fatalf("applied uses %d servers, fresh %d",
			applied.NumUsedServers(), fresh.NumUsedServers())
	}
	// Tenant host multisets must agree.
	for _, tn := range p.Tenants() {
		a := applied.TenantHosts(tn.ID)
		f := fresh.TenantHosts(tn.ID)
		am := make(map[int]int)
		fm := make(map[int]int)
		for i := range a {
			am[a[i]]++
			fm[f[i]]++
		}
		for k, v := range fm {
			if am[k] != v {
				t.Fatalf("tenant %d hosts differ: applied %v, fresh %v", tn.ID, a, f)
			}
		}
	}
	if err := applied.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyEmptyPlanIsIdentity(t *testing.T) {
	p := churned(t, 100, 0, 5)
	applied, err := Apply(p, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if applied.NumUsedServers() != p.NumUsedServers() {
		t.Fatalf("identity apply changed server count: %d vs %d",
			applied.NumUsedServers(), p.NumUsedServers())
	}
}

func TestWorthwhile(t *testing.T) {
	pl := Plan{BeforeServers: 10, AfterServers: 8}
	if !pl.Worthwhile(2) || pl.Worthwhile(3) {
		t.Fatalf("Worthwhile logic wrong for %+v", pl)
	}
}

func TestRepackNoChurnStable(t *testing.T) {
	// Without churn the repack may still shuffle, but must never increase
	// the server count.
	p := churned(t, 500, 0, 123)
	_, plan, err := Repack(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AfterServers > plan.BeforeServers {
		t.Fatalf("repack increased servers: %d -> %d", plan.BeforeServers, plan.AfterServers)
	}
}
