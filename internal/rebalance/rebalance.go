// Package rebalance implements periodic consolidation maintenance: after
// tenant churn leaves servers underutilized, Repack computes a fresh
// offline placement for the current tenant population and the migration
// plan that gets there. This complements the paper's arrival-only model
// with the "dynamic consolidation" a long-running deployment needs (see
// DESIGN.md §7); migration cost is surfaced so operators can trade server
// savings against data movement.
package rebalance

import (
	"fmt"
	"sort"

	"cubefit/internal/core"
	"cubefit/internal/offline"
	"cubefit/internal/packing"
)

// Move relocates one replica.
type Move struct {
	Tenant  packing.TenantID
	Replica int
	From    int
	To      int
}

// Plan is the outcome of a repack computation.
type Plan struct {
	// Moves lists the replica migrations, ordered by tenant then replica.
	Moves []Move
	// MovedLoad is the total replica load being migrated (a proxy for the
	// bytes to copy).
	MovedLoad float64
	// BeforeServers and AfterServers count used servers.
	BeforeServers int
	AfterServers  int
}

// Worthwhile reports whether the plan saves at least minSavedServers.
func (pl Plan) Worthwhile(minSavedServers int) bool {
	return pl.BeforeServers-pl.AfterServers >= minSavedServers
}

// Repack computes a fresh placement for the current tenants of p and the
// migration plan from p to it. Two candidates are evaluated — offline
// First Fit Decreasing and a fresh CubeFit pass over the live tenants —
// and the one using fewer servers wins; if neither beats the current
// placement, the plan is a no-op (no moves, AfterServers equal to
// BeforeServers) and p itself is returned. The input placement is never
// modified; a non-trivial returned placement is robust (it passes
// packing.Validate).
//
// Replica indices are matched by position: replica i moves from its
// current host to the new placement's host i. Replicas whose host does
// not change produce no move.
func Repack(p *packing.Placement) (*packing.Placement, Plan, error) {
	tenants := p.Tenants()
	fresh, err := bestCandidate(p.Gamma(), tenants)
	if err != nil {
		return nil, Plan{}, fmt.Errorf("rebalance: %w", err)
	}
	if fresh.NumUsedServers() >= p.NumUsedServers() {
		n := p.NumUsedServers()
		return p, Plan{BeforeServers: n, AfterServers: n}, nil
	}
	plan := Plan{
		BeforeServers: p.NumUsedServers(),
		AfterServers:  fresh.NumUsedServers(),
	}
	for _, t := range tenants {
		oldHosts := p.TenantHosts(t.ID)
		newHosts := fresh.TenantHosts(t.ID)
		// Minimize moves: keep replicas whose current host also appears in
		// the new host set by matching identical hosts first.
		newUsed := make([]bool, len(newHosts))
		oldMoved := make([]bool, len(oldHosts))
		for i, oh := range oldHosts {
			for j, nh := range newHosts {
				if !newUsed[j] && oh == nh {
					newUsed[j] = true
					oldMoved[i] = true
					break
				}
			}
		}
		size := p.ReplicaSize(t)
		j := 0
		for i, oh := range oldHosts {
			if oldMoved[i] {
				continue
			}
			for newUsed[j] {
				j++
			}
			plan.Moves = append(plan.Moves, Move{
				Tenant:  t.ID,
				Replica: i,
				From:    oh,
				To:      newHosts[j],
			})
			plan.MovedLoad += size
			newUsed[j] = true
		}
	}
	sort.Slice(plan.Moves, func(i, j int) bool {
		if plan.Moves[i].Tenant != plan.Moves[j].Tenant {
			return plan.Moves[i].Tenant < plan.Moves[j].Tenant
		}
		return plan.Moves[i].Replica < plan.Moves[j].Replica
	})
	return fresh, plan, nil
}

// Apply verifies a plan against the placement it was computed for by
// executing the moves on a deep reconstruction and validating the result.
// It returns the migrated placement. This lets an operator double-check a
// plan before acting on it.
func Apply(p *packing.Placement, plan Plan) (*packing.Placement, error) {
	// Reconstruct the current placement.
	next, err := packing.NewPlacement(p.Gamma())
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.NumServers(); i++ {
		next.OpenServer()
	}
	target := make(map[moveKey]int, len(plan.Moves))
	maxTo := -1
	for _, m := range plan.Moves {
		target[moveKey{tenant: m.Tenant, replica: m.Replica}] = m.To
		if m.To > maxTo {
			maxTo = m.To
		}
	}
	for next.NumServers() <= maxTo {
		next.OpenServer()
	}
	for _, t := range p.Tenants() {
		if err := next.AddTenant(t); err != nil {
			return nil, err
		}
		hosts := p.TenantHosts(t.ID)
		for i, rep := range next.Replicas(t) {
			dest := hosts[i]
			if to, ok := target[moveKey{tenant: t.ID, replica: i}]; ok {
				dest = to
			}
			if err := next.Place(dest, rep); err != nil {
				return nil, fmt.Errorf("rebalance: applying move for tenant %d replica %d: %w",
					t.ID, i, err)
			}
		}
	}
	if err := next.Validate(); err != nil {
		return nil, fmt.Errorf("rebalance: migrated placement invalid: %w", err)
	}
	return next, nil
}

type moveKey struct {
	tenant  packing.TenantID
	replica int
}

// bestCandidate returns the better of an offline FFD placement and a
// fresh CubeFit re-run (in tenant-ID order) over the tenants. FFD wins on
// continuous load mixes; CubeFit's structured packing often wins on
// client-quantized workloads.
func bestCandidate(gamma int, tenants []packing.Tenant) (*packing.Placement, error) {
	ffd, err := offline.PlaceAll(gamma, tenants)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Gamma = gamma
	cf, err := core.New(cfg)
	if err != nil {
		// γ values CubeFit rejects (none today) fall back to FFD.
		return ffd, nil
	}
	if err := packing.PlaceAll(cf, tenants); err != nil {
		return nil, err
	}
	if cf.Placement().NumUsedServers() < ffd.NumUsedServers() {
		return cf.Placement(), nil
	}
	return ffd, nil
}
