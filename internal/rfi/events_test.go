package rfi

import (
	"sort"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

type recorded struct{ events []obs.Event }

func (r *recorded) Record(e obs.Event) { r.events = append(r.events, e) }

func TestAdmissionHookOutcomes(t *testing.T) {
	r, err := New(Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []core.AdmissionPath
	r.SetAdmissionHook(func(p core.AdmissionPath) { got = append(got, p) })

	if err := r.Place(packing.Tenant{ID: 1, Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	// Duplicate admission fails and must report rejected.
	if err := r.Place(packing.Tenant{ID: 1, Load: 0.3}); err == nil {
		t.Fatal("duplicate admission succeeded")
	}
	want := []core.AdmissionPath{core.AdmitPlaced, core.AdmitRejected}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("hook outcomes = %v, want %v", got, want)
	}
}

func TestEventsMatchPlacement(t *testing.T) {
	r, err := New(Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorded{}
	r.SetRecorder(rec)

	loads := []float64{0.3, 0.45, 0.2, 0.6, 0.15, 0.35, 0.5}
	for i, l := range loads {
		if err := r.Place(packing.Tenant{ID: packing.TenantID(i), Load: l}); err != nil {
			t.Fatalf("Place(%d): %v", i, err)
		}
	}

	ds := obs.Decisions(rec.events)
	if len(ds) != len(loads) {
		t.Fatalf("decisions = %d, want %d", len(ds), len(loads))
	}
	for _, d := range ds {
		if d.Path != core.AdmitPlaced.String() {
			t.Errorf("tenant %d path = %q", d.Tenant, d.Path)
		}
		if d.Engine != "rfi" {
			t.Errorf("tenant %d engine = %q", d.Tenant, d.Engine)
		}
		if d.Probes == 0 {
			t.Errorf("tenant %d recorded no probes", d.Tenant)
		}
		hosts := r.Placement().TenantHosts(packing.TenantID(d.Tenant))
		got := make([]int, 0, len(d.Replicas))
		for _, rep := range d.Replicas {
			got = append(got, rep.Server)
		}
		want := append([]int(nil), hosts...)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("tenant %d: %d replicas logged, %d placed", d.Tenant, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tenant %d: log %v vs placement %v", d.Tenant, got, want)
			}
		}
	}

	opens := 0
	for _, e := range rec.events {
		if e.Kind == obs.KindBinOpen {
			opens++
		}
	}
	if opens != r.Placement().NumServers() {
		t.Errorf("bin_open = %d, servers = %d", opens, r.Placement().NumServers())
	}
}
