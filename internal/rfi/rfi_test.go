package rfi

import (
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/workload"
)

func mustRFI(t *testing.T, cfg Config) *RFI {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		give   Config
		wantOK bool
	}{
		{name: "defaults", give: Config{Gamma: 2}.withDefaults(), wantOK: true},
		{name: "explicit mu", give: Config{Gamma: 2, Mu: 0.9}, wantOK: true},
		{name: "mu 1", give: Config{Gamma: 2, Mu: 1}, wantOK: true},
		{name: "gamma 0", give: Config{Gamma: 0, Mu: 0.85}},
		{name: "mu negative", give: Config{Gamma: 2, Mu: -0.5}},
		{name: "mu above 1", give: Config{Gamma: 2, Mu: 1.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err == nil) != tt.wantOK {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.give, err, tt.wantOK)
			}
		})
	}
}

func TestDefaultMuApplied(t *testing.T) {
	a := mustRFI(t, Config{Gamma: 2})
	if a.Config().Mu != DefaultMu {
		t.Fatalf("mu = %v, want %v", a.Config().Mu, DefaultMu)
	}
	if a.Name() != "rfi(γ=2,μ=0.85)" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestReplicasOnDistinctServers(t *testing.T) {
	a := mustRFI(t, Config{Gamma: 2})
	if err := a.Place(packing.Tenant{ID: 1, Load: 0.6}); err != nil {
		t.Fatal(err)
	}
	hosts := a.Placement().TenantHosts(1)
	if len(hosts) != 2 || hosts[0] == hosts[1] || hosts[0] < 0 || hosts[1] < 0 {
		t.Fatalf("hosts = %v", hosts)
	}
}

// TestSingleFailureSafety is RFI's core guarantee: after any single server
// failure, no surviving server exceeds capacity.
func TestSingleFailureSafety(t *testing.T) {
	dists := []workload.Distribution{}
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	z, err := workload.NewZipf(3, workload.MaxClientsPerServer)
	if err != nil {
		t.Fatal(err)
	}
	dists = append(dists, u, z)

	for _, dist := range dists {
		src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 17)
		if err != nil {
			t.Fatal(err)
		}
		a := mustRFI(t, Config{Gamma: 2})
		for i := 0; i < 500; i++ {
			if err := a.Place(src.Next()); err != nil {
				t.Fatalf("%s tenant %d: %v", dist.Name(), i, err)
			}
		}
		p := a.Placement()
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: γ=2 placement should satisfy the (γ−1=1)-failure invariant: %v", dist.Name(), err)
		}
		for f := 0; f < p.NumServers(); f++ {
			if got := p.MaxPostFailureLoad([]int{f}); !packing.WithinCapacity(got) {
				t.Fatalf("%s: failing server %d overloads a survivor to %v", dist.Name(), f, got)
			}
		}
	}
}

// TestMuCapRespected verifies that no server's direct load exceeds μ.
func TestMuCapRespected(t *testing.T) {
	src, err := workload.NewLoadSource(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := mustRFI(t, Config{Gamma: 2, Mu: 0.7})
	for i := 0; i < 400; i++ {
		if err := a.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range a.Placement().Servers() {
		if !packing.FitsWithin(s.Level(), 0.7) {
			t.Fatalf("server %d level %v exceeds μ=0.7", s.ID(), s.Level())
		}
	}
}

// TestCannotSurviveTwoFailures demonstrates the limitation the paper
// highlights: RFI with γ=2 generally violates capacity under two
// simultaneous failures (its reserve only covers one).
func TestCannotSurviveTwoFailures(t *testing.T) {
	src, err := workload.NewLoadSource(1, 23)
	if err != nil {
		t.Fatal(err)
	}
	a := mustRFI(t, Config{Gamma: 2})
	for i := 0; i < 200; i++ {
		if err := a.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	p := a.Placement()
	n := p.NumServers()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if p.MaxPostFailureLoad([]int{x, y}) > 1 {
				return // found an overloading double failure, as expected
			}
		}
	}
	t.Fatal("expected some double failure to overload a server")
}

// TestBestFitChoosesFullest checks the Best Fit rule on a constructed case.
func TestBestFitChoosesFullest(t *testing.T) {
	a := mustRFI(t, Config{Gamma: 1, Mu: 0.7})
	// No replication, μ=0.7: 0.5 and 0.3 cannot share a server, then 0.2
	// should land on the 0.5 server (fullest feasible: 0.5+0.2 = 0.7 ≤ μ).
	for i, load := range []float64{0.5, 0.3} {
		if err := a.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.Placement().NumUsedServers(); n != 2 {
		t.Fatalf("setup used %d servers, want 2", n)
	}
	if err := a.Place(packing.Tenant{ID: 9, Load: 0.2}); err != nil {
		t.Fatal(err)
	}
	hosts := a.Placement().TenantHosts(9)
	s := a.Placement().Server(hosts[0])
	if s.Level() < 0.69 {
		t.Fatalf("best fit placed on level-%v server, want the 0.5 one", s.Level()-0.2)
	}
}

func TestDeterministic(t *testing.T) {
	src, err := workload.NewLoadSource(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 800)
	counts := [2]int{}
	for i := range counts {
		a := mustRFI(t, Config{Gamma: 2})
		if err := packing.PlaceAll(a, tenants); err != nil {
			t.Fatal(err)
		}
		counts[i] = a.Placement().NumUsedServers()
	}
	if counts[0] != counts[1] {
		t.Fatalf("non-deterministic: %v", counts)
	}
}

func TestInvalidTenantRejected(t *testing.T) {
	a := mustRFI(t, Config{Gamma: 2})
	if err := a.Place(packing.Tenant{ID: 1, Load: 0}); err == nil {
		t.Fatal("zero-load tenant accepted")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{Gamma: 0}); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	if _, err := New(Config{Gamma: 2, Mu: 2}); err == nil {
		t.Fatal("mu 2 accepted")
	}
}

// TestLevelIndexConsistency stresses the sorted index with random
// workloads and verifies it stays a permutation ordered by level.
func TestLevelIndexConsistency(t *testing.T) {
	r := rng.New(junkSeed)
	src, err := workload.NewLoadSource(1, r.Uint64())
	if err != nil {
		t.Fatal(err)
	}
	a := mustRFI(t, Config{Gamma: 2})
	for i := 0; i < 500; i++ {
		if err := a.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool)
	prevLevel := 2.0
	prevID := -1
	for i, sid := range a.byLevel {
		if seen[sid] {
			t.Fatalf("server %d appears twice in index", sid)
		}
		seen[sid] = true
		if a.pos[sid] != i {
			t.Fatalf("pos[%d] = %d, want %d", sid, a.pos[sid], i)
		}
		level := a.p.Server(sid).Level()
		if level > prevLevel || (level == prevLevel && sid < prevID) {
			t.Fatalf("index out of order at %d: (%v,%d) after (%v,%d)", i, level, sid, prevLevel, prevID)
		}
		prevLevel, prevID = level, sid
	}
	if len(seen) != a.p.NumServers() {
		t.Fatalf("index covers %d of %d servers", len(seen), a.p.NumServers())
	}
}

const junkSeed = 987654321

// TestMaxSharedCacheAccurate cross-checks the monotone max-shared cache
// against a fresh computation.
func TestMaxSharedCacheAccurate(t *testing.T) {
	src, err := workload.NewLoadSource(1, 777)
	if err != nil {
		t.Fatal(err)
	}
	a := mustRFI(t, Config{Gamma: 2})
	for i := 0; i < 400; i++ {
		if err := a.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range a.Placement().Servers() {
		want := 0.0
		s.EachShared(func(_ int, v float64) {
			if v > want {
				want = v
			}
		})
		if got := a.maxShared[s.ID()]; got < want-1e-12 || got > want+1e-12 {
			t.Fatalf("maxShared[%d] = %v, want %v", s.ID(), got, want)
		}
	}
}
