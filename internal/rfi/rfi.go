// Package rfi implements the RFI algorithm, the paper's baseline drawn
// from Schaffner et al.'s RTP system (SIGMOD 2013, reference [12]), as
// described in §V of the CubeFit paper:
//
// "RFI first searches for the server that would have the least load left
// over after a tenant is placed on it, including having enough reserved
// capacity for additional load from any single failed server (overload
// capacity) and a μ value that governs how much of the first server's total
// capacity to use for interleaving. If no such server is found, a new
// server is provisioned and the replica is placed there. For the second
// replica, the algorithm repeats the process but selects a different server
// machine."
//
// RFI reserves capacity against any SINGLE server failure; unlike CubeFit
// it cannot protect against multiple simultaneous failures.
package rfi

import (
	"fmt"
	"sort"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// DefaultMu is the interleaving parameter recommended by [12] and used in
// the paper's experiments.
const DefaultMu = 0.85

// Config parameterizes RFI.
type Config struct {
	// Gamma is the number of replicas per tenant (2 in [12]).
	Gamma int
	// Mu caps the direct load on a server: a replica may only be placed
	// where level + size ≤ Mu, leaving 1−Mu headroom for interleaving
	// failed-over load. The zero value means DefaultMu.
	Mu float64
}

func (c Config) withDefaults() Config {
	if c.Mu == 0 {
		c.Mu = DefaultMu
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Gamma < 1 {
		return fmt.Errorf("rfi: gamma %d < 1", c.Gamma)
	}
	if c.Mu <= 0 || c.Mu > 1 {
		return fmt.Errorf("rfi: mu %v outside (0,1]", c.Mu)
	}
	return nil
}

// RFI is the baseline consolidation algorithm. It is not safe for
// concurrent use.
type RFI struct {
	cfg Config
	p   *packing.Placement

	// byLevel holds server IDs sorted by (level descending, ID ascending);
	// pos is the inverse permutation. The Best Fit target is the first
	// feasible entry at or after the position where level + size ≤ μ.
	byLevel []int
	pos     []int
	// maxShared caches each server's largest pairwise shared load. Shared
	// loads only grow (RFI has no departures), so the cache is maintained
	// with O(1) monotone updates.
	maxShared []float64

	// admissionHook, when non-nil, runs after every Place attempt with the
	// outcome (AdmitPlaced or AdmitRejected); see SetAdmissionHook.
	admissionHook func(core.AdmissionPath)
	// rec, when non-nil, receives the decision event stream; every
	// emission site is guarded by a nil check (see SetRecorder).
	rec obs.Recorder
}

// engineName labels RFI's decision events.
const engineName = "rfi"

// SetAdmissionHook registers fn to run synchronously after every Place
// call with the outcome taken: core.AdmitPlaced on success (RFI is
// single-stage, so there is no finer path to attribute) and
// core.AdmitRejected on failure. The hook gives RFI the same
// admission-outcome contract as CubeFit, so the api/metrics layer counts
// all engines uniformly.
func (a *RFI) SetAdmissionHook(fn func(core.AdmissionPath)) { a.admissionHook = fn }

// SetRecorder attaches a decision flight recorder (see internal/obs). A
// nil r detaches it. r.Record runs synchronously inside Place.
func (a *RFI) SetRecorder(r obs.Recorder) { a.rec = r }

func (a *RFI) observe(p core.AdmissionPath) {
	if a.admissionHook != nil {
		a.admissionHook(p)
	}
}

// emit labels and forwards one event; callers guard with `a.rec != nil`.
func (a *RFI) emit(e obs.Event) {
	e.Engine = engineName
	a.rec.Record(e)
}

// reject closes a failed admission attempt.
func (a *RFI) reject(id packing.TenantID, err error) {
	if a.rec != nil {
		e := obs.NewEvent(obs.KindReject)
		e.Tenant = int(id)
		e.Path = core.AdmitRejected.String()
		e.Reason = err.Error()
		a.emit(e)
	}
	a.observe(core.AdmitRejected)
}

var _ packing.Algorithm = (*RFI)(nil)

// New creates an RFI instance.
func New(cfg Config) (*RFI, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := packing.NewPlacement(cfg.Gamma)
	if err != nil {
		return nil, err
	}
	return &RFI{cfg: cfg, p: p}, nil
}

// Name implements packing.Algorithm.
func (a *RFI) Name() string {
	return fmt.Sprintf("rfi(γ=%d,μ=%.2f)", a.cfg.Gamma, a.cfg.Mu)
}

// Placement implements packing.Algorithm.
func (a *RFI) Placement() *packing.Placement { return a.p }

// Config returns the configuration the instance was built with.
func (a *RFI) Config() Config { return a.cfg }

// Place admits one tenant: each replica goes, Best Fit style, to the
// feasible server with the least leftover capacity; a new server is opened
// when no server qualifies.
func (a *RFI) Place(t packing.Tenant) error {
	if a.rec != nil {
		e := obs.NewEvent(obs.KindAttempt)
		e.Tenant = int(t.ID)
		e.Size = t.Load
		e.Clients = t.Clients
		a.emit(e)
	}
	if err := a.p.AddTenant(t); err != nil {
		a.reject(t.ID, err)
		return err
	}
	for _, rep := range a.p.Replicas(t) {
		sid, probed := a.bestServer(t.ID, rep)
		if a.rec != nil {
			e := obs.NewEvent(obs.KindProbe)
			e.Tenant = int(t.ID)
			e.Replica = rep.Index
			e.Probes = probed
			e.Server = sid
			a.emit(e)
		}
		if sid < 0 {
			sid = a.openServer()
			if !a.feasible(a.p.Server(sid), t.ID, rep) {
				err := fmt.Errorf("rfi: replica of size %v infeasible even on an empty server (μ=%v)",
					rep.Size, a.cfg.Mu)
				a.reject(t.ID, err)
				return err
			}
		}
		if err := a.place(sid, t.ID, rep); err != nil {
			a.reject(t.ID, err)
			return err
		}
		if a.rec != nil {
			e := obs.NewEvent(obs.KindPlace)
			e.Tenant = int(t.ID)
			e.Replica = rep.Index
			e.Server = sid
			e.Size = rep.Size
			e.Level = a.p.Server(sid).Level()
			a.emit(e)
		}
	}
	if a.rec != nil {
		e := obs.NewEvent(obs.KindAdmit)
		e.Tenant = int(t.ID)
		e.Path = core.AdmitPlaced.String()
		a.emit(e)
	}
	a.observe(core.AdmitPlaced)
	return nil
}

func (a *RFI) openServer() int {
	sid := a.p.OpenServer()
	a.pos = append(a.pos, len(a.byLevel))
	a.byLevel = append(a.byLevel, sid)
	a.maxShared = append(a.maxShared, 0)
	if a.rec != nil {
		e := obs.NewEvent(obs.KindBinOpen)
		e.Server = sid
		a.emit(e)
	}
	return sid
}

// place commits the replica and maintains the level index and shared
// caches for every affected server.
func (a *RFI) place(sid int, id packing.TenantID, rep packing.Replica) error {
	if err := a.p.Place(sid, rep); err != nil {
		return fmt.Errorf("rfi: internal: %w", err)
	}
	s := a.p.Server(sid)
	for _, h := range a.p.TenantHosts(id) {
		if h < 0 || h == sid {
			continue
		}
		if v := s.SharedWith(h); v > a.maxShared[sid] {
			a.maxShared[sid] = v
		}
		if v := a.p.Server(h).SharedWith(sid); v > a.maxShared[h] {
			a.maxShared[h] = v
		}
	}
	a.reposition(sid)
	return nil
}

// reposition restores the (level desc, ID asc) order after sid's level
// increased: sid can only move toward the front.
func (a *RFI) reposition(sid int) {
	i := a.pos[sid]
	level := a.p.Server(sid).Level()
	// Binary search for the first position whose entry should come after
	// sid under the new key, within byLevel[0:i].
	j := sort.Search(i, func(k int) bool {
		other := a.byLevel[k]
		ol := a.p.Server(other).Level()
		return ol < level || (ol == level && other > sid) //cubefit:vet-allow floatcmp -- exact equality keyed to the stored index order
	})
	if j == i {
		return
	}
	copy(a.byLevel[j+1:i+1], a.byLevel[j:i])
	a.byLevel[j] = sid
	for k := j; k <= i; k++ {
		a.pos[a.byLevel[k]] = k
	}
}

// bestServer returns the feasible server with the highest level (least
// leftover capacity after placement), or -1, along with the number of
// servers examined. The level index makes the first feasible entry at or
// after the μ-cap boundary the Best Fit answer.
func (a *RFI) bestServer(id packing.TenantID, rep packing.Replica) (best, probed int) {
	limit := a.cfg.Mu - rep.Size + packing.CapacityEps
	start := sort.Search(len(a.byLevel), func(k int) bool {
		return a.p.Server(a.byLevel[k]).Level() <= limit
	})
	for i := start; i < len(a.byLevel); i++ {
		sid := a.byLevel[i]
		s := a.p.Server(sid)
		probed++
		// Cheap necessary condition: the cached max shared load only grows
		// once the replica lands, so failing it means infeasible.
		if !packing.WithinCapacity(s.Level() + rep.Size + a.maxShared[sid]) {
			continue
		}
		if s.Hosts(id) {
			continue
		}
		if a.feasible(s, id, rep) {
			return sid, probed
		}
	}
	return -1, probed
}

// feasible reports whether placing rep on s keeps (a) the direct load under
// the μ interleaving cap and (b) single-failure safety for s and for every
// server already hosting one of the tenant's replicas (their shared load
// with s grows by the replica size).
func (a *RFI) feasible(s *packing.Server, id packing.TenantID, rep packing.Replica) bool {
	if !packing.FitsWithin(s.Level()+rep.Size, a.cfg.Mu) {
		return false
	}
	earlier := make([]int, 0, a.cfg.Gamma-1)
	for _, h := range a.p.TenantHosts(id) {
		if h >= 0 {
			earlier = append(earlier, h)
		}
	}
	// Candidate: worst single failure after placement. Its shared load
	// with each earlier host grows by rep.Size — and once the tenant's
	// remaining replicas land elsewhere, the candidate will share at least
	// rep.Size with each of those hosts too, so anticipate that floor now
	// (otherwise an early replica could strand a later one).
	maxShared := a.maxShared[s.ID()]
	if a.cfg.Gamma > 1 && rep.Size > maxShared {
		maxShared = rep.Size
	}
	for _, h := range earlier {
		if v := s.SharedWith(h) + rep.Size; v > maxShared {
			maxShared = v
		}
	}
	if !packing.WithinCapacity(s.Level() + rep.Size + maxShared) {
		return false
	}
	// Earlier hosts: their shared load with s grows by their own replica
	// size of this tenant (equal to rep.Size).
	for _, h := range earlier {
		hs := a.p.Server(h)
		maxH := a.maxShared[h]
		if v := hs.SharedWith(s.ID()) + rep.Size; v > maxH {
			maxH = v
		}
		if !packing.WithinCapacity(hs.Level() + maxH) {
			return false
		}
	}
	return true
}
