package recovery

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// driveEngine runs a deterministic mixed workload — client-derived loads,
// explicit loads, a duplicate admission, an invalid load, departures —
// against a fresh engine, recording into rec when non-nil.
func driveEngine(t *testing.T, cfg core.Config, rec obs.Recorder) *core.CubeFit {
	t.Helper()
	cf, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		cf.SetRecorder(rec)
	}
	model := workload.DefaultLoadModel()
	id := 0
	for i := 1; i <= 30; i++ {
		clients := 1 + (i*7)%15
		tn := packing.Tenant{ID: packing.TenantID(id), Load: model.Load(clients), Clients: clients}
		if err := cf.Place(tn); err != nil {
			t.Fatalf("place %d: %v", id, err)
		}
		id++
	}
	for i := 0; i < 10; i++ {
		tn := packing.Tenant{ID: packing.TenantID(id), Load: 0.05 + float64(i)*0.07}
		if err := cf.Place(tn); err != nil {
			t.Fatalf("place %d: %v", id, err)
		}
		id++
	}
	// A duplicate admission and an invalid load: both rejected, both logged.
	if err := cf.Place(packing.Tenant{ID: 0, Load: 0.3}); err == nil {
		t.Fatal("duplicate admission succeeded")
	}
	if err := cf.Place(packing.Tenant{ID: packing.TenantID(id), Load: 1.5}); err == nil {
		t.Fatal("overload admission succeeded")
	}
	id++
	for _, victim := range []int{3, 17, 31} {
		if err := cf.Remove(packing.TenantID(victim)); err != nil {
			t.Fatalf("remove %d: %v", victim, err)
		}
	}
	// Refill after departures so recovery exercises slot reuse.
	for i := 0; i < 5; i++ {
		tn := packing.Tenant{ID: packing.TenantID(id), Load: 0.11, Clients: 4}
		if err := cf.Place(tn); err != nil {
			t.Fatalf("place %d: %v", id, err)
		}
		id++
	}
	return cf
}

func TestRebuildReproducesExactState(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	var buf bytes.Buffer
	wal := obs.NewWAL(&buf)
	live := driveEngine(t, cfg, obs.Stamp(clock.NewFake(time.Unix(0, 0)), wal))
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}

	events, torn, err := obs.ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil || torn {
		t.Fatalf("ReadWAL: torn=%v err=%v", torn, err)
	}
	rebuilt, st, err := Rebuild(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 45 || st.Rejected != 2 || st.Departed != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got, want := trace.Capture(rebuilt.Placement()), trace.Capture(live.Placement()); !reflect.DeepEqual(got, want) {
		t.Fatal("rebuilt snapshot differs from live snapshot")
	}
	if got, want := rebuilt.Stats(), live.Stats(); got != want {
		t.Fatalf("rebuilt Stats %+v, live %+v", got, want)
	}
	if err := Verify(rebuilt, events); err != nil {
		t.Fatal(err)
	}

	// The rebuilt engine must keep behaving identically: admitting the
	// same next tenant lands it on the same servers.
	next := packing.Tenant{ID: 999, Load: 0.21, Clients: 6}
	if err := live.Place(next); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Place(next); err != nil {
		t.Fatal(err)
	}
	if got, want := rebuilt.Placement().TenantHosts(999), live.Placement().TenantHosts(999); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-recovery placement diverged: %v vs %v", got, want)
	}
}

func TestRebuildDropsUncommittedTail(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	var buf bytes.Buffer
	wal := obs.NewWAL(&buf)
	live := driveEngine(t, cfg, obs.Stamp(clock.NewFake(time.Unix(0, 0)), wal))
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	events, _, err := obs.ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-admission: the attempt (and a partial placement) hit the
	// log but the closing admit never did. Recovery must not ack it.
	open := obs.NewEvent(obs.KindAttempt)
	open.Tenant = 777
	open.Size = 0.4
	place := obs.NewEvent(obs.KindStage1Place)
	place.Tenant = 777
	place.Replica = 0
	place.Server = 0
	place.Size = 0.2
	tail := append(append([]obs.Event{}, events...), open, place)

	rebuilt, st, err := Rebuild(tail, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", st.Dropped)
	}
	if _, exists := rebuilt.Placement().Tenant(777); exists {
		t.Fatal("uncommitted admission resurrected by recovery")
	}
	if got, want := trace.Capture(rebuilt.Placement()), trace.Capture(live.Placement()); !reflect.DeepEqual(got, want) {
		t.Fatal("rebuilt snapshot differs after dropping uncommitted tail")
	}
	if err := Verify(rebuilt, tail); err != nil {
		t.Fatal(err)
	}
}

func TestFromFileTornTail(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	var buf bytes.Buffer
	wal := obs.NewWAL(&buf)
	driveEngine(t, cfg, obs.Stamp(clock.NewFake(time.Unix(0, 0)), wal))
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	// Tear the final record in half, as an interrupted write would.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	cf, st, err := FromFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn {
		t.Fatal("torn tail not reported")
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFromFileCommittedBytes: recovery reports the byte offset of the
// committed prefix, and truncating the file there removes an uncommitted
// suffix of complete event lines (a bufio auto-flush that outran its
// group commit) so the log replays cleanly on the following boot.
func TestFromFileCommittedBytes(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	var buf bytes.Buffer
	wal := obs.NewWAL(&buf)
	driveEngine(t, cfg, obs.Stamp(clock.NewFake(time.Unix(0, 0)), wal))
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	committedSize := int64(buf.Len())
	// Crash mid-admission after an auto-flush: the attempt and a partial
	// placement are complete lines in the file, the closing admit is not.
	open := obs.NewEvent(obs.KindAttempt)
	open.Tenant = 777
	open.Size = 0.4
	place := obs.NewEvent(obs.KindStage1Place)
	place.Tenant = 777
	place.Replica = 0
	place.Server = 0
	place.Size = 0.4
	suffixed := obs.NewWAL(&buf)
	suffixed.Record(open)
	suffixed.Record(place)
	if err := suffixed.Sync(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "wal.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cf, st, err := FromFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", st.Dropped)
	}
	if st.CommittedBytes != committedSize {
		t.Fatalf("CommittedBytes = %d, want %d", st.CommittedBytes, committedSize)
	}
	if _, exists := cf.Placement().Tenant(777); exists {
		t.Fatal("uncommitted admission resurrected by recovery")
	}

	// The boot sequence truncates there; the trimmed log then recovers to
	// the same state with nothing dropped — the next boot is clean.
	if trimmed, err := obs.TruncateWAL(path, st.CommittedBytes); err != nil || trimmed == 0 {
		t.Fatalf("TruncateWAL: trimmed %d, err %v", trimmed, err)
	}
	cf2, st2, err := FromFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Dropped != 0 || st2.CommittedBytes != committedSize {
		t.Fatalf("after truncation: %+v", st2)
	}
	if got, want := trace.Capture(cf2.Placement()), trace.Capture(cf.Placement()); !reflect.DeepEqual(got, want) {
		t.Fatal("truncated log recovers a different state")
	}
}

func TestFromFileMissingLogIsFresh(t *testing.T) {
	cfg := core.Config{Gamma: 3, K: 10}
	cf, st, err := FromFile(filepath.Join(t.TempDir(), "absent.jsonl"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
	if cf.Placement().NumTenants() != 0 {
		t.Fatal("fresh engine is not empty")
	}
}

func TestRebuildRejectsGammaMismatch(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	var buf bytes.Buffer
	wal := obs.NewWAL(&buf)
	driveEngine(t, cfg, wal)
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	events, _, err := obs.ReadWAL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Rebuild(events, core.Config{Gamma: 3, K: 10}); err == nil ||
		!strings.Contains(err.Error(), "γ=2") {
		t.Fatalf("gamma mismatch not detected: %v", err)
	}
}

func TestExtractOpsRejectsInterleavedLog(t *testing.T) {
	a1 := obs.NewEvent(obs.KindAttempt)
	a1.Tenant = 1
	a1.Size = 0.2
	a2 := obs.NewEvent(obs.KindAttempt)
	a2.Tenant = 2
	a2.Size = 0.2
	closeBoth := obs.NewEvent(obs.KindAdmit)
	closeBoth.Tenant = 1
	if _, err := extractOps([]obs.Event{a1, a2, closeBoth}); err == nil {
		t.Fatal("interleaved attempts accepted")
	}
}
