package recovery

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
)

// shardOp is one engine operation of the sharded-recovery workload; the
// driver seals one WAL batch per op, so op i carries commit sequence i+1.
type shardOp struct {
	remove bool
	tenant packing.Tenant
	id     packing.TenantID
}

func shardOps() []shardOp {
	ops := make([]shardOp, 0, 9)
	for i := 1; i <= 7; i++ {
		ops = append(ops, shardOp{tenant: packing.Tenant{ID: packing.TenantID(i), Load: 0.1 + float64(i)*0.05}})
	}
	ops = append(ops, shardOp{remove: true, id: 3})
	ops = append(ops, shardOp{tenant: packing.Tenant{ID: 20, Load: 0.25}})
	return ops
}

// applyOps drives a prefix of the workload against cf.
func applyOps(t *testing.T, cf *core.CubeFit, ops []shardOp) {
	t.Helper()
	for i, o := range ops {
		if o.remove {
			if err := cf.Remove(o.id); err != nil {
				t.Fatalf("op %d: remove %d: %v", i+1, o.id, err)
			}
			continue
		}
		if err := cf.Place(o.tenant); err != nil {
			t.Fatalf("op %d: place %d: %v", i+1, o.tenant.ID, err)
		}
	}
}

// driveSharded replays the full workload into a sharded WAL at path,
// sealing and committing one batch per operation like the admission
// pipeline does, and returns the live engine for comparison.
func driveSharded(t *testing.T, path string, n int, cfg core.Config) *core.CubeFit {
	t.Helper()
	swal, err := obs.OpenShardedWAL(path, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cf.SetRecorder(obs.Stamp(clock.NewFake(time.Unix(0, 0)), swal))
	for i, o := range shardOps() {
		applyOps(t, cf, []shardOp{o})
		pc, serr := swal.Seal()
		if serr != nil {
			t.Fatalf("op %d: seal: %v", i+1, serr)
		}
		if cerr := pc.Commit(); cerr != nil {
			t.Fatalf("op %d: commit: %v", i+1, cerr)
		}
	}
	if err := swal.Close(); err != nil {
		t.Fatal(err)
	}
	return cf
}

// dropBatch truncates the segment file holding commit sequence seq so the
// batch (and everything after it on that segment) disappears, as if the
// process died before that segment's fsync landed.
func dropBatch(t *testing.T, path string, n int, seq uint64) {
	t.Helper()
	segPath := obs.SegmentPath(path, int((seq-1)%uint64(n)))
	f, err := os.Open(segPath)
	if err != nil {
		t.Fatal(err)
	}
	events, ends, _, err := obs.ReadWALOffsets(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(0)
	for j, e := range events {
		if e.Kind == obs.KindWALCommit {
			if e.CommitSeq == seq {
				break
			}
			cut = ends[j]
		}
	}
	if err := os.Truncate(segPath, cut); err != nil {
		t.Fatal(err)
	}
}

func TestFromSegmentsReproducesExactState(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	live := driveSharded(t, path, 3, cfg)
	cf, st, sh, err := FromSegments(path, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 8 || st.Departed != 1 || st.Rejected != 0 || st.Dropped != 0 || st.Torn {
		t.Fatalf("stats = %+v", st)
	}
	if sh.NextSeq != 10 || sh.DroppedBatches != 0 {
		t.Fatalf("shard recovery = %+v", sh)
	}
	if got, want := trace.Capture(cf.Placement()), trace.Capture(live.Placement()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered snapshot differs from live snapshot")
	}
	// A clean log needs no trimming: every segment ends at the commit
	// record recovery kept.
	for i := 0; i < 3; i++ {
		info, err := os.Stat(obs.SegmentPath(path, i))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != sh.CommittedBytes[i] {
			t.Fatalf("segment %d: size %d, committed bytes %d", i, info.Size(), sh.CommittedBytes[i])
		}
	}
}

// TestFromSegmentsStopsAtSequenceGap is the segment-crash case: one
// segment's fsync never landed, so a middle commit sequence is missing.
// Replay must stop at the committed sequence prefix — later batches are
// on disk but unreachable — and truncating each segment at the reported
// offsets must leave a log the next boot recovers identically.
func TestFromSegmentsStopsAtSequenceGap(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	driveSharded(t, path, 3, cfg)
	// Kill sequence 5 (segment 1, which holds batches 2, 5 and 8): the
	// truncation also takes batch 8 down with it.
	dropBatch(t, path, 3, 5)

	cf, st, sh, err := FromSegments(path, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NextSeq != 5 {
		t.Fatalf("NextSeq = %d, want 5", sh.NextSeq)
	}
	// Readable batches past the gap: 6, 7 and 9 (8 went with the cut).
	if sh.DroppedBatches != 3 {
		t.Fatalf("DroppedBatches = %d, want 3", sh.DroppedBatches)
	}
	if st.Admitted != 4 || st.Departed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	want, werr := core.New(cfg)
	if werr != nil {
		t.Fatal(werr)
	}
	applyOps(t, want, shardOps()[:4])
	if got, wantSnap := trace.Capture(cf.Placement()), trace.Capture(want.Placement()); !reflect.DeepEqual(got, wantSnap) {
		t.Fatal("recovered snapshot differs from the committed-prefix replay")
	}
	if _, exists := cf.Placement().Tenant(20); exists {
		t.Fatal("admission past the sequence gap resurrected")
	}

	// Next boot: truncate to the recovered prefix and recover again.
	for i := 0; i < 3; i++ {
		if _, terr := obs.TruncateWAL(obs.SegmentPath(path, i), sh.CommittedBytes[i]); terr != nil {
			t.Fatal(terr)
		}
	}
	cf2, st2, sh2, err := FromSegments(path, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Dropped != 0 || sh2.DroppedBatches != 0 || sh2.NextSeq != 5 {
		t.Fatalf("after truncation: stats %+v shard %+v", st2, sh2)
	}
	if got, wantSnap := trace.Capture(cf2.Placement()), trace.Capture(cf.Placement()); !reflect.DeepEqual(got, wantSnap) {
		t.Fatal("truncated log recovers a different state")
	}
}

// TestFromSegmentsTornCommitRecord: a crash mid-write tears the last
// batch's commit record in half; its events are an uncommitted tail, the
// frontier ends one sequence earlier, and the run is reported torn.
func TestFromSegmentsTornCommitRecord(t *testing.T) {
	cfg := core.Config{Gamma: 2, K: 10}
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	driveSharded(t, path, 3, cfg)
	// Sequence 9 is the last batch on segment 2; tear its commit record.
	segPath := obs.SegmentPath(path, 2)
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	cf, st, sh, err := FromSegments(path, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Torn {
		t.Fatal("torn segment tail not reported")
	}
	if sh.NextSeq != 9 || sh.DroppedBatches != 0 {
		t.Fatalf("shard recovery = %+v", sh)
	}
	if _, exists := cf.Placement().Tenant(20); exists {
		t.Fatal("tenant of the torn batch resurrected")
	}
	if st.Admitted != 7 || st.Departed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFromSegmentsMissingFilesAreFresh(t *testing.T) {
	cfg := core.Config{Gamma: 3, K: 10}
	cf, st, sh, err := FromSegments(filepath.Join(t.TempDir(), "absent.jsonl"), 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
	if sh.NextSeq != 1 || sh.DroppedBatches != 0 {
		t.Fatalf("shard recovery = %+v", sh)
	}
	if cf.Placement().NumTenants() != 0 {
		t.Fatal("fresh engine is not empty")
	}
}

func TestFromSegmentsRejectsDuplicateSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	for i := 0; i < 2; i++ {
		w, err := obs.OpenWAL(obs.SegmentPath(path, i))
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewEvent(obs.KindWALCommit)
		rec.CommitSeq = 1
		w.Record(rec)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err := FromSegments(path, 2, core.Config{Gamma: 2, K: 10})
	if err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Fatalf("duplicate sequence accepted: %v", err)
	}
}

func TestFromSegmentsRejectsSingleSegment(t *testing.T) {
	_, _, _, err := FromSegments(filepath.Join(t.TempDir(), "w"), 1, core.Config{Gamma: 2, K: 10})
	if err == nil {
		t.Fatal("single-segment recovery accepted")
	}
}
