package recovery

import (
	"errors"
	"fmt"
	"os"

	"cubefit/internal/core"
	"cubefit/internal/obs"
)

// ShardRecovery describes the recovered state of a sharded write-ahead
// log, in the terms the server needs to truncate and reopen it.
type ShardRecovery struct {
	// Segments is the number of segment files read.
	Segments int
	// NextSeq is the commit sequence the reopened log must assign next:
	// one past the last sequence of the contiguous committed prefix.
	NextSeq uint64
	// CommittedBytes is the per-segment byte offset of the end of the
	// last commit record inside the recovered prefix (0 when the segment
	// holds none). Everything past it — uncommitted tails, torn records,
	// and sealed batches stranded beyond a sequence gap — was never acked
	// and must be truncated before the segment is reopened for append.
	CommittedBytes []int64
	// DroppedBatches counts sealed batches discarded because an earlier
	// commit sequence is missing: their own fsync may have landed, but
	// nothing past the first gap is part of the acked history.
	DroppedBatches int
}

// sealedEvents is one committed batch read back from a segment: the
// events sealed under a single commit record.
type sealedEvents struct {
	events []obs.Event
	// end is the byte offset just past the batch's commit record in its
	// segment file.
	end int64
	seg int
}

// FromSegments reads the n segment files of the sharded write-ahead log
// rooted at path (see obs.SegmentPath), merges their sealed batches in
// commit-sequence order, rebuilds an engine with the given configuration
// from the merged stream, and verifies the result. Replay stops at the
// first missing sequence: a batch is part of the recovered history only
// if every batch sealed before it is readable, which is exactly the set
// of admissions the pipeline's in-order acker can have acked. Missing
// segment files read as empty, so recovery of a fresh log returns a
// fresh engine.
func FromSegments(path string, n int, cfg core.Config) (*core.CubeFit, Stats, ShardRecovery, error) {
	if n < 2 {
		return nil, Stats{}, ShardRecovery{}, fmt.Errorf("recovery: sharded wal needs at least 2 segments, got %d", n)
	}
	sh := ShardRecovery{Segments: n, CommittedBytes: make([]int64, n)}
	batches := make(map[uint64]sealedEvents)
	torn := false
	uncommitted := 0
	for i := 0; i < n; i++ {
		segPath := obs.SegmentPath(path, i)
		f, err := os.Open(segPath)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, Stats{}, ShardRecovery{}, fmt.Errorf("recovery: %w", err)
		}
		events, ends, segTorn, err := obs.ReadWALOffsets(f)
		//cubefit:vet-allow failclosed -- handle opened read-only; closing it cannot lose acknowledged bytes
		_ = f.Close()
		if err != nil {
			return nil, Stats{}, ShardRecovery{}, fmt.Errorf("recovery: segment %d: %w", i, err)
		}
		torn = torn || segTorn
		start := 0
		for j, e := range events {
			if e.Kind != obs.KindWALCommit {
				continue
			}
			if e.CommitSeq == 0 {
				return nil, Stats{}, ShardRecovery{}, fmt.Errorf("recovery: segment %d: commit record without a sequence", i)
			}
			if prev, dup := batches[e.CommitSeq]; dup {
				return nil, Stats{}, ShardRecovery{}, fmt.Errorf("recovery: commit sequence %d appears in both segment %d and segment %d", e.CommitSeq, prev.seg, i)
			}
			batches[e.CommitSeq] = sealedEvents{events: events[start:j], end: ends[j], seg: i}
			start = j + 1
		}
		// The tail after the last commit record was staged but never
		// sealed; like a torn record, it was never acked.
		uncommitted += len(events) - start
	}
	// Merge the contiguous committed prefix: sequences start at 1, and
	// the first missing one is where acked history provably ends.
	var merged []obs.Event
	seq := uint64(1)
	for {
		b, ok := batches[seq]
		if !ok {
			break
		}
		merged = append(merged, b.events...)
		sh.CommittedBytes[b.seg] = b.end
		delete(batches, seq)
		seq++
	}
	sh.NextSeq = seq
	sh.DroppedBatches = len(batches)
	//cubefit:vet-allow maprange -- integer sum over the dropped batches; addition is order-insensitive
	for _, b := range batches {
		uncommitted += len(b.events)
	}
	cf, st, err := Rebuild(merged, cfg)
	if err != nil {
		return nil, Stats{}, ShardRecovery{}, err
	}
	st.Torn = torn
	st.Dropped += uncommitted
	if err := Verify(cf, merged); err != nil {
		return nil, Stats{}, ShardRecovery{}, err
	}
	return cf, st, sh, nil
}
