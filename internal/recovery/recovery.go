// Package recovery rebuilds a consolidation engine from its write-ahead
// decision log (the internal/obs JSONL stream persisted by the service
// layer's group-commit WAL sink), promoting the event-replay machinery
// from audit tooling to the crash-recovery path of cubefit-server.
//
// Recovery re-drives a fresh engine through the exact admission sequence
// the log records — every committed attempt (including rejected ones,
// whose failed admissions still open servers) and every departure, in
// log order. Because the engines are deterministic, the rebuilt engine
// reproduces the pre-crash placement, cube cursors, bin lifecycle, and
// Stats byte for byte. Attempts whose closing admit/reject never reached
// stable storage were never acked to a client, so they are dropped: the
// recovered state is exactly the acked state.
//
// Verify cross-checks the re-driven engine against an independent
// event-level reconstruction (headroom.Replay applies each place/rollback
// event directly) and the robustness validator, so a server refuses to
// serve from a log that does not replay cleanly.
package recovery

import (
	"errors"
	"fmt"
	"os"
	"reflect"

	"cubefit/internal/core"
	"cubefit/internal/headroom"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/trace"
)

// Stats summarizes one recovery for operator logging.
type Stats struct {
	// Events is the number of committed events replayed.
	Events int
	// Admitted, Rejected and Departed count the re-driven operations.
	Admitted int
	Rejected int
	Departed int
	// Dropped counts trailing events discarded because their admission
	// never committed (no admit/reject reached the log).
	Dropped int
	// Torn reports that the log ended in a truncated record (a crash
	// mid-write); the torn tail is discarded like any uncommitted suffix.
	Torn bool
	// CommittedBytes is the byte offset of the end of the last committed
	// record in the log file (0 when nothing committed). Everything past
	// it — dropped complete lines and any torn tail — was never acked and
	// must be truncated (obs.TruncateWAL) before the server appends new
	// records, or the next boot reads an interleaved log.
	CommittedBytes int64
}

// op is one serialized engine operation extracted from the log.
type op struct {
	remove  bool
	tenant  packing.Tenant // place ops
	id      packing.TenantID
	wantErr bool // the original admission was rejected
}

// FromFile reads the write-ahead log at path, rebuilds an engine with the
// given configuration, and verifies the result before returning it. A
// missing file is not an error: recovery of an empty log returns a fresh
// engine.
func FromFile(path string, cfg core.Config) (*core.CubeFit, Stats, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		cf, nerr := core.New(cfg)
		return cf, Stats{}, nerr
	}
	if err != nil {
		return nil, Stats{}, fmt.Errorf("recovery: %w", err)
	}
	//cubefit:vet-allow failclosed -- handle opened read-only; closing it cannot lose acknowledged bytes
	defer f.Close()
	events, ends, torn, err := obs.ReadWALOffsets(f)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("recovery: %w", err)
	}
	cf, st, err := Rebuild(events, cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st.Torn = torn
	// Rebuild set Events to the committed-prefix length, so the end offset
	// of the last committed record is the byte size the log must shrink to
	// before it is reopened for append.
	if st.Events > 0 {
		st.CommittedBytes = ends[st.Events-1]
	}
	if err := Verify(cf, events); err != nil {
		return nil, Stats{}, err
	}
	return cf, st, nil
}

// Rebuild re-drives a fresh engine through the committed operations of
// the event log. The engine is built without a recorder attached, so
// recovery does not re-log history; callers attach sinks afterwards.
func Rebuild(events []obs.Event, cfg core.Config) (*core.CubeFit, Stats, error) {
	cf, err := core.New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	committed := CommittedPrefix(events)
	st := Stats{Events: len(committed), Dropped: len(events) - len(committed)}
	if n := InferGamma(committed); n > 0 && n != cf.Config().Gamma {
		return nil, Stats{}, fmt.Errorf("recovery: log was written at γ=%d, engine configured with γ=%d", n, cf.Config().Gamma)
	}
	ops, err := extractOps(committed)
	if err != nil {
		return nil, Stats{}, err
	}
	for i, o := range ops {
		if o.remove {
			if err := cf.Remove(o.id); err != nil {
				return nil, Stats{}, fmt.Errorf("recovery: op %d: depart tenant %d: %w", i+1, o.id, err)
			}
			st.Departed++
			continue
		}
		err := cf.Place(o.tenant)
		switch {
		case err == nil && o.wantErr:
			return nil, Stats{}, fmt.Errorf("recovery: op %d: tenant %d was rejected in the log but replays as admitted", i+1, o.tenant.ID)
		case err != nil && !o.wantErr:
			return nil, Stats{}, fmt.Errorf("recovery: op %d: tenant %d was admitted in the log but replays rejected: %w", i+1, o.tenant.ID, err)
		case err != nil:
			st.Rejected++
		default:
			st.Admitted++
		}
	}
	return cf, st, nil
}

// CommittedPrefix trims the log to its last committed operation: the
// suffix after the final admit, reject, or depart belongs to an admission
// that never acked and is discarded.
func CommittedPrefix(events []obs.Event) []obs.Event {
	for i := len(events) - 1; i >= 0; i-- {
		switch events[i].Kind {
		case obs.KindAdmit, obs.KindReject, obs.KindDepart:
			return events[:i+1]
		}
	}
	return nil
}

// InferGamma returns the replication factor witnessed by a committed log
// (the largest replica index placed, plus one), or 0 when the log places
// nothing. Unlike headroom.InferGamma it never guesses from an empty log,
// so callers can distinguish "no evidence" from a mismatch.
func InferGamma(events []obs.Event) int {
	gamma := 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindPlace, obs.KindStage1Place, obs.KindCubePlace:
			if e.Replica+1 > gamma {
				gamma = e.Replica + 1
			}
		}
	}
	return gamma
}

// extractOps linearizes a committed log into engine operations. The
// service layer serializes admissions under one write lock, so each
// admission's events are contiguous: an attempt opens, its admit or
// reject closes.
func extractOps(events []obs.Event) ([]op, error) {
	var (
		ops     []op
		open    bool
		pending packing.Tenant
	)
	for i, e := range events {
		switch e.Kind {
		case obs.KindAttempt:
			if open {
				return nil, fmt.Errorf("recovery: event %d: attempt for tenant %d interleaves with open admission of tenant %d", i+1, e.Tenant, pending.ID)
			}
			open = true
			pending = packing.Tenant{ID: packing.TenantID(e.Tenant), Load: e.Size, Clients: e.Clients}
		case obs.KindAdmit, obs.KindReject:
			if !open || int(pending.ID) != e.Tenant {
				return nil, fmt.Errorf("recovery: event %d: %s for tenant %d without matching attempt", i+1, e.Kind, e.Tenant)
			}
			ops = append(ops, op{tenant: pending, wantErr: e.Kind == obs.KindReject})
			open = false
		case obs.KindDepart:
			if open {
				return nil, fmt.Errorf("recovery: event %d: depart of tenant %d interleaves with open admission of tenant %d", i+1, e.Tenant, pending.ID)
			}
			ops = append(ops, op{remove: true, id: packing.TenantID(e.Tenant)})
		}
	}
	return ops, nil
}

// Verify cross-checks a rebuilt engine against the log it was rebuilt
// from: the placement must satisfy the robustness validator, and it must
// equal — snapshot for snapshot — an independent event-level replay that
// applies each recorded placement mutation directly rather than
// re-driving the algorithm.
func Verify(cf *core.CubeFit, events []obs.Event) error {
	if err := cf.Placement().Validate(); err != nil {
		return fmt.Errorf("recovery: rebuilt placement fails validation: %w", err)
	}
	committed := CommittedPrefix(events)
	replayed, _, err := headroom.Replay(committed, cf.Config().Gamma, 0, nil)
	if err != nil {
		return fmt.Errorf("recovery: event-level replay: %w", err)
	}
	got := trace.Capture(cf.Placement())
	want := trace.Capture(replayed)
	if !reflect.DeepEqual(got, want) {
		return errors.New("recovery: re-driven engine and event-level replay disagree; refusing to serve from this log")
	}
	return nil
}
