// Package eventsim provides a minimal deterministic discrete-event
// simulation kernel: a virtual clock and a time-ordered queue of callback
// events. Ties are broken by scheduling order, so a single-threaded
// simulation replays identically for identical inputs.
//
// The queue is a hand-rolled binary heap over a concrete event struct:
// container/heap would box every element in an interface value, and the
// cluster simulator pushes millions of events per run. Because (at, seq)
// is a strict total order, the pop sequence is fully determined regardless
// of heap internals — replays stay bit-identical.
package eventsim

import (
	"errors"
	"math"
)

// Engine is a discrete-event executor. The zero value is not usable;
// construct with New. Engine is not safe for concurrent use.
type Engine struct {
	now  float64
	seq  uint64
	heap []event
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("eventsim: event scheduled in the past")

// Handler is the allocation-free alternative to scheduling a closure: a
// long-lived object implements Fire and is scheduled with ScheduleFire,
// carrying a version number for staleness checks (timer superseded by a
// rescheduled one). Hot loops that would otherwise allocate one closure
// per event schedule their receiver instead.
type Handler interface {
	Fire(ver int)
}

// event is one queue entry: either a closure (fn) or a handler (h, ver).
type event struct {
	at  float64
	seq uint64
	fn  func()
	h   Handler
	ver int
}

// New creates an engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run at the given time (which must not precede
// the current time).
func (e *Engine) Schedule(at float64, fn func()) error {
	if err := e.checkTime(at); err != nil {
		return err
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, fn: fn})
	return nil
}

// ScheduleFire enqueues h.Fire(ver) to run at the given time. Unlike
// Schedule it captures no closure, so a reused handler makes the enqueue
// allocation-free (amortized over the heap's backing array).
func (e *Engine) ScheduleFire(at float64, h Handler, ver int) error {
	if err := e.checkTime(at); err != nil {
		return err
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, h: h, ver: ver})
	return nil
}

func (e *Engine) checkTime(at float64) error {
	if at < e.now {
		return ErrPast
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return errors.New("eventsim: non-finite event time")
	}
	return nil
}

// After enqueues fn to run delay units from now.
func (e *Engine) After(delay float64, fn func()) error {
	return e.Schedule(e.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.h.Fire(ev.ver)
	}
	return true
}

// RunUntil executes all events with time ≤ t, then advances the clock to
// t. Events scheduled during execution are honored if they fall within the
// horizon.
func (e *Engine) RunUntil(t float64) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// less orders events by time, ties broken by scheduling order; (at, seq)
// is a strict total order because seq is unique.
func (e *Engine) less(i, j int) bool {
	if e.heap[i].at != e.heap[j].at { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
		return e.heap[i].at < e.heap[j].at
	}
	return e.heap[i].seq < e.heap[j].seq
}

func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/h references so the backing array does not pin them
	e.heap = h[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && e.less(r, l) {
			c = r
		}
		if !e.less(c, i) {
			break
		}
		e.heap[i], e.heap[c] = e.heap[c], e.heap[i]
		i = c
	}
	return min
}
