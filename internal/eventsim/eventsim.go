// Package eventsim provides a minimal deterministic discrete-event
// simulation kernel: a virtual clock and a time-ordered queue of callback
// events. Ties are broken by scheduling order, so a single-threaded
// simulation replays identically for identical inputs.
package eventsim

import (
	"container/heap"
	"errors"
	"math"
)

// Engine is a discrete-event executor. The zero value is not usable;
// construct with New. Engine is not safe for concurrent use.
type Engine struct {
	now  float64
	seq  uint64
	heap eventHeap
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("eventsim: event scheduled in the past")

type event struct {
	at  float64
	seq uint64
	fn  func()
}

// New creates an engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule enqueues fn to run at the given time (which must not precede
// the current time).
func (e *Engine) Schedule(at float64, fn func()) error {
	if at < e.now {
		return ErrPast
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return errors.New("eventsim: non-finite event time")
	}
	e.seq++
	heap.Push(&e.heap, event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After enqueues fn to run delay units from now.
func (e *Engine) After(delay float64, fn func()) error {
	return e.Schedule(e.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes all events with time ≤ t, then advances the clock to
// t. Events scheduled during execution are honored if they fall within the
// horizon.
func (e *Engine) RunUntil(t float64) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
