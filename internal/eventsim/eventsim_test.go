package eventsim

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	add := func(at float64, id int) {
		if err := e.Schedule(at, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3, 3)
	add(1, 1)
	add(2, 2)
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken: %v", order)
		}
	}
}

func TestScheduleInPast(t *testing.T) {
	e := New()
	if err := e.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.Schedule(0.5, func() {}); err != ErrPast {
		t.Fatalf("past schedule error = %v", err)
	}
	if err := e.Schedule(math.NaN(), func() {}); err == nil {
		t.Fatal("NaN time accepted")
	}
	if err := e.Schedule(math.Inf(1), func() {}); err == nil {
		t.Fatal("Inf time accepted")
	}
}

func TestAfter(t *testing.T) {
	e := New()
	fired := -1.0
	if err := e.Schedule(2, func() {
		if err := e.After(3, func() { fired = e.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if fired != 5 {
		t.Fatalf("After fired at %v, want 5", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		if err := e.Schedule(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v after full horizon", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestCascadingEvents(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 100 {
			if err := e.After(1, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(0, chain); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99 {
		t.Fatalf("clock = %v, want 99", e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty returned true")
	}
}
