package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/workload"
)

func BenchmarkBatchAdmission(b *testing.B) {
	cf, _ := core.New(core.DefaultConfig())
	ctrl, _ := NewController(cf, workload.DefaultLoadModel())
	defer ctrl.Close()
	h := ctrl.Handler()
	id := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		sb.WriteString(`{"tenants":[`)
		for j := 0; j < 64; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"id":%d,"clients":%d}`, id, 1+id%15)
			id++
		}
		sb.WriteString(`]}`)
		req := httptest.NewRequest(http.MethodPost, "/v1/tenants:batch", strings.NewReader(sb.String()))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatal(rec.Code)
		}
	}
}
