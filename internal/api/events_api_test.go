package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cubefit/internal/baseline"
	"cubefit/internal/obs"
	"cubefit/internal/workload"
)

func TestDebugEventsEndpoint(t *testing.T) {
	srv := newServer(t)

	// Before any admission: an empty but well-formed dump.
	var empty struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/events", nil, &empty); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if empty.Total != 0 || len(empty.Events) != 0 {
		t.Errorf("empty ring dump = %+v", empty)
	}

	for i := 1; i <= 3; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "load": 0.3}, nil); code != http.StatusCreated {
			t.Fatalf("place %d: status %d", i, code)
		}
	}

	var dump struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/events", nil, &dump); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if dump.Total == 0 || len(dump.Events) == 0 {
		t.Fatal("admissions recorded no events")
	}
	if uint64(len(dump.Events)) != dump.Total {
		t.Errorf("events %d != total %d (ring should not have wrapped)", len(dump.Events), dump.Total)
	}
	// Events arrive stamped and ordered.
	for i, e := range dump.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}

	// ?n= limits the dump to the most recent events.
	var limited struct {
		Total  uint64      `json:"total"`
		Events []obs.Event `json:"events"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/events?n=2", nil, &limited); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(limited.Events) != 2 || limited.Total != dump.Total {
		t.Errorf("limited dump: %d events, total %d", len(limited.Events), limited.Total)
	}
	if limited.Events[1].Seq != dump.Events[len(dump.Events)-1].Seq {
		t.Error("?n=2 did not return the most recent events")
	}

	if code := doJSON(t, "GET", srv.URL+"/debug/events?n=bogus", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bogus n: status %d, want 400", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
		map[string]any{"id": 5, "load": 0.4}, nil); code != http.StatusCreated {
		t.Fatalf("place: status %d", code)
	}

	var exp struct {
		Tenant   int           `json:"tenant"`
		Load     float64       `json:"load"`
		Servers  []int         `json:"servers"`
		Traced   bool          `json:"traced"`
		Decision *obs.Decision `json:"decision"`
		Failover []struct {
			Replica    int   `json:"replica"`
			Server     int   `json:"server"`
			FailoverTo []int `json:"failoverTo"`
		} `json:"failover"`
	}
	if code := doJSON(t, "GET", srv.URL+"/explain/tenants/5", nil, &exp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if exp.Tenant != 5 || len(exp.Servers) == 0 {
		t.Fatalf("explain = %+v", exp)
	}
	if !exp.Traced || exp.Decision == nil {
		t.Fatal("admitted tenant is not traced")
	}
	if exp.Decision.Path == obs.PathUnknown || exp.Decision.Path == "" {
		t.Errorf("decision path = %q", exp.Decision.Path)
	}
	if len(exp.Decision.Replicas) != len(exp.Servers) {
		t.Errorf("decision has %d replicas, placement has %d servers",
			len(exp.Decision.Replicas), len(exp.Servers))
	}
	if len(exp.Failover) != len(exp.Servers) {
		t.Fatalf("failover rows = %d, servers = %d", len(exp.Failover), len(exp.Servers))
	}
	for _, row := range exp.Failover {
		if len(row.FailoverTo) != len(exp.Servers)-1 {
			t.Errorf("replica %d fails over to %v, want the %d other hosts",
				row.Replica, row.FailoverTo, len(exp.Servers)-1)
		}
		for _, to := range row.FailoverTo {
			if to == row.Server {
				t.Errorf("replica %d fails over to its own server %d", row.Replica, to)
			}
		}
	}

	if code := doJSON(t, "GET", srv.URL+"/explain/tenants/99", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/explain/tenants/abc", nil, nil); code != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", code)
	}
}

// TestRecorderFeedsEngineMetrics checks the teed EngineSink surfaces the
// flight-recorder stream on /metrics.
func TestRecorderFeedsEngineMetrics(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
		map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusCreated {
		t.Fatalf("place: status %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`cubefit_engine_events_total{kind="attempt"} 1`,
		`cubefit_engine_events_total{kind="admit"} 1`,
		"cubefit_servers_opened",
		"cubefit_place_duration_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestExplainOnBaselineEngine covers a recordable single-stage engine
// behind the same endpoints.
func TestExplainOnBaselineEngine(t *testing.T) {
	alg, err := baseline.New(baseline.FirstFit, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(alg, workload.DefaultLoadModel())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
		map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusCreated {
		t.Fatalf("place: status %d", code)
	}
	var exp struct {
		Traced   bool          `json:"traced"`
		Decision *obs.Decision `json:"decision"`
	}
	if code := doJSON(t, "GET", srv.URL+"/explain/tenants/1", nil, &exp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !exp.Traced || exp.Decision == nil || exp.Decision.Engine != "first-fit" {
		t.Errorf("baseline explain = %+v", exp)
	}
}
