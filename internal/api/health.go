package api

import (
	"fmt"
	"net/http"
	"time"

	"cubefit/internal/metrics"
	"cubefit/internal/obs"
	"cubefit/internal/telemetry"
)

// Health wiring: every controller carries a telemetry.Monitor scraping
// its own metric registry into ring time-series and evaluating the SLO
// and invariant rules (internal/telemetry). The monitor is always
// constructed — /healthz, /readyz, /debug/health, and /debug/timeline
// are always routable — but its background sampling loop only runs when
// WithHealthLoop is given (servers); tests and embedders drive
// HealthTick directly against a fake clock for deterministic verdicts.

// WithHealthConfig replaces the default telemetry rule configuration
// (objectives, windows, thresholds). Zero fields fall back to defaults;
// a zero queue capacity is wired to the admission pipeline's real bound.
func WithHealthConfig(cfg telemetry.Config) Option {
	return func(c *Controller) {
		c.healthCfg = cfg
		c.healthCfgSet = true
	}
}

// WithHealthLoop starts the background health sampling loop at the
// configured interval. Without it the monitor only advances on
// HealthTick, and /readyz reports the boot verdict (healthy) forever.
func WithHealthLoop() Option {
	return func(c *Controller) { c.healthLoop = true }
}

// WithHealthLog streams every health tick's sample set and every state
// transition to rec as JSONL records (obs.NewHealthJSONL), for offline
// replay with `cubefit-inspect health`. The sink must be safe for
// concurrent use.
func WithHealthLog(rec obs.HealthRecorder) Option {
	return func(c *Controller) { c.healthSink = rec }
}

// initHealth builds the controller's monitor after all options have
// applied: the rule config learns the pipeline's real queue capacity,
// the process self-metrics and the WAL error gauge refresh before every
// scrape, and the loop starts if requested.
func (c *Controller) initHealth() {
	cfg := c.healthCfg
	if !c.healthCfgSet {
		cfg = telemetry.DefaultConfig()
	}
	if cfg.Queue.Capacity == 0 {
		cfg.Queue.Capacity = admitQueueDepth
	}
	c.procM = metrics.NewProcessMetrics(c.registry)
	c.walErrG = c.registry.NewGauge(telemetry.SeriesWALStickyError,
		"1 while the write-ahead log carries a sticky commit error (admissions failing closed).")
	opts := []telemetry.Option{
		telemetry.WithHook(c.procM.Update),
		telemetry.WithHook(c.updateWALGauge),
	}
	if c.healthSink != nil {
		opts = append(opts, telemetry.WithSink(c.healthSink))
	}
	c.monitor = telemetry.New(c.registry, cfg, c.clk, opts...)
	if c.healthLoop {
		c.monitor.Start()
	}
}

// updateWALGauge mirrors the WAL's sticky error into the gauge the rule
// engine samples, making fail-closed state visible as a series. It reads
// the lock-free Failed flag, not Err: a group commit blocked inside a
// hung fsync holds the WAL lock, and the health tick must keep observing
// exactly that situation.
func (c *Controller) updateWALGauge() {
	if c.wal == nil {
		return
	}
	if c.wal.Failed() {
		c.walErrG.Set(1)
	} else {
		c.walErrG.Set(0)
	}
}

// Health returns the controller's telemetry monitor, so embedding
// servers can read the verdict or fold it into their own reporting.
func (c *Controller) Health() *telemetry.Monitor { return c.monitor }

// HealthTick advances the health monitor by one sample-evaluate cycle.
// Servers rely on the background loop; tests drive ticks explicitly
// against a fake clock (WithClock) for deterministic rule evaluation.
func (c *Controller) HealthTick() { c.monitor.Tick() }

// SetDraining marks the controller as draining: /readyz answers 503 so
// load balancers stop routing new traffic, while /healthz stays 200 and
// in-flight requests complete. Servers flip it before graceful
// shutdown.
func (c *Controller) SetDraining(v bool) { c.draining.Store(v) }

// livenessResponse is GET /healthz.
type livenessResponse struct {
	Status string `json:"status"`
}

// handleHealthz is liveness: always 200 while the process serves, with
// the current verdict in the body. Orchestrators that restart on
// liveness failure must not restart a degraded-but-serving node; that
// is /readyz's call.
func (c *Controller) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, livenessResponse{Status: c.monitor.State().String()})
}

// readyzResponse is GET /readyz.
type readyzResponse struct {
	Ready    bool   `json:"ready"`
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
}

// handleReadyz is readiness: 503 while the health state is critical
// (sustained SLO burn, headroom below the red line, sticky WAL error,
// placer stall) or the server is draining for shutdown; 200 otherwise,
// including degraded — a degraded node still serves correctly.
func (c *Controller) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := c.monitor.State()
	draining := c.draining.Load()
	ready := st != telemetry.Critical && !draining
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, readyzResponse{Ready: ready, Status: st.String(), Draining: draining})
}

// healthDebugResponse is GET /debug/health: the full verdict (state,
// firing findings, recent transitions) plus the effective rule
// configuration.
type healthDebugResponse struct {
	telemetry.Status
	Config telemetry.Config `json:"config"`
}

func (c *Controller) handleDebugHealth(w http.ResponseWriter, _ *http.Request) {
	st := c.monitor.Status()
	if st.Findings == nil {
		st.Findings = []telemetry.Finding{}
	}
	if st.Transitions == nil {
		st.Transitions = []telemetry.Transition{}
	}
	writeJSON(w, http.StatusOK, healthDebugResponse{Status: st, Config: c.monitor.Config()})
}

// timelineIndexResponse is GET /debug/timeline without ?series=: the
// sorted list of every series the sampler has retained.
type timelineIndexResponse struct {
	Series []string `json:"series"`
}

// timelineResponse is GET /debug/timeline?series=...: the retained
// samples of one series, oldest first, optionally bounded to the last
// ?window= (a Go duration such as 30s or 5m).
type timelineResponse struct {
	Series string            `json:"series"`
	Window string            `json:"window,omitempty"`
	Points []telemetry.Point `json:"points"`
}

func (c *Controller) handleTimeline(w http.ResponseWriter, r *http.Request) {
	series := r.URL.Query().Get("series")
	if series == "" {
		keys := c.monitor.SeriesKeys()
		if keys == nil {
			keys = []string{}
		}
		writeJSON(w, http.StatusOK, timelineIndexResponse{Series: keys})
		return
	}
	var window time.Duration
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid window " + raw})
			return
		}
		window = d
	}
	pts, ok := c.monitor.Timeline(series, window)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("unknown series %q (GET /debug/timeline lists them)", series)})
		return
	}
	if pts == nil {
		pts = []telemetry.Point{}
	}
	resp := timelineResponse{Series: series, Points: pts}
	if window > 0 {
		resp.Window = window.String()
	}
	writeJSON(w, http.StatusOK, resp)
}
