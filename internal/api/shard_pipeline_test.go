package api

import (
	"net/http"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"cubefit/internal/obs"
	"cubefit/internal/recovery"
	"cubefit/internal/trace"
)

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest("DELETE", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestShardedWALKillRestart is the sharded twin of TestWALKillRestart: a
// server logging to segment files dies after acking singles, batches and
// a departure, and the merge-replay rebuilds the exact acked state.
func TestShardedWALKillRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	swal, err := obs.OpenShardedWAL(path, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, cf, ctrl := newEngineServer(t, WithWAL(swal))

	for i := 0; i < 10; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 1 + i%15}, nil); code != 201 {
			t.Fatalf("place %d failed", i)
		}
	}
	items := make([]map[string]any, 20)
	for i := range items {
		items[i] = map[string]any{"id": 100 + i, "load": 0.05 + float64(i%9)*0.04}
	}
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": items}, &bresp); code != 200 || bresp.Failed != 0 {
		t.Fatalf("batch: code %d failed %d", code, bresp.Failed)
	}
	if code := doDelete(t, srv.URL+"/v1/tenants/3"); code != http.StatusNoContent {
		t.Fatalf("delete status %d", code)
	}

	ackedSnap := trace.Capture(cf.Placement())
	ackedStats := cf.Stats()

	srv.Close()
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	rebuilt, rstats, shard, err := recovery.FromSegments(path, 3, cf.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Admitted != 30 || rstats.Departed != 1 || rstats.Dropped != 0 || rstats.Torn {
		t.Fatalf("recovery stats %+v", rstats)
	}
	if shard.DroppedBatches != 0 {
		t.Fatalf("clean shutdown dropped %d batches", shard.DroppedBatches)
	}
	if got := trace.Capture(rebuilt.Placement()); !reflect.DeepEqual(got, ackedSnap) {
		t.Fatal("recovered snapshot differs from acked snapshot")
	}
	if rebuilt.Stats() != ackedStats {
		t.Fatalf("recovered Stats %+v, acked %+v", rebuilt.Stats(), ackedStats)
	}
}

// TestShardedWALCommitFailureFailsClosed: when a segment fsync fails, the
// in-flight batch is demoted to 503 and rolled back by the async acker,
// and the whole log latches failed so later admissions and departures are
// refused up front.
func TestShardedWALCommitFailureFailsClosed(t *testing.T) {
	fws := []*flakyWriter{{}, {}}
	swal := obs.NewShardedWAL([]*obs.WAL{obs.NewWAL(fws[0]), obs.NewWAL(fws[1])}, 1)
	srv, cf, _ := newEngineServer(t, WithWAL(swal))

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != 201 {
		t.Fatalf("healthy admission status %d", code)
	}
	fws[0].trip()
	fws[1].trip()
	// The admission itself succeeds in memory; the segment commit fails in
	// the background, so the acker must roll it back before responding.
	var errResp errorResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.3}, &errResp); code != 503 {
		t.Fatalf("post-trip admission status %d, want 503 (%s)", code, errResp.Error)
	}
	// Sticky across the whole log, including the healthy-looking paths.
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 3, "load": 0.2}, nil); code != 503 {
		t.Fatalf("second post-trip admission status %d, want 503", code)
	}
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": []map[string]any{{"id": 4, "load": 0.2}}}, &bresp); code != 200 {
		t.Fatalf("batch transport status %d", code)
	} else if bresp.Results[0].Status != 503 {
		t.Fatalf("batch item status %d, want 503", bresp.Results[0].Status)
	}
	if code := doDelete(t, srv.URL+"/v1/tenants/1"); code != 503 {
		t.Fatalf("delete status %d, want 503", code)
	}
	// Only the committed admission remains; the rolled-back one is gone.
	if _, exists := cf.Placement().Tenant(1); !exists {
		t.Fatal("committed tenant lost")
	}
	if _, exists := cf.Placement().Tenant(2); exists {
		t.Fatal("unlogged admission still placed after rollback")
	}
	if n := cf.Placement().NumTenants(); n != 1 {
		t.Fatalf("tenants = %d, want 1", n)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, nil); code != 200 {
		t.Fatalf("stats status %d", code)
	}
}

// TestShardedWALConcurrentTraffic races admissions and departures against
// the async commit path, then kills the server and verifies the merged
// segment replay reproduces the acked state — the in-seal-order acker and
// the seal-under-lock departure path must never interleave a batch.
func TestShardedWALConcurrentTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	swal, err := obs.OpenShardedWAL(path, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, cf, ctrl := newEngineServer(t, WithWAL(swal))

	for i := 0; i < 50; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "load": 0.05}, nil); code != 201 {
			t.Fatalf("seed place %d failed", i)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := 1000 + g*100 + i
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
					map[string]any{"id": id, "load": 0.02 + float64(id%7)*0.03}, nil); code != 201 {
					t.Errorf("concurrent place %d: %d", id, code)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 50; i += 2 {
				if code := doDelete(t, srv.URL+"/v1/tenants/"+strconv.Itoa(i)); code != http.StatusNoContent {
					t.Errorf("concurrent delete %d: %d", i, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if n := cf.Placement().NumTenants(); n != 200 {
		t.Fatalf("tenants = %d, want 200", n)
	}
	ackedSnap := trace.Capture(cf.Placement())

	srv.Close()
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	rebuilt, rstats, shard, err := recovery.FromSegments(path, 4, cf.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Admitted != 250 || rstats.Departed != 50 || shard.DroppedBatches != 0 {
		t.Fatalf("recovery stats %+v shard %+v", rstats, shard)
	}
	if got := trace.Capture(rebuilt.Placement()); !reflect.DeepEqual(got, ackedSnap) {
		t.Fatal("recovered snapshot differs from acked snapshot")
	}
}
