package api

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cubefit/internal/headroom"
	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

// newHeadroomController returns a controller over the default CubeFit
// engine alongside its test server.
func newHeadroomController(t *testing.T) (*Controller, *httptest.Server) {
	t.Helper()
	c, err := NewDefaultController()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func TestHeadroomEndpoint(t *testing.T) {
	c, srv := newHeadroomController(t)
	loads := []float64{0.6, 0.3, 0.45, 0.72, 0.15, 0.9, 0.25}
	for i, load := range loads {
		code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": i + 1, "load": load}, nil)
		if code != http.StatusCreated {
			t.Fatalf("place %d: status %d", i+1, code)
		}
	}

	var out struct {
		headroom.Report
		OverloadEventsTotal uint64 `json:"overloadEventsTotal"`
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/headroom", nil, &out); code != http.StatusOK {
		t.Fatalf("headroom status %d", code)
	}
	p := c.alg.Placement()
	if out.Gamma != p.Gamma() {
		t.Fatalf("gamma = %d, want %d", out.Gamma, p.Gamma())
	}
	if len(out.Servers) != p.NumServers() {
		t.Fatalf("reported %d servers, placement has %d", len(out.Servers), p.NumServers())
	}
	// Every open server carrying load must expose its worst failure set;
	// a robust placement keeps every slack non-negative.
	for _, e := range out.Servers {
		if e.Level > 0 && len(e.WorstSet) == 0 {
			t.Fatalf("server %d has level %v but empty worst set", e.Server, e.Level)
		}
		if e.Overloaded || e.Slack < -packing.CapacityEps {
			t.Fatalf("robust placement reports overloaded server: %+v", e)
		}
	}
	want := headroom.Exhaustive(p, out.RedLine)
	if out.MinSlack != want.MinSlack || out.MinServer != want.MinServer ||
		out.BelowRedLine != want.BelowRedLine {
		t.Fatalf("aggregates %+v disagree with exhaustive %+v", out.Report, want)
	}

	// ?worst=2 limits the entries to the two tightest servers.
	var worst struct {
		headroom.Report
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/headroom?worst=2", nil, &worst); code != http.StatusOK {
		t.Fatalf("headroom?worst status %d", code)
	}
	if len(worst.Servers) != 2 {
		t.Fatalf("worst=2 returned %d entries", len(worst.Servers))
	}
	if worst.Servers[0].Server != out.MinServer {
		t.Fatalf("worst[0] = server %d, min is %d", worst.Servers[0].Server, out.MinServer)
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/headroom?worst=x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid worst: status %d", code)
	}
}

func TestHeadroomServerEndpoint(t *testing.T) {
	c, srv := newHeadroomController(t)
	for i, load := range []float64{0.5, 0.62, 0.31, 0.44, 0.27} {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": i + 1, "load": load}, nil); code != http.StatusCreated {
			t.Fatalf("place %d: status %d", i+1, code)
		}
	}
	min, ok := c.auditor.Min()
	if !ok {
		t.Fatal("no audited servers")
	}
	var out struct {
		headroom.Entry
		BelowRedLine bool                    `json:"belowRedLine"`
		Contributors []headroom.Contribution `json:"contributors"`
	}
	url := fmt.Sprintf("%s/debug/headroom/servers/%d", srv.URL, min.Server)
	if code := doJSON(t, "GET", url, nil, &out); code != http.StatusOK {
		t.Fatalf("headroom server status %d", code)
	}
	if out.Server != min.Server || out.Slack != min.Slack {
		t.Fatalf("entry %+v, want %+v", out.Entry, min)
	}
	if len(out.Contributors) != len(min.WorstSet) {
		t.Fatalf("%d contributors for %d worst peers", len(out.Contributors), len(min.WorstSet))
	}
	for i, contrib := range out.Contributors {
		if contrib.Peer != min.WorstSet[i] {
			t.Fatalf("contributor %d is peer %d, want %d", i, contrib.Peer, min.WorstSet[i])
		}
		if len(contrib.Tenants) == 0 {
			t.Fatalf("peer %d contributes %v load with no tenants", contrib.Peer, contrib.Shared)
		}
		sum := 0.0
		for _, ts := range contrib.Tenants {
			sum += ts.Size
		}
		if !packing.AlmostEqualTol(sum, contrib.Shared, packing.CapacityEps) {
			t.Fatalf("peer %d tenant sizes sum %v != shared %v", contrib.Peer, sum, contrib.Shared)
		}
	}

	if code := doJSON(t, "GET", srv.URL+"/debug/headroom/servers/99999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown server: status %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/headroom/servers/abc", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad server id: status %d", code)
	}
}

// unrecordedAlg is a minimal algorithm without a flight recorder seam; the
// headroom routes must answer 404 for it.
type unrecordedAlg struct {
	p *packing.Placement
}

func (a *unrecordedAlg) Name() string                  { return "unrecorded" }
func (a *unrecordedAlg) Placement() *packing.Placement { return a.p }
func (a *unrecordedAlg) Place(t packing.Tenant) error {
	if err := a.p.AddTenant(t); err != nil {
		return err
	}
	for _, rep := range a.p.Replicas(t) {
		sid := a.p.OpenServer()
		if err := a.p.Place(sid, rep); err != nil {
			return err
		}
	}
	return nil
}

func TestHeadroomUnavailable(t *testing.T) {
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(&unrecordedAlg{p: p}, workload.DefaultLoadModel())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for _, url := range []string{"/debug/headroom", "/debug/headroom/servers/0"} {
		if code := doJSON(t, "GET", srv.URL+url, nil, nil); code != http.StatusNotFound {
			t.Fatalf("%s on unrecorded algorithm: status %d", url, code)
		}
	}
	// SetHeadroomRedLine must be a safe no-op.
	c.SetHeadroomRedLine(0.5)
}

func TestHeadroomMetricsExported(t *testing.T) {
	c, srv := newHeadroomController(t)
	for i, load := range []float64{0.4, 0.55, 0.62} {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": i + 1, "load": load}, nil); code != http.StatusCreated {
			t.Fatalf("place %d: status %d", i+1, code)
		}
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/tenants/2", nil, nil); code != http.StatusNoContent {
		t.Fatal("remove failed")
	}
	c.SetHeadroomRedLine(0.25)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"cubefit_headroom_min_slack ",
		"cubefit_headroom_p50_slack ",
		"cubefit_headroom_redline 0.25",
		"cubefit_headroom_below_redline ",
		"cubefit_headroom_overloaded_servers 0",
		"cubefit_headroom_overload_on_failure_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// The exported minimum matches the auditor.
	min, _ := c.auditor.Min()
	if !strings.Contains(text, fmt.Sprintf("cubefit_headroom_min_slack %g", min.Slack)) {
		t.Fatalf("/metrics min_slack does not match auditor value %g:\n%s", min.Slack, text)
	}
}

// TestHeadroomConcurrent hammers the headroom routes while admissions and
// departures mutate the placement; run under -race this is the acceptance
// check that the auditor is safe beside the controller's RWMutex. The
// final state must still agree with the exhaustive reference.
func TestHeadroomConcurrent(t *testing.T) {
	c, srv := newHeadroomController(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := w*100 + i + 1
				body := map[string]any{"id": id, "clients": 3 + i}
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants", body, nil); code != http.StatusCreated {
					errs <- fmt.Errorf("place %d: status %d", id, code)
					return
				}
				if i%3 == 2 {
					if code := doJSON(t, "DELETE", srv.URL+fmt.Sprintf("/v1/tenants/%d", id), nil, nil); code != http.StatusNoContent {
						errs <- fmt.Errorf("remove %d: status %d", id, code)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				var out struct {
					headroom.Report
				}
				if code := doJSON(t, "GET", srv.URL+"/debug/headroom", nil, &out); code != http.StatusOK {
					errs <- fmt.Errorf("headroom read: status %d", code)
					return
				}
				for _, e := range out.Servers {
					if e.Level > 0 && len(e.WorstSet) == 0 {
						errs <- fmt.Errorf("server %d: loaded but empty worst set", e.Server)
						return
					}
				}
				doJSON(t, "GET", srv.URL+"/debug/headroom/servers/0", nil, nil)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rep := c.auditor.Report()
	want := headroom.Exhaustive(c.alg.Placement(), rep.RedLine)
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("post-traffic audit diverged from exhaustive\n got: %+v\nwant: %+v", rep, want)
	}
}
