package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentMixedTraffic hammers the controller with parallel
// admissions, departures, and every read endpoint at once. Its value is
// under `go test -race`: it exercises the RWMutex read paths and the
// placement snapshot cache concurrently with mutations. Functionally it
// asserts that every admission eventually lands and the final placement
// is robust.
func TestConcurrentMixedTraffic(t *testing.T) {
	c, err := NewDefaultController()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	const (
		writers       = 4
		perWriter     = 15
		readers       = 6
		readsPerIter  = 4
		removedEveryN = 5
	)

	get := func(path string) (int, error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	// Writers admit disjoint tenant ranges and churn every Nth tenant.
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := wr*perWriter + i + 1
				body, _ := json.Marshal(map[string]any{"id": id, "clients": 3 + id%9})
				resp, err := http.Post(srv.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errc <- fmt.Errorf("place %d: status %d", id, resp.StatusCode)
					return
				}
				if id%removedEveryN == 0 {
					req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/tenants/%d", srv.URL, id), nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						errc <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						errc <- fmt.Errorf("delete %d: status %d", id, resp.StatusCode)
						return
					}
				}
			}
		}(wr)
	}

	// Readers hit every read endpoint (including the cached snapshot and
	// the metrics exposition) while the writers churn.
	readPaths := []string{"/v1/stats", "/v1/servers", "/v1/placement", "/v1/validate", "/metrics"}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < perWriter*readsPerIter; i++ {
				path := readPaths[(rd+i)%len(readPaths)]
				code, err := get(path)
				if err != nil {
					errc <- err
					return
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("GET %s: status %d", path, code)
					return
				}
			}
		}(rd)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Every surviving tenant is placed and the invariant holds.
	var st struct {
		Tenants int `json:"tenants"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	total := writers * perWriter
	removed := total / removedEveryN
	if st.Tenants != total-removed {
		t.Fatalf("tenants = %d, want %d", st.Tenants, total-removed)
	}
	var out struct {
		Robust bool `json:"robust"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/validate", nil, &out); code != 200 || !out.Robust {
		t.Fatalf("post-churn validate: %d %+v", code, out)
	}
}
