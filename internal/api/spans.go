package api

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
	"cubefit/internal/stats"
)

// Pipeline span tracing: every admission travelling the batched pipeline
// carries a pooled obs.Span stamped at each boundary (enqueue, dequeue,
// placement start/end, group-commit start/end, ack) plus the group-commit
// identity, so one fsync's cost is attributable across the N admissions it
// committed. The tracer folds completed spans into per-stage latency
// histograms and queue/commit gauges on /metrics, keeps a bounded sample
// window and recent-commit ring behind GET /debug/pipeline, and forwards
// spans to an optional external sink (span JSONL for offline analysis via
// `cubefit-inspect latency`). The whole layer is allocation-free in steady
// state — pooled spans, pre-resolved histogram children, fixed rings — per
// the hotpath discipline, and is stamped through the clock seam so only
// monotonic differences ever leave it.

// spanStageNames are the canonical telescoping stages exported to the
// cubefit_pipeline_stage_duration_seconds histogram, in stamp order.
var spanStageNames = [...]string{"queue", "place", "wal", "fsync", "ack"}

// pipelineStageBuckets resolve the microsecond-scale pipeline stages that
// DefaultLatencyBuckets (built for whole requests) would flatten into the
// first bucket (seconds).
var pipelineStageBuckets = []float64{
	0.000001, //cubefit:vet-allow epsconst -- 1µs histogram bucket bound, not a tolerance
	0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

const (
	// pipelineSpanWindow bounds the in-memory span sample behind the
	// /debug/pipeline stage percentiles.
	pipelineSpanWindow = 4096
	// pipelineCommitWindow bounds the recent group-commit ring.
	pipelineCommitWindow = 64
)

// commitRecord is one completed WAL group commit as reported by
// GET /debug/pipeline.
type commitRecord struct {
	ID uint64 `json:"id"`
	// Size is the number of engine admissions the commit made durable.
	Size    int   `json:"size"`
	FsyncNs int64 `json:"fsyncNs"`
	// EndNs is the commit's completion timestamp on the tracer's monotonic
	// scale (comparable to span timestamps).
	EndNs  int64 `json:"endNs"`
	Failed bool  `json:"failed,omitempty"`
}

// pipelineTracer owns the span lifecycle around the admission pipeline.
// Its stamp methods are called from the handler goroutines (enqueue, ack)
// and the single placer goroutine (dequeue, placement, commit); all shared
// state is behind atomics or its own short mutexes, never the controller
// lock.
type pipelineTracer struct {
	clk clock.Clock
	// base anchors the monotonic nanosecond scale every span timestamp is
	// relative to.
	base time.Time
	ring *obs.SpanRing
	// sink, when attached, receives every completed span after the ring
	// and histograms (WithSpanSink).
	sink obs.SpanRecorder

	// stageHist holds the pre-resolved histogram children for
	// spanStageNames, so the hot finish path never touches the vec's map.
	stageHist  [len(spanStageNames)]*metrics.Histogram
	queueDepth *metrics.Gauge
	oldestWait *metrics.FGauge
	commits    *metrics.Counter
	fsyncHist  *metrics.Histogram
	sizeHist   *metrics.Histogram

	enqueuedJobs atomic.Uint64
	dequeuedJobs atomic.Uint64
	commitSeq    atomic.Uint64

	cmu sync.Mutex
	//cubefit:guarded-by cmu
	commitBuf [pipelineCommitWindow]commitRecord
	//cubefit:guarded-by cmu
	commitTotal uint64

	// Waiter FIFO mirroring the job queue: enqueue timestamps pushed by
	// producers, popped by the placer, so the oldest waiter's age is
	// readable without peeking into the channel.
	wmu sync.Mutex
	//cubefit:guarded-by wmu
	waitbuf []int64
	//cubefit:guarded-by wmu
	whead int
	//cubefit:guarded-by wmu
	wlen int
}

func newPipelineTracer(r *metrics.Registry, clk clock.Clock, sink obs.SpanRecorder) *pipelineTracer {
	t := &pipelineTracer{
		clk:  clk,
		base: clk.Now(),
		ring: obs.NewSpanRing(pipelineSpanWindow),
		sink: sink,
		queueDepth: r.NewGauge("cubefit_pipeline_queue_depth",
			"Admission jobs waiting on the pipeline queue."),
		oldestWait: r.NewFGauge("cubefit_pipeline_oldest_wait_seconds",
			"Queue wait of the oldest pending admission job at the last enqueue/dequeue."),
		commits: r.NewCounter("cubefit_pipeline_commits_total",
			"WAL group commits performed by the placer."),
		fsyncHist: r.NewHistogram("cubefit_pipeline_commit_fsync_seconds",
			"WAL group-commit flush+fsync duration.", pipelineStageBuckets...),
		sizeHist: r.NewHistogram("cubefit_pipeline_commit_size",
			"Engine admissions covered by one WAL group commit.",
			1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
		waitbuf: make([]int64, admitQueueDepth),
	}
	vec := r.NewHistogramVec("cubefit_pipeline_stage_duration_seconds",
		"Admission pipeline stage latency (stages telescope to the end-to-end total).",
		[]string{"stage"}, pipelineStageBuckets...)
	for i, name := range spanStageNames {
		t.stageHist[i] = vec.With(name)
	}
	return t
}

// now returns the tracer's monotonic timestamp in nanoseconds.
//
//cubefit:hotpath
func (t *pipelineTracer) now() int64 {
	return t.clk.Since(t.base).Nanoseconds()
}

// enqueued stamps EnqueueNs on the job's spans and registers the job with
// the waiter FIFO. depth is the queue depth observed at submission.
//
//cubefit:hotpath
func (t *pipelineTracer) enqueued(job *admitJob, depth int) {
	ns := t.now()
	for i := range job.items {
		if sp := job.items[i].span; sp != nil {
			sp.EnqueueNs = ns
		}
	}
	t.enqueuedJobs.Add(1)
	t.pushWaiter(ns)
	t.queueDepth.Set(int64(depth))
}

// dequeued stamps DequeueNs on every span of the coalesced batch and pops
// the batch's jobs off the waiter FIFO. depth is the queue depth after the
// coalesce.
//
//cubefit:hotpath
func (t *pipelineTracer) dequeued(jobs []*admitJob, depth int) {
	ns := t.now()
	for _, job := range jobs {
		for i := range job.items {
			if sp := job.items[i].span; sp != nil {
				sp.DequeueNs = ns
			}
		}
	}
	t.dequeuedJobs.Add(uint64(len(jobs)))
	t.popWaiters(len(jobs), ns)
	t.queueDepth.Set(int64(depth))
}

// finish completes a span on its handler goroutine: stamp the ack,
// normalize, fold the five stage durations into the histograms, retain it
// in the sample ring, forward it to the external sink, and return the
// struct to the pool.
//
//cubefit:hotpath
func (t *pipelineTracer) finish(sp *obs.Span) {
	sp.AckNs = t.now()
	sp.Normalize()
	t.stageHist[0].Observe(float64(sp.QueueNs()) / 1e9)
	t.stageHist[1].Observe(float64(sp.PlaceNs()) / 1e9)
	t.stageHist[2].Observe(float64(sp.WalNs()) / 1e9)
	t.stageHist[3].Observe(float64(sp.FsyncNs()) / 1e9)
	t.stageHist[4].Observe(float64(sp.AckLatencyNs()) / 1e9)
	t.ring.RecordSpan(*sp)
	if t.sink != nil {
		t.sink.RecordSpan(*sp)
	}
	obs.ReleaseSpan(sp)
}

// nextCommit allocates the next group-commit sequence number (first
// commit is 1, so span.Commit==0 still means "no commit").
func (t *pipelineTracer) nextCommit() uint64 {
	return t.commitSeq.Add(1)
}

// commitDone records one completed group commit.
func (t *pipelineTracer) commitDone(id uint64, size int, fsyncNs, endNs int64, failed bool) {
	t.commits.Inc()
	t.fsyncHist.Observe(float64(fsyncNs) / 1e9)
	t.sizeHist.Observe(float64(size))
	t.cmu.Lock()
	t.commitBuf[t.commitTotal%pipelineCommitWindow] = commitRecord{
		ID: id, Size: size, FsyncNs: fsyncNs, EndNs: endNs, Failed: failed,
	}
	t.commitTotal++
	t.cmu.Unlock()
}

// recentCommits returns the all-time commit count and up to n of the most
// recent commit records, oldest first.
func (t *pipelineTracer) recentCommits(n int) (total uint64, recent []commitRecord) {
	t.cmu.Lock()
	defer t.cmu.Unlock()
	stored := int(t.commitTotal)
	if stored > pipelineCommitWindow {
		stored = pipelineCommitWindow
	}
	if n > stored {
		n = stored
	}
	recent = make([]commitRecord, 0, n)
	start := int(t.commitTotal) - n
	for i := start; i < int(t.commitTotal); i++ {
		recent = append(recent, t.commitBuf[uint64(i)%pipelineCommitWindow])
	}
	return t.commitTotal, recent
}

// pushWaiter appends an enqueue timestamp to the waiter FIFO and refreshes
// the oldest-wait gauge. The buffer starts at the queue depth and grows
// only if blocked producers ever outnumber it.
func (t *pipelineTracer) pushWaiter(ns int64) {
	t.wmu.Lock()
	if t.wlen == len(t.waitbuf) {
		grown := make([]int64, 2*len(t.waitbuf))
		for i := 0; i < t.wlen; i++ {
			grown[i] = t.waitbuf[(t.whead+i)%len(t.waitbuf)]
		}
		t.waitbuf = grown
		t.whead = 0
	}
	t.waitbuf[(t.whead+t.wlen)%len(t.waitbuf)] = ns
	t.wlen++
	oldest := t.waitbuf[t.whead]
	t.wmu.Unlock()
	t.oldestWait.Set(float64(ns-oldest) / 1e9)
}

// popWaiters drops the n oldest waiter entries and refreshes the
// oldest-wait gauge as of ns.
func (t *pipelineTracer) popWaiters(n int, ns int64) {
	t.wmu.Lock()
	if n > t.wlen {
		n = t.wlen
	}
	t.whead = (t.whead + n) % len(t.waitbuf)
	t.wlen -= n
	wait := int64(0)
	if t.wlen > 0 {
		wait = ns - t.waitbuf[t.whead]
	}
	t.wmu.Unlock()
	t.oldestWait.Set(float64(wait) / 1e9)
}

// oldestWaitNs returns the live queue wait of the oldest pending job (0
// when the queue is empty).
func (t *pipelineTracer) oldestWaitNs(ns int64) int64 {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.wlen == 0 {
		return 0
	}
	return ns - t.waitbuf[t.whead]
}

// pipelineQueueStatus is the live queue state of GET /debug/pipeline.
type pipelineQueueStatus struct {
	Depth        int    `json:"depth"`
	Capacity     int    `json:"capacity"`
	OldestWaitNs int64  `json:"oldestWaitNs"`
	EnqueuedJobs uint64 `json:"enqueuedJobs"`
	DequeuedJobs uint64 `json:"dequeuedJobs"`
}

// pipelineStageSummary is one stage's latency summary over the span
// sample window, in nanoseconds.
type pipelineStageSummary struct {
	P50Ns  float64 `json:"p50Ns"`
	P90Ns  float64 `json:"p90Ns"`
	P99Ns  float64 `json:"p99Ns"`
	MaxNs  float64 `json:"maxNs"`
	MeanNs float64 `json:"meanNs"`
}

// pipelineSpansStatus summarizes the retained span window. Stages holds
// the five telescoping stages (queue, place, wal, fsync, ack) plus the
// derived overlays engine (the Place call inside the place stage), commit
// (wal+fsync), and total (end to end).
type pipelineSpansStatus struct {
	Total  uint64                          `json:"total"`
	Window int                             `json:"window"`
	Stages map[string]pipelineStageSummary `json:"stages"`
}

// pipelineCommitsStatus reports the recent WAL group commits.
type pipelineCommitsStatus struct {
	Total  uint64         `json:"total"`
	Recent []commitRecord `json:"recent"`
}

// pipelineResponse is GET /debug/pipeline.
type pipelineResponse struct {
	Tracing bool                  `json:"tracing"`
	Queue   pipelineQueueStatus   `json:"queue"`
	Spans   pipelineSpansStatus   `json:"spans"`
	Commits pipelineCommitsStatus `json:"commits"`
}

// stageSummaries computes per-stage percentiles over the span window.
// The stage set is obs.StageExtractors, shared with `cubefit-inspect
// latency` and the telemetry sampler.
func stageSummaries(spans []obs.Span) map[string]pipelineStageSummary {
	out := make(map[string]pipelineStageSummary, len(obs.StageExtractors))
	if len(spans) == 0 {
		return out
	}
	vals := make([]float64, len(spans))
	for _, st := range obs.StageExtractors {
		var sum, max float64
		for i := range spans {
			v := float64(st.Ns(&spans[i]))
			vals[i] = v
			sum += v
			if v > max {
				max = v
			}
		}
		p50, _ := stats.PercentileInPlace(vals, 50)
		p90, _ := stats.PercentileInPlace(vals, 90)
		p99, _ := stats.P99InPlace(vals)
		out[st.Name] = pipelineStageSummary{
			P50Ns: p50, P90Ns: p90, P99Ns: p99,
			MaxNs: max, MeanNs: sum / float64(len(spans)),
		}
	}
	return out
}

func (c *Controller) handlePipeline(w http.ResponseWriter, r *http.Request) {
	if c.tracer == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "pipeline span tracing is disabled"})
		return
	}
	window, ok := queryNonNegInt(w, r, "spans", pipelineSpanWindow)
	if !ok {
		return
	}
	nCommits, ok := queryNonNegInt(w, r, "commits", 16)
	if !ok {
		return
	}
	t := c.tracer
	spans := t.ring.Last(window)
	total, recent := t.recentCommits(nCommits)
	if recent == nil {
		recent = []commitRecord{}
	}
	writeJSON(w, http.StatusOK, pipelineResponse{
		Tracing: true,
		Queue: pipelineQueueStatus{
			Depth:        len(c.queue),
			Capacity:     admitQueueDepth,
			OldestWaitNs: t.oldestWaitNs(t.now()),
			EnqueuedJobs: t.enqueuedJobs.Load(),
			DequeuedJobs: t.dequeuedJobs.Load(),
		},
		Spans: pipelineSpansStatus{
			Total:  t.ring.Total(),
			Window: len(spans),
			Stages: stageSummaries(spans),
		},
		Commits: pipelineCommitsStatus{Total: total, Recent: recent},
	})
}
