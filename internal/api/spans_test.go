package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cubefit/internal/clock"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
)

// captureSpans is a SpanRecorder retaining every completed span.
type captureSpans struct {
	mu    sync.Mutex
	spans []obs.Span
}

func (c *captureSpans) RecordSpan(s obs.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func (c *captureSpans) all() []obs.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Span(nil), c.spans...)
}

// telescopes asserts the acceptance identity: the five stage durations sum
// exactly to the end-to-end total.
func telescopes(t *testing.T, s obs.Span) {
	t.Helper()
	sum := s.QueueNs() + s.PlaceNs() + s.WalNs() + s.FsyncNs() + s.AckLatencyNs()
	if sum != s.TotalNs() {
		t.Fatalf("span stages sum %d != total %d: %+v", sum, s.TotalNs(), s)
	}
	if s.QueueNs() < 0 || s.PlaceNs() < 0 || s.WalNs() < 0 || s.FsyncNs() < 0 || s.AckLatencyNs() < 0 {
		t.Fatalf("negative stage duration: %+v", s)
	}
}

// TestSpanStageReconciliation drives singles, a batch, and failures
// through a WAL-backed pipeline and checks every completed span: stage
// telescoping, per-item status, batch marking, and group-commit
// attribution (every committed admission carries a commit id and the
// commit's group size).
func TestSpanStageReconciliation(t *testing.T) {
	sink := &captureSpans{}
	var wal bytes.Buffer
	srv, _, _ := newEngineServer(t, WithWAL(obs.NewWAL(&wal)), WithSpanSink(sink))

	for i := 0; i < 10; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 1 + i%15}, nil); code != 201 {
			t.Fatalf("place %d failed", i)
		}
	}
	// A duplicate: rejected by the placer (409) but still traced.
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 3, "load": 0.2}, nil); code != 409 {
		t.Fatal("duplicate not rejected")
	}
	// A batch with one pre-rejected item (400 rides the queue too).
	items := []map[string]any{{"id": 100, "load": 0.3}, {"id": 101, "load": -1.0}, {"id": 102, "load": 0.4}}
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": items}, &bresp); code != 200 || bresp.Placed != 2 {
		t.Fatalf("batch: code %d placed %d", code, bresp.Placed)
	}

	spans := sink.all()
	if len(spans) != 14 {
		t.Fatalf("captured %d spans, want 14", len(spans))
	}
	byStatus := map[int]int{}
	for _, s := range spans {
		telescopes(t, s)
		byStatus[s.Status]++
		if s.Status == http.StatusCreated {
			if s.Commit == 0 || s.Group <= 0 {
				t.Fatalf("committed span without commit attribution: %+v", s)
			}
			if s.FsyncNs() <= 0 {
				t.Fatalf("committed span with no fsync time: %+v", s)
			}
		}
	}
	if byStatus[201] != 12 || byStatus[409] != 1 || byStatus[400] != 1 {
		t.Fatalf("status histogram %v", byStatus)
	}
	// Spans of one commit agree on its group size, and the batch items are
	// marked.
	groups := map[uint64]int{}
	batchSpans := 0
	for _, s := range spans {
		if s.Batch {
			batchSpans++
		}
		if s.Commit == 0 {
			continue
		}
		if g, seen := groups[s.Commit]; seen && g != s.Group {
			t.Fatalf("commit %d reported groups %d and %d", s.Commit, g, s.Group)
		}
		groups[s.Commit] = s.Group
	}
	if batchSpans != 3 {
		t.Fatalf("batch-marked spans %d, want 3", batchSpans)
	}
}

// pipelineGet fetches GET /debug/pipeline.
func pipelineGet(t *testing.T, base string) pipelineResponse {
	t.Helper()
	var resp pipelineResponse
	if err := json.Unmarshal(getBody(t, base+"/debug/pipeline"), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestDebugPipelineEndpoint(t *testing.T) {
	var wal bytes.Buffer
	srv, _, _ := newEngineServer(t, WithWAL(obs.NewWAL(&wal)))
	for i := 0; i < 25; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "load": 0.1}, nil); code != 201 {
			t.Fatalf("place %d failed", i)
		}
	}
	resp := pipelineGet(t, srv.URL)
	if !resp.Tracing {
		t.Fatal("tracing reported off")
	}
	if resp.Queue.Capacity != admitQueueDepth || resp.Queue.Depth != 0 {
		t.Fatalf("queue %+v", resp.Queue)
	}
	if resp.Queue.EnqueuedJobs != 25 || resp.Queue.DequeuedJobs != 25 {
		t.Fatalf("job counters %+v", resp.Queue)
	}
	if resp.Spans.Total != 25 || resp.Spans.Window != 25 {
		t.Fatalf("spans %+v", resp.Spans)
	}
	for _, stage := range []string{"queue", "place", "engine", "wal", "fsync", "ack", "commit", "total"} {
		if _, ok := resp.Spans.Stages[stage]; !ok {
			t.Fatalf("stage %q missing from %v", stage, resp.Spans.Stages)
		}
	}
	total := resp.Spans.Stages["total"]
	if total.P50Ns <= 0 || total.P99Ns < total.P50Ns || total.MaxNs < total.P99Ns {
		t.Fatalf("total summary not ordered: %+v", total)
	}
	if resp.Commits.Total == 0 || len(resp.Commits.Recent) == 0 {
		t.Fatalf("commits %+v", resp.Commits)
	}
	last := resp.Commits.Recent[len(resp.Commits.Recent)-1]
	if last.ID == 0 || last.Size <= 0 || last.FsyncNs <= 0 || last.Failed {
		t.Fatalf("commit record %+v", last)
	}
	// Bounded views.
	var small pipelineResponse
	if err := json.Unmarshal(getBody(t, srv.URL+"/debug/pipeline?spans=5&commits=1"), &small); err != nil {
		t.Fatal(err)
	}
	if small.Spans.Window != 5 || len(small.Commits.Recent) != 1 {
		t.Fatalf("bounded view: window %d commits %d", small.Spans.Window, len(small.Commits.Recent))
	}
}

func TestDebugPipelineDisabled(t *testing.T) {
	srv, _, _ := newEngineServer(t, WithoutSpanTracing())
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != 201 {
		t.Fatal("untraced admission failed")
	}
	if code := doJSON(t, "GET", srv.URL+"/debug/pipeline", nil, nil); code != http.StatusNotFound {
		t.Fatalf("disabled tracing status %d, want 404", code)
	}
	// No pipeline series on /metrics either.
	if body := string(getBody(t, srv.URL+"/metrics")); strings.Contains(body, "cubefit_pipeline_") {
		t.Fatal("pipeline metrics registered with tracing disabled")
	}
}

// TestDebugQueryParamValidation pins the 400 contract for every debug
// endpoint's numeric query parameters: negative and non-numeric values are
// rejected, never silently coerced.
func TestDebugQueryParamValidation(t *testing.T) {
	srv, _, _ := newEngineServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/debug/events?n=-1", 400},
		{"/debug/events?n=abc", 400},
		{"/debug/events?n=1e3", 400},
		{"/debug/events?n=10", 200},
		{"/debug/events", 200},
		{"/debug/headroom?worst=-5", 400},
		{"/debug/headroom?worst=2.5", 400},
		{"/debug/headroom?worst=3", 200},
		{"/debug/pipeline?spans=-1", 400},
		{"/debug/pipeline?spans=x", 400},
		{"/debug/pipeline?commits=-2", 400},
		{"/debug/pipeline?spans=10&commits=0", 200},
	}
	for _, tc := range cases {
		var errResp errorResponse
		if code := doJSON(t, "GET", srv.URL+tc.path, nil, &errResp); code != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, code, tc.want)
		} else if tc.want == 400 && !strings.Contains(errResp.Error, "invalid") {
			t.Errorf("GET %s: error %q lacks parameter name", tc.path, errResp.Error)
		}
	}
}

// metricValue extracts one sample (by exact series name, labels included)
// from a Prometheus text exposition.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// TestSpanJSONLMatchesMetrics is the round-trip acceptance test: spans
// exported through the JSONL sink must aggregate to the same per-stage
// totals the server's /metrics histograms report.
func TestSpanJSONLMatchesMetrics(t *testing.T) {
	var logbuf bytes.Buffer
	sink := obs.NewSpanJSONL(&logbuf)
	var wal bytes.Buffer
	srv, _, _ := newEngineServer(t, WithWAL(obs.NewWAL(&wal)), WithSpanSink(sink))

	for i := 0; i < 40; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 1 + i%15}, nil); code != 201 {
			t.Fatalf("place %d failed", i)
		}
	}
	items := make([]map[string]any, 30)
	for i := range items {
		items[i] = map[string]any{"id": 1000 + i, "load": 0.05}
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch", map[string]any{"tenants": items}, nil); code != 200 {
		t.Fatal("batch failed")
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	spans, err := obs.ReadSpanJSONL(&logbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 70 {
		t.Fatalf("exported %d spans, want 70", len(spans))
	}
	stageSums := map[string]float64{}
	for _, s := range spans {
		telescopes(t, s)
		stageSums["queue"] += float64(s.QueueNs()) / 1e9
		stageSums["place"] += float64(s.PlaceNs()) / 1e9
		stageSums["wal"] += float64(s.WalNs()) / 1e9
		stageSums["fsync"] += float64(s.FsyncNs()) / 1e9
		stageSums["ack"] += float64(s.AckLatencyNs()) / 1e9
	}
	body := string(getBody(t, srv.URL+"/metrics"))
	for _, stage := range spanStageNames {
		count := metricValue(t, body,
			fmt.Sprintf(`cubefit_pipeline_stage_duration_seconds_count{stage=%q}`, stage))
		if count != float64(len(spans)) {
			t.Fatalf("stage %s count %v, want %d", stage, count, len(spans))
		}
		sum := metricValue(t, body,
			fmt.Sprintf(`cubefit_pipeline_stage_duration_seconds_sum{stage=%q}`, stage))
		want := stageSums[stage]
		if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("stage %s sum %v, spans aggregate %v", stage, sum, want)
		}
	}
	if n := metricValue(t, body, "cubefit_pipeline_commits_total"); n == 0 {
		t.Fatal("no commits recorded")
	}
}

// TestConcurrentBatchAdmissionsTraced hammers the traced pipeline from
// concurrent single and batch producers (raced in CI): every admission
// lands exactly once, every span completes and telescopes, and the
// commit attribution stays consistent under contention.
func TestConcurrentBatchAdmissionsTraced(t *testing.T) {
	sink := &captureSpans{}
	var wal bytes.Buffer
	srv, cf, _ := newEngineServer(t, WithWAL(obs.NewWAL(&wal)), WithSpanSink(sink))
	const workers, per = 6, 5
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				base := (g*per + i) * 10
				items := make([]map[string]any, 8)
				for j := range items {
					items[j] = map[string]any{"id": 100000 + base + j, "load": 0.05}
				}
				var bresp batchResponse
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
					map[string]any{"tenants": items}, &bresp); code != 200 || bresp.Failed != 0 {
					t.Errorf("batch %d: code %d failed %d", base, code, bresp.Failed)
					return
				}
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
					map[string]any{"id": base + 9, "load": 0.1}, nil); code != 201 {
					t.Errorf("single %d failed", base+9)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wantTenants := workers * per * 9
	if n := cf.Placement().NumTenants(); n != wantTenants {
		t.Fatalf("tenants = %d, want %d", n, wantTenants)
	}
	spans := sink.all()
	if len(spans) != wantTenants {
		t.Fatalf("spans = %d, want %d", len(spans), wantTenants)
	}
	groups := map[uint64]int{}
	for _, s := range spans {
		telescopes(t, s)
		if s.Status != http.StatusCreated || s.Commit == 0 {
			t.Fatalf("span not committed: %+v", s)
		}
		if g, seen := groups[s.Commit]; seen && g != s.Group {
			t.Fatalf("commit %d group mismatch: %d vs %d", s.Commit, g, s.Group)
		}
		groups[s.Commit] = s.Group
	}
	// Group sizes account for every admission exactly once.
	covered := 0
	for _, g := range groups {
		covered += g
	}
	if covered != wantTenants {
		t.Fatalf("commit groups cover %d admissions, want %d", covered, wantTenants)
	}
	resp := pipelineGet(t, srv.URL)
	if resp.Commits.Total != uint64(len(groups)) {
		t.Fatalf("commit total %d, want %d", resp.Commits.Total, len(groups))
	}
}

// newBenchTracer builds a tracer on a throwaway registry with the pool,
// ring, and waiter FIFO warmed.
func newBenchTracer() *pipelineTracer {
	tr := newPipelineTracer(metrics.NewRegistry(), clock.Real(), nil)
	for i := 0; i < 64; i++ {
		sp := obs.AcquireSpan()
		job := &admitJob{items: []admitItem{{span: sp}}}
		jobs := []*admitJob{job}
		tr.enqueued(job, 0)
		tr.dequeued(jobs, 0)
		tr.finish(sp)
	}
	return tr
}

// spanPipelineCycle is one admission's full tracer interaction: acquire,
// stamp every boundary, fold into histograms/ring, release.
func spanPipelineCycle(tr *pipelineTracer, job *admitJob, jobs []*admitJob) {
	sp := obs.AcquireSpan()
	job.items[0].span = sp
	tr.enqueued(job, 0)
	tr.dequeued(jobs, 0)
	sp.PlaceStartNs = tr.now()
	sp.PlaceEndNs = tr.now()
	stampCommitStart(jobs, tr.now())
	stampCommitEnd(jobs, tr.now(), 1, 1)
	sp.Status = http.StatusCreated
	tr.finish(sp)
}

// TestSpanOverheadZeroAlloc pins the hotpath discipline at the tracer
// level: a full traced admission cycle allocates nothing once warm.
func TestSpanOverheadZeroAlloc(t *testing.T) {
	tr := newBenchTracer()
	job := &admitJob{items: make([]admitItem, 1)}
	jobs := []*admitJob{job}
	if allocs := testing.AllocsPerRun(1000, func() {
		spanPipelineCycle(tr, job, jobs)
	}); allocs != 0 {
		t.Fatalf("traced admission cycle allocates %v per op, want 0", allocs)
	}
}

// BenchmarkSpanOverhead measures the tracer's per-admission cost (stamps,
// histogram folds, ring write); allocs/op must report 0.
func BenchmarkSpanOverhead(b *testing.B) {
	tr := newBenchTracer()
	job := &admitJob{items: make([]admitItem, 1)}
	jobs := []*admitJob{job}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanPipelineCycle(tr, job, jobs)
	}
}
