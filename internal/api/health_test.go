package api

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"cubefit/internal/clock"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/telemetry"
)

// healthTestConfig returns a rule configuration with every rule disabled
// and short hysteresis; each test switches on exactly the rule it
// exercises, so verdicts have a single unambiguous cause.
func healthTestConfig() telemetry.Config {
	cfg := telemetry.DefaultConfig()
	cfg.RecoverTicks = 2
	cfg.Burn.Targets = nil
	cfg.Headroom = telemetry.HeadroomConfig{Series: "off"}
	cfg.Queue.DegradedFraction = 0
	cfg.Queue.CriticalFraction = 0
	cfg.Queue.DegradedWaitSeconds = 0
	cfg.Queue.CriticalWaitSeconds = 0
	cfg.Stall = telemetry.StallConfig{}
	return cfg
}

// getStatus fetches url and returns only the response status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// wantReady asserts GET /readyz answers the expected status code.
func wantReady(t *testing.T, base string, code int) {
	t.Helper()
	if got := getStatus(t, base+"/readyz"); got != code {
		t.Fatalf("/readyz = %d, want %d", got, code)
	}
}

// TestHealthEndpoints covers the static contracts: /healthz is always
// 200 with the verdict, /readyz reflects draining, /debug/health reports
// state plus config, and /debug/timeline lists and serves series.
func TestHealthEndpoints(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithClock(fake), WithHealthConfig(healthTestConfig()))

	var live livenessResponse
	if code := doJSON(t, "GET", srv.URL+"/healthz", nil, &live); code != 200 || live.Status != "healthy" {
		t.Fatalf("/healthz = %d %+v", code, live)
	}
	wantReady(t, srv.URL, 200)

	// Draining: readiness drops, liveness stays up.
	ctrl.SetDraining(true)
	var ready readyzResponse
	if code := doJSON(t, "GET", srv.URL+"/readyz", nil, &ready); code != 503 || !ready.Draining || ready.Ready {
		t.Fatalf("/readyz while draining = %d %+v", code, ready)
	}
	if code := getStatus(t, srv.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz while draining = %d", code)
	}
	ctrl.SetDraining(false)
	wantReady(t, srv.URL, 200)

	fake.Advance(time.Second)
	ctrl.HealthTick()
	var dbg healthDebugResponse
	if code := doJSON(t, "GET", srv.URL+"/debug/health", nil, &dbg); code != 200 {
		t.Fatalf("/debug/health = %d", code)
	}
	if dbg.State != telemetry.Healthy || dbg.Ticks != 1 || dbg.Config.RecoverTicks != 2 {
		t.Fatalf("/debug/health = %+v", dbg)
	}

	var idx timelineIndexResponse
	if code := doJSON(t, "GET", srv.URL+"/debug/timeline", nil, &idx); code != 200 || len(idx.Series) == 0 {
		t.Fatalf("/debug/timeline index = %d %+v", code, idx)
	}
	var tl timelineResponse
	url := srv.URL + "/debug/timeline?series=" + telemetry.SeriesWALStickyError + "&window=30s"
	if code := doJSON(t, "GET", url, nil, &tl); code != 200 || len(tl.Points) != 1 {
		t.Fatalf("/debug/timeline series = %d %+v", code, tl)
	}
	if code := getStatus(t, srv.URL+"/debug/timeline?series=no-such-series"); code != 404 {
		t.Fatalf("unknown series = %d, want 404", code)
	}
	if code := getStatus(t, srv.URL+"/debug/timeline?series=g&window=bogus"); code != 400 {
		t.Fatalf("bad window = %d, want 400", code)
	}
}

// TestReadyzFlipsOnBurnRateBreach drives real admissions through the
// HTTP layer against a 1ns latency objective: every request is "bad", so
// the multi-window burn rate saturates and readiness must drop, then
// recover once traffic stops and hysteresis elapses.
func TestReadyzFlipsOnBurnRateBreach(t *testing.T) {
	cfg := healthTestConfig()
	cfg.Burn.Objective = time.Nanosecond // no bucket bound fits: all traffic is bad
	cfg.Burn.FastWindow = 2 * time.Second
	cfg.Burn.SlowWindow = 4 * time.Second
	cfg.Burn.Targets = []string{`cubefit_http_request_duration_seconds{route="place"}`}
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithClock(fake), WithHealthConfig(cfg))

	tick := func() { fake.Advance(time.Second); ctrl.HealthTick() }

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.1}, nil); code != 201 {
		t.Fatalf("place = %d", code)
	}
	tick()
	wantReady(t, srv.URL, 200) // one sample: no burn window yet

	for i := 2; i <= 4; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": i, "load": 0.1}, nil); code != 201 {
			t.Fatalf("place %d = %d", i, code)
		}
	}
	tick()
	wantReady(t, srv.URL, 503)
	if st := ctrl.Health().State(); st != telemetry.Critical {
		t.Fatalf("state = %v, want critical", st)
	}
	if tr := ctrl.Health().Status().Transitions; len(tr) == 0 ||
		len(tr[len(tr)-1].Rules) == 0 ||
		tr[len(tr)-1].Rules[0] != `slo-burn:cubefit_http_request_duration_seconds{route="place"}` {
		t.Fatalf("transitions = %+v", tr)
	}

	// No traffic: once the fast window slides past the burst the rule
	// goes quiet, and RecoverTicks=2 restores readiness.
	tick() // t=3: the 2s fast window still covers the burst — critical holds
	wantReady(t, srv.URL, 503)
	tick() // t=4: both windows quiet; first clean tick
	wantReady(t, srv.URL, 503)
	tick() // t=5: second clean tick — recovered
	wantReady(t, srv.URL, 200)
}

// TestReadyzFlipsOnHeadroomRedline puts the red-line floor above the
// slack an admission leaves behind: readiness drops while the tenant is
// placed and recovers after it departs.
func TestReadyzFlipsOnHeadroomRedline(t *testing.T) {
	cfg := healthTestConfig()
	cfg.Headroom = telemetry.HeadroomConfig{
		Series: telemetry.SeriesHeadroomMinSlack,
		Floor:  0.99, // any real placement leaves less slack than this
	}
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithClock(fake), WithHealthConfig(cfg))

	tick := func() { fake.Advance(time.Second); ctrl.HealthTick() }

	tick()
	wantReady(t, srv.URL, 200) // empty cluster reports full slack

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.5}, nil); code != 201 {
		t.Fatalf("place = %d", code)
	}
	tick()
	wantReady(t, srv.URL, 503)
	st := ctrl.Health().Status()
	if len(st.Findings) != 1 || st.Findings[0].Rule != "headroom-redline" {
		t.Fatalf("findings = %+v", st.Findings)
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/tenants/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	tick()
	wantReady(t, srv.URL, 503) // hysteresis: one clean tick is not enough
	tick()
	wantReady(t, srv.URL, 200)
}

// TestReadyzFlipsOnStickyWALError trips the WAL mid-run: the failed
// group commit 503s the admission, the error gauge goes to 1, and the
// next health tick is immediately critical — and stays there, because
// the error is sticky.
func TestReadyzFlipsOnStickyWALError(t *testing.T) {
	fw := &flakyWriter{}
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithWAL(obs.NewWAL(fw)),
		WithClock(fake), WithHealthConfig(healthTestConfig()))

	tick := func() { fake.Advance(time.Second); ctrl.HealthTick() }

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != 201 {
		t.Fatalf("place = %d", code)
	}
	tick()
	wantReady(t, srv.URL, 200)

	fw.trip()
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.3}, nil); code != 503 {
		t.Fatalf("post-trip place = %d, want 503", code)
	}
	tick()
	wantReady(t, srv.URL, 503)
	st := ctrl.Health().Status()
	if len(st.Findings) != 1 || st.Findings[0].Rule != "wal-sticky-error" {
		t.Fatalf("findings = %+v", st.Findings)
	}
	// Sticky: readiness never comes back on its own.
	for i := 0; i < 5; i++ {
		tick()
	}
	wantReady(t, srv.URL, 503)
}

// blockingSyncer hangs the WAL group commit until released, simulating a
// stalled fsync. entered closes when the first Sync begins, giving tests
// a happens-before edge to the placer's prior work.
type blockingSyncer struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingSyncer() *blockingSyncer {
	return &blockingSyncer{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingSyncer) Write(p []byte) (int, error) { return len(p), nil }

func (b *blockingSyncer) Sync() error {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return nil
}

// TestReadyzFlipsOnPlacerStall hangs the placer inside a group commit
// with admissions queued behind it: the stall watchdog walks the state
// machine degraded→critical (readiness drops), and releasing the commit
// drains the queue and restores readiness. The pipeline is driven with
// direct enqueues so the fake clock is only touched while the placer is
// provably parked inside Sync.
func TestReadyzFlipsOnPlacerStall(t *testing.T) {
	bs := newBlockingSyncer()
	cfg := healthTestConfig()
	cfg.Stall = telemetry.StallConfig{
		DepthSeries:    telemetry.SeriesQueueDepth,
		ProgressSeries: telemetry.SeriesPlaceProgress,
		Window:         2 * time.Second,
	}
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithWAL(obs.NewWAL(bs)),
		WithClock(fake), WithHealthConfig(cfg))

	enqueue := func(id int) *admitJob {
		job := &admitJob{
			items: []admitItem{{tenant: packing.Tenant{ID: packing.TenantID(id), Load: 0.1}}},
			done:  make(chan struct{}),
		}
		if !ctrl.enqueue(job) {
			t.Fatalf("enqueue %d refused", id)
		}
		return job
	}

	// The first job reaches the engine and hangs in its group commit.
	jobs := []*admitJob{enqueue(1)}
	<-bs.entered
	// Three more pile up behind it; the queue-depth gauge (set at each
	// enqueue, before the send) ends at 2 and stays there.
	for id := 2; id <= 4; id++ {
		jobs = append(jobs, enqueue(id))
	}

	tick := func() { fake.Advance(time.Second); ctrl.HealthTick() }

	tick() // t=1: first depth/progress samples
	tick() // t=2: 1s of history — under the 2s window
	wantReady(t, srv.URL, 200)
	tick() // t=3: full 2s window with no progress — degraded
	wantReady(t, srv.URL, 200)
	if st := ctrl.Health().State(); st != telemetry.Degraded {
		t.Fatalf("state = %v, want degraded", st)
	}
	tick() // t=4
	tick() // t=5: 4s ≥ 2×window — critical
	wantReady(t, srv.URL, 503)
	st := ctrl.Health().Status()
	if len(st.Findings) != 1 || st.Findings[0].Rule != "placer-stall" {
		t.Fatalf("findings = %+v", st.Findings)
	}

	// Release the hung commit: the queue drains and every admission lands.
	close(bs.release)
	for i, job := range jobs {
		<-job.done
		if s := job.items[0].status; s != http.StatusCreated {
			t.Fatalf("job %d status = %d (%s)", i, s, job.items[0].err)
		}
	}
	tick()
	tick() // RecoverTicks=2 with an empty queue
	wantReady(t, srv.URL, 200)
}

// TestServerHealthReplayParity runs a controller with a health log
// attached through a WAL incident and verifies the offline replay
// (what `cubefit-inspect health` performs) reconstructs the exact
// verdict timeline the live monitor produced.
func TestServerHealthReplayParity(t *testing.T) {
	fw := &flakyWriter{}
	var buf bytes.Buffer
	fake := clock.NewFake(time.Unix(0, 0))
	srv, _, ctrl := newEngineServer(t, WithWAL(obs.NewWAL(fw)),
		WithClock(fake), WithHealthConfig(healthTestConfig()),
		WithHealthLog(obs.NewHealthJSONL(&buf)))

	tick := func() { fake.Advance(time.Second); ctrl.HealthTick() }

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.2}, nil); code != 201 {
		t.Fatalf("place = %d", code)
	}
	tick()
	tick()
	fw.trip()
	doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.2}, nil)
	tick() // critical
	tick()

	live := ctrl.Health().Status()
	if live.State != telemetry.Critical || live.TransitionsTotal != 1 {
		t.Fatalf("live status = %+v", live)
	}

	recs, err := obs.ReadHealthJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := telemetry.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 4 || res.Final != telemetry.Critical {
		t.Fatalf("replay = %+v", res)
	}
	if !res.ParityOK() {
		t.Fatalf("replay/recorded mismatch:\nreplayed %+v\nrecorded %+v", res.Transitions, res.Recorded)
	}
	if len(res.Transitions) != len(live.Transitions) {
		t.Fatalf("replayed %d transitions, live has %d", len(res.Transitions), len(live.Transitions))
	}
	for i, tr := range res.Transitions {
		lt := live.Transitions[i]
		if tr.TNs != lt.TNs || tr.From != lt.From || tr.To != lt.To {
			t.Fatalf("transition %d: replay %+v, live %+v", i, tr, lt)
		}
	}
}
