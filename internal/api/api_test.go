package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rfi"
	"cubefit/internal/workload"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	c, err := NewDefaultController()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	var out map[string]string
	if code := doJSON(t, "GET", srv.URL+"/v1/healthz", nil, &out); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz body %v", out)
	}
}

func TestPlaceAndGetTenant(t *testing.T) {
	srv := newServer(t)
	var placed struct {
		ID      int     `json:"id"`
		Load    float64 `json:"load"`
		Servers []int   `json:"servers"`
	}
	code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, &placed)
	if code != http.StatusCreated {
		t.Fatalf("place status %d", code)
	}
	if len(placed.Servers) != 2 || placed.Servers[0] == placed.Servers[1] {
		t.Fatalf("servers = %v", placed.Servers)
	}
	var got struct {
		Load    float64 `json:"load"`
		Servers []int   `json:"servers"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/tenants/1", nil, &got); code != 200 {
		t.Fatalf("get status %d", code)
	}
	if got.Load != 0.3 || len(got.Servers) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestPlaceByClients(t *testing.T) {
	srv := newServer(t)
	var placed struct {
		Load float64 `json:"load"`
	}
	code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "clients": 8}, &placed)
	if code != http.StatusCreated {
		t.Fatalf("status %d", code)
	}
	want := workload.DefaultLoadModel().Load(8)
	if placed.Load != want {
		t.Fatalf("load %v, want %v", placed.Load, want)
	}
}

func TestPlaceConflictAndErrors(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusCreated {
		t.Fatalf("status %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate status %d", code)
	}
	// Invalid requests are rejected up front with 400, before touching
	// algorithm state.
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 3, "load": 7.0}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad load status %d", code)
	}
	// Raw garbage body.
	resp, err := http.Post(srv.URL+"/v1/tenants", "application/json", bytes.NewBufferString("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d", resp.StatusCode)
	}
}

func TestPlaceRequestValidation(t *testing.T) {
	srv := newServer(t)
	cases := []map[string]any{
		{"id": 1},                             // neither load nor clients
		{"id": 2, "load": -0.5},               // negative load
		{"id": 3, "clients": -4},              // negative clients
		{"id": 4, "load": 1.5},                // load > 1
		{"id": -1, "load": 0.3},               // negative id
		{"id": 5, "load": 0.3, "clients": -1}, // load fine, clients negative
	}
	for _, body := range cases {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants", body, nil); code != http.StatusBadRequest {
			t.Fatalf("body %v: status %d, want 400", body, code)
		}
	}
	// Invalid requests must not have perturbed the placement.
	var st struct {
		Tenants int `json:"tenants"`
		Servers int `json:"servers"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Tenants != 0 || st.Servers != 0 {
		t.Fatalf("rejected requests touched state: %+v", st)
	}
}

func TestDrillRejectsNegativeFailures(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/drill", map[string]any{"failures": -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative failures status %d, want 400", code)
	}
}

func TestGetUnknownTenant(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "GET", srv.URL+"/v1/tenants/42", nil, nil); code != http.StatusNotFound {
		t.Fatalf("status %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/tenants/abc", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
}

func TestRemoveTenant(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/tenants/1", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/tenants/1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("re-delete status %d", code)
	}
}

func TestRemoveUnsupportedAlgorithm(t *testing.T) {
	a, err := rfi.New(rfi.Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(a, workload.DefaultLoadModel())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/tenants/1", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("delete on RFI status %d", code)
	}
}

func TestStatsAndServers(t *testing.T) {
	srv := newServer(t)
	for i := 1; i <= 5; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 8}, nil); code != http.StatusCreated {
			t.Fatal("place failed")
		}
	}
	var st struct {
		Algorithm   string  `json:"algorithm"`
		Tenants     int     `json:"tenants"`
		UsedServers int     `json:"usedServers"`
		Utilization float64 `json:"utilization"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Tenants != 5 || st.UsedServers == 0 || st.Utilization <= 0 {
		t.Fatalf("stats %+v", st)
	}
	var servers []struct {
		ID       int     `json:"id"`
		Level    float64 `json:"level"`
		Replicas int     `json:"replicas"`
		Clients  int     `json:"clients"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/servers", nil, &servers); code != 200 {
		t.Fatalf("servers status %d", code)
	}
	if len(servers) != st.UsedServers {
		t.Fatalf("%d servers reported, stats says %d used", len(servers), st.UsedServers)
	}
	totalClients := 0
	for _, s := range servers {
		totalClients += s.Clients
	}
	if totalClients != 5*8 {
		t.Fatalf("total clients %d, want 40", totalClients)
	}
}

func TestValidateEndpoint(t *testing.T) {
	srv := newServer(t)
	var out struct {
		Robust bool `json:"robust"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/validate", nil, &out); code != 200 || !out.Robust {
		t.Fatalf("validate: code %d, body %+v", code, out)
	}
}

func TestDrill(t *testing.T) {
	srv := newServer(t)
	for i := 1; i <= 30; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 5 + i%10}, nil); code != http.StatusCreated {
			t.Fatal("place failed")
		}
	}
	var out struct {
		FailedServers  []int   `json:"failedServers"`
		MaxClientLoad  float64 `json:"maxClientLoad"`
		ClientCapacity int     `json:"clientCapacity"`
		WorstLoad      float64 `json:"worstLoad"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/drill", map[string]any{"failures": 1}, &out); code != 200 {
		t.Fatalf("drill status %d", code)
	}
	if len(out.FailedServers) != 1 {
		t.Fatalf("drill %+v", out)
	}
	if out.MaxClientLoad > float64(out.ClientCapacity) {
		t.Fatalf("CubeFit drill predicts overload: %+v", out)
	}
	if !packing.WithinCapacity(out.WorstLoad) {
		t.Fatalf("worst load %v exceeds capacity", out.WorstLoad)
	}
	// Too many failures.
	if code := doJSON(t, "POST", srv.URL+"/v1/drill", map[string]any{"failures": 10000}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("excessive drill status %d", code)
	}
}

func TestPlacementSnapshot(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.4}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	var snap struct {
		Gamma   int `json:"gamma"`
		Servers []struct {
			Replicas []struct {
				Tenant int `json:"tenant"`
			} `json:"replicas"`
		} `json:"servers"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/placement", nil, &snap); code != 200 {
		t.Fatalf("placement status %d", code)
	}
	if snap.Gamma != 2 {
		t.Fatalf("gamma %d", snap.Gamma)
	}
	replicas := 0
	for _, s := range snap.Servers {
		replicas += len(s.Replicas)
	}
	if replicas != 2 {
		t.Fatalf("%d replicas in snapshot", replicas)
	}
}

func TestPlacementSnapshotCacheInvalidation(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.4}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	var snap struct {
		Tenants []struct {
			ID int `json:"id"`
		} `json:"tenants"`
	}
	// Two reads in a row exercise the cached path.
	for i := 0; i < 2; i++ {
		if code := doJSON(t, "GET", srv.URL+"/v1/placement", nil, &snap); code != 200 {
			t.Fatalf("placement status %d", code)
		}
		if len(snap.Tenants) != 1 {
			t.Fatalf("snapshot tenants %v", snap.Tenants)
		}
	}
	// A mutation must invalidate the cache.
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.4}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/placement", nil, &snap); code != 200 {
		t.Fatal("placement read failed")
	}
	if len(snap.Tenants) != 2 {
		t.Fatalf("stale snapshot after admission: %v", snap.Tenants)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/tenants/1", nil, nil); code != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/placement", nil, &snap); code != 200 {
		t.Fatal("placement read failed")
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].ID != 2 {
		t.Fatalf("stale snapshot after departure: %v", snap.Tenants)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.4}, nil); code != http.StatusCreated {
		t.Fatal("place failed")
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.4}, nil); code != http.StatusConflict {
		t.Fatal("duplicate accepted")
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, nil); code != 200 {
		t.Fatal("stats failed")
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`cubefit_http_requests_total{route="place",method="POST",code="2xx"} 1`,
		`cubefit_http_requests_total{route="place",method="POST",code="4xx"} 1`,
		`cubefit_http_requests_total{route="stats",method="GET",code="2xx"} 1`,
		`cubefit_http_request_duration_seconds_bucket{route="place",le="+Inf"} 2`,
		`cubefit_admissions_total{outcome="regular"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestControllerConstructorErrors(t *testing.T) {
	if _, err := NewController(nil, workload.DefaultLoadModel()); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	a, err := rfi.New(rfi.Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(a, workload.LoadModel{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := newServer(t)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(id int) {
			body, _ := json.Marshal(map[string]any{"id": id, "clients": 5})
			resp, err := http.Post(srv.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i + 1)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var out struct {
		Robust bool `json:"robust"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/validate", nil, &out); code != 200 || !out.Robust {
		t.Fatalf("post-concurrency validate failed: %d %+v", code, out)
	}
}

func TestRepackEndpoint(t *testing.T) {
	srv := newServer(t)
	for i := 1; i <= 40; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 4 + i%8}, nil); code != http.StatusCreated {
			t.Fatal("place failed")
		}
	}
	// Churn half the tenants to fragment the placement.
	for i := 1; i <= 40; i += 2 {
		if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/tenants/%d", srv.URL, i), nil, nil); code != http.StatusNoContent {
			t.Fatal("delete failed")
		}
	}
	var out struct {
		BeforeServers int     `json:"beforeServers"`
		AfterServers  int     `json:"afterServers"`
		SavedServers  int     `json:"savedServers"`
		Moves         int     `json:"moves"`
		MovedLoad     float64 `json:"movedLoad"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/repack", nil, &out); code != 200 {
		t.Fatalf("repack status %d", code)
	}
	if out.BeforeServers == 0 {
		t.Fatalf("repack reported empty placement: %+v", out)
	}
	if out.SavedServers != out.BeforeServers-out.AfterServers {
		t.Fatalf("inconsistent repack response: %+v", out)
	}
	if out.Moves > 0 && out.MovedLoad <= 0 {
		t.Fatalf("moves without load: %+v", out)
	}
}
