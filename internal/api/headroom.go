package api

import (
	"fmt"
	"net/http"
	"strconv"

	"cubefit/internal/headroom"
	"cubefit/internal/metrics"
)

// headroomMetrics bundles the robustness headroom gauges the controller
// refreshes after every mutation. All values come from the incremental
// auditor's Summary, so a refresh is O(servers changed since the last
// one) plus an O(servers) allocation-free median selection.
type headroomMetrics struct {
	minSlack *metrics.FGauge
	p50Slack *metrics.FGauge
	redline  *metrics.FGauge
	below    *metrics.Gauge
	overload *metrics.Gauge
	// overloadTotal mirrors the auditor's monotone overload-on-failure
	// event counter; lastOverload tracks the last value already exported.
	overloadTotal *metrics.Counter
	lastOverload  uint64
}

func newHeadroomMetrics(r *metrics.Registry) *headroomMetrics {
	return &headroomMetrics{
		minSlack: r.NewFGauge("cubefit_headroom_min_slack",
			"Least worst-case failover slack across open servers (1 when none open)."),
		p50Slack: r.NewFGauge("cubefit_headroom_p50_slack",
			"Median worst-case failover slack across open servers."),
		redline: r.NewFGauge("cubefit_headroom_redline",
			"Configured red-line slack threshold."),
		below: r.NewGauge("cubefit_headroom_below_redline",
			"Servers whose worst-case failover slack is below the red line."),
		overload: r.NewGauge("cubefit_headroom_overloaded_servers",
			"Servers that would overload under their worst failure set."),
		overloadTotal: r.NewCounter("cubefit_headroom_overload_on_failure_total",
			"Transitions of a server into the overload-on-failure state."),
	}
}

// refreshHeadroom re-exports the headroom gauges. Callers hold the
// controller write lock (mutations) or are constructing the controller.
func (c *Controller) refreshHeadroom() {
	if c.auditor == nil {
		return
	}
	s := c.auditor.Summary()
	m := c.headroomM
	m.minSlack.Set(s.MinSlack)
	m.p50Slack.Set(s.P50Slack)
	m.redline.Set(s.RedLine)
	m.below.Set(int64(s.BelowRedLine))
	m.overload.Set(int64(s.Overloaded))
	if s.OverloadEvents > m.lastOverload {
		m.overloadTotal.Add(s.OverloadEvents - m.lastOverload)
		m.lastOverload = s.OverloadEvents
	}
}

// SetHeadroomRedLine reconfigures the red-line slack threshold (<= 0
// selects headroom.DefaultRedLine). It is a no-op when the wrapped
// algorithm does not record decision events.
func (c *Controller) SetHeadroomRedLine(redline float64) {
	if c.auditor == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.auditor.SetRedLine(redline)
	c.refreshHeadroom()
}

// headroomResponse is GET /debug/headroom: the full audit plus the
// monotone overload-on-failure event total.
type headroomResponse struct {
	headroom.Report
	OverloadEventsTotal uint64 `json:"overloadEventsTotal"`
}

func (c *Controller) headroomUnavailable(w http.ResponseWriter) bool {
	if c.auditor == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("%s does not record decision events", c.alg.Name())})
		return true
	}
	return false
}

func (c *Controller) handleHeadroom(w http.ResponseWriter, r *http.Request) {
	if c.headroomUnavailable(w) {
		return
	}
	worst := 0
	if raw := r.URL.Query().Get("worst"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid worst " + raw})
			return
		}
		worst = v
	}
	c.mu.RLock()
	rep := c.auditor.Report()
	_, _, _, events := c.auditor.Aggregates()
	if worst > 0 {
		rep.Servers = c.auditor.Worst(worst)
	}
	c.mu.RUnlock()
	writeJSON(w, http.StatusOK, headroomResponse{Report: rep, OverloadEventsTotal: events})
}

// headroomServerResponse is GET /debug/headroom/servers/{id}: one server's
// audit entry with its worst failure set attributed to the co-located
// tenants that would redirect load onto it.
type headroomServerResponse struct {
	headroom.Entry
	RedLine      bool                    `json:"belowRedLine"`
	Contributors []headroom.Contribution `json:"contributors"`
}

func (c *Controller) handleHeadroomServer(w http.ResponseWriter, r *http.Request) {
	if c.headroomUnavailable(w) {
		return
	}
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid server id " + raw})
		return
	}
	c.mu.RLock()
	entry, ok := c.auditor.Entry(id)
	var contribs []headroom.Contribution
	if ok {
		contribs, err = headroom.Contributors(c.alg.Placement(), id, entry.WorstSet)
	}
	redline := c.auditor.RedLine()
	c.mu.RUnlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("server %d not found", id)})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if contribs == nil {
		contribs = []headroom.Contribution{}
	}
	writeJSON(w, http.StatusOK, headroomServerResponse{
		Entry:        entry,
		RedLine:      entry.Slack < redline,
		Contributors: contribs,
	})
}
