// Package api exposes a consolidation engine as a small operational HTTP
// service: tenant admission and departure, placement inspection, failover
// drills, and invariant audits. It is the operational wrapper a cloud
// provider would put in front of the placement algorithm (DESIGN.md §2
// item 18).
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"cubefit/internal/core"
	"cubefit/internal/failure"
	"cubefit/internal/packing"
	"cubefit/internal/rebalance"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// Remover is implemented by algorithms that support tenant departure.
type Remover interface {
	Remove(packing.TenantID) error
}

// Controller serves the placement API around one algorithm instance.
type Controller struct {
	mu    sync.Mutex
	alg   packing.Algorithm
	model workload.LoadModel
}

// NewController wraps an algorithm. The load model translates
// client-count admissions into loads.
func NewController(alg packing.Algorithm, model workload.LoadModel) (*Controller, error) {
	if alg == nil {
		return nil, errors.New("api: nil algorithm")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Controller{alg: alg, model: model}, nil
}

// NewDefaultController wraps a fresh CubeFit instance with the default
// configuration and load model.
func NewDefaultController() (*Controller, error) {
	cf, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return NewController(cf, workload.DefaultLoadModel())
}

// Handler returns the HTTP routes.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", c.handlePlace)
	mux.HandleFunc("GET /v1/tenants/{id}", c.handleGetTenant)
	mux.HandleFunc("DELETE /v1/tenants/{id}", c.handleRemoveTenant)
	mux.HandleFunc("GET /v1/placement", c.handlePlacement)
	mux.HandleFunc("GET /v1/servers", c.handleServers)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /v1/validate", c.handleValidate)
	mux.HandleFunc("POST /v1/drill", c.handleDrill)
	mux.HandleFunc("POST /v1/repack", c.handleRepack)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// placeRequest admits a tenant either by explicit load or by client count
// (translated through the load model).
type placeRequest struct {
	ID      int     `json:"id"`
	Load    float64 `json:"load,omitempty"`
	Clients int     `json:"clients,omitempty"`
}

// placeResponse reports where the tenant's replicas went.
type placeResponse struct {
	ID      int     `json:"id"`
	Load    float64 `json:"load"`
	Clients int     `json:"clients,omitempty"`
	Servers []int   `json:"servers"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (c *Controller) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	t := packing.Tenant{ID: packing.TenantID(req.ID), Load: req.Load, Clients: req.Clients}
	if req.Load == 0 && req.Clients > 0 {
		t.Load = c.model.Load(req.Clients)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.alg.Placement().Tenant(t.ID); exists {
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("tenant %d already placed", t.ID)})
		return
	}
	if err := c.alg.Place(t); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, placeResponse{
		ID:      req.ID,
		Load:    t.Load,
		Clients: t.Clients,
		Servers: c.alg.Placement().TenantHosts(t.ID),
	})
}

func (c *Controller) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, exists := c.alg.Placement().Tenant(id)
	if !exists {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("tenant %d not found", id)})
		return
	}
	writeJSON(w, http.StatusOK, placeResponse{
		ID:      int(t.ID),
		Load:    t.Load,
		Clients: t.Clients,
		Servers: c.alg.Placement().TenantHosts(id),
	})
}

func (c *Controller) handleRemoveTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	rem, supports := c.alg.(Remover)
	if !supports {
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("%s does not support tenant departure", c.alg.Name())})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := rem.Remove(id); err != nil {
		if errors.Is(err, packing.ErrUnknownTenant) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Controller) handlePlacement(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	snap := trace.Capture(c.alg.Placement())
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

// serverSummary is the per-server row of GET /v1/servers.
type serverSummary struct {
	ID       int     `json:"id"`
	Level    float64 `json:"level"`
	Replicas int     `json:"replicas"`
	Reserve  float64 `json:"reserve"`
	Clients  int     `json:"clients"`
}

func (c *Controller) handleServers(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	p := c.alg.Placement()
	out := make([]serverSummary, 0, p.NumServers())
	k := p.Gamma() - 1
	for _, s := range p.Servers() {
		clients := 0
		for _, r := range s.Replicas() {
			clients += r.Clients
		}
		out = append(out, serverSummary{
			ID:       s.ID(),
			Level:    s.Level(),
			Replicas: s.NumReplicas(),
			Reserve:  s.TopShared(k),
			Clients:  clients,
		})
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// statsResponse is GET /v1/stats.
type statsResponse struct {
	Algorithm   string  `json:"algorithm"`
	Gamma       int     `json:"gamma"`
	Tenants     int     `json:"tenants"`
	Servers     int     `json:"servers"`
	UsedServers int     `json:"usedServers"`
	TotalLoad   float64 `json:"totalLoad"`
	Utilization float64 `json:"utilization"`
}

func (c *Controller) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	p := c.alg.Placement()
	resp := statsResponse{
		Algorithm:   c.alg.Name(),
		Gamma:       p.Gamma(),
		Tenants:     p.NumTenants(),
		Servers:     p.NumServers(),
		UsedServers: p.NumUsedServers(),
		TotalLoad:   p.TotalLoad(),
		Utilization: p.Utilization(),
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Controller) handleValidate(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	err := c.alg.Placement().Validate()
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"robust": false, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"robust": true})
}

// drillRequest asks for a worst-case failure analysis.
type drillRequest struct {
	Failures int `json:"failures"`
}

// drillResponse reports the worst-case plan.
type drillResponse struct {
	Failures       int     `json:"failures"`
	FailedServers  []int   `json:"failedServers"`
	MaxClientLoad  float64 `json:"maxClientLoad"`
	MaxServer      int     `json:"maxServer"`
	LostClients    int     `json:"lostClients"`
	ClientCapacity int     `json:"clientCapacity"`
	WorstLoad      float64 `json:"worstLoad"`
}

func (c *Controller) handleDrill(w http.ResponseWriter, r *http.Request) {
	var req drillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.alg.Placement()
	plan, err := failure.WorstCase(p, req.Failures)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, drillResponse{
		Failures:       req.Failures,
		FailedServers:  plan.Servers,
		MaxClientLoad:  plan.MaxClientLoad,
		MaxServer:      plan.MaxServer,
		LostClients:    plan.LostClients,
		ClientCapacity: workload.MaxClientsPerServer,
		WorstLoad:      p.MaxPostFailureLoad(plan.Servers),
	})
}

// repackResponse reports a maintenance repack plan (the plan is advisory:
// the controller does not execute migrations).
type repackResponse struct {
	BeforeServers int              `json:"beforeServers"`
	AfterServers  int              `json:"afterServers"`
	SavedServers  int              `json:"savedServers"`
	Moves         int              `json:"moves"`
	MovedLoad     float64          `json:"movedLoad"`
	Migrations    []rebalance.Move `json:"migrations,omitempty"`
}

func (c *Controller) handleRepack(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	_, plan, err := rebalance.Repack(c.alg.Placement())
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, repackResponse{
		BeforeServers: plan.BeforeServers,
		AfterServers:  plan.AfterServers,
		SavedServers:  plan.BeforeServers - plan.AfterServers,
		Moves:         len(plan.Moves),
		MovedLoad:     plan.MovedLoad,
		Migrations:    plan.Moves,
	})
}

func pathID(w http.ResponseWriter, r *http.Request) (packing.TenantID, bool) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid tenant id " + raw})
		return 0, false
	}
	return packing.TenantID(id), true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors at this point cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}
