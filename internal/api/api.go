// Package api exposes a consolidation engine as a small operational HTTP
// service: tenant admission and departure, placement inspection, failover
// drills, and invariant audits. It is the operational wrapper a cloud
// provider would put in front of the placement algorithm (DESIGN.md §2
// item 18).
//
// Concurrency: the controller guards the algorithm with a sync.RWMutex.
// Read-only endpoints (stats, servers, placement, validate, tenant lookup)
// take the read lock and run concurrently; admissions flow through a
// batched pipeline (see pipeline.go): every request — POST /v1/tenants and
// POST /v1/tenants:batch alike — enqueues a job resolved by one placer
// goroutine that coalesces waiting jobs into a single write-lock
// acquisition, preserving exact serial placement order while amortizing
// lock traffic, snapshot invalidation, and headroom refresh across the
// batch. Exhaustive analyses (drills, repack plans) run on a lock-free
// clone of the cached snapshot so they never stall admissions. The
// placement snapshot served by GET /v1/placement is cached between
// mutations so hot readers do not rebuild it per request.
//
// Durability: with a write-ahead log attached (WithWAL), the decision
// event stream is group-committed — buffered, flushed, and synced once
// per coalesced batch — before any admission in the batch is acked, and
// internal/recovery rebuilds the exact acked state from the log on boot.
// A log error fails the admission path closed (503) rather than acking
// unlogged placements. With a sharded log (obs.ShardedWAL) the placer
// instead seals each batch into a segment with a monotone commit-sequence
// record and fsyncs it on a background goroutine, so independent batches
// commit in parallel; an in-order acker still releases handlers strictly
// in seal order, preserving the same recovery contract.
//
// Observability: every route is instrumented with request counters (by
// method and status class) and latency histograms, and admissions are
// counted by outcome (first_stage / regular / tiny / placed / rejected)
// when the wrapped algorithm reports its admission path. GET /metrics
// serves the Prometheus text exposition. When the algorithm supports a
// decision flight recorder (internal/obs), the controller attaches one
// automatically: the last events stay inspectable at GET /debug/events,
// GET /explain/tenants/{id} reconstructs a tenant's decision path with
// its failover attribution, and the same stream feeds the engine gauges
// and per-path admission latency histograms on /metrics. The stream also
// drives an incremental robustness headroom auditor (internal/headroom):
// GET /debug/headroom reports every server's worst-case failover slack and
// arg-max failure set, GET /debug/headroom/servers/{id} drills one server
// down to the tenants contributing its worst set, and the
// cubefit_headroom_* gauges track the minimum and median slack, the
// red-lined server count, and overload-on-failure transitions.
//
// Error contract: 400 for malformed or invalid requests (bad JSON, load
// outside (0,1], negative clients/failures, missing load and clients),
// 404 for unknown tenants, 405 for unsupported operations, 409 for
// duplicate admissions and failed audits, 422 for well-formed admissions
// the algorithm cannot place (including client counts whose model-derived
// load falls outside (0,1]), 500 for internal failures, 503 when the
// write-ahead log is unavailable or the server is shutting down. Batch
// admissions report these same codes per item with partial-failure
// semantics.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"cubefit/internal/clock"
	"cubefit/internal/core"
	"cubefit/internal/failure"
	"cubefit/internal/headroom"
	"cubefit/internal/metrics"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/rebalance"
	"cubefit/internal/telemetry"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// Remover is implemented by algorithms that support tenant departure.
type Remover interface {
	Remove(packing.TenantID) error
}

// admissionObservable is implemented by algorithms (CubeFit, RFI, the
// naive baselines) that report the outcome of each admission attempt.
type admissionObservable interface {
	SetAdmissionHook(func(core.AdmissionPath))
}

// recordable is implemented by algorithms that emit their decision trail
// to a flight recorder (internal/obs).
type recordable interface {
	SetRecorder(obs.Recorder)
}

// eventRingCapacity bounds the in-memory flight recorder served by
// GET /debug/events. At roughly 15 events per admission it retains the
// decision trails of the last few hundred tenants.
const eventRingCapacity = 8192

// Controller serves the placement API around one algorithm instance.
type Controller struct {
	mu    sync.RWMutex
	alg   packing.Algorithm
	model workload.LoadModel
	// snap caches the trace.Capture of the current placement; nil after
	// any mutation (including failed admissions, which may open servers).
	//cubefit:guarded-by mu
	snap *trace.Snapshot

	registry   *metrics.Registry
	httpM      *metrics.HTTPMetrics
	admissions *metrics.CounterVec
	// ring retains the most recent decision events (nil when the wrapped
	// algorithm is not recordable). It has its own lock, so the event
	// endpoints never contend with placement mutations.
	ring *obs.Ring
	// auditor incrementally tracks worst-case failover headroom from the
	// same event stream (nil when the algorithm is not recordable); it
	// feeds the cubefit_headroom_* gauges and the /debug/headroom routes.
	auditor   *headroom.Auditor
	headroomM *headroomMetrics

	// clk is the time source for pipeline span stamping (and event
	// stamping); WithClock substitutes a fake in tests.
	clk clock.Clock
	// tracer stamps every admission with per-stage timestamps and owns the
	// pipeline histograms, queue gauges, and GET /debug/pipeline state
	// (nil when tracing is disabled with WithoutSpanTracing).
	tracer *pipelineTracer
	// spanSink, when attached, receives every completed span (span JSONL
	// export for cubefit-inspect latency).
	spanSink obs.SpanRecorder
	tracing  bool

	// monitor is the health sampler and rule engine behind /healthz,
	// /readyz, /debug/health, and /debug/timeline (see health.go). Always
	// constructed; the background loop runs only with WithHealthLoop.
	monitor *telemetry.Monitor
	// healthCfg/healthCfgSet/healthSink/healthLoop stage the health
	// options until initHealth builds the monitor.
	healthCfg    telemetry.Config
	healthCfgSet bool
	healthSink   obs.HealthRecorder
	healthLoop   bool
	// draining flips /readyz to 503 ahead of graceful shutdown.
	draining atomic.Bool
	// walErrG mirrors the WAL's sticky error into a gauge the health
	// rules sample; procM refreshes the process self-metrics per scrape.
	walErrG *metrics.Gauge
	procM   *metrics.ProcessMetrics

	// wal, when attached, receives the decision event stream and is
	// group-committed by the placer before admissions are acked; a WAL
	// error fails the admission path closed (see placeJobs).
	wal obs.CommitLog
	// swal is wal's sharded form, when it has one: the placer seals each
	// coalesced batch into a WAL segment and commits it on a background
	// goroutine, overlapping fsyncs across segments while the in-order
	// acker releases handlers strictly in seal order (see pipeline.go).
	swal *obs.ShardedWAL
	// commitWG tracks in-flight background segment commits; the placer
	// waits on it after draining the queue, so placerDone still means
	// "every admission resolved".
	commitWG sync.WaitGroup
	// ackMu serializes batch finalization for the sharded commit path.
	ackMu sync.Mutex
	// ackSealed is the next seal-order index the placer assigns; only the
	// placer goroutine touches it.
	ackSealed uint64
	// ackNext is the seal-order index of the next batch to release;
	// completed batches park in ackPending until their turn, so acks never
	// overtake an earlier batch whose fsync is still in flight.
	//cubefit:guarded-by ackMu
	ackNext uint64
	//cubefit:guarded-by ackMu
	ackPending map[uint64]*sealedBatch
	// ackErr, once set, demotes every later batch to 503: a sealed batch
	// is recoverable only if every earlier sealed batch is readable, so
	// the first commit failure fails all successors (the log itself is
	// also sticky-failed by then).
	//cubefit:guarded-by ackMu
	ackErr error
	// Admission pipeline (see pipeline.go): queue feeds the single placer
	// goroutine, sendMu+closed gate producers during shutdown, placerDone
	// closes when the placer has drained.
	queue  chan *admitJob
	sendMu sync.RWMutex
	//cubefit:guarded-by sendMu
	closed     bool
	placerDone chan struct{}
}

// Option configures a Controller beyond its required dependencies.
type Option func(*Controller)

// WithWAL attaches a write-ahead log: the decision event stream is
// recorded to it and group-committed before admissions are acked, and a
// sink error disables the admission path (fail closed) instead of
// dropping events. Requires a recordable algorithm that also implements
// Remover, so a failed commit can be rolled back. The controller takes
// ownership: Close performs the final commit and closes the log.
//
// Attaching an *obs.ShardedWAL additionally enables the pipelined commit
// path: the placer seals each coalesced batch into a segment and fsyncs
// it on a background goroutine, so independent batches commit in
// parallel while handlers are still released strictly in seal order.
func WithWAL(w obs.CommitLog) Option {
	return func(c *Controller) { c.wal = w }
}

// WithSpanSink attaches an external consumer for completed admission
// spans (typically obs.SpanJSONL for offline analysis with
// `cubefit-inspect latency`). The sink receives every span after the
// in-memory window and the stage histograms; it must be safe for
// concurrent use. It is ignored when tracing is disabled.
func WithSpanSink(s obs.SpanRecorder) Option {
	return func(c *Controller) { c.spanSink = s }
}

// WithoutSpanTracing disables admission pipeline span tracing (on by
// default): no per-stage histograms, no GET /debug/pipeline (404), no
// span sink. The end-to-end HTTP latency histograms remain.
func WithoutSpanTracing() Option {
	return func(c *Controller) { c.tracing = false }
}

// WithClock substitutes the controller's time source for event and span
// stamping. Tests use a fake; the default is the monotonic real clock.
func WithClock(clk clock.Clock) Option {
	return func(c *Controller) { c.clk = clk }
}

// NewController wraps an algorithm. The load model translates
// client-count admissions into loads.
func NewController(alg packing.Algorithm, model workload.LoadModel, opts ...Option) (*Controller, error) {
	if alg == nil {
		return nil, errors.New("api: nil algorithm")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		alg: alg, model: model, registry: metrics.NewRegistry(),
		clk: clock.Real(), tracing: true,
		queue:      make(chan *admitJob, admitQueueDepth),
		placerDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	c.httpM = metrics.NewHTTPMetrics(c.registry)
	if c.tracing {
		c.tracer = newPipelineTracer(c.registry, c.clk, c.spanSink)
	}
	c.admissions = c.registry.NewCounterVec("cubefit_admissions_total",
		"Tenant admissions by outcome path.", "outcome")
	if ao, ok := alg.(admissionObservable); ok {
		// The hook runs inside Place, i.e. under the controller write
		// lock; the counter itself is atomic.
		ao.SetAdmissionHook(func(p core.AdmissionPath) {
			c.admissions.With(p.String()).Inc()
		})
	}
	rec, canRecord := alg.(recordable)
	if sw, ok := c.wal.(*obs.ShardedWAL); ok {
		c.swal = sw
	}
	if c.wal != nil {
		if !canRecord {
			return nil, fmt.Errorf("api: %s does not record decision events; cannot attach a WAL", alg.Name())
		}
		// A failed group commit is rolled back by removing the tenants the
		// batch placed (placeJobs) or re-admitting a departed one
		// (handleRemoveTenant); without Remove the 503s would lie about
		// the in-memory state, so refuse the attachment up front.
		if _, ok := alg.(Remover); !ok {
			return nil, fmt.Errorf("api: %s does not support tenant removal; cannot attach a WAL (commit-failure rollback requires it)", alg.Name())
		}
	}
	if canRecord {
		// Flight recorder: one stamped stream tees into the in-memory
		// ring (for /debug/events and /explain), the engine metric sink
		// (gauges + per-path latency histograms on /metrics), the
		// incremental headroom auditor (/debug/headroom and the
		// cubefit_headroom_* gauges), and — when attached — the
		// write-ahead log.
		c.ring = obs.NewRing(eventRingCapacity)
		c.auditor = headroom.New(alg.Placement(), 0)
		c.headroomM = newHeadroomMetrics(c.registry)
		sinks := []obs.Recorder{c.ring, metrics.NewEngineSink(c.registry), c.auditor}
		if c.wal != nil {
			sinks = append(sinks, c.wal)
		}
		rec.SetRecorder(obs.Stamp(c.clk, obs.Tee(sinks...)))
		c.refreshHeadroom()
	}
	c.initHealth()
	go c.runPlacer()
	return c, nil
}

// NewDefaultController wraps a fresh CubeFit instance with the default
// configuration and load model.
func NewDefaultController() (*Controller, error) {
	cf, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return NewController(cf, workload.DefaultLoadModel())
}

// Metrics returns the controller's metric registry so embedding servers
// can add their own series.
func (c *Controller) Metrics() *metrics.Registry { return c.registry }

// Handler returns the HTTP routes, each instrumented with request and
// latency metrics under a stable route name.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, c.httpM.Instrument(name, h))
	}
	route("POST /v1/tenants", "place", c.handlePlace)
	route("POST /v1/tenants:batch", "place_batch", c.handlePlaceBatch)
	route("GET /v1/tenants/{id}", "get_tenant", c.handleGetTenant)
	route("DELETE /v1/tenants/{id}", "remove_tenant", c.handleRemoveTenant)
	route("GET /v1/placement", "placement", c.handlePlacement)
	route("GET /v1/servers", "servers", c.handleServers)
	route("GET /v1/stats", "stats", c.handleStats)
	route("GET /v1/validate", "validate", c.handleValidate)
	route("POST /v1/drill", "drill", c.handleDrill)
	route("POST /v1/repack", "repack", c.handleRepack)
	route("GET /v1/healthz", "healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /healthz", "health", c.handleHealthz)
	route("GET /readyz", "ready", c.handleReadyz)
	route("GET /debug/health", "debug_health", c.handleDebugHealth)
	route("GET /debug/timeline", "debug_timeline", c.handleTimeline)
	route("GET /debug/events", "debug_events", c.handleDebugEvents)
	route("GET /debug/pipeline", "debug_pipeline", c.handlePipeline)
	route("GET /debug/headroom", "debug_headroom", c.handleHeadroom)
	route("GET /debug/headroom/servers/{id}", "debug_headroom_server", c.handleHeadroomServer)
	route("GET /explain/tenants/{id}", "explain", c.handleExplain)
	mux.Handle("GET /metrics", c.registry.Handler())
	return mux
}

// eventsResponse is GET /debug/events: the last events retained by the
// flight recorder ring, oldest first, plus the total recorded since start
// (which exceeds len(events) once the ring has wrapped).
type eventsResponse struct {
	Total  uint64      `json:"total"`
	Events []obs.Event `json:"events"`
}

// defaultEventDump bounds GET /debug/events responses when no ?n= limit
// is given.
const defaultEventDump = 200

func (c *Controller) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if c.ring == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("%s does not record decision events", c.alg.Name())})
		return
	}
	n, ok := queryNonNegInt(w, r, "n", defaultEventDump)
	if !ok {
		return
	}
	// One lock acquisition for the pair: Total() and Last(n) read
	// separately can interleave with a concurrent admission and report a
	// total that disagrees with the returned events.
	total, events := c.ring.Snapshot(n)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Total: total, Events: events})
}

// explainReplica is one replica row of GET /explain/tenants/{id}: where
// the replica landed and which of the tenant's other servers absorb its
// clients if that server fails (γ-replication failover attribution).
type explainReplica struct {
	Replica    int   `json:"replica"`
	Server     int   `json:"server"`
	FailoverTo []int `json:"failoverTo"`
}

// explainResponse is GET /explain/tenants/{id}.
type explainResponse struct {
	Tenant   int              `json:"tenant"`
	Load     float64          `json:"load"`
	Servers  []int            `json:"servers"`
	Traced   bool             `json:"traced"`
	Decision *obs.Decision    `json:"decision,omitempty"`
	Failover []explainReplica `json:"failover"`
}

func (c *Controller) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c.mu.RLock()
	t, exists := c.alg.Placement().Tenant(id)
	var hosts []int
	if exists {
		hosts = c.alg.Placement().TenantHosts(id)
	}
	c.mu.RUnlock()
	if !exists {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("tenant %d not found", id)})
		return
	}
	resp := explainResponse{
		Tenant:   int(t.ID),
		Load:     t.Load,
		Servers:  hosts,
		Failover: make([]explainReplica, 0, len(hosts)),
	}
	// Failover attribution: under γ-replication a failed server's clients
	// shift to the tenant's surviving replicas, i.e. its other hosts.
	for i, sid := range hosts {
		others := make([]int, 0, len(hosts)-1)
		for _, other := range hosts {
			if other != sid {
				others = append(others, other)
			}
		}
		resp.Failover = append(resp.Failover, explainReplica{
			Replica: i, Server: sid, FailoverTo: others,
		})
	}
	if c.ring != nil {
		if d, ok := obs.DecisionFor(c.ring.Events(), int(id)); ok {
			resp.Traced = true
			resp.Decision = &d
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// placeRequest admits a tenant either by explicit load or by client count
// (translated through the load model).
type placeRequest struct {
	ID      int     `json:"id"`
	Load    float64 `json:"load,omitempty"`
	Clients int     `json:"clients,omitempty"`
}

// validate rejects malformed admission requests before they reach the
// algorithm, so invalid input never perturbs placement state.
func (r placeRequest) validate() error {
	if r.ID < 0 {
		return fmt.Errorf("tenant id %d must be non-negative", r.ID)
	}
	if r.Clients < 0 {
		return fmt.Errorf("clients %d must be non-negative", r.Clients)
	}
	if r.Load < 0 || r.Load > 1 {
		return fmt.Errorf("load %v outside (0,1]", r.Load)
	}
	if r.Load == 0 && r.Clients == 0 {
		return errors.New("either load in (0,1] or clients > 0 required")
	}
	return nil
}

// placeResponse reports where the tenant's replicas went.
type placeResponse struct {
	ID      int     `json:"id"`
	Load    float64 `json:"load"`
	Clients int     `json:"clients,omitempty"`
	Servers []int   `json:"servers"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (c *Controller) handlePlace(w http.ResponseWriter, r *http.Request) {
	var req placeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	t, err := c.resolve(req)
	if err != nil {
		// A well-formed request whose derived load cannot be placed: the
		// unclamped linear model maps large client counts above 1.
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	// Single admissions ride the same pipeline as batches: the placer
	// coalesces concurrent requests into one lock acquisition and one WAL
	// group commit while preserving exact serial placement order.
	job := &admitJob{items: []admitItem{{tenant: t}}, done: make(chan struct{})}
	if c.tracer != nil {
		sp := obs.AcquireSpan()
		sp.Tenant = req.ID
		job.items[0].span = sp
	}
	if !c.enqueue(job) {
		if sp := job.items[0].span; sp != nil {
			obs.ReleaseSpan(sp)
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return
	}
	<-job.done
	it := &job.items[0]
	if it.span != nil {
		it.span.Status = it.status
		c.tracer.finish(it.span)
		it.span = nil
	}
	if it.status != http.StatusCreated {
		writeJSON(w, it.status, errorResponse{Error: it.err})
		return
	}
	writeJSON(w, http.StatusCreated, placeResponse{
		ID:      req.ID,
		Load:    t.Load,
		Clients: t.Clients,
		Servers: it.servers,
	})
}

func (c *Controller) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c.mu.RLock()
	t, exists := c.alg.Placement().Tenant(id)
	var hosts []int
	if exists {
		hosts = c.alg.Placement().TenantHosts(id)
	}
	c.mu.RUnlock()
	if !exists {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("tenant %d not found", id)})
		return
	}
	writeJSON(w, http.StatusOK, placeResponse{
		ID:      int(t.ID),
		Load:    t.Load,
		Clients: t.Clients,
		Servers: hosts,
	})
}

func (c *Controller) handleRemoveTenant(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	rem, supports := c.alg.(Remover)
	if !supports {
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("%s does not support tenant departure", c.alg.Name())})
		return
	}
	c.mu.Lock()
	if c.wal != nil && c.wal.Err() != nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "write-ahead log unavailable; mutations disabled"})
		return
	}
	// Captured before removal so a failed WAL commit can re-admit it.
	t, _ := c.alg.Placement().Tenant(id)
	err := rem.Remove(id)
	var sealErr error
	if err == nil {
		c.snap = nil
		c.refreshHeadroom()
		if c.swal != nil {
			// Seal under the write lock, so the commit record cannot land
			// in the middle of a concurrently recording admission batch;
			// the fsync below runs outside the lock.
			_, sealErr = c.swal.Seal()
		}
	}
	c.mu.Unlock()
	if err != nil {
		if errors.Is(err, packing.ErrUnknownTenant) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	// Departures are durable before they are acked, like admissions. On a
	// sharded log the depart's batch was sealed above; SyncAll fsyncs
	// every segment, so the 204 also covers every earlier sealed batch.
	if c.wal != nil {
		werr := sealErr
		if werr == nil {
			if c.swal != nil {
				werr = c.swal.SyncAll()
			} else {
				werr = c.wal.Sync()
			}
		}
		if werr != nil {
			// The depart event may not have reached stable storage, so the
			// removal cannot be acked: re-admit the tenant and report 503,
			// mirroring placeJobs' rollback, so reads keep serving the state
			// the client was told. (If the flush landed but the fsync
			// failed, recovery may still replay the departure — durability
			// errs toward the log, never the ack.)
			c.mu.Lock()
			_ = c.alg.Place(t)
			c.snap = nil
			c.refreshHeadroom()
			c.mu.Unlock()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "write-ahead log sync failed: " + werr.Error()})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Controller) handlePlacement(w http.ResponseWriter, _ *http.Request) {
	// The snapshot is immutable once cached; encoding it outside the lock
	// is safe and keeps the critical section short.
	writeJSON(w, http.StatusOK, c.snapshot())
}

// snapshot returns the cached placement snapshot, capturing it under the
// write lock when a mutation has invalidated it. The returned value is
// immutable and safe to read without holding any lock.
func (c *Controller) snapshot() *trace.Snapshot {
	c.mu.RLock()
	snap := c.snap
	c.mu.RUnlock()
	if snap == nil {
		c.mu.Lock()
		if c.snap == nil {
			s := trace.Capture(c.alg.Placement())
			c.snap = &s
		}
		snap = c.snap
		c.mu.Unlock()
	}
	return snap
}

// clonePlacement rebuilds an independent placement from the snapshot so
// exhaustive analyses (failure drills, repack planning) run without
// holding the controller lock: a long computation on a large fleet must
// not stall admissions behind Go's writer-preferring RWMutex.
func (c *Controller) clonePlacement() (*packing.Placement, error) {
	return trace.Restore(*c.snapshot())
}

// serverSummary is the per-server row of GET /v1/servers.
type serverSummary struct {
	ID       int     `json:"id"`
	Level    float64 `json:"level"`
	Replicas int     `json:"replicas"`
	Reserve  float64 `json:"reserve"`
	Clients  int     `json:"clients"`
}

func (c *Controller) handleServers(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	p := c.alg.Placement()
	out := make([]serverSummary, 0, p.NumServers())
	k := p.Gamma() - 1
	for _, s := range p.Servers() {
		clients := 0
		for _, r := range s.Replicas() {
			clients += r.Clients
		}
		out = append(out, serverSummary{
			ID:       s.ID(),
			Level:    s.Level(),
			Replicas: s.NumReplicas(),
			Reserve:  s.TopShared(k),
			Clients:  clients,
		})
	}
	c.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// statsResponse is GET /v1/stats.
type statsResponse struct {
	Algorithm   string  `json:"algorithm"`
	Gamma       int     `json:"gamma"`
	Tenants     int     `json:"tenants"`
	Servers     int     `json:"servers"`
	UsedServers int     `json:"usedServers"`
	TotalLoad   float64 `json:"totalLoad"`
	Utilization float64 `json:"utilization"`
}

func (c *Controller) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	p := c.alg.Placement()
	resp := statsResponse{
		Algorithm:   c.alg.Name(),
		Gamma:       p.Gamma(),
		Tenants:     p.NumTenants(),
		Servers:     p.NumServers(),
		UsedServers: p.NumUsedServers(),
		TotalLoad:   p.TotalLoad(),
		Utilization: p.Utilization(),
	}
	c.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Controller) handleValidate(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	err := c.alg.Placement().Validate()
	c.mu.RUnlock()
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"robust": false, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"robust": true})
}

// drillRequest asks for a worst-case failure analysis.
type drillRequest struct {
	Failures int `json:"failures"`
}

// drillResponse reports the worst-case plan.
type drillResponse struct {
	Failures       int     `json:"failures"`
	FailedServers  []int   `json:"failedServers"`
	MaxClientLoad  float64 `json:"maxClientLoad"`
	MaxServer      int     `json:"maxServer"`
	LostClients    int     `json:"lostClients"`
	ClientCapacity int     `json:"clientCapacity"`
	WorstLoad      float64 `json:"worstLoad"`
}

func (c *Controller) handleDrill(w http.ResponseWriter, r *http.Request) {
	var req drillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	if req.Failures < 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("failures %d must be non-negative", req.Failures)})
		return
	}
	// WorstCase is exhaustive; run it on a lock-free clone so a long
	// drill never stalls admissions (the lock is held only to capture
	// the snapshot, and usually not even that).
	p, err := c.clonePlacement()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	plan, err := failure.WorstCase(p, req.Failures)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, drillResponse{
		Failures:       req.Failures,
		FailedServers:  plan.Servers,
		MaxClientLoad:  plan.MaxClientLoad,
		MaxServer:      plan.MaxServer,
		LostClients:    plan.LostClients,
		ClientCapacity: workload.MaxClientsPerServer,
		WorstLoad:      p.MaxPostFailureLoad(plan.Servers),
	})
}

// repackResponse reports a maintenance repack plan (the plan is advisory:
// the controller does not execute migrations).
type repackResponse struct {
	BeforeServers int              `json:"beforeServers"`
	AfterServers  int              `json:"afterServers"`
	SavedServers  int              `json:"savedServers"`
	Moves         int              `json:"moves"`
	MovedLoad     float64          `json:"movedLoad"`
	Migrations    []rebalance.Move `json:"migrations,omitempty"`
}

func (c *Controller) handleRepack(w http.ResponseWriter, _ *http.Request) {
	// Like drills, repack planning runs on a lock-free clone: the offline
	// FFD pass is far too slow to sit inside the read lock on a large
	// fleet.
	p, err := c.clonePlacement()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	_, plan, err := rebalance.Repack(p)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, repackResponse{
		BeforeServers: plan.BeforeServers,
		AfterServers:  plan.AfterServers,
		SavedServers:  plan.BeforeServers - plan.AfterServers,
		Moves:         len(plan.Moves),
		MovedLoad:     plan.MovedLoad,
		Migrations:    plan.Moves,
	})
}

// queryNonNegInt parses an optional non-negative integer query parameter,
// answering def when absent. A negative or non-numeric value is a client
// error: it writes a 400 and reports ok=false instead of silently
// coercing.
func queryNonNegInt(w http.ResponseWriter, r *http.Request, name string, def int) (v int, ok bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid " + name + " " + raw})
		return 0, false
	}
	return v, true
}

func pathID(w http.ResponseWriter, r *http.Request) (packing.TenantID, bool) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid tenant id " + raw})
		return 0, false
	}
	return packing.TenantID(id), true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors at this point cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}
