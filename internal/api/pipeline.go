package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// Admission pipeline: every admission — single requests and batches alike
// — is enqueued as a job on a bounded queue and resolved by one placer
// goroutine. The placer coalesces whatever jobs are waiting into a single
// write-lock acquisition, places the tenants in arrival order (the exact
// serial semantics of the engine), invalidates the placement snapshot and
// refreshes the headroom gauges once per batch, and then performs one
// write-ahead-log group commit before any of the batched admissions are
// acked. Handlers block on their job's future; arrival order is the queue
// order, so a batch of N is indistinguishable from N back-to-back single
// requests.

const (
	// admitQueueDepth bounds the number of queued jobs; producers block
	// (backpressure) when the pipeline falls behind.
	admitQueueDepth = 1024
	// maxCoalescedItems caps how many admissions the placer folds into
	// one lock acquisition and group commit, bounding ack latency for the
	// first request of a busy burst.
	maxCoalescedItems = 4096
	// maxBatchTenants caps the size of one POST /v1/tenants:batch request.
	maxBatchTenants = 4096
)

// admitItem is one tenant travelling through the pipeline, carrying its
// outcome back to the waiting handler.
type admitItem struct {
	tenant packing.Tenant
	// status is an HTTP status code: 0 until decided, http.StatusCreated
	// on success. Items pre-rejected by request validation enter the
	// queue with their status already set and are skipped by the placer.
	status  int
	err     string
	servers []int
	// span carries the item's pipeline trace (nil when tracing is
	// disabled). The pipeline stamps it in place; the handler that owns
	// the job completes and releases it after done closes.
	span *obs.Span
}

// admitJob is the unit handed to the placer: the items of one request,
// resolved together. done is closed once every item has an outcome.
type admitJob struct {
	items []admitItem
	done  chan struct{}
}

// enqueue submits a job to the placer, blocking while the queue is full.
// It returns false when the controller is closed.
func (c *Controller) enqueue(job *admitJob) bool {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	if c.closed {
		return false
	}
	if c.tracer != nil {
		// Stamped before the send so the queue stage includes backpressure
		// blocking on a full channel.
		c.tracer.enqueued(job, len(c.queue))
	}
	c.queue <- job
	return true
}

// Close drains the admission pipeline and, when a write-ahead log is
// attached, performs its final group commit and closes it. In-flight and
// already-queued admissions complete; subsequent ones are refused with
// 503. Close is idempotent and safe for concurrent use.
func (c *Controller) Close() error {
	c.sendMu.Lock()
	already := c.closed
	c.closed = true
	c.sendMu.Unlock()
	if c.monitor != nil {
		c.monitor.Stop()
	}
	if !already {
		close(c.queue)
	}
	<-c.placerDone
	if !already && c.wal != nil {
		return c.wal.Close()
	}
	return nil
}

// runPlacer is the pipeline's single consumer: it owns the order in which
// admissions reach the engine. With a sharded log, batches leave the
// placer still pending their background segment commit; the placer then
// waits for every in-flight commit before signalling placerDone, so the
// channel still means "every admission resolved".
func (c *Controller) runPlacer() {
	defer close(c.placerDone)
	defer c.commitWG.Wait()
	jobs := make([]*admitJob, 0, 64)
	for job := range c.queue {
		jobs = append(jobs[:0], job)
		items := len(job.items)
	coalesce:
		for items < maxCoalescedItems {
			select {
			case next, ok := <-c.queue:
				if !ok {
					break coalesce
				}
				jobs = append(jobs, next)
				items += len(next.items)
			default:
				break coalesce
			}
		}
		if c.tracer != nil {
			c.tracer.dequeued(jobs, len(c.queue))
		}
		if c.swal != nil {
			// The sharded path acks through the in-order acker; the batch
			// escapes this loop iteration, so it gets its own slice.
			c.placeJobsSharded(append(make([]*admitJob, 0, len(jobs)), jobs...))
			continue
		}
		c.placeJobs(jobs)
		for _, j := range jobs {
			close(j.done)
		}
	}
}

// admitItemsLocked admits every undecided item of the coalesced jobs, in
// arrival order, and invalidates the snapshot/headroom caches when the
// engine changed. It returns the number of successful engine admissions
// (the commit's group size) and whether anything mutated. The caller
// holds the write lock.
func (c *Controller) admitItemsLocked(jobs []*admitJob) (group int, mutated bool) {
	tr := c.tracer
	walDown := c.wal != nil && c.wal.Err() != nil
	for _, job := range jobs {
		for i := range job.items {
			it := &job.items[i]
			if it.status != 0 {
				continue
			}
			if walDown {
				it.status = http.StatusServiceUnavailable
				it.err = "write-ahead log unavailable; admissions disabled"
				continue
			}
			if _, exists := c.alg.Placement().Tenant(it.tenant.ID); exists {
				it.status = http.StatusConflict
				it.err = fmt.Sprintf("tenant %d already placed", it.tenant.ID)
				continue
			}
			mutated = true // even a failed admission may open servers
			if tr != nil && it.span != nil {
				it.span.PlaceStartNs = tr.now()
			}
			if err := c.alg.Place(it.tenant); err != nil {
				it.status = http.StatusUnprocessableEntity
				it.err = err.Error()
			} else {
				it.status = http.StatusCreated
				it.servers = c.alg.Placement().TenantHosts(it.tenant.ID)
				group++
			}
			if tr != nil && it.span != nil {
				it.span.PlaceEndNs = tr.now()
			}
		}
	}
	if mutated {
		c.snap = nil
		c.refreshHeadroom()
	}
	return group, mutated
}

// rollbackBatch demotes every admitted item of the batch to 503 and
// removes its tenant from the engine, keeping the in-memory state aligned
// with what clients were told. (If the flush landed but the fsync failed,
// recovery may still resurrect these admissions from the log — durability
// errs toward the log, never the ack.)
func (c *Controller) rollbackBatch(jobs []*admitJob, msg string) {
	// NewController refuses WAL attachment on algorithms without Remove,
	// so the rollback is always available here.
	rem := c.alg.(Remover)
	c.mu.Lock()
	for _, job := range jobs {
		for i := range job.items {
			it := &job.items[i]
			if it.status == http.StatusCreated {
				it.status = http.StatusServiceUnavailable
				it.err = msg
				it.servers = nil
				_ = rem.Remove(it.tenant.ID)
			}
		}
	}
	c.snap = nil
	c.refreshHeadroom()
	c.mu.Unlock()
}

// placeJobs admits every undecided item of the coalesced jobs under one
// write-lock acquisition, then group-commits the write-ahead log before
// the callers are released. On a failed commit every admission of the
// batch is demoted to 503: its events may not have reached stable
// storage, so acking it would break the recovery contract. The WAL error
// is sticky, so all later admissions fail closed until the operator
// intervenes.
func (c *Controller) placeJobs(jobs []*admitJob) {
	tr := c.tracer
	c.mu.Lock()
	group, mutated := c.admitItemsLocked(jobs)
	c.mu.Unlock()
	if c.wal == nil || !mutated {
		return
	}
	// One group commit covers the whole coalesced batch: every span in it
	// (including rejected items, which wait for the same fsync before
	// their handler is released) carries the commit identity, so the
	// fsync's cost is attributable across the admissions it covered.
	var commitID uint64
	var commitStart int64
	if tr != nil {
		commitID = tr.nextCommit()
		commitStart = tr.now()
		stampCommitStart(jobs, commitStart)
	}
	syncErr := c.wal.Sync()
	if tr != nil {
		commitEnd := tr.now()
		stampCommitEnd(jobs, commitEnd, commitID, group)
		tr.commitDone(commitID, group, commitEnd-commitStart, commitEnd, syncErr != nil)
	}
	if err := syncErr; err != nil {
		// The batch's events may not have reached stable storage, so none
		// of its admissions can be acked.
		c.rollbackBatch(jobs, "write-ahead log sync failed: "+err.Error())
	}
}

// sealedBatch is one coalesced batch sealed into a WAL segment and
// awaiting finalization by the in-order acker.
type sealedBatch struct {
	jobs  []*admitJob
	group int
	// err is the batch's own commit outcome (nil until Commit returns).
	err         error
	commitID    uint64
	commitStart int64
}

// placeJobsSharded is placeJobs for a sharded log: the batch is admitted
// under the write lock and sealed into the current WAL segment (still
// under the lock, so the segment batch holds exactly this batch's events
// plus any earlier departures), but the fsync runs on a background
// goroutine. The placer moves straight on to the next coalesced batch,
// so commits of consecutive batches — sealed onto different segments —
// overlap; handlers are released by ackSealedBatch strictly in seal
// order, preserving the recovery contract that an acked admission and
// everything before it are durable.
func (c *Controller) placeJobsSharded(jobs []*admitJob) {
	tr := c.tracer
	c.mu.Lock()
	group, mutated := c.admitItemsLocked(jobs)
	if !mutated {
		c.mu.Unlock()
		// Nothing reached the engine (pre-rejected, conflicts, or log
		// down): there is nothing to make durable, so ack immediately
		// rather than queueing behind in-flight commits.
		for _, j := range jobs {
			close(j.done)
		}
		return
	}
	pc, err := c.swal.Seal()
	c.mu.Unlock()
	if err != nil {
		// The commit record never reached the segment, so the batch cannot
		// be delimited or recovered; the log is sticky-failed.
		c.rollbackBatch(jobs, "write-ahead log seal failed: "+err.Error())
		for _, j := range jobs {
			close(j.done)
		}
		return
	}
	sb := &sealedBatch{jobs: jobs, group: group}
	idx := c.ackSealed
	c.ackSealed++
	if tr != nil {
		sb.commitID = tr.nextCommit()
		sb.commitStart = tr.now()
		stampCommitStart(jobs, sb.commitStart)
	}
	c.commitWG.Add(1)
	go func() {
		defer c.commitWG.Done()
		sb.err = pc.Commit()
		c.ackSealedBatch(idx, sb)
	}()
}

// ackSealedBatch parks a completed commit under the acker and releases
// every batch whose turn has come: batches finalize strictly in seal
// order, so an admission is never acked while an earlier batch's fsync
// is still in flight. Once any batch's commit fails, every later batch
// is demoted too — its own fsync may have succeeded, but recovery
// merge-replays commit sequences in order and stops at the first
// unreadable one, so nothing after a failed commit is recoverable.
func (c *Controller) ackSealedBatch(idx uint64, sb *sealedBatch) {
	c.ackMu.Lock()
	defer c.ackMu.Unlock()
	if c.ackPending == nil {
		c.ackPending = make(map[uint64]*sealedBatch)
	}
	c.ackPending[idx] = sb
	for {
		next, ok := c.ackPending[c.ackNext]
		if !ok {
			return
		}
		delete(c.ackPending, c.ackNext)
		c.ackNext++
		if next.err != nil && c.ackErr == nil {
			c.ackErr = next.err
		}
		failed := next.err != nil || c.ackErr != nil
		if failed {
			c.rollbackBatch(next.jobs, "write-ahead log commit failed: "+c.ackErr.Error())
		}
		if tr := c.tracer; tr != nil {
			commitEnd := tr.now()
			stampCommitEnd(next.jobs, commitEnd, next.commitID, next.group)
			tr.commitDone(next.commitID, next.group, commitEnd-next.commitStart, commitEnd, failed)
		}
		for _, j := range next.jobs {
			close(j.done)
		}
	}
}

// stampCommitStart marks the group commit beginning on every traced span
// of the batch.
func stampCommitStart(jobs []*admitJob, ns int64) {
	for _, job := range jobs {
		for i := range job.items {
			if sp := job.items[i].span; sp != nil {
				sp.CommitStartNs = ns
			}
		}
	}
}

// stampCommitEnd marks the group commit completion and identity (commit
// sequence number and group size) on every traced span of the batch.
func stampCommitEnd(jobs []*admitJob, ns int64, commitID uint64, group int) {
	for _, job := range jobs {
		for i := range job.items {
			if sp := job.items[i].span; sp != nil {
				sp.CommitEndNs = ns
				sp.Commit = commitID
				sp.Group = group
			}
		}
	}
}

// resolve translates a validated placeRequest into the tenant handed to
// the engine. A load derived from the client count is re-validated: the
// linear model is unclamped, so a large client count maps above 1 and
// must be refused (422) before it reaches placement state.
func (c *Controller) resolve(req placeRequest) (packing.Tenant, error) {
	t := packing.Tenant{ID: packing.TenantID(req.ID), Load: req.Load, Clients: req.Clients}
	if req.Load == 0 {
		t.Load = c.model.Load(req.Clients)
		if err := t.Validate(); err != nil {
			return t, fmt.Errorf("%d clients derive load %v outside (0,1]", req.Clients, t.Load)
		}
	}
	return t, nil
}

// batchRequest is POST /v1/tenants:batch.
type batchRequest struct {
	Tenants []placeRequest `json:"tenants"`
}

// batchResult is one per-tenant outcome of a batch admission. Status is
// the HTTP status the same request would have received on the single
// endpoint (201, 400, 409, 422, 503).
type batchResult struct {
	ID      int     `json:"id"`
	Status  int     `json:"status"`
	Load    float64 `json:"load,omitempty"`
	Clients int     `json:"clients,omitempty"`
	Servers []int   `json:"servers,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// batchResponse reports a batch admission. Placed and Failed partition
// the items; failures are partial — successful items stay admitted.
type batchResponse struct {
	Placed  int           `json:"placed"`
	Failed  int           `json:"failed"`
	Results []batchResult `json:"results"`
}

func (c *Controller) handlePlaceBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON: " + err.Error()})
		return
	}
	if len(req.Tenants) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenants must be non-empty"})
		return
	}
	if len(req.Tenants) > maxBatchTenants {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Tenants), maxBatchTenants)})
		return
	}
	job := &admitJob{items: make([]admitItem, len(req.Tenants)), done: make(chan struct{})}
	for i, pr := range req.Tenants {
		it := &job.items[i]
		if c.tracer != nil {
			sp := obs.AcquireSpan()
			sp.Tenant = pr.ID
			sp.Batch = true
			it.span = sp
		}
		if err := pr.validate(); err != nil {
			it.status = http.StatusBadRequest
			it.err = err.Error()
			continue
		}
		t, err := c.resolve(pr)
		it.tenant = t // ID is populated even when the derived load is refused
		if err != nil {
			it.status = http.StatusUnprocessableEntity
			it.err = err.Error()
			continue
		}
	}
	if !c.enqueue(job) {
		for i := range job.items {
			if sp := job.items[i].span; sp != nil {
				obs.ReleaseSpan(sp)
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return
	}
	<-job.done
	resp := batchResponse{Results: make([]batchResult, len(job.items))}
	for i := range job.items {
		it := &job.items[i]
		if it.span != nil {
			it.span.Status = it.status
			c.tracer.finish(it.span)
			it.span = nil
		}
		res := batchResult{ID: int(it.tenant.ID), Status: it.status, Error: it.err}
		if it.status == http.StatusBadRequest {
			// The id may not have parsed meaningfully; echo the request's.
			res.ID = req.Tenants[i].ID
		}
		if it.status == http.StatusCreated {
			res.Load = it.tenant.Load
			res.Clients = it.tenant.Clients
			res.Servers = it.servers
			resp.Placed++
		} else {
			resp.Failed++
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}
