package api

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/recovery"
	"cubefit/internal/trace"
	"cubefit/internal/workload"
)

// newEngineServer builds a CubeFit-backed controller (optionally with a
// WAL) and serves it, returning the engine for state inspection. Cleanup
// closes the HTTP server before draining the controller pipeline.
func newEngineServer(t *testing.T, opts ...Option) (*httptest.Server, *core.CubeFit, *Controller) {
	t.Helper()
	cf, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(cf, workload.DefaultLoadModel(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrl.Close() })
	srv := httptest.NewServer(ctrl.Handler())
	t.Cleanup(srv.Close)
	return srv, cf, ctrl
}

// getBody fetches url and returns the raw response body.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestBatchSerialParity is the pipeline's correctness bar: admitting N
// tenants in one batch must leave state byte-identical to N serial single
// requests — same placement snapshot, same stats — across batch sizes and
// workload seeds.
func TestBatchSerialParity(t *testing.T) {
	for _, size := range []int{1, 2, 7, 33, 128} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("n%d_seed%d", size, seed), func(t *testing.T) {
				src, err := workload.NewClientSource(workload.DefaultLoadModel(),
					workload.Uniform{Lo: 1, Hi: 15}, seed)
				if err != nil {
					t.Fatal(err)
				}
				tenants := workload.Take(src, size)

				serialSrv, serialCF, _ := newEngineServer(t)
				for _, tn := range tenants {
					code := doJSON(t, "POST", serialSrv.URL+"/v1/tenants",
						map[string]any{"id": int(tn.ID), "clients": tn.Clients}, nil)
					if code != http.StatusCreated {
						t.Fatalf("serial place %d: %d", tn.ID, code)
					}
				}

				batchSrv, batchCF, _ := newEngineServer(t)
				items := make([]map[string]any, len(tenants))
				for i, tn := range tenants {
					items[i] = map[string]any{"id": int(tn.ID), "clients": tn.Clients}
				}
				var resp batchResponse
				code := doJSON(t, "POST", batchSrv.URL+"/v1/tenants:batch",
					map[string]any{"tenants": items}, &resp)
				if code != http.StatusOK {
					t.Fatalf("batch status %d", code)
				}
				if resp.Placed != size || resp.Failed != 0 {
					t.Fatalf("batch placed %d failed %d, want %d/0", resp.Placed, resp.Failed, size)
				}

				serialSnap := getBody(t, serialSrv.URL+"/v1/placement")
				batchSnap := getBody(t, batchSrv.URL+"/v1/placement")
				if !bytes.Equal(serialSnap, batchSnap) {
					t.Fatalf("placement snapshots differ:\nserial: %s\nbatch:  %s", serialSnap, batchSnap)
				}
				if !bytes.Equal(getBody(t, serialSrv.URL+"/v1/stats"), getBody(t, batchSrv.URL+"/v1/stats")) {
					t.Fatal("stats differ")
				}
				if serialCF.Stats() != batchCF.Stats() {
					t.Fatalf("engine stats differ: %+v vs %+v", serialCF.Stats(), batchCF.Stats())
				}
				// Per-item servers must match the serial placements.
				for i, tn := range tenants {
					want := serialCF.Placement().TenantHosts(tn.ID)
					if !reflect.DeepEqual(resp.Results[i].Servers, want) {
						t.Fatalf("item %d servers %v, want %v", i, resp.Results[i].Servers, want)
					}
				}
			})
		}
	}
}

// TestBatchPartialFailure exercises the per-item status contract: invalid
// items fail with their single-endpoint status while the rest of the
// batch lands.
func TestBatchPartialFailure(t *testing.T) {
	srv, cf, _ := newEngineServer(t)
	var resp batchResponse
	code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch", map[string]any{
		"tenants": []map[string]any{
			{"id": 1, "load": 0.3},
			{"id": 2, "load": -0.5},   // malformed: 400
			{"id": 3, "clients": 500}, // derived load > 1: 422
			{"id": 1, "load": 0.2},    // duplicate of item 0: 409
			{"id": 4, "clients": 8},   // fine
			{"id": 5},                 // neither load nor clients: 400
		},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	want := []int{201, 400, 422, 409, 201, 400}
	if resp.Placed != 2 || resp.Failed != 4 {
		t.Fatalf("placed %d failed %d, want 2/4", resp.Placed, resp.Failed)
	}
	for i, st := range want {
		if resp.Results[i].Status != st {
			t.Fatalf("item %d status %d (%s), want %d", i, resp.Results[i].Status, resp.Results[i].Error, st)
		}
	}
	for i := range want {
		if want[i] != 201 && resp.Results[i].Error == "" {
			t.Fatalf("item %d: failure without error message", i)
		}
	}
	// Every result echoes the submitted tenant id, including failures
	// that never reached the engine (the 422 derived-load refusal).
	for i, id := range []int{1, 2, 3, 1, 4, 5} {
		if resp.Results[i].ID != id {
			t.Fatalf("item %d echoed id %d, want %d", i, resp.Results[i].ID, id)
		}
	}
	// Partial failure: the two successes are really admitted and the
	// placement still validates.
	if n := cf.Placement().NumTenants(); n != 2 {
		t.Fatalf("admitted %d tenants, want 2", n)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRejectsMalformedAndOversized(t *testing.T) {
	srv, _, _ := newEngineServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch", map[string]any{"tenants": []any{}}, nil); code != 400 {
		t.Fatalf("empty batch status %d", code)
	}
	big := make([]map[string]any, maxBatchTenants+1)
	for i := range big {
		big[i] = map[string]any{"id": i, "load": 0.1}
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch", map[string]any{"tenants": big}, nil); code != 400 {
		t.Fatalf("oversized batch status %d", code)
	}
}

// TestDerivedLoadValidated is the regression test for the unclamped
// model-derived load: a client count mapping above 1 must be refused with
// 422, not injected into the engine.
func TestDerivedLoadValidated(t *testing.T) {
	srv, cf, _ := newEngineServer(t)
	var errResp errorResponse
	code := doJSON(t, "POST", srv.URL+"/v1/tenants",
		map[string]any{"id": 1, "clients": 500}, &errResp)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (error %q)", code, errResp.Error)
	}
	if errResp.Error == "" {
		t.Fatal("422 without a clear error message")
	}
	if n := cf.Placement().NumTenants(); n != 0 {
		t.Fatalf("invalid admission perturbed state: %d tenants", n)
	}
	// The boundary case still places: MaxClientsPerServer derives exactly 1.
	code = doJSON(t, "POST", srv.URL+"/v1/tenants",
		map[string]any{"id": 2, "clients": workload.MaxClientsPerServer}, nil)
	if code != http.StatusCreated {
		t.Fatalf("boundary clients status %d, want 201", code)
	}
}

// TestWALKillRestart proves the recovery contract end to end: a server
// that dies after acking admissions (singles, batches, departures) is
// rebuilt from its WAL into the exact acked state — snapshot, stats, and
// headroom report all byte-identical.
func TestWALKillRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	wal, err := obs.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, cf, ctrl := newEngineServer(t, WithWAL(wal))

	for i := 0; i < 10; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 1 + i%15}, nil); code != 201 {
			t.Fatalf("place %d failed", i)
		}
	}
	items := make([]map[string]any, 20)
	for i := range items {
		items[i] = map[string]any{"id": 100 + i, "load": 0.05 + float64(i%9)*0.04}
	}
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": items}, &bresp); code != 200 || bresp.Failed != 0 {
		t.Fatalf("batch: code %d failed %d", code, bresp.Failed)
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/tenants/3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	ackedSnap := trace.Capture(cf.Placement())
	ackedStats := cf.Stats()

	// Kill: drain the pipeline and final-commit the WAL, then recover.
	srv.Close()
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	rebuilt, rstats, err := recovery.FromFile(path, cf.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Admitted != 30 || rstats.Departed != 1 {
		t.Fatalf("recovery stats %+v", rstats)
	}
	if got := trace.Capture(rebuilt.Placement()); !reflect.DeepEqual(got, ackedSnap) {
		t.Fatal("recovered snapshot differs from acked snapshot")
	}
	if rebuilt.Stats() != ackedStats {
		t.Fatalf("recovered Stats %+v, acked %+v", rebuilt.Stats(), ackedStats)
	}
}

// flakyWriter fails every write once tripped.
type flakyWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	tripped bool
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return 0, errors.New("disk full")
	}
	return f.buf.Write(p)
}

func (f *flakyWriter) trip() {
	f.mu.Lock()
	f.tripped = true
	f.mu.Unlock()
}

// TestWALFailClosed is the sticky-error contract: once the WAL cannot
// commit, admissions and departures fail with 503 — they are never acked
// unlogged — while read endpoints keep serving.
func TestWALFailClosed(t *testing.T) {
	fw := &flakyWriter{}
	srv, cf, _ := newEngineServer(t, WithWAL(obs.NewWAL(fw)))

	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != 201 {
		t.Fatalf("healthy admission status %d", code)
	}
	fw.trip()
	var errResp errorResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.3}, &errResp); code != 503 {
		t.Fatalf("post-trip admission status %d, want 503", code)
	}
	// Sticky: still failing, including batches and departures.
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": []map[string]any{{"id": 3, "load": 0.2}}}, &bresp); code != 200 {
		t.Fatalf("batch transport status %d", code)
	} else if bresp.Results[0].Status != 503 {
		t.Fatalf("batch item status %d, want 503", bresp.Results[0].Status)
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/tenants/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("delete status %d, want 503", resp.StatusCode)
	}
	// Only the committed admission is in memory; reads still serve.
	if n := cf.Placement().NumTenants(); n != 1 {
		t.Fatalf("tenants = %d, want 1 (unlogged admissions must not land)", n)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, nil); code != 200 {
		t.Fatalf("stats status %d", code)
	}
}

// TestRemoveTenantWALSyncFailureRollsBack: a departure whose group commit
// fails must be rolled back like a failed batch — the client gets 503 and
// the tenant stays admitted, so reads never serve unacked state (and a
// restart, which replays the log without the depart, agrees).
func TestRemoveTenantWALSyncFailureRollsBack(t *testing.T) {
	fw := &flakyWriter{}
	srv, cf, _ := newEngineServer(t, WithWAL(obs.NewWAL(fw)))
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "clients": 5}, nil); code != 201 {
		t.Fatalf("admission status %d", code)
	}
	fw.trip()
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/tenants/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("delete status %d, want 503", resp.StatusCode)
	}
	// The unacked removal was rolled back: the tenant is still placed,
	// with its load and client count intact, and the state validates.
	tn, exists := cf.Placement().Tenant(1)
	if !exists {
		t.Fatal("tenant removed although the departure was acked 503")
	}
	if tn.Clients != 5 {
		t.Fatalf("rolled-back tenant lost its shape: %+v", tn)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/tenants/1", nil, nil); code != 200 {
		t.Fatalf("read-your-503: GET tenant status %d, want 200", code)
	}
}

// noDepart is recordable but cannot remove tenants: attaching a WAL to it
// must be refused at construction, because the commit-failure rollback
// depends on Remove.
type noDepart struct{ cf *core.CubeFit }

func (n noDepart) Name() string                  { return "no-depart" }
func (n noDepart) Place(t packing.Tenant) error  { return n.cf.Place(t) }
func (n noDepart) Placement() *packing.Placement { return n.cf.Placement() }
func (n noDepart) SetRecorder(r obs.Recorder)    { n.cf.SetRecorder(r) }

func TestWALRequiresRemover(t *testing.T) {
	cf, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = NewController(noDepart{cf}, workload.DefaultLoadModel(), WithWAL(obs.NewWAL(&buf)))
	if err == nil {
		t.Fatal("WAL attached to an algorithm without Remove")
	}
}

// TestAdmissionsDuringDrill asserts the lock fix: exhaustive drills and
// repacks run off a snapshot clone, so admissions complete while they are
// in flight instead of queueing behind the read lock.
func TestAdmissionsDuringDrill(t *testing.T) {
	srv, _, _ := newEngineServer(t)
	for i := 0; i < 200; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
			map[string]any{"id": i, "clients": 1 + i%15}, nil); code != 201 {
			t.Fatalf("seed place %d failed", i)
		}
	}
	var wg sync.WaitGroup
	var admitted, drilled atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var dresp drillResponse
				if code := doJSON(t, "POST", srv.URL+"/v1/drill",
					map[string]any{"failures": 1}, &dresp); code != 200 {
					t.Errorf("drill: %d", code)
					return
				}
				drilled.Add(1)
				if code := doJSON(t, "POST", srv.URL+"/v1/repack", nil, nil); code != 200 {
					t.Errorf("repack: %d", code)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := 1000 + g*100 + i
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
					map[string]any{"id": id, "load": 0.1}, nil); code != 201 {
					t.Errorf("concurrent place %d: %d", id, code)
					return
				}
				admitted.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if admitted.Load() != 200 || drilled.Load() != 40 {
		t.Fatalf("admitted %d drilled %d", admitted.Load(), drilled.Load())
	}
}

// TestControllerClose verifies shutdown: queued admissions drain, later
// ones are refused, and Close is idempotent.
func TestControllerClose(t *testing.T) {
	srv, _, ctrl := newEngineServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 1, "load": 0.3}, nil); code != 201 {
		t.Fatal("pre-close admission failed")
	}
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Close(); err != nil {
		t.Fatal(err)
	}
	var errResp errorResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants", map[string]any{"id": 2, "load": 0.3}, &errResp); code != 503 {
		t.Fatalf("post-close admission status %d, want 503", code)
	}
	// A batch composed entirely of pre-rejected items must still resolve
	// (regression guard: such jobs bypass the engine but not the future).
	var bresp batchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/tenants:batch",
		map[string]any{"tenants": []map[string]any{{"id": -1, "load": 0.2}}}, &bresp); code != 503 && code != 200 {
		t.Fatalf("post-close batch status %d", code)
	}
}

// TestSingleConcurrentAdmissions hammers the single endpoint from many
// goroutines: every admission must land exactly once and the final state
// must validate (raced in CI).
func TestSingleConcurrentAdmissions(t *testing.T) {
	srv, cf, _ := newEngineServer(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := g*per + i
				if code := doJSON(t, "POST", srv.URL+"/v1/tenants",
					map[string]any{"id": id, "clients": 1 + id%15}, nil); code != 201 {
					t.Errorf("place %d: %d", id, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := cf.Placement().NumTenants(); n != workers*per {
		t.Fatalf("tenants = %d, want %d", n, workers*per)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}
