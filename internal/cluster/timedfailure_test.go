package cluster

import (
	"testing"

	"cubefit/internal/failure"
	"cubefit/internal/packing"
)

// timedConfig kills a server at the start of the measurement window.
func timedConfig(seed uint64, failures ...TimedFailure) Config {
	cfg := shortConfig(seed)
	cfg.TimedFailures = failures
	return cfg
}

func TestTimedFailureRaisesLatency(t *testing.T) {
	p := replicatedPlacement(t)
	healthy, err := Run(p, failure.NewAssignment(p), shortConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	// Kill server 0 as measurement starts: tenant 1's clients reconnect to
	// server 1.
	res, err := Run(p, failure.NewAssignment(p), timedConfig(41, TimedFailure{Time: 20, Server: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstServerP99 <= healthy.WorstServerP99 {
		t.Fatalf("mid-run failure did not raise worst P99: %v vs %v",
			res.WorstServerP99, healthy.WorstServerP99)
	}
	if res.StalledClients != 0 {
		t.Fatalf("clients stalled despite surviving replicas: %d", res.StalledClients)
	}
}

func TestTimedFailureNoWorkOnDeadServer(t *testing.T) {
	p := replicatedPlacement(t)
	// Kill server 0 before the measurement window opens: it must record no
	// statements at all.
	cfg := timedConfig(43, TimedFailure{Time: 1, Server: 0})
	s, err := runForInspection(p, failure.NewAssignment(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.serverResp[0]) != 0 {
		t.Fatalf("dead server recorded %d statements", len(s.serverResp[0]))
	}
	if len(s.serverResp[1]) == 0 || len(s.serverResp[2]) == 0 {
		t.Fatal("survivors recorded no statements")
	}
}

func TestTimedFailureAllReplicasStallsTenant(t *testing.T) {
	p := replicatedPlacement(t)
	cfg := timedConfig(47,
		TimedFailure{Time: 5, Server: 0},
		TimedFailure{Time: 10, Server: 1},
	)
	res, err := Run(p, failure.NewAssignment(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant 1 lived on servers 0 and 1 only: its 30 clients stall.
	if res.StalledClients != 30 {
		t.Fatalf("stalled clients = %d, want 30", res.StalledClients)
	}
	// Tenant 2's clients (servers 1 and 2) survive on server 2.
	if res.Queries == 0 {
		t.Fatal("no queries despite a surviving tenant")
	}
}

func TestTimedFailureValidation(t *testing.T) {
	p := replicatedPlacement(t)
	a := failure.NewAssignment(p)
	if _, err := Run(p, a, timedConfig(1, TimedFailure{Time: -1, Server: 0})); err == nil {
		t.Fatal("negative failure time accepted")
	}
	if _, err := Run(p, a, timedConfig(1, TimedFailure{Time: 5, Server: -2})); err == nil {
		t.Fatal("negative server accepted")
	}
	if _, err := Run(p, a, timedConfig(1, TimedFailure{Time: 5, Server: 99})); err == nil {
		t.Fatal("unknown server accepted")
	}
	// Failing an already-failed server is rejected.
	pre := failure.NewAssignment(p)
	if err := pre.Fail(0); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, pre, timedConfig(1, TimedFailure{Time: 5, Server: 0})); err == nil {
		t.Fatal("timed failure of pre-failed server accepted")
	}
}

func TestTimedFailureMatchesSteadyStateDirection(t *testing.T) {
	// The transient (mid-run) and steady-state (pre-applied) failure modes
	// must agree on the big picture: both show higher latency than
	// healthy, and the steady state bounds the transient's tail from
	// above or close (the transient averages healthy and degraded time).
	p := replicatedPlacement(t)
	healthy, err := Run(p, failure.NewAssignment(p), shortConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	steady := failure.NewAssignment(p)
	if err := steady.Fail(0); err != nil {
		t.Fatal(err)
	}
	steadyRes, err := Run(p, steady, shortConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	transientRes, err := Run(p, failure.NewAssignment(p), timedConfig(53, TimedFailure{Time: 0, Server: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if steadyRes.WorstServerP99 <= healthy.WorstServerP99 {
		t.Fatal("steady-state failure did not raise latency")
	}
	if transientRes.WorstServerP99 <= healthy.WorstServerP99 {
		t.Fatal("transient failure did not raise latency")
	}
	// A failure at t=0 should land close to the steady state.
	ratio := transientRes.WorstServerP99 / steadyRes.WorstServerP99
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("transient/steady mismatch: %v vs %v", transientRes.WorstServerP99, steadyRes.WorstServerP99)
	}
}

// runForInspection exposes the internal simulation state to tests.
func runForInspection(p *packing.Placement, assign *failure.Assignment, cfg Config) (*sim, error) {
	s, _, err := runSim(p, assign, cfg)
	return s, err
}
