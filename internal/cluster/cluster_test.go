package cluster

import (
	"math"
	"testing"

	"cubefit/internal/failure"
	"cubefit/internal/packing"
)

// singleServerPlacement builds a γ=1 placement with one tenant of the given
// client count on one server.
func singleServerPlacement(t *testing.T, clients int) *packing.Placement {
	t.Helper()
	p, err := packing.NewPlacement(1)
	if err != nil {
		t.Fatal(err)
	}
	sid := p.OpenServer()
	tn := packing.Tenant{ID: 1, Load: 1, Clients: clients}
	if err := p.AddTenant(tn); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(sid, p.Replicas(tn)[0]); err != nil {
		t.Fatal(err)
	}
	return p
}

func runSingle(t *testing.T, clients int, cfg Config) Result {
	t.Helper()
	p := singleServerPlacement(t, clients)
	res, err := Run(p, failure.NewAssignment(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func shortConfig(seed uint64) Config {
	return Config{SLA: 5, Warmup: 20, Measure: 60, Seed: seed}
}

// TestSaturationCalibration is the anchor experiment: a server at its
// 52-client capacity must sit at (not far above, not far below) the
// 5-second P99 SLA.
func TestSaturationCalibration(t *testing.T) {
	res := runSingle(t, 52, shortConfig(1))
	if res.Queries < 500 {
		t.Fatalf("only %d queries completed", res.Queries)
	}
	if res.P99 < 4.0 || res.P99 > 6.0 {
		t.Fatalf("saturated P99 = %v s, want about 5", res.P99)
	}
	if math.Abs(res.MaxClientLoad-52) > 1e-9 {
		t.Fatalf("max client load = %v", res.MaxClientLoad)
	}
}

// TestLightLoadFarBelowSLA: 10 clients should see roughly 10/52 of the
// saturated latency.
func TestLightLoadFarBelowSLA(t *testing.T) {
	res := runSingle(t, 10, shortConfig(2))
	if res.ViolatesSLA {
		t.Fatalf("light load violates SLA: P99 = %v", res.P99)
	}
	if res.P99 > 2 {
		t.Fatalf("light-load P99 = %v, want around 1s", res.P99)
	}
	if res.P50 >= res.P99 {
		t.Fatalf("P50 %v >= P99 %v", res.P50, res.P99)
	}
}

// TestOverloadViolatesSLA: more clients than capacity must blow the SLA.
func TestOverloadViolatesSLA(t *testing.T) {
	res := runSingle(t, 80, shortConfig(3))
	if !res.ViolatesSLA {
		t.Fatalf("80-client overload did not violate SLA: P99 = %v", res.P99)
	}
	if res.P99 < 6 {
		t.Fatalf("overloaded P99 = %v, expected well above 5", res.P99)
	}
}

// TestLatencyMonotoneInClients: latency grows with concurrency.
func TestLatencyMonotoneInClients(t *testing.T) {
	prev := 0.0
	for i, clients := range []int{10, 30, 52, 80} {
		res := runSingle(t, clients, shortConfig(4))
		if res.P99 <= prev {
			t.Fatalf("P99 not increasing at step %d (%d clients): %v <= %v",
				i, clients, res.P99, prev)
		}
		prev = res.P99
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runSingle(t, 30, shortConfig(7))
	b := runSingle(t, 30, shortConfig(7))
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedSensitivityIsSmall(t *testing.T) {
	a := runSingle(t, 52, shortConfig(11))
	b := runSingle(t, 52, shortConfig(12))
	if a == b {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
	if math.Abs(a.P99-b.P99)/a.P99 > 0.25 {
		t.Fatalf("P99 unstable across seeds: %v vs %v", a.P99, b.P99)
	}
}

// replicatedPlacement: two tenants on three servers with γ=2.
func replicatedPlacement(t *testing.T) *packing.Placement {
	t.Helper()
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.OpenServer()
	}
	for _, spec := range []struct {
		tn    packing.Tenant
		hosts [2]int
	}{
		{tn: packing.Tenant{ID: 1, Load: 0.6, Clients: 30}, hosts: [2]int{0, 1}},
		{tn: packing.Tenant{ID: 2, Load: 0.6, Clients: 30}, hosts: [2]int{1, 2}},
	} {
		if err := p.AddTenant(spec.tn); err != nil {
			t.Fatal(err)
		}
		for i, r := range p.Replicas(spec.tn) {
			if err := p.Place(spec.hosts[i], r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

// TestFailureRaisesLatency: failing a server redirects its clients and
// raises the observed P99.
func TestFailureRaisesLatency(t *testing.T) {
	p := replicatedPlacement(t)
	healthy, err := Run(p, failure.NewAssignment(p), shortConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	failed := failure.NewAssignment(p)
	if err := failed.Fail(0); err != nil {
		t.Fatal(err)
	}
	degraded, err := Run(p, failed, shortConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if degraded.P99 <= healthy.P99 {
		t.Fatalf("failure did not raise latency: %v vs %v", degraded.P99, healthy.P99)
	}
	// Server 1 now carries tenant 1 entirely (30) plus half of tenant 2
	// (15): 45 client load, still under capacity.
	if math.Abs(degraded.MaxClientLoad-45) > 1e-9 {
		t.Fatalf("max client load after failure = %v, want 45", degraded.MaxClientLoad)
	}
}

// TestLostClientsReported: killing both replicas of a tenant reports its
// clients as lost and the rest keep running.
func TestLostClientsReported(t *testing.T) {
	p := replicatedPlacement(t)
	a := failure.NewAssignment(p)
	if err := a.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Fail(1); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, a, shortConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	if res.LostClients != 30 {
		t.Fatalf("lost clients = %d, want 30 (tenant 1)", res.LostClients)
	}
	if res.Queries == 0 {
		t.Fatal("surviving tenant processed no queries")
	}
}

// TestUpdatesFanOut: with updates in the mix, concurrency on a server can
// exceed its own client count.
func TestUpdatesFanOut(t *testing.T) {
	p := replicatedPlacement(t)
	res, err := Run(p, failure.NewAssignment(p), shortConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.MaxConcurrency) < res.MaxClientLoad {
		t.Fatalf("max concurrency %d below max client load %v", res.MaxConcurrency, res.MaxClientLoad)
	}
}

func TestConfigValidation(t *testing.T) {
	p := singleServerPlacement(t, 5)
	a := failure.NewAssignment(p)
	for _, cfg := range []Config{
		{SLA: 0, Warmup: 1, Measure: 1},
		{SLA: 5, Warmup: -1, Measure: 1},
		{SLA: 5, Warmup: 1, Measure: 0},
	} {
		if _, err := Run(p, a, cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyPlacement(t *testing.T) {
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, failure.NewAssignment(p), shortConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 0 || res.ViolatesSLA {
		t.Fatalf("empty placement result = %+v", res)
	}
}
