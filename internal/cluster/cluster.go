// Package cluster is the discrete-event substitute for the paper's
// 73-machine PostgreSQL/TPC-H testbed (§IV-V; see DESIGN.md §3).
//
// Each data-store server is modelled as a processor-sharing queue: all
// statements in flight progress simultaneously, each at 1/n of the server
// speed. Every tenant client is a closed loop that keeps exactly one
// statement outstanding against its home replica server. Following the
// paper's model in which "the analytic workload of a tenant is shared
// between its γ replicas", a tenant with c clients and s surviving
// replicas contributes a client load of c/s to each of them; the simulator
// realizes these fractional shares by carry-rounding the per-tenant shares
// within each server, so a server's closed-loop population matches its
// analytical client load to within one client. Updates (5% of the mix)
// fan out to every surviving replica for consistency and complete when the
// slowest replica finishes.
//
// The load model's per-tenant overhead β appears as permanent background
// jobs that consume processor share, so a server at normalized load L runs
// L/δ client-equivalents of concurrency. With the TPC-H mix calibrated so
// the demand P99 equals SLA·δ, a server at load 1.0 — e.g. the 52-client
// single-tenant saturation point of the paper's testbed — shows a
// 99th-percentile statement latency of exactly the 5-second SLA, and
// servers overloaded by failed-over clients blow past it. The SLA verdict
// uses the worst per-server P99 (the paper's worst overload case),
// alongside cluster-wide percentiles.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"cubefit/internal/eventsim"
	"cubefit/internal/failure"
	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/stats"
	"cubefit/internal/tpch"
	"cubefit/internal/workload"
)

// Config parameterizes one simulated measurement run.
type Config struct {
	// SLA is the 99th-percentile response-time bound in seconds (the paper
	// uses 5).
	SLA float64
	// Warmup is the simulated time before measurement starts; the paper
	// warms up for 5 minutes to populate caches.
	Warmup float64
	// Measure is the measurement window length; the paper measures for 5
	// minutes.
	Measure float64
	// Seed drives all stochastic choices of the run.
	Seed uint64
	// Mix is the statement workload; nil means a TPC-H mix calibrated
	// against the SLA and load model (demand P99 = SLA·δ, so a server at
	// load 1.0 — whose effective concurrency is 1/δ — sits exactly at the
	// SLA).
	Mix *tpch.Mix
	// Model is the linear load model; its β overhead materializes as
	// permanent background work on each server proportional to the hosted
	// tenant replicas (β/δ client-equivalents per whole tenant). The zero
	// value means workload.DefaultLoadModel.
	Model workload.LoadModel
	// TimedFailures kill servers DURING the run (the paper's live-failure
	// protocol): at the given time the server's in-flight statements abort
	// and are retried by their clients against surviving replicas, and the
	// clients homed there reconnect, spreading evenly over each tenant's
	// survivors. This captures the failover transient; for steady-state
	// measurement apply failures to the Assignment instead.
	TimedFailures []TimedFailure
}

// TimedFailure is one mid-run server failure.
type TimedFailure struct {
	// Time is when the server dies (seconds of simulated time).
	Time float64
	// Server is the server ID to fail.
	Server int
}

// DefaultConfig mirrors the paper's measurement protocol at a reduced
// simulated duration (the paper notes results do not change with longer
// intervals).
func DefaultConfig() Config {
	return Config{SLA: 5, Warmup: 60, Measure: 120, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SLA <= 0 {
		return errors.New("cluster: SLA must be positive")
	}
	if c.Warmup < 0 {
		return errors.New("cluster: negative warmup")
	}
	if c.Measure <= 0 {
		return errors.New("cluster: measurement window must be positive")
	}
	for _, f := range c.TimedFailures {
		if f.Time < 0 {
			return fmt.Errorf("cluster: timed failure at negative time %v", f.Time)
		}
		if f.Server < 0 {
			return fmt.Errorf("cluster: timed failure of negative server %d", f.Server)
		}
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Queries completed inside the measurement window (client-visible).
	Queries int
	// P99, P95, P50 and Mean response times (seconds) of those queries,
	// cluster-wide.
	P99, P95, P50, Mean float64
	// WorstServerP99 is the highest per-server 99th-percentile statement
	// latency — the paper's worst-overload-case metric.
	WorstServerP99 float64
	// WorstServer is the server exhibiting WorstServerP99.
	WorstServer int
	// ViolatesSLA is WorstServerP99 > SLA.
	ViolatesSLA bool
	// MaxClientLoad is the largest fractional client load on one server.
	MaxClientLoad float64
	// LostClients counts clients whose tenant lost every replica before
	// the run (pre-applied failures).
	LostClients int
	// StalledClients counts clients whose tenant lost every replica
	// through mid-run TimedFailures.
	StalledClients int
	// MaxConcurrency is the largest number of statements simultaneously in
	// flight on one server.
	MaxConcurrency int
}

// Run simulates the assignment (a placement plus any applied failures) and
// returns latency statistics over the measurement window.
func Run(p *packing.Placement, assign *failure.Assignment, cfg Config) (Result, error) {
	_, res, err := runSim(p, assign, cfg)
	return res, err
}

// runSim is Run with the internal simulation state exposed for tests.
func runSim(p *packing.Placement, assign *failure.Assignment, cfg Config) (*sim, Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Result{}, err
	}
	model := cfg.Model
	if model.Delta == 0 {
		model = workload.DefaultLoadModel()
	}
	if err := model.Validate(); err != nil {
		return nil, Result{}, err
	}
	mix := cfg.Mix
	if mix == nil {
		// A server at normalized load L carries L/δ client-equivalents of
		// concurrency, so the SLA at L=1 pins the demand P99 to SLA·δ.
		m, err := tpch.NewMix(tpch.WithTargetP99(cfg.SLA * model.Delta))
		if err != nil {
			return nil, Result{}, err
		}
		mix = m
	}

	s := &sim{
		eng:        eventsim.New(),
		cfg:        cfg,
		mix:        mix,
		servers:    make([]*psServer, p.NumServers()),
		serverResp: make([][]float64, p.NumServers()),
		dynFailed:  make([]bool, p.NumServers()),
		rehomeRR:   make(map[packing.TenantID]int),
	}
	for i := range s.servers {
		s.servers[i] = &psServer{sim: s, id: i}
	}
	for _, f := range cfg.TimedFailures {
		if f.Server >= p.NumServers() {
			return nil, Result{}, fmt.Errorf("cluster: timed failure of unknown server %d", f.Server)
		}
		if assign.Failed(f.Server) {
			return nil, Result{}, fmt.Errorf("cluster: timed failure of already-failed server %d", f.Server)
		}
		srv := s.servers[f.Server]
		if err := s.eng.Schedule(f.Time, srv.kill); err != nil {
			return nil, Result{}, fmt.Errorf("cluster: %w", err)
		}
	}

	master := rng.New(cfg.Seed)
	horizon := cfg.Warmup + cfg.Measure
	// Spawn clients deterministically: servers in ID order, each server's
	// hosted tenants in ID order, carry-rounding the fractional per-tenant
	// shares so the server's closed-loop population equals its analytical
	// client load to within one client.
	overheadPerTenant := model.Beta / model.Delta
	for sid := 0; sid < p.NumServers(); sid++ {
		if assign.Failed(sid) {
			continue
		}
		carry := 0.0
		overhead := 0.0
		for _, r := range p.Server(sid).Replicas() {
			survivors := assign.SurvivingHosts(r.Tenant)
			if len(survivors) == 0 {
				continue
			}
			// The tenant's β overhead spreads over its survivors just like
			// its clients do.
			overhead += overheadPerTenant / float64(len(survivors))
			share := assign.TenantShare(r.Tenant)
			carry += share
			n := int(carry)
			carry -= float64(n)
			if n == 0 {
				continue
			}
			hosts := survivors
			sort.Ints(hosts)
			for k := 0; k < n; k++ {
				c := &client{
					sim:    s,
					tenant: r.Tenant,
					home:   sid,
					hosts:  hosts,
					r:      master.Split(),
				}
				start := master.Float64()
				if err := s.eng.Schedule(start, c.issue); err != nil {
					return nil, Result{}, fmt.Errorf("cluster: %w", err)
				}
			}
		}
		s.servers[sid].overhead = int(overhead)
	}

	s.eng.RunUntil(horizon)

	_, maxLoad := assign.MaxClientLoad()
	res := Result{
		Queries:        len(s.responses),
		MaxClientLoad:  maxLoad,
		LostClients:    assign.Lost(),
		StalledClients: s.stalledClients,
		MaxConcurrency: s.maxConcurrency,
		WorstServer:    -1,
	}
	if len(s.responses) > 0 {
		// The sample slices are owned by this run and not read again, so the
		// in-place variants (quickselect, no sorted copy) are safe and give
		// bit-identical statistics.
		sum, err := stats.SummarizeInPlace(s.responses)
		if err != nil {
			return nil, Result{}, err
		}
		res.P99, res.P95, res.P50, res.Mean = sum.P99, sum.P95, sum.P50, sum.Mean
	}
	for id, resp := range s.serverResp {
		if len(resp) == 0 {
			continue
		}
		p99, err := stats.P99InPlace(resp)
		if err != nil {
			return nil, Result{}, err
		}
		if p99 > res.WorstServerP99 {
			res.WorstServerP99 = p99
			res.WorstServer = id
		}
	}
	res.ViolatesSLA = res.WorstServerP99 > cfg.SLA
	return s, res, nil
}

// sim carries the shared run state.
type sim struct {
	eng     *eventsim.Engine
	cfg     Config
	mix     *tpch.Mix
	servers []*psServer
	// dynFailed marks servers killed by TimedFailures during the run.
	dynFailed []bool
	// rehomeRR spreads a failed server's clients evenly per tenant.
	rehomeRR map[packing.TenantID]int
	// stalledClients counts clients whose tenant lost every replica
	// mid-run.
	stalledClients int
	// responses holds client-visible end-to-end response times; serverResp
	// holds per-server statement latencies (write sub-statements count at
	// each replica they execute on).
	responses      []float64
	serverResp     [][]float64
	maxConcurrency int
	// liveBuf is the shared scratch for client.liveHosts. issueAt never
	// nests with another issueAt (submit completes nothing synchronously on
	// a live server), so one buffer serves all clients.
	liveBuf []int
	// stmtFree recycles statement-state records; at any instant at most one
	// stmt per client is outstanding, so the free list stays small.
	stmtFree []*stmt
}

// stmt is the state of one in-flight client statement, shared by all of
// its per-server sub-statements. It replaces the per-statement completion
// closures: servers call sim.finish(st, ok) instead of invoking a captured
// func, so issuing a statement allocates nothing in steady state.
type stmt struct {
	c       *client
	start   float64
	pending int // outstanding sub-statements (1 for reads)
	update  bool
}

func (s *sim) acquireStmt(c *client, start float64, pending int, update bool) *stmt {
	var st *stmt
	if n := len(s.stmtFree); n > 0 {
		st = s.stmtFree[n-1]
		s.stmtFree = s.stmtFree[:n-1]
	} else {
		st = new(stmt)
	}
	st.c, st.start, st.pending, st.update = c, start, pending, update
	return st
}

// finish resolves one sub-statement of st. ok is false when the hosting
// server died with the statement in flight: reads are retried by their
// client against survivors, while an update simply completes once its
// surviving sub-statements do (the dying replica no longer needs to
// apply it).
func (s *sim) finish(st *stmt, ok bool) {
	if st.update {
		st.pending--
		if st.pending > 0 {
			return
		}
	}
	c, start, update := st.c, st.start, st.update
	st.c = nil
	s.stmtFree = append(s.stmtFree, st)
	if !ok && !update {
		c.issueAt(start) // reconnect and retry
		return
	}
	c.complete(start)
}

func (s *sim) inWindow() bool {
	now := s.eng.Now()
	return now >= s.cfg.Warmup && now <= s.cfg.Warmup+s.cfg.Measure
}

// client is a closed-loop workload generator for one tenant client. Reads
// execute on the client's home replica server; updates hit every surviving
// replica of the tenant. When a mid-run failure kills a statement, the
// client retries against survivors (re-homing first if its own server
// died), and the eventual response time includes the disruption.
type client struct {
	sim    *sim
	tenant packing.TenantID
	home   int
	hosts  []int
	r      *rng.RNG
}

// issue samples and submits the client's next statement.
func (c *client) issue() {
	c.issueAt(c.sim.eng.Now())
}

// issueAt submits a statement whose response time is measured from start
// (start < now when this is a post-failure retry).
func (c *client) issueAt(start float64) {
	live := c.liveHosts()
	if len(live) == 0 {
		// Every replica of the tenant is gone; the client stalls.
		c.sim.stalledClients++
		return
	}
	if c.sim.dynFailed[c.home] {
		c.rehome(live)
	}
	q := c.sim.mix.Sample(c.r)
	if !q.Update {
		c.sim.servers[c.home].submit(q.Demand, c.sim.acquireStmt(c, start, 1, false))
		return
	}
	st := c.sim.acquireStmt(c, start, len(live), true)
	for _, h := range live {
		c.sim.servers[h].submit(q.Demand, st)
	}
}

// liveHosts filters the tenant's replica servers by dynamic failures. The
// result lives in the sim's shared scratch buffer, which is safe because
// no other issueAt can run before the caller is done with it.
func (c *client) liveHosts() []int {
	live := c.sim.liveBuf[:0]
	for _, h := range c.hosts {
		if !c.sim.dynFailed[h] {
			live = append(live, h)
		}
	}
	c.sim.liveBuf = live
	return live
}

// rehome reconnects the client to a surviving replica, round-robin per
// tenant so a failed server's clients spread evenly.
func (c *client) rehome(live []int) {
	i := c.sim.rehomeRR[c.tenant] % len(live)
	c.sim.rehomeRR[c.tenant]++
	c.home = live[i]
}

func (c *client) complete(start float64) {
	if c.sim.inWindow() {
		c.sim.responses = append(c.sim.responses, c.sim.eng.Now()-start)
	}
	c.issue()
}

// psServer is a processor-sharing queue driven by virtual time: a job with
// demand d finishes when the server's virtual time (which advances at rate
// 1/n with n jobs in flight) has progressed d beyond its admission point.
type psServer struct {
	sim *sim
	id  int
	// overhead is the number of permanent background jobs materializing
	// the load model's per-tenant β work: they consume processor share but
	// never complete.
	overhead int
	vt       float64
	lastT    float64
	jobs     []job
	timerVer int
}

type job struct {
	target float64
	start  float64
	// st is the statement this sub-statement belongs to; sim.finish(st, ok)
	// resolves it with ok=true on completion, ok=false when the server died
	// with the statement in flight.
	st *stmt
}

// sync advances virtual time to the engine's current time.
func (s *psServer) sync() {
	now := s.sim.eng.Now()
	if n := len(s.jobs); n > 0 {
		s.vt += (now - s.lastT) / float64(n+s.overhead)
	}
	s.lastT = now
}

// submit admits one sub-statement of st with the given demand.
func (s *psServer) submit(demand float64, st *stmt) {
	if s.sim.dynFailed[s.id] {
		s.sim.finish(st, false)
		return
	}
	s.sync()
	s.pushJob(job{target: s.vt + demand, start: st.start, st: st})
	if len(s.jobs) > s.sim.maxConcurrency {
		s.sim.maxConcurrency = len(s.jobs)
	}
	s.reschedule()
}

// reschedule (re)arms the completion timer for the earliest-finishing job.
// Stale timers are invalidated by version.
func (s *psServer) reschedule() {
	s.timerVer++
	if len(s.jobs) == 0 {
		return
	}
	next := s.sim.eng.Now() + (s.jobs[0].target-s.vt)*float64(len(s.jobs)+s.overhead)
	if next < s.sim.eng.Now() {
		next = s.sim.eng.Now()
	}
	// ScheduleFire can only fail for past or non-finite times, both
	// excluded; unlike a captured closure it allocates nothing.
	_ = s.sim.eng.ScheduleFire(next, s, s.timerVer)
}

// Fire implements eventsim.Handler: it completes every job whose virtual
// target has been reached.
func (s *psServer) Fire(ver int) {
	if ver != s.timerVer {
		return
	}
	s.sync()
	for len(s.jobs) > 0 && s.jobs[0].target <= s.vt+packing.SharedEps {
		j := s.popJob()
		if s.sim.inWindow() {
			s.sim.serverResp[s.id] = append(s.sim.serverResp[s.id], s.sim.eng.Now()-j.start)
		}
		// finish may submit follow-up work to this server; that bumps
		// timerVer, which is fine — we reschedule below regardless.
		s.sim.finish(j.st, true)
	}
	s.reschedule()
}

// kill fails the server mid-run: pending statements abort (their clients
// retry on survivors) and no further work is accepted.
func (s *psServer) kill() {
	s.sim.dynFailed[s.id] = true
	s.timerVer++ // cancel any armed completion timer
	aborted := s.jobs
	s.jobs = nil
	for _, j := range aborted {
		s.sim.finish(j.st, false)
	}
}

// The job queue is a hand-rolled binary min-heap on target (container/heap
// would box every job in an interface value, and submit runs millions of
// times per run). The sift algorithms replicate container/heap exactly —
// same child selection, same tie behavior — so the completion order of
// jobs with equal targets is unchanged from the boxed implementation.

func (s *psServer) pushJob(j job) {
	s.jobs = append(s.jobs, j)
	i := len(s.jobs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.jobs[parent].target <= s.jobs[i].target {
			break
		}
		s.jobs[i], s.jobs[parent] = s.jobs[parent], s.jobs[i]
		i = parent
	}
}

func (s *psServer) popJob() job {
	n := len(s.jobs) - 1
	s.jobs[0], s.jobs[n] = s.jobs[n], s.jobs[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.jobs[r].target < s.jobs[l].target {
			c = r
		}
		if s.jobs[i].target <= s.jobs[c].target {
			break
		}
		s.jobs[i], s.jobs[c] = s.jobs[c], s.jobs[i]
		i = c
	}
	j := s.jobs[n]
	s.jobs[n] = job{} // drop the stmt reference so the array does not pin it
	s.jobs = s.jobs[:n]
	return j
}
