package stats

import (
	"testing"

	"cubefit/internal/rng"
)

// TestInPlaceMatchesSorting is the parity property for the quickselect
// variants: across random samples (with heavy tie mass, adversarial for
// partitioning) every in-place statistic must be bit-identical to the
// sort-a-copy reference.
func TestInPlaceMatchesSorting(t *testing.T) {
	r := rng.New(99)
	sizes := []int{1, 2, 3, 7, 13, 100, 1000, 4097}
	percentiles := []float64{0, 1, 50, 95, 99, 100}
	for _, n := range sizes {
		for trial := 0; trial < 5; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				if r.Float64() < 0.3 {
					// Ties: quantize a third of the sample to one decimal.
					xs[i] = float64(int(r.Float64()*10)) / 10
				} else {
					xs[i] = r.Float64() * 100
				}
			}
			for _, p := range percentiles {
				want, err := Percentile(xs, p)
				if err != nil {
					t.Fatal(err)
				}
				scratch := append([]float64(nil), xs...)
				got, err := PercentileInPlace(scratch, p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want { //cubefit:vet-allow floatcmp -- the in-place variant must be bit-identical to the reference
					t.Fatalf("n=%d p=%v: in-place %v != sorted %v", n, p, got, want)
				}
			}
			wantSum, err := Summarize(xs)
			if err != nil {
				t.Fatal(err)
			}
			scratch := append([]float64(nil), xs...)
			gotSum, err := SummarizeInPlace(scratch)
			if err != nil {
				t.Fatal(err)
			}
			if gotSum != wantSum {
				t.Fatalf("n=%d: SummarizeInPlace %+v != Summarize %+v", n, gotSum, wantSum)
			}
		}
	}
}

func TestInPlaceErrors(t *testing.T) {
	if _, err := PercentileInPlace(nil, 50); err == nil {
		t.Fatal("expected error on empty sample")
	}
	if _, err := PercentileInPlace([]float64{1}, 101); err == nil {
		t.Fatal("expected error on out-of-range percentile")
	}
	if _, err := SummarizeInPlace(nil); err == nil {
		t.Fatal("expected error on empty sample")
	}
	if v, err := P99InPlace([]float64{3}); err != nil || v != 3 { //cubefit:vet-allow floatcmp -- exact single-sample passthrough
		t.Fatalf("P99InPlace single sample = %v, %v", v, err)
	}
}

func BenchmarkSummarizeInPlace(b *testing.B) {
	r := rng.New(5)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	scratch := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, xs)
		if _, err := SummarizeInPlace(scratch); err != nil {
			b.Fatal(err)
		}
	}
}
