// Package stats implements the descriptive statistics used by the
// experiment harnesses: means, variances, percentiles (notably the 99th
// percentile SLA metric), and Student-t 95% confidence intervals for the
// whiskers of Figure 6.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// P99 returns the 99th percentile of xs, the SLA metric used throughout the
// paper's evaluation.
func P99(xs []float64) (float64, error) {
	return Percentile(xs, 99)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileInPlace returns the p-th percentile of xs using the same
// closest-ranks linear interpolation as Percentile, but selects the two
// order statistics with quickselect instead of sorting a copy: O(n)
// expected time, no allocation, bit-identical results. xs is reordered.
// Samples must be free of NaNs (response times always are).
func PercentileInPlace(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	n := len(xs)
	if n == 1 {
		return xs[0], nil
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	selectKth(xs, lo)
	if lo == hi {
		return xs[lo], nil
	}
	// After selectKth, xs[lo+1:] holds every element above rank lo, so the
	// (lo+1)-th order statistic is its minimum.
	next := xs[hi]
	for _, x := range xs[lo+1:] {
		if x < next {
			next = x
		}
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + next*frac, nil
}

// P99InPlace is PercentileInPlace at the 99th percentile.
func P99InPlace(xs []float64) (float64, error) {
	return PercentileInPlace(xs, 99)
}

// OrderStatInPlace returns the k-th order statistic of xs (0-indexed, so
// k=0 is the minimum), selecting it in place with quickselect — identical
// to sorting and indexing, without the sort. xs is reordered. NaN-free
// samples only.
func OrderStatInPlace(xs []float64, k int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if k < 0 || k >= len(xs) {
		return 0, errors.New("stats: order statistic index out of range")
	}
	selectKth(xs, k)
	return xs[k], nil
}

// selectKth partially orders xs so that xs[k] holds the k-th order
// statistic, with xs[:k] ≤ xs[k] ≤ xs[k+1:] (Hoare quickselect with a
// median-of-three pivot; small ranges fall back to insertion sort).
func selectKth(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for hi-lo > 12 {
		p := medianOf3(xs[lo], xs[lo+(hi-lo)/2], xs[hi])
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return // xs[k] == p, already in place
		}
	}
	// Insertion sort of the remaining window.
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func medianOf3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
	}, nil
}

// SummarizeInPlace computes the same Summary as Summarize without sorting
// a copy: Mean and StdDev are taken in the original order first (identical
// float summation), then the percentiles are selected in place. xs is
// reordered; use when the caller owns the sample and will not read it
// again in order. NaN-free samples only.
func SummarizeInPlace(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	s.Min, s.Max = min, max
	// The error paths cannot trigger: xs is non-empty and the percentile
	// arguments are in range.
	s.P50, _ = PercentileInPlace(xs, 50)
	s.P95, _ = PercentileInPlace(xs, 95)
	s.P99, _ = PercentileInPlace(xs, 99)
	return s, nil
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean float64
	// Half is the half-width of the interval: the true mean lies in
	// [Mean-Half, Mean+Half] at the stated confidence level.
	Half float64
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.Half }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.Half }

// CI95 returns the 95% Student-t confidence interval for the mean of xs.
// For a single sample the half-width is zero.
func CI95(xs []float64) (Interval, error) {
	n := len(xs)
	if n == 0 {
		return Interval{}, ErrEmpty
	}
	m := Mean(xs)
	if n == 1 {
		return Interval{Mean: m}, nil
	}
	se := StdDev(xs) / math.Sqrt(float64(n))
	return Interval{Mean: m, Half: tQuantile975(n-1) * se}, nil
}

// tQuantile975 returns the 0.975 quantile of the Student-t distribution with
// df degrees of freedom (two-sided 95%).
func tQuantile975(df int) float64 {
	// Exact-enough table for small df; the normal quantile beyond.
	// Index df: entry 0 is unused, entry 1 is df=1 (12.706), then df=2..30.
	table := []float64{
		0,
		12.706,
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.NaN()
	case df < len(table):
		return table[df]
	case df <= 60:
		return 2.000
	default:
		return 1.96
	}
}

// RelativeDifference returns (a-b)/b * 100, the percentage by which a
// exceeds b. This is the paper's savings metric with a = RFI servers and
// b = CubeFit servers.
func RelativeDifference(a, b float64) float64 {
	return (a - b) / b * 100
}

// Online accumulates mean and variance in one pass (Welford's algorithm)
// without retaining samples. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased running variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 if none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if none).
func (o *Online) Max() float64 { return o.max }

// Histogram counts observations in equal-width buckets over [lo, hi).
// Observations outside the range land in the under/overflow counters.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, errors.New("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		return nil, errors.New("stats: histogram range is empty")
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(n),
		buckets: make([]int, n),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard against float rounding at hi
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Overflow returns the number of observations at or above the upper bound.
func (h *Histogram) Overflow() int { return h.overflow }

// Underflow returns the number of observations below the lower bound.
func (h *Histogram) Underflow() int { return h.underflow }

// Quantile returns an approximation of the q-th quantile (0..1) from the
// bucket boundaries. Underflow mass is attributed to lo and overflow mass
// to hi.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if cum >= target {
		return h.lo, nil
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width, nil
		}
		cum = next
	}
	return h.hi, nil
}
