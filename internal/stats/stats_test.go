package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cubefit/internal/rng"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{7}, want: 7},
		{name: "pair", give: []float64{2, 4}, want: 3},
		{name: "negatives", give: []float64{-1, 1, -3, 3}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Fatalf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{25, 20},
		{50, 35},
		{100, 50},
		{40, 29}, // interpolated: rank 1.6 -> 20 + 0.6*(35-20)
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("empty percentile error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("negative percentile did not error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("percentile > 100 did not error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	got, err := P99(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 99.01, 1e-9) {
		t.Fatalf("P99 = %v, want 99.01", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almostEqual(s.Mean, 3, 1e-12) || !almostEqual(s.P50, 3, 1e-12) {
		t.Fatalf("unexpected summary %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("empty summarize error = %v", err)
	}
}

func TestCI95(t *testing.T) {
	// 10 identical values: zero-width interval.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = 4.2
	}
	iv, err := CI95(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(iv.Mean, 4.2, 1e-12) || iv.Half > 1e-12 {
		t.Fatalf("CI of constants = %+v", iv)
	}

	// Known small-sample case: {1,2,3,4,5}, mean 3, sd sqrt(2.5),
	// half-width = 2.776 * sd/sqrt(5).
	xs = []float64{1, 2, 3, 4, 5}
	iv, err = CI95(xs)
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if !almostEqual(iv.Half, wantHalf, 1e-9) {
		t.Fatalf("CI half-width = %v, want %v", iv.Half, wantHalf)
	}
	if !almostEqual(iv.Lo(), 3-wantHalf, 1e-9) || !almostEqual(iv.Hi(), 3+wantHalf, 1e-9) {
		t.Fatalf("CI bounds wrong: [%v, %v]", iv.Lo(), iv.Hi())
	}
}

func TestCI95Coverage(t *testing.T) {
	// Empirical check: the 95% CI of n=10 normal samples should cover the
	// true mean roughly 95% of the time.
	r := rng.New(99)
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = r.NormFloat64(10, 3)
		}
		iv, err := CI95(xs)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo() <= 10 && 10 <= iv.Hi() {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("CI95 coverage = %v, want about 0.95", rate)
	}
}

func TestCI95Errors(t *testing.T) {
	if _, err := CI95(nil); err != ErrEmpty {
		t.Fatalf("empty CI error = %v", err)
	}
	iv, err := CI95([]float64{3})
	if err != nil || iv.Mean != 3 || iv.Half != 0 {
		t.Fatalf("singleton CI = %+v, %v", iv, err)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile975(df)
		if q > prev+1e-9 {
			t.Fatalf("t quantile not non-increasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if !math.IsNaN(tQuantile975(0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestRelativeDifference(t *testing.T) {
	if got := RelativeDifference(130, 100); !almostEqual(got, 30, 1e-12) {
		t.Fatalf("RelativeDifference = %v, want 30", got)
	}
	if got := RelativeDifference(100, 100); got != 0 {
		t.Fatalf("RelativeDifference of equal = %v", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	if err := quick.Check(func(seed uint64, rawN uint8) bool {
		n := int(rawN)%50 + 2
		r := rng.New(seed)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = r.NormFloat64(0, 5)
			o.Add(xs[i])
		}
		return o.N() == n &&
			almostEqual(o.Mean(), Mean(xs), 1e-9) &&
			almostEqual(o.Variance(), Variance(xs), 1e-6)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMinMax(t *testing.T) {
	var o Online
	for _, x := range []float64{3, -1, 7, 2} {
		o.Add(x)
	}
	if o.Min() != -1 || o.Max() != 7 {
		t.Fatalf("min/max = %v/%v", o.Min(), o.Max())
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(42)
	if h.Total() != 12 || h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("counts wrong: total=%d under=%d over=%d", h.Total(), h.Underflow(), h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		h.Add(r.Float64() * 100)
	}
	q, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-50) > 1.5 {
		t.Fatalf("median of uniform = %v, want about 50", q)
	}
	q99, err := h.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q99-99) > 1.5 {
		t.Fatalf("p99 of uniform = %v, want about 99", q99)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero buckets did not error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range did not error")
	}
	h, err := NewHistogram(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Quantile(0.5); err != ErrEmpty {
		t.Fatalf("empty quantile error = %v", err)
	}
	h.Add(0.5)
	if _, err := h.Quantile(1.5); err == nil {
		t.Fatal("out-of-range quantile did not error")
	}
}

func TestOnlineStdDevAndEdges(t *testing.T) {
	var o Online
	if o.Variance() != 0 || o.StdDev() != 0 {
		t.Fatal("empty online variance not 0")
	}
	o.Add(2)
	if o.Variance() != 0 {
		t.Fatal("singleton variance not 0")
	}
	o.Add(4)
	if got := o.StdDev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("StdDev = %v, want sqrt(2)", got)
	}
}
