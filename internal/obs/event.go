// Package obs is the decision flight recorder: a typed stream of
// placement-decision events emitted by the consolidation engines
// (internal/core, internal/rfi, internal/baseline) through a small
// Recorder interface.
//
// The engines hold a nil Recorder by default, so un-instrumented
// placements cost exactly one nil check per emission site and allocate
// nothing. With a recorder attached, every admission produces the full
// decision trail — admission attempt, first-stage probes, cube slot
// addresses with their base-τ digit expansion, bin lifecycle, rollbacks,
// and the final outcome — enough to reconstruct offline *why* each tenant
// landed where it did (see Decisions).
//
// Events are timestamped through the clock seam (internal/clock) by the
// Stamp wrapper, never by the engines themselves, so algorithm code stays
// wall-clock free and the `wallclock` analyzer needs no new exemptions.
// The package depends only on the standard library and internal/clock /
// internal/trace.
package obs

import (
	"sync/atomic"
	"time"

	"cubefit/internal/clock"
)

// Kind identifies the type of a decision event.
type Kind string

// The event vocabulary. CubeFit emits the stage1_* and cube_* kinds; the
// single-stage engines (RFI, the naive baselines) emit probe and place.
// All engines share the admission lifecycle kinds.
const (
	// KindAttempt opens an admission: Tenant, Size (the tenant load).
	KindAttempt Kind = "attempt"
	// KindStage1Probe reports one first-stage Best Fit scan: Tenant,
	// Replica, Probes (mature bins actually subjected to the m-fit test —
	// bins rejected by the cached slack filters and whole level buckets
	// skipped by the slack-pruned index contribute nothing, so the count
	// measures real m-fit work), Server (the chosen bin, or -1 when no
	// mature bin m-fits and the tenant falls through to the second stage).
	KindStage1Probe Kind = "stage1_probe"
	// KindStage1Place reports a replica placed into a mature bin by the
	// first stage: Tenant, Replica, Server, Size, Level (server level
	// after placement).
	KindStage1Place Kind = "stage1_place"
	// KindProbe reports a single-stage engine's server scan: Tenant,
	// Replica, Probes (servers examined), Server (chosen, or -1 when a
	// fresh server must be opened).
	KindProbe Kind = "probe"
	// KindPlace reports a replica placed by a single-stage engine:
	// Tenant, Replica, Server, Size, Level.
	KindPlace Kind = "place"
	// KindCubePlace reports a replica placed at the cube cursor: Tenant,
	// Replica, Server, Slot, Class (τ), Tiny, Counter (the base-τ counter
	// value addressing the slot), Digits (its digit expansion, most
	// significant first), Size.
	KindCubePlace Kind = "cube_place"
	// KindCubeAdvance reports the cube cursor moving on: Class, Tiny,
	// Digits (the address just closed), Counter (the new counter value,
	// 0 after a wrap-around).
	KindCubeAdvance Kind = "cube_advance"
	// KindBinOpen reports a fresh server opened for a cube: Server,
	// Class, Tiny. Single-stage engines emit it with Class -1.
	KindBinOpen Kind = "bin_open"
	// KindBinMature reports a bin whose payload slots all closed: Server,
	// Class, Tiny, Level. The bin becomes a first-stage candidate.
	KindBinMature Kind = "bin_mature"
	// KindBinRetire reports a mature bin permanently pruned from the
	// first-stage candidate list for lack of usable slack: Server.
	KindBinRetire Kind = "bin_retire"
	// KindBinReactivate reports a retired bin regaining slack (after a
	// tenant departure) and rejoining the candidate list: Server.
	KindBinReactivate Kind = "bin_reactivate"
	// KindRollback reports an admission being unwound: Tenant, Reason.
	// A first-stage fallback emits it only when replicas were already
	// placed; a failed admission emits it before the reject.
	KindRollback Kind = "rollback"
	// KindAdmit closes a successful admission: Tenant, Path (the
	// admission-path label aggregated by core.Stats).
	KindAdmit Kind = "admit"
	// KindReject closes a failed admission: Tenant, Path ("rejected"),
	// Reason.
	KindReject Kind = "reject"
	// KindDepart reports a tenant removal: Tenant.
	KindDepart Kind = "depart"
	// KindWALCommit is a durability marker, not a placement decision: a
	// sharded write-ahead log appends it to a segment to seal the batch of
	// events staged there since the previous seal (see ShardedWAL).
	// CommitSeq carries the log-wide monotone commit sequence; recovery
	// merge-replays segment batches in CommitSeq order and stops at the
	// first gap. Engines never emit it, and recovery strips it from the
	// replayed stream.
	KindWALCommit Kind = "wal_commit"
)

// Unset marks an identity field (Tenant, Replica, Server, Slot, Class,
// Counter) that does not apply to an event.
const Unset = -1

// Event is one placement decision. Which fields are meaningful depends on
// Kind (see the Kind constants); identity fields that do not apply hold
// Unset. Seq and Time are assigned by the Stamp wrapper, not by engines.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Engine  string    `json:"engine,omitempty"`
	Kind    Kind      `json:"kind"`
	Tenant  int       `json:"tenant"`
	Replica int       `json:"replica"`
	Server  int       `json:"server"`
	Slot    int       `json:"slot"`
	Class   int       `json:"class"`
	Tiny    bool      `json:"tiny,omitempty"`
	Counter int       `json:"counter"`
	Digits  []int     `json:"digits,omitempty"`
	Size    float64   `json:"size,omitempty"`
	// Clients is the tenant's concurrent client count, carried on attempt
	// events so a replayed log reconstructs client routing exactly.
	Clients int     `json:"clients,omitempty"`
	Level   float64 `json:"level,omitempty"`
	Probes  int     `json:"probes,omitempty"`
	Path    string  `json:"path,omitempty"`
	Reason  string  `json:"reason,omitempty"`
	// CommitSeq is the monotone commit sequence of a wal_commit record
	// (meaningful only for KindWALCommit; sequences start at 1, so 0 is
	// the absent value).
	CommitSeq uint64 `json:"commitSeq,omitempty"`
}

// NewEvent returns an event of the given kind with every identity field
// initialized to Unset.
func NewEvent(kind Kind) Event {
	return Event{
		Kind:    kind,
		Tenant:  Unset,
		Replica: Unset,
		Server:  Unset,
		Slot:    Unset,
		Class:   Unset,
		Counter: Unset,
	}
}

// Recorder consumes decision events. Implementations must be safe for the
// synchronization discipline of their caller: engines call Record
// synchronously from Place/Remove, the API layer under its write lock.
// The sinks in this package (Ring, JSONL, Tee, Stamp) are additionally
// safe for concurrent use on their own.
type Recorder interface {
	Record(Event)
}

// Nop is a Recorder that discards every event, for callers that need a
// non-nil recorder.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Record(Event) {}

// Tee fans every event out to each non-nil recorder in order. With one
// live recorder it is returned directly (no indirection); with none, Tee
// returns nil so engines keep their cheap nil-check fast path.
func Tee(recs ...Recorder) Recorder {
	kept := make(teeRecorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

type teeRecorder []Recorder

func (t teeRecorder) Record(e Event) {
	for _, r := range t {
		r.Record(e)
	}
}

// Stamp wraps next with sequence and timestamp assignment: every event
// gets the next value of a shared atomic counter (starting at 1) and the
// clock's current time before being forwarded. Stamping is the only place
// the flight recorder reads a clock, which keeps the engines themselves
// wall-clock free.
func Stamp(clk clock.Clock, next Recorder) Recorder {
	if next == nil {
		next = Nop
	}
	return &stamper{clk: clk, next: next}
}

type stamper struct {
	clk  clock.Clock
	next Recorder
	seq  atomic.Uint64
}

func (s *stamper) Record(e Event) {
	e.Seq = s.seq.Add(1)
	e.Time = s.clk.Now()
	s.next.Record(e)
}
