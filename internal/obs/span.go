package obs

import "sync"

// Span is one admission's journey through the batched admission pipeline
// (internal/api): monotonic nanosecond timestamps stamped at each pipeline
// boundary, carrying the group-commit identity so one fsync's cost is
// attributable across the N admissions it covered. Timestamps are relative
// to an arbitrary per-process monotonic base — only differences are
// meaningful — which keeps the span layer off the wall clock and the
// `wallclock` analyzer quiet.
//
// The canonical stage decomposition telescopes exactly, so the five stage
// durations always sum to the end-to-end total:
//
//	queue  EnqueueNs     → DequeueNs      waiting on the bounded queue
//	place  DequeueNs     → PlaceEndNs     in the placer batch (in-batch
//	                                      wait + the engine's Place call;
//	                                      EngineNs isolates the latter)
//	wal    PlaceEndNs    → CommitStartNs  batch tail work before the group
//	                                      commit: remaining items, snapshot
//	                                      invalidation, headroom refresh
//	fsync  CommitStartNs → CommitEndNs    the WAL group commit (flush+fsync)
//	ack    CommitEndNs   → AckNs          future hand-off back to the
//	                                      waiting handler
//
// A span whose admission skipped a boundary (no WAL attached, item
// pre-rejected before the engine) leaves the corresponding timestamps
// zero; Normalize fills them forward so the skipped stages read as zero
// duration and the telescoping identity still holds.
type Span struct {
	Tenant int `json:"tenant"`
	// Status is the final per-item HTTP status (201, 400, 409, 422, 503).
	Status int `json:"status"`
	// Batch marks spans that arrived via POST /v1/tenants:batch.
	Batch bool `json:"batch,omitempty"`
	// Commit is the group-commit sequence number whose fsync this span
	// waited on (0 when no WAL commit covered the batch), and Group is the
	// number of engine admissions that commit made durable — FsyncNs/Group
	// is the amortized per-admission fsync cost.
	Commit uint64 `json:"commit,omitempty"`
	Group  int    `json:"group,omitempty"`

	EnqueueNs     int64 `json:"enqueueNs"`
	DequeueNs     int64 `json:"dequeueNs"`
	PlaceStartNs  int64 `json:"placeStartNs"`
	PlaceEndNs    int64 `json:"placeEndNs"`
	CommitStartNs int64 `json:"commitStartNs"`
	CommitEndNs   int64 `json:"commitEndNs"`
	AckNs         int64 `json:"ackNs"`
}

// Normalize fills unstamped (zero) timestamps forward from the previous
// boundary so every stage is well-defined and the stage durations
// telescope to TotalNs. It is idempotent.
//
//cubefit:hotpath
func (s *Span) Normalize() {
	if s.DequeueNs == 0 {
		s.DequeueNs = s.EnqueueNs
	}
	if s.PlaceStartNs == 0 {
		s.PlaceStartNs = s.DequeueNs
	}
	if s.PlaceEndNs == 0 {
		s.PlaceEndNs = s.PlaceStartNs
	}
	if s.CommitStartNs == 0 {
		s.CommitStartNs = s.PlaceEndNs
	}
	if s.CommitEndNs == 0 {
		s.CommitEndNs = s.CommitStartNs
	}
	if s.AckNs == 0 {
		s.AckNs = s.CommitEndNs
	}
}

// QueueNs is the time spent waiting on the bounded admission queue.
func (s *Span) QueueNs() int64 { return s.DequeueNs - s.EnqueueNs }

// PlaceNs is the time spent inside the placer's coalesced batch up to the
// end of this item's engine call (in-batch wait included; EngineNs
// isolates the engine call itself).
func (s *Span) PlaceNs() int64 { return s.PlaceEndNs - s.DequeueNs }

// EngineNs is the engine's own Place call, a sub-component of PlaceNs.
func (s *Span) EngineNs() int64 { return s.PlaceEndNs - s.PlaceStartNs }

// WalNs is the batch tail between this item's placement and the group
// commit starting: later items of the batch, snapshot invalidation, and
// the headroom refresh.
func (s *Span) WalNs() int64 { return s.CommitStartNs - s.PlaceEndNs }

// FsyncNs is the WAL group commit (flush + fsync) the span waited on.
func (s *Span) FsyncNs() int64 { return s.CommitEndNs - s.CommitStartNs }

// AckLatencyNs is the hand-off from commit completion back to the waiting
// handler goroutine.
func (s *Span) AckLatencyNs() int64 { return s.AckNs - s.CommitEndNs }

// CommitNs is WalNs+FsyncNs: everything between placement end and durable.
func (s *Span) CommitNs() int64 { return s.CommitEndNs - s.PlaceEndNs }

// TotalNs is the end-to-end enqueue→ack latency. On a normalized span it
// equals QueueNs+PlaceNs+WalNs+FsyncNs+AckLatencyNs exactly.
func (s *Span) TotalNs() int64 { return s.AckNs - s.EnqueueNs }

// SpanRecorder consumes completed admission spans. Implementations must be
// safe for concurrent use: spans complete on the handler goroutines.
type SpanRecorder interface {
	RecordSpan(Span)
}

// spanPool recycles Span structs for the admission pipeline: a traced
// admission carries a pooled span through the queue, records it by value
// on completion, and releases the struct, so steady-state tracing
// allocates no span headers.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// AcquireSpan returns a zeroed pooled span. Release it with ReleaseSpan
// after recording.
//
//cubefit:hotpath
func AcquireSpan() *Span {
	s := spanPool.Get().(*Span)
	*s = Span{}
	return s
}

// ReleaseSpan returns s to the pool. Recorders received the span by value,
// so the pooled struct holds no aliased state.
//
//cubefit:hotpath
func ReleaseSpan(s *Span) {
	spanPool.Put(s)
}

// SpanRing is a bounded in-memory span sink keeping the most recent spans,
// the live sample window behind GET /debug/pipeline's stage percentiles.
// It is safe for concurrent use and allocation-free once warm.
type SpanRing struct {
	mu sync.Mutex
	//cubefit:guarded-by mu
	buf []Span
	//cubefit:guarded-by mu
	total uint64
}

// NewSpanRing returns a ring holding up to capacity spans (at least 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, 0, capacity)}
}

// RecordSpan implements SpanRecorder, overwriting the oldest span when
// full.
//
//cubefit:hotpath
func (r *SpanRing) RecordSpan(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = s
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of spans ever recorded, including evicted ones.
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n of the most recent spans, oldest first (all
// retained spans when n is negative or exceeds the retention).
func (r *SpanRing) Last(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	stored := len(r.buf)
	if n < 0 || n > stored {
		n = stored
	}
	out := make([]Span, 0, n)
	start := 0
	if stored == cap(r.buf) {
		start = int(r.total % uint64(cap(r.buf)))
	}
	for i := stored - n; i < stored; i++ {
		out = append(out, r.buf[(start+i)%stored])
	}
	return out
}
