package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cubefit/internal/clock"
)

// collector is a minimal Recorder that keeps every event.
type collector struct{ events []Event }

func (c *collector) Record(e Event) { c.events = append(c.events, e) }

func TestNewEventSentinels(t *testing.T) {
	e := NewEvent(KindProbe)
	if e.Kind != KindProbe {
		t.Errorf("kind = %q", e.Kind)
	}
	for name, v := range map[string]int{
		"tenant": e.Tenant, "replica": e.Replica, "server": e.Server,
		"slot": e.Slot, "class": e.Class, "counter": e.Counter,
	} {
		if v != Unset {
			t.Errorf("%s = %d, want Unset", name, v)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		e := NewEvent(KindProbe)
		e.Tenant = i
		r.Record(e)
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(got))
	}
	// Oldest first: tenants 6, 7, 8, 9.
	for i, e := range got {
		if e.Tenant != 6+i {
			t.Errorf("Events()[%d].Tenant = %d, want %d", i, e.Tenant, 6+i)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Tenant != 8 || last[1].Tenant != 9 {
		t.Errorf("Last(2) = %+v", last)
	}
	if got := r.Last(100); len(got) != 4 {
		t.Errorf("Last(100) len = %d, want 4", len(got))
	}
	if got := r.Last(0); len(got) != 0 {
		t.Errorf("Last(0) len = %d, want 0", len(got))
	}
}

// TestRingSnapshotConsistent races a writer against Snapshot readers: the
// returned total must always match the newest returned event, which two
// separate Total/Last lock acquisitions cannot guarantee.
func TestRingSnapshotConsistent(t *testing.T) {
	r := NewRing(16)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := NewEvent(KindProbe)
			e.Seq = uint64(i) // stand-in for the Stamp wrapper
			r.Record(e)
		}
	}()
	for i := 0; i < 5000; i++ {
		total, events := r.Snapshot(4)
		if total == 0 {
			if len(events) != 0 {
				t.Fatalf("total 0 with %d events", len(events))
			}
			continue
		}
		if len(events) == 0 {
			t.Fatalf("total %d with no events", total)
		}
		if newest := events[len(events)-1].Seq; newest != total {
			t.Fatalf("snapshot skewed: total %d, newest seq %d", total, newest)
		}
	}
	close(stop)
	<-done
}

func TestRingBeforeWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		e := NewEvent(KindProbe)
		e.Tenant = i
		r.Record(e)
	}
	got := r.Events()
	if len(got) != 3 || got[0].Tenant != 0 || got[2].Tenant != 2 {
		t.Errorf("Events() = %+v", got)
	}
}

func TestStampAssignsSeqAndTime(t *testing.T) {
	fake := clock.NewFake(time.Unix(100, 0))
	var c collector
	rec := Stamp(fake, &c)
	rec.Record(NewEvent(KindAttempt))
	fake.Advance(3 * time.Second)
	rec.Record(NewEvent(KindAdmit))
	if len(c.events) != 2 {
		t.Fatalf("got %d events", len(c.events))
	}
	if c.events[0].Seq != 1 || c.events[1].Seq != 2 {
		t.Errorf("seqs = %d, %d, want 1, 2", c.events[0].Seq, c.events[1].Seq)
	}
	if !c.events[0].Time.Equal(time.Unix(100, 0)) {
		t.Errorf("first time = %v", c.events[0].Time)
	}
	if got := c.events[1].Time.Sub(c.events[0].Time); got != 3*time.Second {
		t.Errorf("time delta = %v, want 3s", got)
	}
}

func TestTee(t *testing.T) {
	var a, b collector
	rec := Tee(&a, nil, &b)
	rec.Record(NewEvent(KindAttempt))
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Errorf("tee delivered %d/%d, want 1/1", len(a.events), len(b.events))
	}
	if Tee() != nil {
		t.Error("Tee() with no sinks should be nil")
	}
	if Tee(nil, &a) != &a {
		t.Error("Tee with one live sink should return it directly")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	fake := clock.NewFake(time.Unix(42, 0))
	rec := Stamp(fake, sink)

	e := NewEvent(KindCubePlace)
	e.Engine = "cubefit"
	e.Tenant = 7
	e.Replica = 1
	e.Server = 3
	e.Slot = 2
	e.Class = 5
	e.Counter = 9
	e.Digits = []int{1, 4}
	e.Size = 0.25
	rec.Record(e)
	rec.Record(NewEvent(KindAdmit))

	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 2 {
		t.Errorf("Count = %d, want 2", sink.Count())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("wrote %d lines, want 2", lines)
	}

	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d events, want 2", len(back))
	}
	got := back[0]
	if got.Kind != KindCubePlace || got.Tenant != 7 || got.Server != 3 ||
		got.Slot != 2 || got.Class != 5 || got.Counter != 9 {
		t.Errorf("round-trip mangled event: %+v", got)
	}
	if len(got.Digits) != 2 || got.Digits[0] != 1 || got.Digits[1] != 4 {
		t.Errorf("digits = %v", got.Digits)
	}
	if got.Seq != 1 || !got.Time.Equal(time.Unix(42, 0)) {
		t.Errorf("stamp lost: seq=%d time=%v", got.Seq, got.Time)
	}
}

func TestJSONLStickyError(t *testing.T) {
	sink := NewJSONL(failWriter{})
	sink.Record(NewEvent(KindAttempt))
	if sink.Err() == nil {
		t.Fatal("expected a write error")
	}
	sink.Record(NewEvent(KindAdmit))
	if sink.Count() != 0 {
		t.Errorf("Count = %d after error, want 0 (failed writes are not counted)", sink.Count())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"admit\"}\nnot json\n")); err == nil {
		t.Error("expected an error on malformed JSONL")
	}
}
