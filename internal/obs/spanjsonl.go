package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SpanJSONL is a SpanRecorder writing one JSON object per completed span
// (JSON Lines), the offline companion of the event stream: capture it
// during a load run and feed it to `cubefit-inspect latency` to decompose
// end-to-end admission latency into pipeline stages. Like JSONL, the first
// write error is sticky: subsequent spans are dropped and the error is
// reported by Err, so a full disk never corrupts the log mid-line.
type SpanJSONL struct {
	mu sync.Mutex
	//cubefit:guarded-by mu
	enc *json.Encoder
	//cubefit:guarded-by mu
	n uint64
	//cubefit:guarded-by mu
	err error
}

// NewSpanJSONL returns a sink encoding spans onto w, one per line.
func NewSpanJSONL(w io.Writer) *SpanJSONL {
	return &SpanJSONL{enc: json.NewEncoder(w)}
}

// RecordSpan implements SpanRecorder.
func (s *SpanJSONL) RecordSpan(sp Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(sp); err != nil {
		s.err = fmt.Errorf("obs: span jsonl write: %w", err)
		return
	}
	s.n++
}

// Count returns the number of spans successfully written.
func (s *SpanJSONL) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *SpanJSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadSpanJSONL decodes a span log back into spans. Every span is
// normalized on the way in, so stage durations are well-defined for
// consumers regardless of which pipeline boundaries the writer stamped.
func ReadSpanJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return spans, nil
			}
			return nil, fmt.Errorf("obs: span jsonl read (span %d): %w", len(spans)+1, err)
		}
		s.Normalize()
		spans = append(spans, s)
	}
}
