package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL is a sink writing one JSON object per line (JSON Lines). The
// first write error is sticky: subsequent events are dropped and the
// error is reported by Err, so a full disk does not corrupt the log
// mid-line or take the engine down.
type JSONL struct {
	mu sync.Mutex
	//cubefit:guarded-by mu
	enc *json.Encoder
	//cubefit:guarded-by mu
	n uint64
	//cubefit:guarded-by mu
	err error
}

// NewJSONL returns a sink encoding events onto w, one per line.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Record implements Recorder.
func (s *JSONL) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = fmt.Errorf("obs: jsonl write: %w", err)
		return
	}
	s.n++
}

// Count returns the number of events successfully written.
func (s *JSONL) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadJSONL decodes a JSON Lines event log back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, fmt.Errorf("obs: jsonl read (event %d): %w", len(events)+1, err)
		}
		events = append(events, e)
	}
}
