package obs

import "sync"

// eventPool recycles Event structs for the engines' emission sites: an
// admission with the recorder attached builds each event in a pooled
// struct, records it by value, and releases the struct, so tracing steady
// state allocates no event headers. The pool sits strictly behind the
// engines' nil-checked recorder seam — with no recorder attached nothing
// is acquired and the hot path still pays a single nil check.
var eventPool = sync.Pool{New: func() any { return new(Event) }}

// AcquireEvent returns a pooled event of the given kind with every field
// reset (identity fields to Unset, everything else to the zero value).
// Release it with ReleaseEvent after recording.
//
//cubefit:hotpath
func AcquireEvent(kind Kind) *Event {
	e := eventPool.Get().(*Event)
	*e = Event{
		Kind:    kind,
		Tenant:  Unset,
		Replica: Unset,
		Server:  Unset,
		Slot:    Unset,
		Class:   Unset,
		Counter: Unset,
	}
	return e
}

// ReleaseEvent returns e to the pool. The Digits slice is NOT recycled:
// recorders retain the value they were handed (ring buffers keep the
// event, sinks may defer encoding), and the slice header they copied
// aliases e.Digits — so ownership of the backing array passes to the
// recorded value and the pooled struct forgets it.
//
//cubefit:hotpath
func ReleaseEvent(e *Event) {
	e.Digits = nil
	eventPool.Put(e)
}
