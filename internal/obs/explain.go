package obs

import (
	"fmt"
	"sort"

	"cubefit/internal/trace"
)

// ReplicaDecision is where one replica of a tenant landed and how.
type ReplicaDecision struct {
	Replica int `json:"replica"`
	Server  int `json:"server"`
	// Slot is the payload slot within a cube bin, or Unset for first-stage
	// and single-stage (Best Fit style) placements.
	Slot int `json:"slot"`
	// FirstStage marks a replica placed by CubeFit's mature-bin Best Fit.
	FirstStage bool `json:"firstStage,omitempty"`
}

// Decision is the reconstructed admission record of one tenant: the exact
// path the engine took, in the terms core.Stats aggregates — a set of
// first-stage bin IDs, or a cube address (class τ, counter value, base-τ
// digits, per-replica slot), or the tiny policy, or a rejection.
type Decision struct {
	Tenant int     `json:"tenant"`
	Engine string  `json:"engine,omitempty"`
	Size   float64 `json:"size,omitempty"`
	// Path is the admission-path label ("first_stage", "regular", "tiny",
	// "placed", "rejected") or "unknown" when the log holds no outcome
	// event for the tenant (e.g. a ring buffer that evicted it).
	Path string `json:"path"`
	// Class, Tiny, Counter and Digits describe the cube slot that admitted
	// the tenant (second-stage paths only).
	Class    int               `json:"class"`
	Tiny     bool              `json:"tiny,omitempty"`
	Counter  int               `json:"counter"`
	Digits   []int             `json:"digits,omitempty"`
	Replicas []ReplicaDecision `json:"replicas,omitempty"`
	// Probes totals the bins/servers m-fit-tested across the admission
	// (bins pre-filtered by cached slack or skipped with their whole
	// level bucket are not counted).
	Probes int `json:"probes,omitempty"`
	// Rollbacks lists the reasons of rollback events during the admission
	// (a first-stage fallback, or the unwind before a rejection).
	Rollbacks []string `json:"rollbacks,omitempty"`
	// Reason is the rejection reason (rejected admissions only).
	Reason string `json:"reason,omitempty"`
}

// PathUnknown is the Decision.Path of a tenant whose outcome event is
// missing from the log.
const PathUnknown = "unknown"

// Decisions reconstructs per-tenant admission records from an event log,
// in order of each tenant's last admission attempt. A tenant re-admitted
// after a departure is reported with its latest attempt only.
func Decisions(events []Event) []Decision {
	byTenant := make(map[int]*Decision)
	var order []int
	for _, e := range events {
		if e.Tenant == Unset {
			continue
		}
		d := byTenant[e.Tenant]
		switch e.Kind {
		case KindAttempt:
			if d == nil {
				order = append(order, e.Tenant)
			}
			nd := Decision{
				Tenant:  e.Tenant,
				Engine:  e.Engine,
				Size:    e.Size,
				Path:    PathUnknown,
				Class:   Unset,
				Counter: Unset,
			}
			byTenant[e.Tenant] = &nd
			continue
		case KindDepart:
			// Keep the admission record; the placement snapshot, not the
			// decision log, is the source of truth for residency.
			continue
		}
		if d == nil {
			// Event for a tenant whose attempt was evicted from the log;
			// without the attempt the partial trail is not reconstructible.
			continue
		}
		switch e.Kind {
		case KindStage1Probe, KindProbe:
			d.Probes += e.Probes
		case KindStage1Place:
			d.Replicas = append(d.Replicas, ReplicaDecision{
				Replica:    e.Replica,
				Server:     e.Server,
				Slot:       Unset,
				FirstStage: true,
			})
		case KindPlace:
			d.Replicas = append(d.Replicas, ReplicaDecision{
				Replica: e.Replica,
				Server:  e.Server,
				Slot:    Unset,
			})
		case KindCubePlace:
			d.Replicas = append(d.Replicas, ReplicaDecision{
				Replica: e.Replica,
				Server:  e.Server,
				Slot:    e.Slot,
			})
			d.Class = e.Class
			d.Tiny = e.Tiny
			d.Counter = e.Counter
			d.Digits = append([]int(nil), e.Digits...)
		case KindRollback:
			// Whatever was placed so far has been unwound.
			d.Replicas = nil
			d.Rollbacks = append(d.Rollbacks, e.Reason)
		case KindAdmit:
			d.Path = e.Path
		case KindReject:
			d.Path = e.Path
			if d.Path == "" {
				d.Path = "rejected"
			}
			d.Reason = e.Reason
			d.Replicas = nil
		}
	}
	out := make([]Decision, 0, len(order))
	for _, id := range order {
		out = append(out, *byTenant[id])
	}
	return out
}

// DecisionFor returns the reconstructed decision of one tenant.
func DecisionFor(events []Event, tenant int) (Decision, bool) {
	for _, d := range Decisions(events) {
		if d.Tenant == tenant {
			return d, true
		}
	}
	return Decision{}, false
}

// CountPaths tallies decisions by path label, the aggregate that must
// match the engine's own counters (core.Stats for CubeFit).
func CountPaths(ds []Decision) map[string]int {
	counts := make(map[string]int)
	for _, d := range ds {
		counts[d.Path]++
	}
	return counts
}

// Attribution maps one replica host of a tenant to the servers that would
// absorb its clients if that host failed — the tenant's other replica
// hosts, which is exactly how the paper's failure model redistributes
// load (§IV).
type Attribution struct {
	Replica    int   `json:"replica"`
	Server     int   `json:"server"`
	FailoverTo []int `json:"failoverTo"`
}

// Attribute computes the replica-to-server failover attribution of a
// tenant from a placement snapshot. It errors when the tenant has no
// replicas in the snapshot.
func Attribute(snap trace.Snapshot, tenant int) ([]Attribution, error) {
	type hosted struct{ replica, server int }
	var hosts []hosted
	for _, s := range snap.Servers {
		for _, r := range s.Replicas {
			if r.Tenant == tenant {
				hosts = append(hosts, hosted{replica: r.Index, server: s.ID})
			}
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("obs: tenant %d has no replicas in the snapshot", tenant)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].replica < hosts[j].replica })
	out := make([]Attribution, 0, len(hosts))
	for _, h := range hosts {
		at := Attribution{Replica: h.replica, Server: h.server}
		for _, o := range hosts {
			if o.server != h.server {
				at.FailoverTo = append(at.FailoverTo, o.server)
			}
		}
		sort.Ints(at.FailoverTo)
		out = append(out, at)
	}
	return out, nil
}
