package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// shardedBuffers builds an in-memory sharded log over n buffer-backed
// segments, returning the buffers for read-back.
func shardedBuffers(n int, nextSeq uint64) (*ShardedWAL, []*bytes.Buffer) {
	bufs := make([]*bytes.Buffer, n)
	segs := make([]*WAL, n)
	for i := range segs {
		bufs[i] = &bytes.Buffer{}
		segs[i] = NewWAL(bufs[i])
	}
	return NewShardedWAL(segs, nextSeq), bufs
}

func TestShardedWALSealRoutesRoundRobin(t *testing.T) {
	s, bufs := shardedBuffers(3, 1)
	pcs := make([]*PendingCommit, 0, 4)
	for i := 1; i <= 4; i++ {
		s.Record(walEvent(i))
		pc, err := s.Seal()
		if err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if pc.Seq() != uint64(i) {
			t.Fatalf("seal %d assigned sequence %d", i, pc.Seq())
		}
		pcs = append(pcs, pc)
	}
	// Commits land in any order; the sequence records are the total order.
	for _, i := range []int{2, 0, 3, 1} {
		if err := pcs[i].Commit(); err != nil {
			t.Fatalf("commit %d: %v", i+1, err)
		}
	}
	// Sequence s seals onto segment (s−1) mod 3, so segment 0 holds
	// batches 1 and 4, segment 1 batch 2, segment 2 batch 3.
	wantSeqs := [][]uint64{{1, 4}, {2}, {3}}
	for seg, buf := range bufs {
		events, torn, err := ReadWAL(bytes.NewReader(buf.Bytes()))
		if err != nil || torn {
			t.Fatalf("segment %d: torn=%v err=%v", seg, torn, err)
		}
		var seqs []uint64
		for _, e := range events {
			if e.Kind == KindWALCommit {
				seqs = append(seqs, e.CommitSeq)
			} else if e.Kind != KindAdmit {
				t.Fatalf("segment %d: unexpected event %+v", seg, e)
			}
		}
		if len(seqs) != len(wantSeqs[seg]) {
			t.Fatalf("segment %d: commit sequences %v, want %v", seg, seqs, wantSeqs[seg])
		}
		for j, seq := range seqs {
			if seq != wantSeqs[seg][j] {
				t.Fatalf("segment %d: commit sequences %v, want %v", seg, seqs, wantSeqs[seg])
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedWALSyncSealsStagedOnly: Sync seals the staged batch when one
// exists and skips the seal (consuming no sequence) when nothing was
// recorded since the last seal, so redundant group commits do not litter
// the log with empty batches.
func TestShardedWALSyncSealsStagedOnly(t *testing.T) {
	s, bufs := shardedBuffers(2, 1)
	s.Record(walEvent(1))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.NextSeq(); got != 2 {
		t.Fatalf("NextSeq after first Sync = %d, want 2", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.NextSeq(); got != 2 {
		t.Fatalf("empty Sync consumed a sequence: NextSeq = %d, want 2", got)
	}
	events, _, err := ReadWAL(bytes.NewReader(bufs[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != KindWALCommit || events[1].CommitSeq != 1 {
		t.Fatalf("segment 0 events = %+v", events)
	}
}

// TestShardedWALSyncAllCoversPendingBatches: SyncAll makes every sealed
// batch durable even when its own Commit has not run, the property the
// departure ack relies on.
func TestShardedWALSyncAllCoversPendingBatches(t *testing.T) {
	s, bufs := shardedBuffers(2, 1)
	s.Record(walEvent(1))
	if _, err := s.Seal(); err != nil {
		t.Fatal(err) // pending commit intentionally never run
	}
	s.Record(walEvent(2))
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncAll(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for seg, buf := range bufs {
		events, torn, err := ReadWAL(bytes.NewReader(buf.Bytes()))
		if err != nil || torn {
			t.Fatalf("segment %d: torn=%v err=%v", seg, torn, err)
		}
		total += len(events)
	}
	if total != 4 { // two events + two commit records
		t.Fatalf("SyncAll flushed %d events across segments, want 4", total)
	}
}

func TestShardedWALStickyFailure(t *testing.T) {
	bufs := []*bytes.Buffer{{}, {}}
	segs := []*WAL{NewWAL(bufs[0]), NewWAL(&failAfter{n: 8})}
	s := NewShardedWAL(segs, 1)
	s.Record(walEvent(1))
	pc1, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	s.Record(walEvent(2)) // staged onto the failing segment
	pc2, err := s.Seal()
	if err != nil {
		t.Fatal(err) // buffered: the failing writer is not reached yet
	}
	if err := pc2.Commit(); err == nil {
		t.Fatal("commit on a failing segment succeeded")
	}
	// The whole log is latched failed: records drop, seals and syncs fail,
	// and even the healthy segment's pending commit is refused.
	if !s.Failed() || s.Err() == nil {
		t.Fatalf("Failed=%v Err=%v after segment commit failure", s.Failed(), s.Err())
	}
	before := s.Count()
	s.Record(walEvent(3))
	if s.Count() != before {
		t.Fatal("Record accepted an event after a sticky failure")
	}
	if _, err := s.Seal(); err == nil {
		t.Fatal("Seal succeeded after a sticky failure")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync succeeded after a sticky failure")
	}
	if err := pc1.Commit(); err == nil {
		t.Fatal("pending commit on the healthy segment succeeded after the log failed")
	}
}

func TestOpenShardedWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	s, err := OpenShardedWAL(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		s.Record(walEvent(i))
		pc, serr := s.Seal()
		if serr != nil {
			t.Fatal(serr)
		}
		if cerr := pc.Commit(); cerr != nil {
			t.Fatal(cerr)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen where recovery would: sequences resume at the frontier, and
	// the staging cursor lands on the matching segment.
	s2, err := OpenShardedWAL(path, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.NextSeq(); got != 3 {
		t.Fatalf("NextSeq = %d, want 3", got)
	}
	s2.Record(walEvent(3))
	pc, err := s2.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Seq() != 3 {
		t.Fatalf("resumed seal assigned sequence %d, want 3", pc.Seq())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Sequence 3 belongs on segment (3−1) mod 2 = 0, appended after batch 1.
	data, err := os.ReadFile(SegmentPath(path, 0))
	if err != nil {
		t.Fatal(err)
	}
	f0, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil || torn {
		t.Fatalf("segment 0: torn=%v err=%v", torn, err)
	}
	var seqs []uint64
	for _, e := range f0 {
		if e.Kind == KindWALCommit {
			seqs = append(seqs, e.CommitSeq)
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("segment 0 commit sequences = %v, want [1 3]", seqs)
	}
	if _, err := OpenShardedWAL(filepath.Join(t.TempDir(), "w"), 1, 1); err == nil {
		t.Fatal("single-segment sharded log accepted")
	}
}
