package obs

// StageExtractor names one reportable span stage and extracts its
// duration. The five canonical stages (queue, place, wal, fsync, ack)
// telescope to the end-to-end total; the rest are overlays (engine ⊂
// place, commit = wal+fsync) plus the total itself.
type StageExtractor struct {
	Name string
	// Canonical marks membership in the telescoping decomposition.
	Canonical bool
	Ns        func(*Span) int64
}

// StageExtractors is the single source of truth for the exported stage
// set, shared by /debug/pipeline, `cubefit-inspect latency`, and the
// telemetry sampler, canonical stages first in stamp order.
var StageExtractors = []StageExtractor{
	{Name: "queue", Canonical: true, Ns: (*Span).QueueNs},
	{Name: "place", Canonical: true, Ns: (*Span).PlaceNs},
	{Name: "wal", Canonical: true, Ns: (*Span).WalNs},
	{Name: "fsync", Canonical: true, Ns: (*Span).FsyncNs},
	{Name: "ack", Canonical: true, Ns: (*Span).AckLatencyNs},
	{Name: "engine", Ns: (*Span).EngineNs},
	{Name: "commit", Ns: (*Span).CommitNs},
	{Name: "total", Ns: (*Span).TotalNs},
}
