package obs

import "sync"

// Ring is a bounded in-memory sink keeping the most recent events. It is
// safe for concurrent use; Record takes one short mutex-guarded append,
// cheap enough to sit on the admission path.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// NewRing returns a ring buffer holding up to capacity events (at least 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record implements Recorder, overwriting the oldest event when full.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded, including evicted ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	return r.Last(-1)
}

// Last returns up to n of the most recent events, oldest first (all
// retained events when n is negative or exceeds the retention).
func (r *Ring) Last(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastLocked(n)
}

// Snapshot returns the all-time event total together with up to n of the
// most recent events, read under one lock acquisition so the pair is
// mutually consistent even while writers are recording.
func (r *Ring) Snapshot(n int) (total uint64, events []Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.lastLocked(n)
}

func (r *Ring) lastLocked(n int) []Event {
	stored := len(r.buf)
	if n < 0 || n > stored {
		n = stored
	}
	out := make([]Event, 0, n)
	// The oldest retained event sits at total%cap once the buffer wrapped.
	start := 0
	if stored == cap(r.buf) {
		start = int(r.total % uint64(cap(r.buf)))
	}
	for i := stored - n; i < stored; i++ {
		out = append(out, r.buf[(start+i)%stored])
	}
	return out
}
