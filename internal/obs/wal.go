package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// walBufferSize is the in-memory staging buffer of a WAL. Events are
// encoded into it as they are recorded and reach the underlying writer in
// one burst per Sync (group commit); bufio flushes early only when a
// batch outgrows the buffer.
const walBufferSize = 1 << 20

// ErrWALClosed is the sticky error of a WAL that was closed; admissions
// recorded afterwards are rejected, not silently dropped.
var ErrWALClosed = errors.New("obs: wal closed")

// Syncer is the durability hook of a WAL's underlying writer. *os.File
// implements it; writers without a Sync method (buffers in tests) are
// treated as durable on flush.
type Syncer interface {
	Sync() error
}

// WAL is a write-ahead sink for the decision event stream: events are
// JSON-encoded into an in-memory buffer as the engines emit them, and a
// group commit (Sync) pushes the accumulated batch to the underlying
// writer and fsyncs it before the admissions it covers are acked.
//
// Error handling is sticky and fail-closed: after the first write, flush,
// or sync error every subsequent Record is dropped and every Sync returns
// the original error, so a full disk surfaces as failed admissions rather
// than an event log silently missing its tail. Err exposes the state for
// callers that want to refuse work before mutating anything.
//
// WAL is safe for concurrent use.
type WAL struct {
	mu sync.Mutex
	//cubefit:guarded-by mu
	bw   *bufio.Writer
	sync Syncer // nil when the writer has no Sync method; set at construction only
	cl   io.Closer
	// n counts events accepted into the buffer; synced counts events
	// covered by a completed Sync, i.e. durable.
	//cubefit:guarded-by mu
	n uint64
	//cubefit:guarded-by mu
	synced uint64
	//cubefit:guarded-by mu
	err error
	// failed mirrors "err holds a commit error" without the mutex, so
	// health sampling can observe fail-closed state even while a group
	// commit is blocked inside the underlying Sync (a hung fsync must not
	// freeze the monitor). A clean Close does not set it.
	failed atomic.Bool
	// closed is tracked separately from the sticky err: a write error
	// must not make Close lose its run-once guarantee (double-closing
	// the underlying file) just because err already holds something.
	//cubefit:guarded-by mu
	closed bool
}

// NewWAL returns a write-ahead sink over w. If w implements Syncer
// (*os.File does), Sync pushes flushed bytes to stable storage; if it
// implements io.Closer, Close closes it after the final flush.
func NewWAL(w io.Writer) *WAL {
	wal := &WAL{bw: bufio.NewWriterSize(w, walBufferSize)}
	if s, ok := w.(Syncer); ok {
		wal.sync = s
	}
	if c, ok := w.(io.Closer); ok {
		wal.cl = c
	}
	return wal
}

// OpenWAL opens (creating if needed) the write-ahead log at path for
// appending. Recovery reads the existing contents before the server
// starts appending new events to the same file.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open wal: %w", err)
	}
	return NewWAL(f), nil
}

// Record implements Recorder: the event is encoded into the staging
// buffer. It only becomes durable once a subsequent Sync completes.
func (w *WAL) Record(e Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := encodeEvent(w.bw, e); err != nil {
		w.err = fmt.Errorf("obs: wal write: %w", err)
		w.failed.Store(true)
		return
	}
	w.n++
}

// encodeEvent writes one event as a JSON line. A fresh json.Encoder per
// call would allocate; the WAL is not on the engines' allocation-free
// path (it exists for durability, and encoding dominates), so the
// straightforward form is fine.
func encodeEvent(bw *bufio.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.WriteByte('\n')
}

// Sync is the group commit: it flushes the staging buffer and syncs the
// underlying writer, making every previously recorded event durable. It
// returns the sticky error, if any, so callers can refuse to ack
// admissions whose events may not have reached stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("obs: wal flush: %w", err)
		w.failed.Store(true)
		return w.err
	}
	if w.sync != nil {
		if err := w.sync.Sync(); err != nil {
			w.err = fmt.Errorf("obs: wal sync: %w", err)
			w.failed.Store(true)
			return w.err
		}
	}
	w.synced = w.n
	return nil
}

// Err returns the sticky error, if any. A non-nil value means events have
// been or would be dropped: callers on the admission path must fail
// closed rather than proceed unlogged.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Count returns the number of events accepted into the log, durable or
// still staged.
func (w *WAL) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Synced returns the number of events made durable by a completed Sync.
func (w *WAL) Synced() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// maxWALLine bounds one encoded event when scanning a log back in; events
// are a few hundred bytes, so 1 MiB leaves generous slack for long Reason
// strings and digit expansions.
const maxWALLine = 1 << 20

// ReadWAL decodes a write-ahead log, tolerating a torn final record: a
// crash (or a buffer flush racing a kill) can leave the last line
// truncated mid-JSON or missing its terminating newline, and that tail
// belongs to an admission that was never acked, so it is dropped rather
// than failing recovery. torn reports whether a tail was discarded.
// Malformed records anywhere before the final line still fail, because
// they indicate corruption rather than a clean truncation.
func ReadWAL(r io.Reader) (events []Event, torn bool, err error) {
	events, _, torn, err = ReadWALOffsets(r)
	return events, torn, err
}

// ReadWALOffsets decodes a write-ahead log like ReadWAL and additionally
// reports each record's end position: ends[i] is the byte offset just
// past event i's terminating newline, i.e. the size the file would have
// if truncated immediately after that record. Recovery uses the offsets
// to cut an uncommitted suffix at a record boundary (see TruncateWAL).
//
// The newline is part of the record: a final line without one — even a
// tail that happens to parse as complete JSON — was torn mid-write and
// is dropped, never trusted.
func ReadWALOffsets(r io.Reader) (events []Event, ends []int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 64*1024)
	var off int64
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, nil, false, fmt.Errorf("obs: wal read: %w", rerr)
		}
		if len(raw) == 0 {
			// Clean EOF exactly at a record boundary.
			return events, ends, false, nil
		}
		line++
		if len(raw) > maxWALLine {
			return nil, nil, false, fmt.Errorf("obs: wal record %d exceeds %d bytes", line, maxWALLine)
		}
		if rerr == io.EOF {
			// Unterminated final chunk: torn regardless of content.
			return events, ends, true, nil
		}
		off += int64(len(raw))
		data := raw[:len(raw)-1]
		if len(data) == 0 {
			continue
		}
		var e Event
		if uerr := json.Unmarshal(data, &e); uerr != nil {
			// A parse failure on the final line is a torn tail; anywhere
			// earlier it is corruption.
			if _, perr := br.Peek(1); perr == io.EOF {
				return events, ends, true, nil
			}
			return nil, nil, false, fmt.Errorf("obs: wal record %d: %w", line, uerr)
		}
		events = append(events, e)
		ends = append(ends, off)
	}
}

// TruncateWAL cuts the log at path down to size bytes — the committed
// prefix reported by recovery — and returns the number of bytes removed.
// Cutting at the committed record boundary (not merely at the last
// newline) discards complete-but-uncommitted event lines, e.g. an open
// attempt left behind when a bufio auto-flush outran its group commit,
// along with any torn partial record: appending fresh records after such
// a suffix would read back as an interleaved (corrupt) log on the next
// boot. A missing file is fine when size is 0; a file shorter than size
// is an error, since the committed prefix must still be present.
func TruncateWAL(path string, size int64) (removed int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) && size == 0 {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("obs: truncate wal: %w", err)
	}
	defer func() {
		// The handle mutated the log, so a failed close may hide a failed
		// write-back; it joins the result rather than vanishing.
		if cerr := f.Close(); err == nil && cerr != nil {
			removed, err = 0, fmt.Errorf("obs: truncate wal: %w", cerr)
		}
	}()
	cur, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("obs: truncate wal: %w", err)
	}
	if cur < size {
		return 0, fmt.Errorf("obs: truncate wal: %s is %d bytes, shorter than committed prefix %d", path, cur, size)
	}
	if cur == size {
		return 0, nil
	}
	if err := f.Truncate(size); err != nil {
		return 0, fmt.Errorf("obs: truncate wal: %w", err)
	}
	return cur - size, f.Sync()
}

// Close performs a final group commit and closes the underlying writer
// (when it is closable). Further records are dropped and syncs report
// ErrWALClosed; the first Close reports the commit-and-close outcome and
// later calls return nil — including when a sticky write error predates
// the close, so a retried shutdown never double-closes the writer.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if w.cl != nil {
		if cerr := w.cl.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("obs: wal close: %w", cerr)
		}
	}
	if w.err == nil {
		// A clean close is not a commit failure: Failed stays false.
		w.err = ErrWALClosed
	}
	return err
}

// Failed reports whether the log carries a sticky commit error (write,
// flush, or sync failure — not a clean Close). Unlike Err it never takes
// the WAL lock, so it stays readable while a group commit is blocked
// inside a hung fsync.
func (w *WAL) Failed() bool { return w.failed.Load() }
