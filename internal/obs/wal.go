package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// walBufferSize is the in-memory staging buffer of a WAL. Events are
// encoded into it as they are recorded and reach the underlying writer in
// one burst per Sync (group commit); bufio flushes early only when a
// batch outgrows the buffer.
const walBufferSize = 1 << 20

// ErrWALClosed is the sticky error of a WAL that was closed; admissions
// recorded afterwards are rejected, not silently dropped.
var ErrWALClosed = errors.New("obs: wal closed")

// Syncer is the durability hook of a WAL's underlying writer. *os.File
// implements it; writers without a Sync method (buffers in tests) are
// treated as durable on flush.
type Syncer interface {
	Sync() error
}

// WAL is a write-ahead sink for the decision event stream: events are
// JSON-encoded into an in-memory buffer as the engines emit them, and a
// group commit (Sync) pushes the accumulated batch to the underlying
// writer and fsyncs it before the admissions it covers are acked.
//
// Error handling is sticky and fail-closed: after the first write, flush,
// or sync error every subsequent Record is dropped and every Sync returns
// the original error, so a full disk surfaces as failed admissions rather
// than an event log silently missing its tail. Err exposes the state for
// callers that want to refuse work before mutating anything.
//
// WAL is safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	sync Syncer // nil when the writer has no Sync method
	cl   io.Closer
	// n counts events accepted into the buffer; synced counts events
	// covered by a completed Sync, i.e. durable.
	n      uint64
	synced uint64
	err    error
}

// NewWAL returns a write-ahead sink over w. If w implements Syncer
// (*os.File does), Sync pushes flushed bytes to stable storage; if it
// implements io.Closer, Close closes it after the final flush.
func NewWAL(w io.Writer) *WAL {
	wal := &WAL{bw: bufio.NewWriterSize(w, walBufferSize)}
	if s, ok := w.(Syncer); ok {
		wal.sync = s
	}
	if c, ok := w.(io.Closer); ok {
		wal.cl = c
	}
	return wal
}

// OpenWAL opens (creating if needed) the write-ahead log at path for
// appending. Recovery reads the existing contents before the server
// starts appending new events to the same file.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open wal: %w", err)
	}
	return NewWAL(f), nil
}

// Record implements Recorder: the event is encoded into the staging
// buffer. It only becomes durable once a subsequent Sync completes.
func (w *WAL) Record(e Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if err := encodeEvent(w.bw, e); err != nil {
		w.err = fmt.Errorf("obs: wal write: %w", err)
		return
	}
	w.n++
}

// encodeEvent writes one event as a JSON line. A fresh json.Encoder per
// call would allocate; the WAL is not on the engines' allocation-free
// path (it exists for durability, and encoding dominates), so the
// straightforward form is fine.
func encodeEvent(bw *bufio.Writer, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.WriteByte('\n')
}

// Sync is the group commit: it flushes the staging buffer and syncs the
// underlying writer, making every previously recorded event durable. It
// returns the sticky error, if any, so callers can refuse to ack
// admissions whose events may not have reached stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("obs: wal flush: %w", err)
		return w.err
	}
	if w.sync != nil {
		if err := w.sync.Sync(); err != nil {
			w.err = fmt.Errorf("obs: wal sync: %w", err)
			return w.err
		}
	}
	w.synced = w.n
	return nil
}

// Err returns the sticky error, if any. A non-nil value means events have
// been or would be dropped: callers on the admission path must fail
// closed rather than proceed unlogged.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Count returns the number of events accepted into the log, durable or
// still staged.
func (w *WAL) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Synced returns the number of events made durable by a completed Sync.
func (w *WAL) Synced() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.synced
}

// maxWALLine bounds one encoded event when scanning a log back in; events
// are a few hundred bytes, so 1 MiB leaves generous slack for long Reason
// strings and digit expansions.
const maxWALLine = 1 << 20

// ReadWAL decodes a write-ahead log, tolerating a torn final record: a
// crash (or a buffer flush racing a kill) can leave the last line
// truncated mid-JSON, and that tail belongs to an admission that was
// never acked, so it is dropped rather than failing recovery. torn
// reports whether a tail was discarded. Malformed records anywhere before
// the final line still fail, because they indicate corruption rather
// than a clean truncation.
func ReadWAL(r io.Reader) (events []Event, torn bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxWALLine)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if uerr := json.Unmarshal(raw, &e); uerr != nil {
			// A parse failure on the final line is a torn tail; anywhere
			// earlier it is corruption.
			if sc.Scan() {
				return nil, false, fmt.Errorf("obs: wal record %d: %w", line, uerr)
			}
			if serr := sc.Err(); serr != nil {
				return nil, false, fmt.Errorf("obs: wal read: %w", serr)
			}
			return events, true, nil
		}
		events = append(events, e)
	}
	if serr := sc.Err(); serr != nil {
		return nil, false, fmt.Errorf("obs: wal read: %w", serr)
	}
	return events, false, nil
}

// RepairWAL truncates a torn tail off the log at path, returning the
// number of bytes removed. Encoded events never contain a raw newline, so
// a torn record is exactly the suffix after the last newline; cutting it
// lets a recovered server append fresh records without gluing them onto
// the partial line (which would read back as mid-file corruption). A
// missing file repairs to nothing.
func RepairWAL(path string) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("obs: repair wal: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("obs: repair wal: %w", err)
	}
	// Scan backwards for the last newline in chunks.
	buf := make([]byte, 64*1024)
	end := size
	for end > 0 {
		start := end - int64(len(buf))
		if start < 0 {
			start = 0
		}
		n := int(end - start)
		if _, err := f.ReadAt(buf[:n], start); err != nil {
			return 0, fmt.Errorf("obs: repair wal: %w", err)
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep := start + int64(i) + 1
				if keep == size {
					return 0, nil
				}
				if err := f.Truncate(keep); err != nil {
					return 0, fmt.Errorf("obs: repair wal: %w", err)
				}
				return size - keep, f.Sync()
			}
		}
		end = start
	}
	// No newline at all: the whole file is one torn record.
	if size == 0 {
		return 0, nil
	}
	if err := f.Truncate(0); err != nil {
		return 0, fmt.Errorf("obs: repair wal: %w", err)
	}
	return size, f.Sync()
}

// Close performs a final group commit and closes the underlying writer
// (when it is closable). Further records are dropped and syncs report
// ErrWALClosed; the first close's outcome is returned to every caller.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.err, ErrWALClosed) {
		return nil
	}
	err := w.syncLocked()
	if w.cl != nil {
		if cerr := w.cl.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("obs: wal close: %w", cerr)
		}
	}
	if w.err == nil || err == nil {
		w.err = ErrWALClosed
	}
	return err
}
