package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// fullSpan returns a span with every boundary stamped and strictly
// increasing timestamps.
func fullSpan() Span {
	return Span{
		Tenant: 7, Status: 201, Batch: true, Commit: 3, Group: 64,
		EnqueueNs: 100, DequeueNs: 250, PlaceStartNs: 300, PlaceEndNs: 340,
		CommitStartNs: 900, CommitEndNs: 2100, AckNs: 2200,
	}
}

func TestSpanStageTelescoping(t *testing.T) {
	s := fullSpan()
	s.Normalize()
	sum := s.QueueNs() + s.PlaceNs() + s.WalNs() + s.FsyncNs() + s.AckLatencyNs()
	if sum != s.TotalNs() {
		t.Fatalf("stage sum %d != total %d", sum, s.TotalNs())
	}
	if got, want := s.QueueNs(), int64(150); got != want {
		t.Errorf("QueueNs = %d, want %d", got, want)
	}
	if got, want := s.PlaceNs(), int64(90); got != want {
		t.Errorf("PlaceNs = %d, want %d", got, want)
	}
	if got, want := s.EngineNs(), int64(40); got != want {
		t.Errorf("EngineNs = %d, want %d", got, want)
	}
	if got, want := s.WalNs(), int64(560); got != want {
		t.Errorf("WalNs = %d, want %d", got, want)
	}
	if got, want := s.FsyncNs(), int64(1200); got != want {
		t.Errorf("FsyncNs = %d, want %d", got, want)
	}
	if got, want := s.AckLatencyNs(), int64(100); got != want {
		t.Errorf("AckLatencyNs = %d, want %d", got, want)
	}
	if got, want := s.CommitNs(), s.WalNs()+s.FsyncNs(); got != want {
		t.Errorf("CommitNs = %d, want %d", got, want)
	}
}

func TestSpanNormalizeFillsSkippedBoundaries(t *testing.T) {
	// A pre-rejected item never reaches the engine or a commit: only
	// enqueue, dequeue, and ack are stamped.
	s := Span{EnqueueNs: 10, DequeueNs: 30, AckNs: 45}
	s.Normalize()
	if s.PlaceStartNs != 30 || s.PlaceEndNs != 30 || s.CommitStartNs != 30 || s.CommitEndNs != 30 {
		t.Fatalf("normalize did not fill forward: %+v", s)
	}
	if s.PlaceNs() != 0 || s.WalNs() != 0 || s.FsyncNs() != 0 {
		t.Fatalf("skipped stages should be zero: %+v", s)
	}
	sum := s.QueueNs() + s.PlaceNs() + s.WalNs() + s.FsyncNs() + s.AckLatencyNs()
	if sum != s.TotalNs() {
		t.Fatalf("stage sum %d != total %d after normalize", sum, s.TotalNs())
	}
	// Idempotent.
	before := s
	s.Normalize()
	if s != before {
		t.Fatalf("Normalize not idempotent: %+v vs %+v", s, before)
	}
}

func TestSpanPoolRoundTrip(t *testing.T) {
	s := AcquireSpan()
	if *s != (Span{}) {
		t.Fatalf("acquired span not zeroed: %+v", *s)
	}
	s.Tenant = 42
	s.EnqueueNs = 9
	ReleaseSpan(s)
	s2 := AcquireSpan()
	if *s2 != (Span{}) {
		t.Fatalf("reacquired span carries stale state: %+v", *s2)
	}
	ReleaseSpan(s2)
}

func TestSpanLifecycleZeroAllocs(t *testing.T) {
	ring := NewSpanRing(8)
	// Warm the pool and the ring.
	for i := 0; i < 16; i++ {
		sp := AcquireSpan()
		ring.RecordSpan(*sp)
		ReleaseSpan(sp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := AcquireSpan()
		sp.Tenant = 1
		sp.EnqueueNs = 10
		sp.DequeueNs = 20
		sp.PlaceStartNs = 21
		sp.PlaceEndNs = 30
		sp.AckNs = 40
		sp.Normalize()
		ring.RecordSpan(*sp)
		ReleaseSpan(sp)
	})
	if allocs != 0 {
		t.Fatalf("span lifecycle allocates %v per op, want 0", allocs)
	}
}

func TestSpanRingWrapAround(t *testing.T) {
	r := NewSpanRing(3)
	for i := 1; i <= 5; i++ {
		r.RecordSpan(Span{Tenant: i})
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Last(-1)
	want := []Span{{Tenant: 3}, {Tenant: 4}, {Tenant: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Last(-1) = %+v, want %+v", got, want)
	}
	if got := r.Last(2); len(got) != 2 || got[0].Tenant != 4 || got[1].Tenant != 5 {
		t.Fatalf("Last(2) = %+v", got)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSpanJSONL(&buf)
	in := []Span{fullSpan(), {Tenant: 9, Status: 409, EnqueueNs: 5, DequeueNs: 8, AckNs: 12}}
	for _, s := range in {
		sink.RecordSpan(s)
	}
	if sink.Count() != 2 || sink.Err() != nil {
		t.Fatalf("Count=%d Err=%v", sink.Count(), sink.Err())
	}
	out, err := ReadSpanJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d spans, want 2", len(out))
	}
	// The reader normalizes; the first span was already fully stamped.
	if out[0] != in[0] {
		t.Fatalf("span 0 round trip: %+v vs %+v", out[0], in[0])
	}
	if out[1].PlaceEndNs != 8 || out[1].CommitEndNs != 8 {
		t.Fatalf("span 1 not normalized on read: %+v", out[1])
	}
	sum := out[1].QueueNs() + out[1].PlaceNs() + out[1].WalNs() + out[1].FsyncNs() + out[1].AckLatencyNs()
	if sum != out[1].TotalNs() {
		t.Fatalf("normalized span does not telescope: %+v", out[1])
	}
}

func TestSpanJSONLStickyError(t *testing.T) {
	sink := NewSpanJSONL(failWriter{})
	sink.RecordSpan(Span{Tenant: 1})
	if sink.Err() == nil {
		t.Fatal("expected sticky error")
	}
	sink.RecordSpan(Span{Tenant: 2})
	if sink.Count() != 0 {
		t.Fatalf("Count = %d after failed writes, want 0", sink.Count())
	}
}
