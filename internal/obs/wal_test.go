package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// walEvent builds a minimal admit-shaped event for WAL tests.
func walEvent(tenant int) Event {
	e := NewEvent(KindAdmit)
	e.Tenant = tenant
	e.Path = "regular"
	return e
}

func TestWALGroupCommit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 5; i++ {
		w.Record(walEvent(i))
	}
	if got := w.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := w.Synced(); got != 0 {
		t.Fatalf("Synced = %d before Sync, want 0", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Synced(); got != 5 {
		t.Fatalf("Synced = %d, want 5", got)
	}
	events, torn, err := ReadWAL(&buf)
	if err != nil || torn {
		t.Fatalf("ReadWAL: events=%d torn=%v err=%v", len(events), torn, err)
	}
	if len(events) != 5 {
		t.Fatalf("read %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Tenant != i || e.Kind != KindAdmit {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errors.New("disk full")
	}
	f.written += len(p)
	return len(p), nil
}

func TestWALStickyError(t *testing.T) {
	w := NewWAL(&failAfter{n: 64})
	// Overflow the 1 MiB staging buffer so the failing writer is reached.
	big := walEvent(1)
	big.Reason = strings.Repeat("x", walBufferSize)
	w.Record(big)
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on a full disk succeeded")
	}
	if w.Err() == nil {
		t.Fatal("Err is nil after failed sync")
	}
	// Sticky: later records are dropped and later syncs keep failing.
	before := w.Count()
	w.Record(walEvent(2))
	if w.Count() != before {
		t.Fatal("Record accepted an event after a sticky error")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync cleared a sticky error")
	}
}

// syncCounter counts Sync calls to prove group commit batches them.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error {
	s.syncs++
	return nil
}

func TestWALSyncsUnderlyingWriter(t *testing.T) {
	var sc syncCounter
	w := NewWAL(&sc)
	for i := 0; i < 100; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if sc.syncs != 1 {
		t.Fatalf("underlying Sync called %d times for one group commit", sc.syncs)
	}
	events, _, err := ReadWAL(&sc.Buffer)
	if err != nil || len(events) != 100 {
		t.Fatalf("read back %d events, err=%v", len(events), err)
	}
}

func TestWALConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Record(walEvent(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	events, torn, err := ReadWAL(&buf)
	if err != nil || torn {
		t.Fatalf("ReadWAL: torn=%v err=%v", torn, err)
	}
	if len(events) != 8*200 {
		t.Fatalf("read %d events, want %d", len(events), 8*200)
	}
}

func TestReadWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: truncate the log inside the last record.
	data := buf.Bytes()
	data = data[:len(data)-10]
	events, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("truncated tail not reported as torn")
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events from torn log, want 2", len(events))
	}
}

func TestReadWALCorruptionMidFile(t *testing.T) {
	log := `{"kind":"admit","tenant":1}
not json at all
{"kind":"admit","tenant":2}
`
	if _, _, err := ReadWAL(strings.NewReader(log)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestWALFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is sticky too: the file must not accept unlogged admissions.
	w.Record(walEvent(99))
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Sync after Close = %v, want ErrWALClosed", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, torn, err := ReadWAL(f)
	if err != nil || torn {
		t.Fatalf("ReadWAL: torn=%v err=%v", torn, err)
	}
	if len(events) != 10 {
		t.Fatalf("read %d events, want 10", len(events))
	}
	// Reopening appends rather than truncating.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Record(walEvent(10))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	events, _, err = ReadWAL(f2)
	if err != nil || len(events) != 11 {
		t.Fatalf("after append: %d events, err=%v", len(events), err)
	}
}

func TestRepairWAL(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	// A clean log repairs to itself.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := RepairWAL(path); err != nil || n != 0 {
		t.Fatalf("clean log: trimmed %d, err %v", n, err)
	}

	// A torn tail is cut at the last newline, leaving a parseable log the
	// server can append to.
	if err := os.WriteFile(path, whole[:len(whole)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := RepairWAL(path); err != nil || n == 0 {
		t.Fatalf("torn log: trimmed %d, err %v", n, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil || torn || len(events) != 2 {
		t.Fatalf("after repair: %d events, torn=%v, err=%v", len(events), torn, err)
	}

	// A file that is one giant torn record repairs to empty; a missing
	// file repairs to nothing.
	if err := os.WriteFile(path, []byte(`{"kind":"adm`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := RepairWAL(path); err != nil || n != 12 {
		t.Fatalf("headless log: trimmed %d, err %v", n, err)
	}
	if n, err := RepairWAL(filepath.Join(t.TempDir(), "absent")); err != nil || n != 0 {
		t.Fatalf("missing log: trimmed %d, err %v", n, err)
	}
}
