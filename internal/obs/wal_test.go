package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// walEvent builds a minimal admit-shaped event for WAL tests.
func walEvent(tenant int) Event {
	e := NewEvent(KindAdmit)
	e.Tenant = tenant
	e.Path = "regular"
	return e
}

func TestWALGroupCommit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 5; i++ {
		w.Record(walEvent(i))
	}
	if got := w.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := w.Synced(); got != 0 {
		t.Fatalf("Synced = %d before Sync, want 0", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Synced(); got != 5 {
		t.Fatalf("Synced = %d, want 5", got)
	}
	events, torn, err := ReadWAL(&buf)
	if err != nil || torn {
		t.Fatalf("ReadWAL: events=%d torn=%v err=%v", len(events), torn, err)
	}
	if len(events) != 5 {
		t.Fatalf("read %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Tenant != i || e.Kind != KindAdmit {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

// failAfter fails every write once n bytes have been accepted.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errors.New("disk full")
	}
	f.written += len(p)
	return len(p), nil
}

func TestWALStickyError(t *testing.T) {
	w := NewWAL(&failAfter{n: 64})
	// Overflow the 1 MiB staging buffer so the failing writer is reached.
	big := walEvent(1)
	big.Reason = strings.Repeat("x", walBufferSize)
	w.Record(big)
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on a full disk succeeded")
	}
	if w.Err() == nil {
		t.Fatal("Err is nil after failed sync")
	}
	// Sticky: later records are dropped and later syncs keep failing.
	before := w.Count()
	w.Record(walEvent(2))
	if w.Count() != before {
		t.Fatal("Record accepted an event after a sticky error")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync cleared a sticky error")
	}
}

// syncCounter counts Sync calls to prove group commit batches them.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error {
	s.syncs++
	return nil
}

func TestWALSyncsUnderlyingWriter(t *testing.T) {
	var sc syncCounter
	w := NewWAL(&sc)
	for i := 0; i < 100; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if sc.syncs != 1 {
		t.Fatalf("underlying Sync called %d times for one group commit", sc.syncs)
	}
	events, _, err := ReadWAL(&sc.Buffer)
	if err != nil || len(events) != 100 {
		t.Fatalf("read back %d events, err=%v", len(events), err)
	}
}

func TestWALConcurrentRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Record(walEvent(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	events, torn, err := ReadWAL(&buf)
	if err != nil || torn {
		t.Fatalf("ReadWAL: torn=%v err=%v", torn, err)
	}
	if len(events) != 8*200 {
		t.Fatalf("read %d events, want %d", len(events), 8*200)
	}
}

func TestReadWALTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: truncate the log inside the last record.
	data := buf.Bytes()
	data = data[:len(data)-10]
	events, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("truncated tail not reported as torn")
	}
	if len(events) != 2 {
		t.Fatalf("recovered %d events from torn log, want 2", len(events))
	}
}

func TestReadWALCorruptionMidFile(t *testing.T) {
	log := `{"kind":"admit","tenant":1}
not json at all
{"kind":"admit","tenant":2}
`
	if _, _, err := ReadWAL(strings.NewReader(log)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestWALFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is sticky too: the file must not accept unlogged admissions.
	w.Record(walEvent(99))
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Sync after Close = %v, want ErrWALClosed", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, torn, err := ReadWAL(f)
	if err != nil || torn {
		t.Fatalf("ReadWAL: torn=%v err=%v", torn, err)
	}
	if len(events) != 10 {
		t.Fatalf("read %d events, want 10", len(events))
	}
	// Reopening appends rather than truncating.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.Record(walEvent(10))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	events, _, err = ReadWAL(f2)
	if err != nil || len(events) != 11 {
		t.Fatalf("after append: %d events, err=%v", len(events), err)
	}
}

// TestReadWALOffsets: ends[i] is the exact size the file would have if
// truncated just past record i, so slicing the raw log at any offset
// yields a clean prefix of exactly i+1 events.
func TestReadWALOffsets(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	events, ends, torn, err := ReadWALOffsets(bytes.NewReader(whole))
	if err != nil || torn {
		t.Fatalf("ReadWALOffsets: torn=%v err=%v", torn, err)
	}
	if len(events) != 3 || len(ends) != 3 {
		t.Fatalf("got %d events, %d offsets, want 3/3", len(events), len(ends))
	}
	if ends[2] != int64(len(whole)) {
		t.Fatalf("final offset %d, file size %d", ends[2], len(whole))
	}
	for i, end := range ends {
		got, _, torn, err := ReadWALOffsets(bytes.NewReader(whole[:end]))
		if err != nil || torn || len(got) != i+1 {
			t.Fatalf("prefix to offset %d: %d events, torn=%v, err=%v (want %d)", end, len(got), torn, err, i+1)
		}
	}
}

// TestReadWALUnterminatedTail: the newline is part of the record, so a
// final line lacking one is torn even when the JSON itself is complete —
// its group commit never finished, so recovery must not trust it.
func TestReadWALUnterminatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	events, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(events) != 2 {
		t.Fatalf("unterminated tail: %d events, torn=%v, want 2 events torn", len(events), torn)
	}
}

// TestTruncateWAL: the log is cut at the committed record boundary, so
// complete-but-uncommitted lines are removed along with any torn tail.
func TestTruncateWAL(t *testing.T) {
	var buf bytes.Buffer
	w := NewWAL(&buf)
	for i := 0; i < 3; i++ {
		w.Record(walEvent(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	_, ends, _, err := ReadWALOffsets(bytes.NewReader(whole))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal.jsonl")

	// Truncating to the full size is a no-op.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := TruncateWAL(path, int64(len(whole))); err != nil || n != 0 {
		t.Fatalf("clean log: trimmed %d, err %v", n, err)
	}

	// Cutting at the second record's boundary drops the third complete
	// line, not just a partial tail.
	if n, err := TruncateWAL(path, ends[1]); err != nil || n != int64(len(whole))-ends[1] {
		t.Fatalf("trimmed %d, err %v, want %d", n, err, int64(len(whole))-ends[1])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, torn, err := ReadWAL(bytes.NewReader(data))
	if err != nil || torn || len(events) != 2 {
		t.Fatalf("after truncate: %d events, torn=%v, err=%v", len(events), torn, err)
	}

	// A file shorter than the claimed committed prefix is an error; a
	// missing file is fine only when nothing was committed.
	if _, err := TruncateWAL(path, int64(len(whole))+100); err == nil {
		t.Fatal("short file accepted")
	}
	absent := filepath.Join(t.TempDir(), "absent")
	if n, err := TruncateWAL(absent, 0); err != nil || n != 0 {
		t.Fatalf("missing log: trimmed %d, err %v", n, err)
	}
	if _, err := TruncateWAL(absent, 10); err == nil {
		t.Fatal("missing log with committed bytes accepted")
	}
}

// failingCloser rejects every write and counts closes, to prove Close
// stays idempotent when a sticky error predates it.
type failingCloser struct {
	closes int
}

func (f *failingCloser) Write([]byte) (int, error) { return 0, errors.New("disk full") }
func (f *failingCloser) Close() error              { f.closes++; return nil }

func TestWALCloseIdempotentAfterStickyError(t *testing.T) {
	fc := &failingCloser{}
	w := NewWAL(fc)
	w.Record(walEvent(1))
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on a failing writer succeeded")
	}
	// First Close reports the sticky outcome and closes the writer once.
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the sticky error")
	}
	if fc.closes != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", fc.closes)
	}
	// Second Close is a no-op: no re-flush, no double-close.
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if fc.closes != 1 {
		t.Fatalf("underlying writer closed %d times after retry, want 1", fc.closes)
	}
}
