package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Health log records: the offline twin of the telemetry subsystem. The
// sampler writes one "config" record up front (the rule-engine
// configuration, verbatim), one "sample" record per tick (every scraped
// series value), and one "transition" record per health-state change.
// Because the rule engine consumes nothing but the sample stream, a
// recorded log replays into the exact verdict timeline the live run
// produced (`cubefit-inspect health`).

// Health record kinds.
const (
	HealthKindConfig     = "config"
	HealthKindSample     = "sample"
	HealthKindTransition = "transition"
)

// HealthRecord is one line of the health JSONL log.
type HealthRecord struct {
	Kind string `json:"kind"`
	// TNs is the record's timestamp on the sampler's monotonic nanosecond
	// scale (0 for the config record).
	TNs int64 `json:"tNs"`
	// Values holds the tick's scraped series (sample records): series key
	// → value, keys per metrics.SeriesKey plus the sampler's derived
	// `:count`/`:p50`/`:p99`/`:good` histogram series.
	Values map[string]float64 `json:"values,omitempty"`
	// From/To/Rules/Evidence describe a state change (transition records):
	// the previous and new health state, the rules firing at the worst
	// severity, and one human-readable evidence line per firing rule.
	From     string   `json:"from,omitempty"`
	To       string   `json:"to,omitempty"`
	Rules    []string `json:"rules,omitempty"`
	Evidence []string `json:"evidence,omitempty"`
	// Config is the telemetry configuration (config records), kept
	// verbatim so replay rebuilds an identical rule engine.
	Config json.RawMessage `json:"config,omitempty"`
}

// HealthRecorder receives health log records.
type HealthRecorder interface {
	RecordHealth(HealthRecord)
}

// HealthJSONL is a HealthRecorder writing one JSON object per record
// (JSON Lines). Like the span and event sinks, the first write error is
// sticky: subsequent records are dropped and the error is reported by
// Err, so a full disk never corrupts the log mid-line.
type HealthJSONL struct {
	mu sync.Mutex
	//cubefit:guarded-by mu
	enc *json.Encoder
	//cubefit:guarded-by mu
	n uint64
	//cubefit:guarded-by mu
	err error
}

// NewHealthJSONL returns a sink encoding health records onto w.
func NewHealthJSONL(w io.Writer) *HealthJSONL {
	return &HealthJSONL{enc: json.NewEncoder(w)}
}

// RecordHealth implements HealthRecorder.
func (s *HealthJSONL) RecordHealth(rec HealthRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(rec); err != nil {
		s.err = fmt.Errorf("obs: health jsonl write: %w", err)
		return
	}
	s.n++
}

// Count returns the number of records successfully written.
func (s *HealthJSONL) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *HealthJSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadHealthJSONL decodes a health log back into records.
func ReadHealthJSONL(r io.Reader) ([]HealthRecord, error) {
	dec := json.NewDecoder(r)
	var recs []HealthRecord
	for {
		var rec HealthRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return nil, fmt.Errorf("obs: health jsonl read (record %d): %w", len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
}
