package obs

import (
	"reflect"
	"testing"

	"cubefit/internal/trace"
)

// ev builds an event with the fields decision reconstruction reads.
func ev(kind Kind, tenant int, mut func(*Event)) Event {
	e := NewEvent(kind)
	e.Tenant = tenant
	if mut != nil {
		mut(&e)
	}
	return e
}

func TestDecisionsFirstStage(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 1, func(e *Event) { e.Engine = "cubefit"; e.Size = 0.4 }),
		ev(KindStage1Probe, 1, func(e *Event) { e.Replica = 0; e.Probes = 3; e.Server = 5 }),
		ev(KindStage1Place, 1, func(e *Event) { e.Replica = 0; e.Server = 5 }),
		ev(KindStage1Probe, 1, func(e *Event) { e.Replica = 1; e.Probes = 2; e.Server = 8 }),
		ev(KindStage1Place, 1, func(e *Event) { e.Replica = 1; e.Server = 8 }),
		ev(KindAdmit, 1, func(e *Event) { e.Path = "first_stage" }),
	}
	ds := Decisions(events)
	if len(ds) != 1 {
		t.Fatalf("got %d decisions", len(ds))
	}
	d := ds[0]
	if d.Path != "first_stage" || d.Engine != "cubefit" || d.Probes != 5 {
		t.Errorf("decision = %+v", d)
	}
	if len(d.Replicas) != 2 || !d.Replicas[0].FirstStage || d.Replicas[0].Server != 5 ||
		d.Replicas[1].Server != 8 {
		t.Errorf("replicas = %+v", d.Replicas)
	}
	if d.Replicas[0].Slot != Unset {
		t.Errorf("first-stage slot = %d, want Unset", d.Replicas[0].Slot)
	}
}

func TestDecisionsCubePath(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 2, nil),
		ev(KindCubePlace, 2, func(e *Event) {
			e.Replica = 0
			e.Server = 10
			e.Slot = 3
			e.Class = 4
			e.Counter = 17
			e.Digits = []int{4, 1}
		}),
		ev(KindCubePlace, 2, func(e *Event) {
			e.Replica = 1
			e.Server = 11
			e.Slot = 0
			e.Class = 4
			e.Counter = 17
			e.Digits = []int{4, 1}
		}),
		ev(KindAdmit, 2, func(e *Event) { e.Path = "regular" }),
	}
	d := Decisions(events)[0]
	if d.Class != 4 || d.Counter != 17 || !reflect.DeepEqual(d.Digits, []int{4, 1}) {
		t.Errorf("cube address = class=%d counter=%d digits=%v", d.Class, d.Counter, d.Digits)
	}
	if len(d.Replicas) != 2 || d.Replicas[0].Slot != 3 || d.Replicas[1].Slot != 0 {
		t.Errorf("replicas = %+v", d.Replicas)
	}
}

func TestDecisionsRollbackClearsReplicas(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 3, nil),
		ev(KindStage1Place, 3, func(e *Event) { e.Replica = 0; e.Server = 1 }),
		ev(KindRollback, 3, func(e *Event) { e.Reason = "first-stage fallback" }),
		ev(KindCubePlace, 3, func(e *Event) { e.Replica = 0; e.Server = 2; e.Slot = 1 }),
		ev(KindCubePlace, 3, func(e *Event) { e.Replica = 1; e.Server = 4; e.Slot = 1 }),
		ev(KindAdmit, 3, func(e *Event) { e.Path = "regular" }),
	}
	d := Decisions(events)[0]
	if len(d.Replicas) != 2 || d.Replicas[0].Server != 2 {
		t.Errorf("rollback should clear the unwound replica: %+v", d.Replicas)
	}
	if len(d.Rollbacks) != 1 || d.Rollbacks[0] != "first-stage fallback" {
		t.Errorf("rollbacks = %v", d.Rollbacks)
	}
}

func TestDecisionsReject(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 4, nil),
		ev(KindPlace, 4, func(e *Event) { e.Replica = 0; e.Server = 0 }),
		ev(KindReject, 4, func(e *Event) { e.Path = "rejected"; e.Reason = "duplicate tenant" }),
	}
	d := Decisions(events)[0]
	if d.Path != "rejected" || d.Reason != "duplicate tenant" {
		t.Errorf("decision = %+v", d)
	}
	if len(d.Replicas) != 0 {
		t.Errorf("rejected decision keeps replicas: %+v", d.Replicas)
	}
}

func TestDecisionsLatestAttemptWins(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 5, nil),
		ev(KindAdmit, 5, func(e *Event) { e.Path = "regular" }),
		ev(KindDepart, 5, nil),
		ev(KindAttempt, 5, nil),
		ev(KindAdmit, 5, func(e *Event) { e.Path = "tiny" }),
	}
	ds := Decisions(events)
	if len(ds) != 1 || ds[0].Path != "tiny" {
		t.Errorf("decisions = %+v", ds)
	}
}

func TestDecisionsSkipsOrphanedEvents(t *testing.T) {
	// Events whose attempt was evicted from a ring must not fabricate a
	// decision; a tenant with path unknown appears only with its attempt.
	events := []Event{
		ev(KindCubePlace, 6, nil),
		ev(KindAdmit, 6, func(e *Event) { e.Path = "regular" }),
		ev(KindAttempt, 7, nil),
	}
	ds := Decisions(events)
	if len(ds) != 1 || ds[0].Tenant != 7 || ds[0].Path != PathUnknown {
		t.Errorf("decisions = %+v", ds)
	}
}

func TestDecisionForAndCountPaths(t *testing.T) {
	events := []Event{
		ev(KindAttempt, 1, nil),
		ev(KindAdmit, 1, func(e *Event) { e.Path = "regular" }),
		ev(KindAttempt, 2, nil),
		ev(KindAdmit, 2, func(e *Event) { e.Path = "regular" }),
		ev(KindAttempt, 3, nil),
		ev(KindReject, 3, func(e *Event) { e.Path = "rejected" }),
	}
	if d, ok := DecisionFor(events, 2); !ok || d.Tenant != 2 {
		t.Errorf("DecisionFor(2) = %+v, %v", d, ok)
	}
	if _, ok := DecisionFor(events, 99); ok {
		t.Error("DecisionFor(99) should miss")
	}
	counts := CountPaths(Decisions(events))
	if counts["regular"] != 2 || counts["rejected"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAttribute(t *testing.T) {
	snap := trace.Snapshot{
		Gamma: 3,
		Servers: []trace.ServerSnapshot{
			{ID: 0, Replicas: []trace.ReplicaSnapshot{{Tenant: 1, Index: 2}}},
			{ID: 4, Replicas: []trace.ReplicaSnapshot{{Tenant: 1, Index: 0}, {Tenant: 2, Index: 0}}},
			{ID: 7, Replicas: []trace.ReplicaSnapshot{{Tenant: 1, Index: 1}}},
		},
	}
	ats, err := Attribute(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Attribution{
		{Replica: 0, Server: 4, FailoverTo: []int{0, 7}},
		{Replica: 1, Server: 7, FailoverTo: []int{0, 4}},
		{Replica: 2, Server: 0, FailoverTo: []int{4, 7}},
	}
	if !reflect.DeepEqual(ats, want) {
		t.Errorf("Attribute = %+v, want %+v", ats, want)
	}
	if _, err := Attribute(snap, 99); err == nil {
		t.Error("Attribute of an absent tenant should error")
	}
}
