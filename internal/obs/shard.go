package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CommitLog is the durability seam of the admission pipeline: a Recorder
// whose group commit (Sync) makes every previously recorded event durable
// before the admissions it covers are acked, with sticky fail-closed
// error reporting. *WAL implements it for the single-file log and
// *ShardedWAL for the segmented one; the api.Controller depends only on
// this interface.
type CommitLog interface {
	Recorder
	// Sync makes every recorded event durable (group commit) and returns
	// the sticky error, if any.
	Sync() error
	// Err returns the sticky error, if any; callers on the admission path
	// must fail closed on a non-nil value.
	Err() error
	// Failed reports sticky commit failure without taking the commit
	// lock, so health sampling survives a hung fsync.
	Failed() bool
	// Close performs a final commit and releases the underlying files.
	Close() error
}

var (
	_ CommitLog = (*WAL)(nil)
	_ CommitLog = (*ShardedWAL)(nil)
)

// SegmentPath returns the file path of segment i of the sharded log
// rooted at path (e.g. cubefit.wal.seg0). Keeping the base path as a pure
// prefix means -wal plus -wal-segments fully determine the file set.
func SegmentPath(path string, i int) string {
	return fmt.Sprintf("%s.seg%d", path, i)
}

// ShardedWAL is a write-ahead log striped over N append-only segment
// files so independent group commits fsync in parallel instead of
// queueing on one file. Events are staged into the current segment;
// Seal closes the batch staged there by appending a wal_commit record
// carrying the log-wide monotone commit sequence, advances the staging
// cursor to the next segment round-robin, and returns a PendingCommit
// whose Commit flushes and fsyncs just that segment. Batches sealed onto
// different segments therefore commit concurrently — each segment's own
// WAL lock serializes only its file — while the commit-sequence records
// give recovery a total order to merge the segments back into: replay
// concatenates batches in CommitSeq order and stops at the first gap,
// so an ack issued only once every sequence up to a batch's own is
// durable (the pipeline's in-order acker enforces this) is always
// covered by the recovered state.
//
// Error handling is sticky and fail-closed across the whole log: a
// commit failure on any segment fails every subsequent Record, Seal and
// Sync, because later batches can recover only if every earlier
// sequence is readable. ShardedWAL is safe for concurrent use.
type ShardedWAL struct {
	mu sync.Mutex
	// segs are the per-segment single-file WALs; the slice is fixed at
	// construction, each element has its own lock and sticky state.
	segs []*WAL
	// cur indexes the segment staging the batch that the next Seal will
	// close. Sequence s seals onto segment (s−1) mod len(segs).
	//cubefit:guarded-by mu
	cur int
	// next is the commit sequence the next Seal will assign; sequences
	// start at 1 (0 marks "no commit record" in serialized events).
	//cubefit:guarded-by mu
	next uint64
	// staged counts events recorded into the current segment since the
	// last seal; Sync skips the seal (and the sequence) when it is zero.
	//cubefit:guarded-by mu
	staged int
	// err is the log-wide sticky error (first commit failure of any
	// segment, or ErrWALClosed after a clean Close).
	//cubefit:guarded-by mu
	err error
	// failed mirrors "err holds a commit error" without the mutex, like
	// WAL.failed; a clean Close does not set it.
	failed atomic.Bool
	//cubefit:guarded-by mu
	closed bool
}

// OpenShardedWAL opens (creating as needed) the n segment files of the
// sharded log rooted at path, resuming commit sequences at nextSeq (1 for
// a fresh log; recovery reports the frontier for a reopened one). The
// caller must have truncated each segment to its committed prefix first,
// exactly as with the single-file log.
func OpenShardedWAL(path string, n int, nextSeq uint64) (*ShardedWAL, error) {
	if n < 2 {
		return nil, fmt.Errorf("obs: sharded wal needs at least 2 segments, got %d", n)
	}
	if nextSeq == 0 {
		nextSeq = 1
	}
	segs := make([]*WAL, n)
	for i := range segs {
		w, err := OpenWAL(SegmentPath(path, i))
		if err != nil {
			for _, open := range segs[:i] {
				//cubefit:vet-allow failclosed -- open-failure cleanup: the log never recorded anything, so no acknowledged bytes can be lost
				_ = open.Close()
			}
			return nil, err
		}
		segs[i] = w
	}
	return NewShardedWAL(segs, nextSeq), nil
}

// NewShardedWAL builds a sharded log over caller-supplied segment WALs
// (tests stripe over in-memory writers). Sequence nextSeq will be staged
// onto segment (nextSeq−1) mod len(segs), matching where recovery left
// off.
func NewShardedWAL(segs []*WAL, nextSeq uint64) *ShardedWAL {
	if nextSeq == 0 {
		nextSeq = 1
	}
	return &ShardedWAL{
		segs: segs,
		cur:  int((nextSeq - 1) % uint64(len(segs))),
		next: nextSeq,
	}
}

// Segments returns the number of segment files.
func (s *ShardedWAL) Segments() int { return len(s.segs) }

// NextSeq returns the commit sequence the next Seal will assign.
func (s *ShardedWAL) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Record implements Recorder: the event is staged into the current
// segment. It becomes durable once the batch it lands in is sealed and
// committed (or a full Sync runs).
func (s *ShardedWAL) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.segs[s.cur].Record(e)
	s.staged++
}

// PendingCommit is one sealed batch awaiting its group commit: Commit
// flushes and fsyncs the owning segment only, so commits of batches
// sealed onto other segments proceed in parallel.
type PendingCommit struct {
	log *ShardedWAL
	seg *WAL
	seq uint64
}

// Seq returns the batch's log-wide commit sequence.
func (pc *PendingCommit) Seq() uint64 { return pc.seq }

// Commit makes the sealed batch durable: it group-commits the owning
// segment (covering this batch's events, its commit record, and any
// earlier still-buffered batch on the same segment). A failure — or a
// prior sticky failure anywhere in the log — is returned and latches the
// whole log failed, because a batch whose predecessors are unreadable
// must not be acked.
func (pc *PendingCommit) Commit() error {
	if err := pc.log.Err(); err != nil {
		return err
	}
	if err := pc.seg.Sync(); err != nil {
		pc.log.fail(err)
		return err
	}
	return nil
}

// Seal closes the batch staged on the current segment: it appends the
// wal_commit record carrying the next commit sequence, advances the
// staging cursor to the next segment, and returns the pending commit.
// Callers must eventually Commit every seal (in any order — the
// sequence records let recovery reassemble), must ack admissions only in
// sequence order, and must serialize Seal with the recording of any
// multi-event operation (the api layer seals under its engine write
// lock), or a batch boundary could split an admission's events in a way
// the next boot cannot truncate cleanly. Seal fails only when the log is
// sticky-failed or closed.
func (s *ShardedWAL) Seal() (*PendingCommit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

func (s *ShardedWAL) sealLocked() (*PendingCommit, error) {
	if s.err != nil {
		return nil, s.err
	}
	seg := s.segs[s.cur]
	rec := NewEvent(KindWALCommit)
	rec.CommitSeq = s.next
	seg.Record(rec)
	if err := seg.Err(); err != nil {
		// The commit record never reached the staging buffer; the batch
		// cannot be delimited, so the log is failed, not just the segment.
		s.failLocked(err)
		return nil, err
	}
	pc := &PendingCommit{log: s, seg: seg, seq: s.next}
	s.next++
	s.cur = (s.cur + 1) % len(s.segs)
	s.staged = 0
	return pc, nil
}

// Sync implements the CommitLog group commit: it seals the batch staged
// on the current segment (when it holds any events) and then commits
// every segment, so every event recorded before the call — including
// batches still pending their own Commit — is durable when it returns.
// Like Seal, it must be serialized with multi-event recording; callers
// that cannot guarantee that should Seal under their own lock and then
// SyncAll.
func (s *ShardedWAL) Sync() error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.staged > 0 {
		if _, err := s.sealLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	return s.SyncAll()
}

// SyncAll flushes and fsyncs every segment without sealing anything:
// afterwards every previously sealed batch is durable, whatever the
// state of its own pending Commit. The departure path uses it (after
// sealing under the api write lock) so a removal's ack covers the whole
// sealed prefix. The fsyncs run outside the log lock, so records and
// seals keep flowing meanwhile.
func (s *ShardedWAL) SyncAll() error {
	for _, seg := range s.segs {
		if err := seg.Sync(); err != nil {
			s.fail(err)
			return err
		}
	}
	return nil
}

// fail latches the log-wide sticky error.
func (s *ShardedWAL) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(err)
}

func (s *ShardedWAL) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	s.failed.Store(true)
}

// Err returns the log-wide sticky error, if any, surfacing per-segment
// write failures (bufio auto-flush errors latch only the segment) as
// whole-log failures.
func (s *ShardedWAL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	for _, seg := range s.segs {
		// Reading the segment's sticky state takes its lock, never the
		// file, so this stays cheap on the admission path.
		if err := seg.Err(); err != nil {
			s.failLocked(err)
			return err
		}
	}
	return nil
}

// Failed reports sticky commit failure on the log or any segment without
// taking the log lock (see WAL.Failed).
func (s *ShardedWAL) Failed() bool {
	if s.failed.Load() {
		return true
	}
	for _, seg := range s.segs {
		if seg.Failed() {
			return true
		}
	}
	return false
}

// Count returns the total number of events accepted across segments
// (commit records included).
func (s *ShardedWAL) Count() uint64 {
	var n uint64
	for _, seg := range s.segs {
		n += seg.Count()
	}
	return n
}

// Close seals nothing new: it final-commits and closes every segment,
// reporting the first error. Like WAL.Close it is idempotent and leaves
// the log sticky-closed so later records are dropped.
func (s *ShardedWAL) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.err == nil {
		s.err = ErrWALClosed
	}
	s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.Close(); first == nil && err != nil {
			first = err
		}
	}
	return first
}
