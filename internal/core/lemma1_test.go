package core

import (
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
)

// sharedTenants counts tenants with replicas on both servers.
func sharedTenants(p *packing.Placement, a, b *packing.Server) int {
	n := 0
	for _, r := range a.Replicas() {
		if b.Hosts(r.Tenant) {
			n++
		}
	}
	return n
}

// TestLemma1SecondStage verifies Lemma 1 on pure second-stage packings:
// no two bins share replicas of more than one tenant when all tenants are
// in the same regular class.
func TestLemma1SecondStage(t *testing.T) {
	for _, gamma := range []int{2, 3} {
		for tau := 2; tau <= 4; tau++ {
			cfg := Config{Gamma: gamma, K: 10, DisableFirstStage: true}
			cf := mustCubeFit(t, cfg)
			// Loads such that replicas land exactly in class tau:
			// replica size in (1/(tau+gamma), 1/(tau+gamma-1)].
			size := 1 / float64(tau+gamma-1) // top of the class interval
			load := size * float64(gamma)
			if load > 1 {
				continue
			}
			n := 3 * tau * tau * tau // several full counter sweeps
			for i := 0; i < n; i++ {
				if err := cf.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
					t.Fatalf("γ=%d τ=%d: %v", gamma, tau, err)
				}
			}
			p := cf.Placement()
			servers := p.Servers()
			for i := 0; i < len(servers); i++ {
				for j := i + 1; j < len(servers); j++ {
					if got := sharedTenants(p, servers[i], servers[j]); got > 1 {
						t.Fatalf("γ=%d τ=%d: servers %d and %d share %d tenants",
							gamma, tau, i, j, got)
					}
				}
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("γ=%d τ=%d: %v", gamma, tau, err)
			}
		}
	}
}

// TestLemma1MixedClasses verifies the generalized pairwise-sharing bound on
// second-stage packings with mixed classes: any two servers share at most
// one tenant per class... in fact at most one tenant overall for regular
// classes, and at most one slot-group's load for tiny classes. We check
// the load form, which is what Theorem 1 needs: the shared load between any
// two servers is at most the larger of the two bins' slot sizes.
func TestLemma1MixedClassesSharedLoadBound(t *testing.T) {
	r := rng.New(4242)
	for _, gamma := range []int{2, 3} {
		cfg := Config{Gamma: gamma, K: 8, DisableFirstStage: true}
		cf := mustCubeFit(t, cfg)
		for i := 0; i < 600; i++ {
			load := 0.002 + r.Float64()*0.998
			if err := cf.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
				t.Fatalf("γ=%d: %v", gamma, err)
			}
		}
		p := cf.Placement()
		for _, s := range p.Servers() {
			slotSize := 1.0 // class-1 slot size upper bound
			if b := cf.bins[s.ID()]; b != nil {
				slotSize = b.slotSize
			}
			s.EachShared(func(j int, v float64) {
				other := cf.bins[j].slotSize
				bound := slotSize
				if other > bound {
					bound = other
				}
				if !packing.FitsWithin(v, bound) {
					t.Fatalf("γ=%d: servers %d,%d share load %v > slot bound %v",
						gamma, s.ID(), j, v, bound)
				}
			})
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("γ=%d: %v", gamma, err)
		}
	}
}
