package core

import (
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

// figure1Sequence is the tenant sequence of the paper's Figure 1:
// σ = ⟨a=0.6, b=0.3, c=0.6, d=0.78, e=0.12, f=0.36⟩.
func figure1Sequence() []packing.Tenant {
	loads := []float64{0.6, 0.3, 0.6, 0.78, 0.12, 0.36}
	out := make([]packing.Tenant, len(loads))
	for i, l := range loads {
		out[i] = packing.Tenant{ID: packing.TenantID(i), Load: l}
	}
	return out
}

func mustCubeFit(t *testing.T, cfg Config) *CubeFit {
	t.Helper()
	cf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func placeAll(t *testing.T, cf *CubeFit, tenants []packing.Tenant) {
	t.Helper()
	for _, tn := range tenants {
		if err := cf.Place(tn); err != nil {
			t.Fatalf("Place(%+v): %v", tn, err)
		}
	}
}

func TestFigure1Gamma2(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 5})
	placeAll(t, cf, figure1Sequence())
	p := cf.Placement()
	if err := p.Validate(); err != nil {
		t.Fatalf("Figure 1 (γ=2) placement invalid: %v", err)
	}
	// Every single-server failure must keep all survivors within capacity.
	for f := 0; f < p.NumServers(); f++ {
		if got := p.MaxPostFailureLoad([]int{f}); !packing.WithinCapacity(got) {
			t.Fatalf("failure of server %d overloads a survivor to %v", f, got)
		}
	}
}

func TestFigure1Gamma3(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 3, K: 5})
	placeAll(t, cf, figure1Sequence())
	p := cf.Placement()
	if err := p.Validate(); err != nil {
		t.Fatalf("Figure 1 (γ=3) placement invalid: %v", err)
	}
	// Any two simultaneous failures must keep survivors within capacity.
	n := p.NumServers()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if got := p.MaxPostFailureLoad([]int{a, b}); !packing.WithinCapacity(got) {
				t.Fatalf("failures {%d,%d} overload a survivor to %v", a, b, got)
			}
		}
	}
}

func TestReplicasOnDistinctServers(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 3, K: 10})
	placeAll(t, cf, []packing.Tenant{{ID: 1, Load: 0.5}})
	hosts := cf.Placement().TenantHosts(1)
	seen := make(map[int]bool)
	for _, h := range hosts {
		if h < 0 {
			t.Fatalf("replica unplaced: hosts=%v", hosts)
		}
		if seen[h] {
			t.Fatalf("two replicas on server %d", h)
		}
		seen[h] = true
	}
}

func TestInvalidTenantRejected(t *testing.T) {
	cf := mustCubeFit(t, DefaultConfig())
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0}); err == nil {
		t.Fatal("zero-load tenant accepted")
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 1.5}); err == nil {
		t.Fatal("overload tenant accepted")
	}
	// Duplicate ID with different load.
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.7}); err == nil {
		t.Fatal("conflicting duplicate tenant accepted")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{Gamma: 0, K: 10}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := New(Config{Gamma: 3, K: 5, TinyPolicy: TinyMultiReplica}); err == nil {
		t.Fatal("invalid multi-replica config accepted")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	src1, err := workload.NewLoadSource(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src1, 500)

	counts := make([]int, 2)
	for i := range counts {
		cf := mustCubeFit(t, DefaultConfig())
		placeAll(t, cf, tenants)
		counts[i] = cf.Placement().NumUsedServers()
	}
	if counts[0] != counts[1] {
		t.Fatalf("non-deterministic server counts: %v", counts)
	}
}

func TestFirstStageConsolidatesSmallTenants(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	// Large tenants first: mature class-1 bins with slack appear.
	id := packing.TenantID(0)
	for i := 0; i < 8; i++ {
		placeAll(t, cf, []packing.Tenant{{ID: id, Load: 0.7}}) // replicas 0.35, class 1
		id++
	}
	if cf.NumActiveMatureBins() == 0 {
		t.Fatal("no mature bins after class-1 tenants")
	}
	before := cf.Placement().NumUsedServers()
	// Small tenants should slot into the mature bins' slack (each class-1
	// bin has level 0.35, reserve 0.35, slack 0.30).
	for i := 0; i < 8; i++ {
		placeAll(t, cf, []packing.Tenant{{ID: id, Load: 0.2}}) // replicas 0.1
		id++
	}
	st := cf.Stats()
	if st.FirstStageTenants == 0 {
		t.Fatalf("no tenants used the first stage: %+v", st)
	}
	after := cf.Placement().NumUsedServers()
	if after > before+2 {
		t.Fatalf("small tenants opened %d new servers; expected consolidation into mature bins", after-before)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisableFirstStage(t *testing.T) {
	cfg := Config{Gamma: 2, K: 10, DisableFirstStage: true}
	cf := mustCubeFit(t, cfg)
	src, err := workload.NewLoadSource(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	placeAll(t, cf, workload.Take(src, 300))
	if st := cf.Stats(); st.FirstStageTenants != 0 {
		t.Fatalf("first stage used despite being disabled: %+v", st)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstStageReducesServerCount(t *testing.T) {
	src, err := workload.NewLoadSource(1, 99)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 2000)

	with := mustCubeFit(t, Config{Gamma: 2, K: 10})
	placeAll(t, with, tenants)
	without := mustCubeFit(t, Config{Gamma: 2, K: 10, DisableFirstStage: true})
	placeAll(t, without, tenants)

	if w, wo := with.Placement().NumUsedServers(), without.Placement().NumUsedServers(); w > wo {
		t.Fatalf("first stage increased server count: %d with vs %d without", w, wo)
	}
}

func TestTinyPoliciesBothValid(t *testing.T) {
	src, err := workload.NewLoadSource(0.05, 3) // all tenants tiny for K=10, γ=2
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 400)

	for _, policy := range []TinyPolicy{TinyClassKMinusOne, TinyMultiReplica} {
		cf := mustCubeFit(t, Config{Gamma: 2, K: 10, TinyPolicy: policy})
		placeAll(t, cf, tenants)
		if err := cf.Placement().Validate(); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		if st := cf.Stats(); st.TinyTenants == 0 {
			t.Fatalf("policy %v: no tiny tenants recorded: %+v", policy, st)
		}
	}
}

func TestTinyAccumulationSharesSlots(t *testing.T) {
	// Many equal tiny tenants should accumulate several per slot rather
	// than opening a slot each: server count must be far below the
	// one-slot-per-tenant count.
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10, DisableFirstStage: true})
	const n = 100
	for i := 0; i < n; i++ {
		placeAll(t, cf, []packing.Tenant{{ID: packing.TenantID(i), Load: 0.02}}) // replicas 0.01
	}
	// Slot size for class K−1=9 is 1/10, so about 10 replicas accumulate
	// per slot: the 100 tenants consume about 10 cursor addresses. The
	// cube spreads those addresses over 2 bins in group 0 and up to 9 bins
	// in group 1 (one per slot digit), so roughly 11 servers — far below
	// the 2×100 a slot-per-tenant scheme would approach.
	used := cf.Placement().NumUsedServers()
	if used > 12 {
		t.Fatalf("tiny tenants used %d servers; accumulation is not happening", used)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveTenantFreesCapacity(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	src, err := workload.NewLoadSource(1, 13)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 200)
	placeAll(t, cf, tenants)
	load := cf.Placement().TotalLoad()

	for i := 0; i < 100; i++ {
		if err := cf.Remove(tenants[i].ID); err != nil {
			t.Fatalf("Remove(%d): %v", tenants[i].ID, err)
		}
	}
	if got := cf.Placement().TotalLoad(); got >= load {
		t.Fatalf("total load %v did not drop from %v", got, load)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatalf("placement invalid after removals: %v", err)
	}
	if cf.Placement().NumTenants() != 100 {
		t.Fatalf("tenants = %d, want 100", cf.Placement().NumTenants())
	}
	// Unknown tenant.
	if err := cf.Remove(99999); err == nil {
		t.Fatal("removing unknown tenant succeeded")
	}
	// Keep placing after removals; invariant must hold.
	more := workload.Take(src, 200)
	for i := range more {
		more[i].ID += 10000
	}
	placeAll(t, cf, more)
	if err := cf.Placement().Validate(); err != nil {
		t.Fatalf("placement invalid after reuse: %v", err)
	}
}

func TestPruneSlackPreservesRobustness(t *testing.T) {
	model := workload.DefaultLoadModel()
	dist, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(model, dist, 5)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 2000)
	minReplica := model.Load(1) / 2

	pruned := mustCubeFit(t, Config{Gamma: 2, K: 10, PruneSlack: minReplica * 0.99})
	placeAll(t, pruned, tenants)
	if err := pruned.Placement().Validate(); err != nil {
		t.Fatal(err)
	}

	// Pruning with a bound strictly below the minimum replica size must not
	// change the outcome.
	exact := mustCubeFit(t, Config{Gamma: 2, K: 10})
	placeAll(t, exact, tenants)
	if a, b := pruned.Placement().NumUsedServers(), exact.Placement().NumUsedServers(); a != b {
		t.Fatalf("pruning changed server count: %d vs %d", a, b)
	}
}

func TestGamma1Degenerate(t *testing.T) {
	// γ=1: no replication, no reserve; CubeFit degrades to a harmonic-like
	// packing and every packing is trivially "robust to 0 failures".
	cf := mustCubeFit(t, Config{Gamma: 1, K: 10})
	src, err := workload.NewLoadSource(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	placeAll(t, cf, workload.Take(src, 300))
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range cf.Placement().Servers() {
		if !packing.WithinCapacity(s.Level()) {
			t.Fatalf("server %d over capacity: %v", s.ID(), s.Level())
		}
	}
}

func TestName(t *testing.T) {
	cf := mustCubeFit(t, DefaultConfig())
	if got := cf.Name(); got != "cubefit(γ=2,k=10)" {
		t.Fatalf("Name() = %q", got)
	}
}

func TestConfigAccessor(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 3, K: 7})
	if cfg := cf.Config(); cfg.Gamma != 3 || cfg.K != 7 {
		t.Fatalf("Config() = %+v", cfg)
	}
}
