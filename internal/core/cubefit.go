package core

import (
	"fmt"

	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// maxCubeSize caps τ^γ so that cube group arrays stay reasonably sized.
const maxCubeSize = 1 << 22

// CubeFit is the paper's online consolidation algorithm. It is not safe
// for concurrent use.
type CubeFit struct {
	cfg Config
	p   *packing.Placement

	// bins[i] describes server i; nil entries cannot occur because every
	// server is opened by CubeFit itself.
	bins []*bin
	// active lists mature bins eligible for the first stage.
	active []*bin
	// index mirrors active, bucketed by quantized level for the fast-path
	// first stage (see index.go). Maintained by refreshBin/removeActive.
	index levelIndex
	cubes map[cubeKey]*cube
	// refs records where each tenant's replicas went, for Remove.
	refs map[packing.TenantID][]slotRef
	// refPool recycles the per-tenant slotRef slices freed by unwind so
	// steady-state churn (admit/depart cycles) reuses their backing arrays.
	refPool [][]slotRef

	// cachedReserve enables the incremental reserve-digest fast path for
	// m-fit tests and refreshBin (set in New from the config; see
	// reserve.go).
	cachedReserve bool

	// Scratch buffers for the admission hot path. CubeFit is documented as
	// not concurrency-safe, so a single instance of each suffices; they are
	// only ever valid within one Place/Remove call.
	repScratch     []packing.Replica
	hostScratch    []int
	earlierScratch []int

	stats Stats

	// admissionHook, when non-nil, is called after every Place attempt
	// with the path taken (see SetAdmissionHook).
	admissionHook func(AdmissionPath)
	// rec, when non-nil, receives the decision event stream (see
	// SetRecorder). Every emission site is guarded by a nil check so the
	// default costs nothing.
	rec obs.Recorder
	// placeFault, when non-nil, is consulted before each physical replica
	// placement of the second stage; a non-nil return aborts the admission
	// mid-loop. Test seam for the admission-rollback path.
	placeFault func(server int, rep packing.Replica) error
}

// AdmissionPath identifies how Place handled an admission attempt.
type AdmissionPath int

const (
	// AdmitFirstStage: all replicas went into mature bins via Best Fit.
	AdmitFirstStage AdmissionPath = iota
	// AdmitRegular: the cube construction of the tenant's class.
	AdmitRegular
	// AdmitTiny: the class-K tiny policy.
	AdmitTiny
	// AdmitRejected: the admission failed and was rolled back.
	AdmitRejected
	// AdmitPlaced: a single-stage engine (RFI, the naive baselines)
	// admitted the tenant. Those engines have no multi-path structure to
	// attribute, but report through the same hook so the api/metrics
	// layer counts every engine uniformly.
	AdmitPlaced
)

// String returns the snake_case path name (used as a metric label).
func (p AdmissionPath) String() string {
	switch p {
	case AdmitFirstStage:
		return "first_stage"
	case AdmitRegular:
		return "regular"
	case AdmitTiny:
		return "tiny"
	case AdmitRejected:
		return "rejected"
	case AdmitPlaced:
		return "placed"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// SetAdmissionHook registers fn to run synchronously after every Place
// call with the path taken (AdmitRejected on failure). The API layer uses
// it to export admission-outcome metrics without polling Stats. fn runs
// under whatever synchronization guards Place and must not call back into
// the instance.
func (cf *CubeFit) SetAdmissionHook(fn func(AdmissionPath)) { cf.admissionHook = fn }

// engineName labels CubeFit's decision events.
const engineName = "cubefit"

// SetRecorder attaches a decision flight recorder (see internal/obs):
// every subsequent Place and Remove emits its full decision trail to r.
// A nil r detaches the recorder. r.Record runs synchronously under
// whatever synchronization guards Place and must not call back into the
// instance.
func (cf *CubeFit) SetRecorder(r obs.Recorder) { cf.rec = r }

// emit labels, forwards and releases one pooled event. Callers must guard
// with `cf.rec != nil` so the default path pays one nil check and never
// acquires the event; events are recorded by value, so releasing the
// struct back to the pool immediately afterwards is safe.
//
//cubefit:hotpath
func (cf *CubeFit) emit(e *obs.Event) {
	e.Engine = engineName
	cf.rec.Record(*e)
	obs.ReleaseEvent(e)
}

func (cf *CubeFit) observe(p AdmissionPath) {
	if cf.admissionHook != nil {
		cf.admissionHook(p)
	}
}

// Stats counts which placement path each admitted tenant took.
type Stats struct {
	// FirstStageTenants were fully placed into mature bins by Best Fit.
	FirstStageTenants int
	// RegularTenants went through the cube construction of their class.
	RegularTenants int
	// TinyTenants are class-K tenants placed via the tiny policy.
	TinyTenants int
}

var _ packing.Algorithm = (*CubeFit)(nil)

type cubeKey struct {
	tau  int
	tiny bool
}

// cube is the second-stage state for one class: γ groups of τ^(γ−1) bins
// addressed by a base-τ counter.
type cube struct {
	tau      int
	tiny     bool
	slotSize float64
	cnt      int // current counter value in [0, size)
	size     int // τ^γ
	rowLen   int // τ^(γ−1), bins per group
	groups   [][]int
	digits   []int // scratch: base-τ digits of cnt, most significant first

	// Tiny accumulation (class-K replicas): while open, additional tiny
	// tenants join the slots addressed by cnt until the next replica would
	// not fit, at which point the cursor advances.
	open bool
	fill float64
}

// bin is CubeFit's bookkeeping for one server.
type bin struct {
	server   int
	tau      int
	tiny     bool
	slotSize float64
	// slotUsed/slotCount track the τ payload slots; the γ−1 reserved
	// slots are never represented because they stay empty by construction.
	slotUsed  []float64
	slotCount []int
	closed    int // payload slots the cursor has advanced past
	mature    bool
	retired   bool // mature and permanently removed from active (pruned)
	activeIdx int  // index in CubeFit.active, or -1
	reserve   float64
	// level and slack cache the hosting server's level and usable slack
	// 1 − level − reserve as of the last refreshBin. refreshBin runs for
	// every server whose level or shared map changed, so the caches are
	// never stale when the first stage reads them.
	level float64
	slack float64
	// bucket/bucketPos locate the bin inside CubeFit.index (-1 when not
	// indexed), maintained alongside activeIdx.
	bucket    int
	bucketPos int
	// digest incrementally tracks the server's largest pairwise shared
	// loads (see reserve.go), fed by the packing shared-load hook; the
	// cached m-fit path reads reserves from it instead of scanning the
	// shared map.
	digest topKDigest
}

type slotRef struct {
	server int
	slot   int // payload slot index, or -1 for a first-stage placement
}

// New creates a CubeFit instance for the given configuration.
func New(cfg Config) (*CubeFit, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if size, ok := ipow(cfg.K-1, cfg.Gamma); !ok || size > maxCubeSize {
		return nil, fmt.Errorf("core: cube size (K-1)^γ = %d^%d too large", cfg.K-1, cfg.Gamma)
	}
	p, err := packing.NewPlacement(cfg.Gamma)
	if err != nil {
		return nil, err
	}
	cf := &CubeFit{
		cfg:   cfg,
		p:     p,
		cubes: make(map[cubeKey]*cube),
		refs:  make(map[packing.TenantID][]slotRef),
		// The cached reserve path answers top-(γ−1) queries from the
		// per-bin digests; it needs γ−1 ≤ digestSize to be exact and is
		// a no-op under the reference knob. The digests themselves are
		// maintained unconditionally (the hook below) so the property
		// tests can compare them against packing.TopShared in any mode.
		cachedReserve: !cfg.ReferenceReserve && cfg.Gamma-1 <= digestSize,
	}
	p.SetSharedHook(cf.sharedChanged)
	return cf, nil
}

// sharedChanged is the packing shared-load hook: it repairs the affected
// server's reserve digest after every pairwise shared-load mutation.
//
//cubefit:hotpath
func (cf *CubeFit) sharedChanged(server, peer int, value float64) {
	// Every server is opened by CubeFit itself (binAt), so the bin exists
	// by the time its shared map first mutates; the bound check is purely
	// defensive.
	if server >= 0 && server < len(cf.bins) {
		cf.bins[server].digest.update(peer, value, cf.p.Server(server))
	}
}

// Name implements packing.Algorithm.
func (cf *CubeFit) Name() string {
	return fmt.Sprintf("cubefit(γ=%d,k=%d)", cf.cfg.Gamma, cf.cfg.K)
}

// Placement implements packing.Algorithm.
func (cf *CubeFit) Placement() *packing.Placement { return cf.p }

// Config returns the configuration the instance was built with.
func (cf *CubeFit) Config() Config { return cf.cfg }

// Place admits one tenant, placing its γ replicas on γ distinct servers.
// The resulting placement always satisfies the robustness invariant.
//
// Place is atomic: on failure the tenant is fully rolled back — replicas
// already placed are removed, slot bookkeeping is restored, and the tenant
// is deregistered — so the placement still validates and the same tenant
// can be re-admitted later.
func (cf *CubeFit) Place(t packing.Tenant) error {
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindAttempt)
		e.Tenant = int(t.ID)
		e.Size = t.Load
		e.Clients = t.Clients
		cf.emit(e)
	}
	if _, exists := cf.p.Tenant(t.ID); exists {
		err := fmt.Errorf("core: %w: tenant %d already admitted", packing.ErrDuplicateTenant, t.ID)
		cf.reject(t.ID, err)
		return err
	}
	if err := cf.p.AddTenant(t); err != nil {
		cf.reject(t.ID, err)
		return err
	}
	// reps lives in a scratch buffer: it is only read within this call and
	// nothing below retains it.
	reps := cf.p.ReplicasInto(t, cf.repScratch)
	cf.repScratch = reps

	if !cf.cfg.DisableFirstStage && cf.tryFirstStage(t, reps) {
		cf.stats.FirstStageTenants++
		cf.admit(t.ID, AdmitFirstStage)
		return nil
	}

	tau := cf.cfg.ClassOf(reps[0].Size)
	if tau == cf.cfg.K {
		if err := cf.placeTiny(reps); err != nil {
			cf.rollbackAdmission(t.ID, err)
			return err
		}
		cf.stats.TinyTenants++
		cf.admit(t.ID, AdmitTiny)
		return nil
	}
	if err := cf.placeRegular(tau, reps); err != nil {
		cf.rollbackAdmission(t.ID, err)
		return err
	}
	cf.stats.RegularTenants++
	cf.admit(t.ID, AdmitRegular)
	return nil
}

// admit closes a successful admission: the hook fires and the recorder,
// when attached, gets the admit event carrying the path label.
func (cf *CubeFit) admit(id packing.TenantID, path AdmissionPath) {
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindAdmit)
		e.Tenant = int(id)
		e.Path = path.String()
		cf.emit(e)
	}
	cf.observe(path)
}

// reject closes a failed admission that placed nothing.
func (cf *CubeFit) reject(id packing.TenantID, err error) {
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindReject)
		e.Tenant = int(id)
		e.Path = AdmitRejected.String()
		e.Reason = err.Error()
		cf.emit(e)
	}
	cf.observe(AdmitRejected)
}

// rollbackAdmission unwinds a partially placed admission and closes it as
// rejected.
func (cf *CubeFit) rollbackAdmission(id packing.TenantID, err error) {
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindRollback)
		e.Tenant = int(id)
		e.Reason = err.Error()
		cf.emit(e)
	}
	cf.unwind(id)
	cf.reject(id, err)
}

// Stats returns counters describing which placement paths tenants took.
func (cf *CubeFit) Stats() Stats { return cf.stats }

// Remove evicts a tenant and releases its capacity for future arrivals
// (dynamic-departure extension; see DESIGN.md §7). Freed slot space is
// reused both by the tiny accumulation within its slot and by the first
// stage once the bin is mature.
func (cf *CubeFit) Remove(id packing.TenantID) error {
	if _, ok := cf.p.Tenant(id); !ok {
		return fmt.Errorf("%w: %d", packing.ErrUnknownTenant, id)
	}
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindDepart)
		e.Tenant = int(id)
		cf.emit(e)
	}
	cf.unwind(id)
	return nil
}

// unwind evicts a registered tenant, whether fully or partially placed:
// every placed replica is unplaced, the slot bookkeeping of its bins is
// restored, the tenant is deregistered, and the reserve caches of the
// affected servers are refreshed. It serves both tenant departure (Remove)
// and the rollback of failed admissions (Place).
func (cf *CubeFit) unwind(id packing.TenantID) {
	t, ok := cf.p.Tenant(id)
	if !ok {
		return
	}
	size := cf.p.ReplicaSize(t)
	hosts := cf.p.TenantHostsInto(id, cf.hostScratch)
	cf.hostScratch = hosts
	// RemoveTenant cannot fail for a registered tenant; every placed
	// replica recorded in tenantHosts is unplaceable by construction.
	_ = cf.p.RemoveTenant(id)
	for _, ref := range cf.refs[id] {
		b := cf.bins[ref.server]
		if ref.slot >= 0 {
			b.slotUsed[ref.slot] -= size
			if b.slotUsed[ref.slot] < 0 {
				b.slotUsed[ref.slot] = 0
			}
			b.slotCount[ref.slot]--
		}
	}
	cf.releaseRefs(id)
	for _, h := range hosts {
		if h >= 0 {
			cf.refreshBin(cf.bins[h])
		}
	}
}

// addRef records one placed replica for the tenant, recycling a slotRef
// slice from the pool for the tenant's first replica.
//
//cubefit:hotpath
func (cf *CubeFit) addRef(id packing.TenantID, ref slotRef) {
	rs, ok := cf.refs[id]
	if !ok {
		if n := len(cf.refPool); n > 0 {
			rs = cf.refPool[n-1][:0]
			cf.refPool = cf.refPool[:n-1]
		} else {
			//cubefit:vet-allow hotpath -- pool miss only: once departures start returning arrays this branch never runs
			rs = make([]slotRef, 0, cf.cfg.Gamma)
		}
	}
	//cubefit:vet-allow hotpath -- rs carries γ capacity from the ref pool; append grows it only on the cold pool-miss path
	cf.refs[id] = append(rs, ref)
}

// releaseRefs drops the tenant's replica records and returns their backing
// array to the pool.
//
//cubefit:hotpath
func (cf *CubeFit) releaseRefs(id packing.TenantID) {
	if rs, ok := cf.refs[id]; ok {
		delete(cf.refs, id)
		if cap(rs) > 0 {
			cf.refPool = append(cf.refPool, rs[:0])
		}
	}
}

// placeRegular runs the second stage for a class-τ tenant (τ < K).
func (cf *CubeFit) placeRegular(tau int, reps []packing.Replica) error {
	cb := cf.cube(tau, false)
	if err := cf.placeAtCursor(cb, reps); err != nil {
		return err
	}
	cf.advance(cb)
	return nil
}

// placeTiny runs the second stage for a class-K tenant: its replicas join
// the currently open slots of the tiny cube, or a fresh cursor position
// when they no longer fit. Under TinyClassKMinusOne the tiny cube has the
// geometry of class K−1 (the paper's empirical optimization); under
// TinyMultiReplica it has the geometry of class αK−γ+1, so a full slot is
// exactly a multi-replica of size at most 1/αK.
func (cf *CubeFit) placeTiny(reps []packing.Replica) error {
	tau := cf.tinyClass()
	cb := cf.cube(tau, true)
	size := reps[0].Size
	if cb.open && !packing.FitsWithin(cb.fill+size, cb.slotSize) {
		cf.advance(cb)
	}
	if err := cf.placeAtCursor(cb, reps); err != nil {
		return err
	}
	cb.open = true
	cb.fill += size
	return nil
}

// tinyClass returns the bin class hosting class-K replicas.
func (cf *CubeFit) tinyClass() int {
	if cf.cfg.TinyPolicy == TinyMultiReplica {
		return AlphaK(cf.cfg.K) - cf.cfg.Gamma + 1
	}
	return cf.cfg.K - 1
}

// placeAtCursor places the γ replicas at the slots addressed by the cube's
// current counter value: replica j uses the (j)-fold right-cyclic shift of
// the counter's base-τ digits; the first γ−1 digits select the bin within
// group j and the last digit the slot within the bin.
//
//cubefit:hotpath
func (cf *CubeFit) placeAtCursor(cb *cube, reps []packing.Replica) error {
	cb.loadDigits()
	for j, rep := range reps {
		binIdx, slotIdx := cb.address(j)
		b, err := cf.binAt(cb, j, binIdx)
		if err != nil {
			return err
		}
		if !packing.FitsWithin(rep.Size, cb.slotSize) {
			//cubefit:vet-allow hotpath -- unreachable internal-error edge: ClassOf guarantees the replica fits its class slot
			return fmt.Errorf("core: internal: replica size %v exceeds slot size %v of class %d",
				rep.Size, cb.slotSize, cb.tau)
		}
		if cf.placeFault != nil {
			if err := cf.placeFault(b.server, rep); err != nil {
				return err
			}
		}
		if err := cf.p.Place(b.server, rep); err != nil {
			//cubefit:vet-allow hotpath -- cold error edge: cube addressing guarantees distinct servers with free capacity
			return fmt.Errorf("core: internal: cube placement rejected: %w", err)
		}
		b.slotUsed[slotIdx] += rep.Size
		b.slotCount[slotIdx]++
		cf.addRef(rep.Tenant, slotRef{server: b.server, slot: slotIdx})
		if cf.rec != nil {
			e := obs.AcquireEvent(obs.KindCubePlace)
			e.Tenant = int(rep.Tenant)
			e.Replica = rep.Index
			e.Server = b.server
			e.Slot = slotIdx
			e.Class = cb.tau
			e.Tiny = cb.tiny
			e.Counter = cb.cnt
			//cubefit:vet-allow hotpath -- recorder-only: the recorded event owns its digit trail, so the copy is unavoidable and the path is skipped without a recorder
			e.Digits = append([]int(nil), cb.digits...)
			e.Size = rep.Size
			cf.emit(e)
		}
	}
	// Refresh reserve caches once per touched server (shared loads changed
	// between every pair of the γ bins).
	hosts := cf.p.TenantHostsInto(reps[0].Tenant, cf.hostScratch)
	cf.hostScratch = hosts
	for _, h := range hosts {
		if h >= 0 {
			cf.refreshBin(cf.bins[h])
		}
	}
	return nil
}

// advance closes the slots at the current cursor position and moves the
// counter forward, replacing the groups with fresh bins on wrap-around.
//
//cubefit:hotpath
func (cf *CubeFit) advance(cb *cube) {
	cb.loadDigits()
	for j := 0; j < cf.cfg.Gamma; j++ {
		binIdx, _ := cb.address(j)
		sid := cb.groups[j][binIdx]
		if sid < 0 {
			continue // address never materialized (cannot happen after placement)
		}
		b := cf.bins[sid]
		b.closed++
		if b.closed == b.tau && !b.mature {
			cf.matureBin(b)
		}
	}
	var closedDigits []int
	if cf.rec != nil {
		//cubefit:vet-allow hotpath -- recorder-only: the recorded event owns its digit trail
		closedDigits = append([]int(nil), cb.digits...)
	}
	cb.open = false
	cb.fill = 0
	cb.cnt++
	if cb.cnt == cb.size {
		cb.cnt = 0
		for j := range cb.groups {
			//cubefit:vet-allow hotpath -- wrap-around only: a fresh group row is built once per τ^γ placements
			row := make([]int, cb.rowLen)
			for i := range row {
				row[i] = -1
			}
			cb.groups[j] = row
		}
	}
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindCubeAdvance)
		e.Class = cb.tau
		e.Tiny = cb.tiny
		e.Counter = cb.cnt
		e.Digits = closedDigits
		cf.emit(e)
	}
}

// cube returns (creating on demand) the cube for a class and kind.
func (cf *CubeFit) cube(tau int, tiny bool) *cube {
	key := cubeKey{tau: tau, tiny: tiny}
	if cb, ok := cf.cubes[key]; ok {
		return cb
	}
	gamma := cf.cfg.Gamma
	size, _ := ipow(tau, gamma)
	rowLen, _ := ipow(tau, gamma-1)
	cb := &cube{
		tau:      tau,
		tiny:     tiny,
		slotSize: cf.cfg.SlotSize(tau),
		size:     size,
		rowLen:   rowLen,
		groups:   make([][]int, gamma),
		digits:   make([]int, gamma),
	}
	for j := range cb.groups {
		row := make([]int, rowLen)
		for i := range row {
			row[i] = -1
		}
		cb.groups[j] = row
	}
	cf.cubes[key] = cb
	return cb
}

// binAt returns the bin for group j, index binIdx of the cube, opening a
// new server for it on first use.
func (cf *CubeFit) binAt(cb *cube, j, binIdx int) (*bin, error) {
	if sid := cb.groups[j][binIdx]; sid >= 0 {
		return cf.bins[sid], nil
	}
	sid := cf.p.OpenServer()
	if sid != len(cf.bins) {
		return nil, fmt.Errorf("core: internal: server id %d does not match bin table %d", sid, len(cf.bins))
	}
	b := &bin{
		server:    sid,
		tau:       cb.tau,
		tiny:      cb.tiny,
		slotSize:  cb.slotSize,
		slotUsed:  make([]float64, cb.tau),
		slotCount: make([]int, cb.tau),
		activeIdx: -1,
		bucket:    -1,
		bucketPos: -1,
	}
	cf.bins = append(cf.bins, b)
	cb.groups[j][binIdx] = sid
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindBinOpen)
		e.Server = sid
		e.Class = cb.tau
		e.Tiny = cb.tiny
		cf.emit(e)
	}
	return b, nil
}

// matureBin marks a bin mature and makes it available to the first stage.
func (cf *CubeFit) matureBin(b *bin) {
	b.mature = true
	if cf.rec != nil {
		e := obs.AcquireEvent(obs.KindBinMature)
		e.Server = b.server
		e.Class = b.tau
		e.Tiny = b.tiny
		e.Level = cf.p.Server(b.server).Level()
		cf.emit(e)
	}
	cf.refreshBin(b)
}

// refreshBin recomputes the bin's cached failover reserve, level and slack
// and maintains its membership in the active (first-stage candidate) list
// and the level index.
//
//cubefit:hotpath
func (cf *CubeFit) refreshBin(b *bin) {
	srv := cf.p.Server(b.server)
	if cf.cachedReserve {
		b.reserve = b.digest.topSum(cf.cfg.Gamma - 1)
	} else {
		b.reserve = srv.TopShared(cf.cfg.Gamma - 1)
	}
	b.level = srv.Level()
	b.slack = 1 - b.level - b.reserve
	if !b.mature {
		return
	}
	switch {
	case packing.FitsWithin(b.slack, cf.cfg.PruneSlack):
		if b.activeIdx >= 0 {
			cf.removeActive(b)
		}
		cf.retireBin(b)
	case b.activeIdx < 0:
		// (Re-)activate: either freshly matured, or slack was regained by a
		// tenant departure.
		if b.retired && cf.rec != nil {
			e := obs.AcquireEvent(obs.KindBinReactivate)
			e.Server = b.server
			cf.emit(e)
		}
		b.retired = false
		b.activeIdx = len(cf.active)
		//cubefit:vet-allow hotpath -- activation growth is amortized: steady state reuses the capacity freed by removeActive swap-removes
		cf.active = append(cf.active, b)
		cf.index.insert(b)
	default:
		// Already active: the level may have crossed a bucket boundary.
		cf.index.update(b)
	}
}

// retireBin marks a bin retired, emitting the event only on the
// transition (refreshBin revisits retired bins after departures).
func (cf *CubeFit) retireBin(b *bin) {
	if !b.retired && cf.rec != nil {
		e := obs.AcquireEvent(obs.KindBinRetire)
		e.Server = b.server
		cf.emit(e)
	}
	b.retired = true
}

//cubefit:hotpath
func (cf *CubeFit) removeActive(b *bin) {
	last := len(cf.active) - 1
	i := b.activeIdx
	cf.active[i] = cf.active[last]
	cf.active[i].activeIdx = i
	cf.active = cf.active[:last]
	b.activeIdx = -1
	cf.index.remove(b)
}

// NumActiveMatureBins reports the number of mature bins currently eligible
// for first-stage placement (exposed for tests and diagnostics).
func (cf *CubeFit) NumActiveMatureBins() int { return len(cf.active) }

// loadDigits refreshes the scratch digit expansion of cnt (base τ, most
// significant digit first).
func (cb *cube) loadDigits() {
	v := cb.cnt
	for i := len(cb.digits) - 1; i >= 0; i-- {
		cb.digits[i] = v % cb.tau
		v /= cb.tau
	}
}

// address returns (binIdx, slotIdx) for replica j at the current cursor:
// the j-fold right-cyclic shift of the digits, split into a γ−1 digit bin
// prefix and a final slot digit.
func (cb *cube) address(j int) (binIdx, slotIdx int) {
	gamma := len(cb.digits)
	// shifted[i] = digits[(i - j) mod gamma]; iterate the prefix directly.
	for i := 0; i < gamma-1; i++ {
		binIdx = binIdx*cb.tau + cb.digits[((i-j)%gamma+gamma)%gamma]
	}
	slotIdx = cb.digits[((gamma-1-j)%gamma+gamma)%gamma]
	return binIdx, slotIdx
}

// ipow returns base^exp and whether it fit in an int without overflow.
func ipow(base, exp int) (int, bool) {
	if exp < 0 {
		return 0, false
	}
	result := 1
	for i := 0; i < exp; i++ {
		if base != 0 && result > maxCubeSize*64/base {
			return 0, false
		}
		result *= base
	}
	return result, true
}
