package core

import (
	"errors"
	"testing"

	"cubefit/internal/packing"
)

// failOnCall returns a placeFault that fails the nth physical placement
// (1-based) after it is installed.
func failOnCall(n int) func(int, packing.Replica) error {
	calls := 0
	return func(int, packing.Replica) error {
		calls++
		if calls == n {
			return errors.New("injected placement fault")
		}
		return nil
	}
}

// TestPlaceRollbackMidPlacement forces the second replica of a regular
// admission to fail and asserts the placement is fully unwound: it still
// validates, the tenant is deregistered, and the same tenant can be
// re-admitted. Before the rollback fix the tenant stayed registered with
// an unplaced replica (Validate → ErrIncomplete forever) and retries hit
// ErrBadReplica.
func TestPlaceRollbackMidPlacement(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}

	cf.placeFault = failOnCall(2)
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.4}); err == nil {
		t.Fatal("injected fault did not surface")
	}
	cf.placeFault = nil

	if err := cf.Placement().Validate(); err != nil {
		t.Fatalf("placement invalid after failed admission: %v", err)
	}
	if _, ok := cf.Placement().Tenant(2); ok {
		t.Fatal("failed tenant still registered")
	}
	if _, ok := cf.refs[2]; ok {
		t.Fatal("failed tenant still has slot refs")
	}
	if got := cf.Placement().NumTenants(); got != 1 {
		t.Fatalf("tenants = %d, want 1", got)
	}

	// Re-admission must succeed and land on two distinct servers.
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.4}); err != nil {
		t.Fatalf("re-admission failed: %v", err)
	}
	hosts := cf.Placement().TenantHosts(2)
	if len(hosts) != 2 || hosts[0] < 0 || hosts[1] < 0 || hosts[0] == hosts[1] {
		t.Fatalf("re-admitted hosts = %v", hosts)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatalf("placement invalid after re-admission: %v", err)
	}
}

// TestPlaceRollbackTiny exercises the same rollback on the tiny
// (class-K accumulation) path, where slot bookkeeping is shared between
// tenants and a stale slotUsed entry would poison later admissions.
func TestPlaceRollbackTiny(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.1}); err != nil {
		t.Fatal(err)
	}

	cf.placeFault = failOnCall(2)
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.1}); err == nil {
		t.Fatal("injected fault did not surface")
	}
	cf.placeFault = nil

	if err := cf.Placement().Validate(); err != nil {
		t.Fatalf("placement invalid after failed tiny admission: %v", err)
	}
	if _, ok := cf.Placement().Tenant(2); ok {
		t.Fatal("failed tenant still registered")
	}

	// The freed slot capacity must be reusable: re-admit the tenant and
	// keep filling the tiny slots.
	for id := 2; id <= 6; id++ {
		if err := cf.Place(packing.Tenant{ID: packing.TenantID(id), Load: 0.1}); err != nil {
			t.Fatalf("tenant %d after rollback: %v", id, err)
		}
	}
	if err := cf.Placement().ValidateExhaustive(); err != nil {
		t.Fatalf("placement invalid after refill: %v", err)
	}
}

// TestPlaceRollbackFirstReplica covers the degenerate case where the very
// first physical placement fails (nothing to unplace, but the tenant must
// still be deregistered).
func TestPlaceRollbackFirstReplica(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cf.placeFault = failOnCall(1)
	if err := cf.Place(packing.Tenant{ID: 7, Load: 0.4}); err == nil {
		t.Fatal("injected fault did not surface")
	}
	cf.placeFault = nil
	if _, ok := cf.Placement().Tenant(7); ok {
		t.Fatal("failed tenant still registered")
	}
	if err := cf.Place(packing.Tenant{ID: 7, Load: 0.4}); err != nil {
		t.Fatalf("re-admission failed: %v", err)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceDuplicateLeavesPlacementIntact: admitting an already-placed
// tenant must fail without unwinding the existing placement.
func TestPlaceDuplicateLeavesPlacementIntact(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); !errors.Is(err, packing.ErrDuplicateTenant) {
		t.Fatalf("duplicate admission error = %v, want ErrDuplicateTenant", err)
	}
	if _, ok := cf.Placement().Tenant(1); !ok {
		t.Fatal("duplicate admission evicted the original tenant")
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsCountSuccessesOnly: before the fix the path counters were
// incremented before the placement attempt, counting failed admissions as
// successes.
func TestStatsCountSuccessesOnly(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	cf.placeFault = failOnCall(1)
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err == nil {
		t.Fatal("regular fault did not surface")
	}
	cf.placeFault = failOnCall(1)
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.1}); err == nil {
		t.Fatal("tiny fault did not surface")
	}
	cf.placeFault = nil
	if s := cf.Stats(); s != (Stats{}) {
		t.Fatalf("failed admissions counted: %+v", s)
	}
	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.1}); err != nil {
		t.Fatal(err)
	}
	if s := cf.Stats(); s.RegularTenants != 1 || s.TinyTenants != 1 || s.FirstStageTenants != 0 {
		t.Fatalf("stats after successes: %+v", s)
	}
}

// TestAdmissionHook verifies the instrumentation callback reports the
// path actually taken, including rejections.
func TestAdmissionHook(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var paths []AdmissionPath
	cf.SetAdmissionHook(func(p AdmissionPath) { paths = append(paths, p) })

	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.1}); err != nil {
		t.Fatal(err)
	}
	cf.placeFault = failOnCall(1)
	if err := cf.Place(packing.Tenant{ID: 3, Load: 0.4}); err == nil {
		t.Fatal("fault did not surface")
	}
	cf.placeFault = nil
	if err := cf.Place(packing.Tenant{ID: 4, Load: 1.5}); err == nil {
		t.Fatal("invalid load accepted")
	}

	want := []AdmissionPath{AdmitRegular, AdmitTiny, AdmitRejected, AdmitRejected}
	if len(paths) != len(want) {
		t.Fatalf("paths %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths %v, want %v", paths, want)
		}
	}
	for p, s := range map[AdmissionPath]string{
		AdmitFirstStage: "first_stage", AdmitRegular: "regular",
		AdmitTiny: "tiny", AdmitRejected: "rejected", AdmissionPath(9): "path(9)",
	} {
		if p.String() != s {
			t.Fatalf("String(%d) = %q, want %q", int(p), p.String(), s)
		}
	}
}
