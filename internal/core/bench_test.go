package core

import (
	"fmt"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
)

// benchEngine builds an engine pre-loaded with enough tenants that the
// first stage has a realistic population of active mature bins.
func benchEngine(b *testing.B, cfg Config, tenants int) *CubeFit {
	b.Helper()
	cf, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < tenants; i++ {
		size := 0.001 + (0.9/float64(cfg.Gamma)-0.001)*r.Float64()
		t := packing.Tenant{ID: packing.TenantID(i + 1), Load: size * float64(cfg.Gamma)}
		if err := cf.Place(t); err != nil {
			b.Fatal(err)
		}
	}
	return cf
}

// BenchmarkBestMFitProbe pins the cost of a single first-stage probe for
// the indexed fast path and the reference linear scan. The probe is
// read-only (no placement follows), so each iteration sees the same bin
// population.
func BenchmarkBestMFitProbe(b *testing.B) {
	for _, impl := range []struct {
		name      string
		reference bool
		tenants   []int
	}{
		// The 100k point pins the service-scale claim: probe cost stays
		// ~flat as the open-tenant population grows. The reference scan is
		// O(active bins) per probe, so it only runs the small points.
		{"indexed", false, []int{200, 1000, 100000}},
		{"reference", true, []int{200, 1000}},
	} {
		for _, tenants := range impl.tenants {
			name := fmt.Sprintf("%s/tenants%d", impl.name, tenants)
			b.Run(name, func(b *testing.B) {
				cf := benchEngine(b, Config{Gamma: 2, K: 10, ReferenceFirstStage: impl.reference}, tenants)
				probe := packing.Tenant{ID: packing.TenantID(1 << 20), Load: 0.02}
				if err := cf.p.AddTenant(probe); err != nil {
					b.Fatal(err)
				}
				reps := cf.p.Replicas(probe)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if bin, _ := cf.bestMFit(probe, reps[0]); bin == nil {
						b.Fatal("probe found no bin")
					}
				}
			})
		}
	}
}

// benchMFitsEngine builds a churned engine and returns it together with
// the candidate bin whose server has the most sharing neighbors — the
// worst case for the reference shared-map scan, the indifferent case for
// the digest — and an m-fit probe against it.
func benchMFitsEngine(b *testing.B, referenceReserve bool) (*CubeFit, *packing.Server, []int, packing.Replica) {
	cf := benchEngine(b, Config{Gamma: 3, K: 10, ReferenceReserve: referenceReserve}, 1000)
	var srv *packing.Server
	for _, bn := range cf.active {
		s := cf.p.Server(bn.server)
		if srv == nil || s.NumShared() > srv.NumShared() {
			srv = s
		}
	}
	if srv == nil {
		b.Fatal("no active bins")
	}
	// Two earlier hosts (γ=3) that do not host the probe tenant.
	earlier := make([]int, 0, 2)
	for _, bn := range cf.active {
		if bn.server != srv.ID() {
			earlier = append(earlier, bn.server)
			if len(earlier) == 2 {
				break
			}
		}
	}
	if len(earlier) < 2 {
		b.Fatal("not enough active bins for earlier hosts")
	}
	probe := packing.Tenant{ID: packing.TenantID(1 << 20), Load: 0.03}
	if err := cf.p.AddTenant(probe); err != nil {
		b.Fatal(err)
	}
	return cf, srv, earlier, cf.p.Replicas(probe)[0]
}

// BenchmarkMFitsCached pins the digest-backed m-fit test: the adjusted
// top-(γ−1) sums come from the per-bin reserve digests, so the cost is
// O(γ) regardless of how many peers the candidate shares tenants with.
func BenchmarkMFitsCached(b *testing.B) {
	cf, srv, earlier, rep := benchMFitsEngine(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.mFits(srv, earlier, rep)
	}
}

// BenchmarkMFitsReference pins the reference m-fit test behind
// Config.ReferenceReserve: every call rescans the shared maps of the
// candidate and each earlier host via topSharedAdjusted.
func BenchmarkMFitsReference(b *testing.B) {
	cf, srv, earlier, rep := benchMFitsEngine(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.mFits(srv, earlier, rep)
	}
}

// BenchmarkTopSharedAdjusted pins the m-fit inner loop: the hypothetical
// top-k shared-load sum of a populated server.
func BenchmarkTopSharedAdjusted(b *testing.B) {
	cf := benchEngine(b, Config{Gamma: 3, K: 10}, 500)
	// Pick the active mature bin with the most sharing neighbors.
	var srv *packing.Server
	for _, bn := range cf.active {
		s := cf.p.Server(bn.server)
		if srv == nil || s.NumShared() > srv.NumShared() {
			srv = s
		}
	}
	if srv == nil {
		b.Fatal("no active bins")
	}
	bump := [1]int{srv.ID() + 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = topSharedAdjusted(srv, 2, bump[:], 0.01)
	}
}

// BenchmarkPlaceNoRecorder measures a full admit/depart cycle on the
// default (recorder-detached) hot path; allocs/op here is the number the
// scratch buffers and ref pool exist to hold down.
func BenchmarkPlaceNoRecorder(b *testing.B) {
	cf := benchEngine(b, Config{Gamma: 2, K: 10}, 500)
	r := rng.New(11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size := 0.001 + 0.449*r.Float64()
		id := packing.TenantID(1<<20 + i)
		if err := cf.Place(packing.Tenant{ID: id, Load: 2 * size}); err != nil {
			b.Fatal(err)
		}
		if err := cf.Remove(id); err != nil {
			b.Fatal(err)
		}
	}
}
