package core

import (
	"bytes"
	"fmt"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/trace"
)

// parityWorkload drives one engine through a randomized admit/depart
// workload and returns the serialized final placement. Both engines are
// fed the identical decision stream (sizes, departures, ordering), so any
// divergence between the indexed and reference first stages shows up as a
// byte difference in the trace.
func parityWorkload(t *testing.T, cf *CubeFit, seed uint64, tenants int) []byte {
	t.Helper()
	r := rng.New(seed)
	live := make([]packing.TenantID, 0, tenants)
	for i := 0; i < tenants; i++ {
		// Sizes spanning every class, including first-stage-friendly small
		// replicas and tiny class-K ones; the tenant's total load γ·size
		// must stay within (0, 1].
		size := 0.001 + (0.9/float64(cf.cfg.Gamma)-0.001)*r.Float64()
		id := packing.TenantID(i + 1)
		if err := cf.Place(packing.Tenant{ID: id, Load: size * float64(cf.cfg.Gamma)}); err != nil {
			t.Fatalf("seed %d: place tenant %d: %v", seed, id, err)
		}
		live = append(live, id)
		// Departures with probability ~1/4 keep bins cycling through
		// retire/reactivate transitions, the index's hardest case.
		if len(live) > 4 && r.Float64() < 0.25 {
			victim := int(r.Uint64() % uint64(len(live)))
			id := live[victim]
			live[victim] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := cf.Remove(id); err != nil {
				t.Fatalf("seed %d: remove tenant %d: %v", seed, id, err)
			}
		}
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, cf.Placement()); err != nil {
		t.Fatalf("seed %d: trace: %v", seed, err)
	}
	return buf.Bytes()
}

// TestFirstStageIndexParity is the property test required by the fast-path
// index: across random workloads with departures, the indexed bestMFit and
// the reference linear scan must produce byte-identical placements and
// identical Stats at γ ∈ {2, 3, 4}.
func TestFirstStageIndexParity(t *testing.T) {
	for _, gamma := range []int{2, 3, 4} {
		gamma := gamma
		t.Run(fmt.Sprintf("gamma%d", gamma), func(t *testing.T) {
			k := 10
			if gamma == 4 {
				k = 5 // keep (K−1)^γ cube sizes moderate
			}
			for seed := uint64(1); seed <= 8; seed++ {
				indexed, err := New(Config{Gamma: gamma, K: k})
				if err != nil {
					t.Fatal(err)
				}
				reference, err := New(Config{Gamma: gamma, K: k, ReferenceFirstStage: true})
				if err != nil {
					t.Fatal(err)
				}
				tenants := 300
				got := parityWorkload(t, indexed, seed, tenants)
				want := parityWorkload(t, reference, seed, tenants)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: indexed and reference first stages diverged (trace bytes differ)", seed)
				}
				if indexed.Stats() != reference.Stats() {
					t.Fatalf("seed %d: stats diverged: indexed %+v reference %+v",
						seed, indexed.Stats(), reference.Stats())
				}
				if indexed.NumActiveMatureBins() != reference.NumActiveMatureBins() {
					t.Fatalf("seed %d: active bin count diverged: indexed %d reference %d",
						seed, indexed.NumActiveMatureBins(), reference.NumActiveMatureBins())
				}
			}
		})
	}
}

// TestLevelIndexMirrorsActive checks the structural invariant the fast
// path relies on: after an arbitrary workload, the level index holds
// exactly the active bins, each under the bucket of its cached level.
func TestLevelIndexMirrorsActive(t *testing.T) {
	cf, err := New(Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	parityWorkload(t, cf, 42, 400)
	indexed := 0
	for q := range cf.index.buckets {
		bucket := &cf.index.buckets[q]
		for pos, b := range bucket.bins {
			indexed++
			if b.slack > bucket.slackUB {
				t.Errorf("bin %d: slack %v exceeds bucket %d slack bound %v",
					b.server, b.slack, q, bucket.slackUB)
			}
			if free := 1 - b.level; free > bucket.freeUB {
				t.Errorf("bin %d: free %v exceeds bucket %d free bound %v",
					b.server, free, q, bucket.freeUB)
			}
			if b.bucket != q || b.bucketPos != pos {
				t.Fatalf("bin %d: stored position (%d,%d) but fields say (%d,%d)",
					b.server, q, pos, b.bucket, b.bucketPos)
			}
			if levelBucket(b.level) != q {
				t.Errorf("bin %d: level %v belongs in bucket %d, found in %d",
					b.server, b.level, levelBucket(b.level), q)
			}
			if b.activeIdx < 0 {
				t.Errorf("bin %d: indexed but not active", b.server)
			}
		}
	}
	if indexed != len(cf.active) {
		t.Fatalf("index holds %d bins, active list %d", indexed, len(cf.active))
	}
	for _, b := range cf.active {
		if b.bucket < 0 {
			t.Errorf("bin %d: active but not indexed", b.server)
		}
	}
}

func TestLevelBucketBounds(t *testing.T) {
	cases := []struct {
		level float64
		want  int
	}{
		{-0.1, 0},
		{0, 0},
		{0.5, levelBuckets / 2},
		{0.999999, levelBuckets - 1},
		{1, levelBuckets - 1},
		{1.5, levelBuckets - 1},
	}
	for _, c := range cases {
		if got := levelBucket(c.level); got != c.want {
			t.Errorf("levelBucket(%v) = %d, want %d", c.level, got, c.want)
		}
	}
}
