package core

import (
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/workload"
)

// TestTheorem1Randomized is the main safety property test: for random
// configurations and random tenant sequences from the experiment
// distributions, the placement after every arrival satisfies the full
// robustness invariant (no server overloads under any γ−1 simultaneous
// failures).
func TestTheorem1Randomized(t *testing.T) {
	r := rng.New(20170605)
	gammas := []int{2, 3}
	ks := []int{5, 10}
	policies := []TinyPolicy{TinyClassKMinusOne, TinyMultiReplica}

	for trial := 0; trial < 24; trial++ {
		cfg := Config{
			Gamma:      gammas[r.Intn(len(gammas))],
			K:          ks[r.Intn(len(ks))],
			TinyPolicy: policies[r.Intn(len(policies))],
		}
		if cfg.Validate() != nil {
			cfg.TinyPolicy = TinyClassKMinusOne
		}
		cf := mustCubeFit(t, cfg)

		var src workload.Source
		var err error
		switch trial % 3 {
		case 0:
			src, err = workload.NewLoadSource(1, r.Uint64())
		case 1:
			var dist workload.Uniform
			dist, err = workload.NewUniform(1, 15)
			if err == nil {
				src, err = workload.NewClientSource(workload.DefaultLoadModel(), dist, r.Uint64())
			}
		default:
			var dist *workload.Zipf
			dist, err = workload.NewZipf(3, workload.MaxClientsPerServer)
			if err == nil {
				src, err = workload.NewClientSource(workload.DefaultLoadModel(), dist, r.Uint64())
			}
		}
		if err != nil {
			t.Fatal(err)
		}

		n := 100 + r.Intn(200)
		for i := 0; i < n; i++ {
			tn := src.Next()
			if err := cf.Place(tn); err != nil {
				t.Fatalf("trial %d cfg %+v tenant %d: %v", trial, cfg, i, err)
			}
			// Incremental check keeps failures local to the offending step;
			// do it on a sample of steps to bound test time, and always on
			// the final step.
			if i%25 == 0 || i == n-1 {
				if err := cf.Placement().ValidateRobustness(); err != nil {
					t.Fatalf("trial %d cfg %+v after tenant %d: %v", trial, cfg, i, err)
				}
			}
		}
		if err := cf.Placement().Validate(); err != nil {
			t.Fatalf("trial %d cfg %+v final: %v", trial, cfg, err)
		}
		// Cross-check the top-(γ−1) validator with subset enumeration on a
		// couple of trials (it is O(n^γ)).
		if trial < 2 {
			if err := cf.Placement().ValidateExhaustive(); err != nil {
				t.Fatalf("trial %d cfg %+v exhaustive: %v", trial, cfg, err)
			}
		}
	}
}

// TestTheorem1WorstCaseFailures picks the worst failure sets greedily and
// verifies survivors stay within capacity, for both γ=2 (one failure) and
// γ=3 (two failures).
func TestTheorem1WorstCaseFailures(t *testing.T) {
	for _, gamma := range []int{2, 3} {
		cfg := Config{Gamma: gamma, K: 5}
		cf := mustCubeFit(t, cfg)
		dist, err := workload.NewUniform(1, 15)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.NewClientSource(workload.DefaultLoadModel(), dist, 77)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := cf.Place(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		p := cf.Placement()
		n := p.NumServers()
		if gamma == 2 {
			for f := 0; f < n; f++ {
				if got := p.MaxPostFailureLoad([]int{f}); !packing.WithinCapacity(got) {
					t.Fatalf("γ=2: failing server %d overloads survivors to %v", f, got)
				}
			}
		} else {
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if got := p.MaxPostFailureLoad([]int{a, b}); !packing.WithinCapacity(got) {
						t.Fatalf("γ=3: failing {%d,%d} overloads survivors to %v", a, b, got)
					}
				}
			}
		}
	}
}

// TestTheorem1WithRemovals exercises the departure extension: interleaved
// arrivals and removals must preserve the invariant throughout.
func TestTheorem1WithRemovals(t *testing.T) {
	r := rng.New(555)
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	src, err := workload.NewLoadSource(1, 888)
	if err != nil {
		t.Fatal(err)
	}
	var live []packing.TenantID
	for step := 0; step < 600; step++ {
		if len(live) > 0 && r.Float64() < 0.3 {
			i := r.Intn(len(live))
			if err := cf.Remove(live[i]); err != nil {
				t.Fatalf("step %d remove: %v", step, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			tn := src.Next()
			if err := cf.Place(tn); err != nil {
				t.Fatalf("step %d place: %v", step, err)
			}
			live = append(live, tn.ID)
		}
		if step%50 == 0 {
			if err := cf.Placement().ValidateRobustness(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1Gamma4 checks the invariant for a replication factor beyond
// the paper's presentation (arbitrary-γ extension).
func TestTheorem1Gamma4(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 4, K: 6})
	src, err := workload.NewLoadSource(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := cf.Place(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}
