package core

import (
	"math"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
)

// TestClassBoundaryLoads feeds tenants whose replica sizes sit exactly on
// (and a hair on either side of) every class boundary — the regime where
// floating-point misclassification would corrupt the slot discipline.
func TestClassBoundaryLoads(t *testing.T) {
	for _, gamma := range []int{2, 3} {
		cfg := Config{Gamma: gamma, K: 10}
		cf := mustCubeFit(t, cfg)
		id := packing.TenantID(0)
		for m := gamma; m <= cfg.K+gamma; m++ {
			boundary := 1 / float64(m) // replica-size boundary
			for _, size := range []float64{
				boundary,
				math.Nextafter(boundary, 0),
				math.Nextafter(boundary, 1),
				boundary * 0.999,
				boundary * 1.001,
			} {
				load := size * float64(gamma)
				if load <= 0 || load > 1 {
					continue
				}
				if err := cf.Place(packing.Tenant{ID: id, Load: load}); err != nil {
					t.Fatalf("γ=%d boundary 1/%d size %v: %v", gamma, m, size, err)
				}
				id++
			}
		}
		if err := cf.Placement().Validate(); err != nil {
			t.Fatalf("γ=%d: boundary loads broke the invariant: %v", gamma, err)
		}
	}
}

// TestExtremeLoads checks the extreme legal loads.
func TestExtremeLoads(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	if err := cf.Place(packing.Tenant{ID: 1, Load: 1}); err != nil {
		t.Fatalf("full load: %v", err)
	}
	if err := cf.Place(packing.Tenant{ID: 2, Load: 1e-12}); err != nil {
		t.Fatalf("minuscule load: %v", err)
	}
	if err := cf.Place(packing.Tenant{ID: 3, Load: math.Nextafter(1, 0)}); err != nil {
		t.Fatalf("just-below-unit load: %v", err)
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestManyFullLoadTenants: unit-load tenants leave zero slack anywhere;
// every pair of their bins is at the robustness boundary.
func TestManyFullLoadTenants(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 5})
	for i := 0; i < 20; i++ {
		if err := cf.Place(packing.Tenant{ID: packing.TenantID(i), Load: 1}); err != nil {
			t.Fatal(err)
		}
	}
	p := cf.Placement()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each tenant needs its own pair of servers: level 0.5 + failover 0.5
	// saturates both, so nothing can share.
	if got := p.NumUsedServers(); got != 40 {
		t.Fatalf("unit tenants used %d servers, want 40", got)
	}
}

// TestAdversarialAlternation alternates huge and tiny tenants to stress
// stage transitions.
func TestAdversarialAlternation(t *testing.T) {
	r := rng.New(271828)
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	for i := 0; i < 400; i++ {
		var load float64
		if i%2 == 0 {
			load = 0.7 + 0.3*r.Float64() // huge
		} else {
			load = 0.001 + 0.01*r.Float64() // tiny
		}
		if err := cf.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := cf.Placement().ValidateRobustness(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecreasingAndIncreasingSequences stress the first stage from both
// directions: decreasing loads mature big bins first (heavy first-stage
// reuse), increasing loads starve it.
func TestMonotoneSequences(t *testing.T) {
	for name, transform := range map[string]func(i int) float64{
		"decreasing": func(i int) float64 { return 1 - float64(i)/500 },
		"increasing": func(i int) float64 { return 0.002 + float64(i)/500 },
	} {
		cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
		for i := 0; i < 499; i++ {
			load := transform(i)
			if load <= 0 || load > 1 {
				continue
			}
			if err := cf.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
				t.Fatalf("%s step %d: %v", name, i, err)
			}
		}
		if err := cf.Placement().Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
