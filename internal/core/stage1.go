package core

import (
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// tryFirstStage attempts to place all γ replicas of the tenant into mature
// bins using the Best Fit strategy under the m-fit test. Replicas are
// placed one by one, each into the eligible mature bin with the highest
// level; if some replica has no m-fitting bin, all earlier replicas are
// rolled back and the tenant falls through to the second stage.
//
//cubefit:hotpath
func (cf *CubeFit) tryFirstStage(t packing.Tenant, reps []packing.Replica) bool {
	placed := 0
	for j := range reps {
		b, probed := cf.bestMFit(t, reps[j])
		if cf.rec != nil {
			e := obs.AcquireEvent(obs.KindStage1Probe)
			e.Tenant = int(t.ID)
			e.Replica = j
			e.Probes = probed
			if b != nil {
				e.Server = b.server
			}
			cf.emit(e)
		}
		if b == nil {
			if placed > 0 && cf.rec != nil {
				e := obs.AcquireEvent(obs.KindRollback)
				e.Tenant = int(t.ID)
				e.Reason = "first-stage fallback: no mature bin m-fits the replica"
				cf.emit(e)
			}
			cf.rollbackFirstStage(t, reps, placed)
			return false
		}
		// The placement cannot fail: bestMFit verified capacity, tenant
		// distinctness and the robustness reserve.
		if err := cf.p.Place(b.server, reps[j]); err != nil {
			if placed > 0 && cf.rec != nil {
				e := obs.AcquireEvent(obs.KindRollback)
				e.Tenant = int(t.ID)
				e.Reason = "first-stage fallback: " + err.Error()
				cf.emit(e)
			}
			cf.rollbackFirstStage(t, reps, placed)
			return false
		}
		placed++
		cf.addRef(t.ID, slotRef{server: b.server, slot: -1})
		cf.refreshAfterPlacement(t.ID)
		if cf.rec != nil {
			e := obs.AcquireEvent(obs.KindStage1Place)
			e.Tenant = int(t.ID)
			e.Replica = j
			e.Server = b.server
			e.Size = reps[j].Size
			e.Level = cf.p.Server(b.server).Level()
			cf.emit(e)
		}
	}
	return true
}

// rollbackFirstStage unplaces the first `placed` replicas of the tenant and
// restores the reserve caches of every affected bin.
//
//cubefit:hotpath
func (cf *CubeFit) rollbackFirstStage(t packing.Tenant, reps []packing.Replica, placed int) {
	if placed == 0 {
		return
	}
	hosts := cf.p.TenantHostsInto(t.ID, cf.hostScratch)
	cf.hostScratch = hosts
	for j := 0; j < placed; j++ {
		_ = cf.p.Unplace(t.ID, reps[j].Index)
	}
	cf.releaseRefs(t.ID)
	for _, h := range hosts {
		if h >= 0 {
			cf.refreshBin(cf.bins[h])
		}
	}
}

// refreshAfterPlacement refreshes the reserve caches of every server
// hosting a replica of the tenant (their pairwise shared loads changed).
//
//cubefit:hotpath
func (cf *CubeFit) refreshAfterPlacement(id packing.TenantID) {
	hosts := cf.p.TenantHostsInto(id, cf.hostScratch)
	cf.hostScratch = hosts
	for _, h := range hosts {
		if h >= 0 {
			cf.refreshBin(cf.bins[h])
		}
	}
}

// bestMFit returns the active mature bin with the highest level that m-fits
// the replica (nil if none), along with the number of bins examined. A bin
// B m-fits replica r iff B does not already host the tenant, has room for
// r, and after placing r the empty space of B still covers the worst-case
// load redirected from any γ−1 simultaneous server failures. We
// additionally require that the reserve of the servers hosting the
// tenant's earlier replicas remains sufficient, since placing r increases
// their shared load with B.
//
// The default implementation walks the level index top-down; the reference
// linear scan remains available behind Config.ReferenceFirstStage. Both
// select the same bin: maximize level, break ties on the lower server ID.
func (cf *CubeFit) bestMFit(t packing.Tenant, rep packing.Replica) (best *bin, probed int) {
	if cf.cfg.ReferenceFirstStage {
		return cf.bestMFitScan(t, rep)
	}
	return cf.bestMFitIndexed(t, rep)
}

// bestMFitIndexed is the fast path: it walks the level buckets from the
// highest down and stops after the first bucket that yields a candidate,
// since bins in lower buckets have strictly lower levels and Best Fit
// maximizes level. Within a bucket the exact cached levels break the
// order; the cached slack filters bins that cannot possibly m-fit before
// the server is touched.
//
//cubefit:hotpath
func (cf *CubeFit) bestMFitIndexed(t packing.Tenant, rep packing.Replica) (best *bin, probed int) {
	earlier := cf.placedHosts(t.ID)
	for q := levelBuckets - 1; q >= 0; q-- {
		bk := &cf.index.buckets[q]
		if len(bk.bins) == 0 {
			continue
		}
		// Bucket pruning: the bounds dominate every bin's free capacity
		// and usable slack, and m-fitting needs rep.Size within both, so
		// a bucket failing either cannot contain a candidate. Skipped
		// buckets contribute no probes — only bins reaching the m-fit
		// test below are counted.
		if !packing.FitsWithin(rep.Size, bk.freeUB) || !packing.FitsWithin(rep.Size, bk.slackUB) {
			continue
		}
		bestLevel := -1.0
		// The walk visits every bin, so it re-tightens the bucket bounds
		// to the exact maxima for free.
		maxSlack, maxFree := 0.0, 0.0
		for i := 0; i < len(bk.bins); i++ {
			b := bk.bins[i]
			if packing.FitsWithin(b.slack, cf.cfg.PruneSlack) {
				// Defensive retirement, mirroring the reference scan;
				// refreshBin retires such bins eagerly, so this is not
				// expected to trigger. remove swaps the last bucket entry
				// into position i, so the scan index stays put.
				cf.removeActive(b)
				cf.retireBin(b)
				i--
				continue
			}
			if b.slack > maxSlack {
				maxSlack = b.slack
			}
			if free := 1 - b.level; free > maxFree {
				maxFree = free
			}
			if b.level < bestLevel ||
				//cubefit:vet-allow floatcmp -- exact tie-break on level keeps Best Fit deterministic
				(b.level == bestLevel && best != nil && b.server > best.server) {
				continue
			}
			if !packing.FitsWithin(rep.Size, b.slack) {
				continue // necessary condition: new reserve only grows
			}
			srv := cf.p.Server(b.server)
			if srv.Hosts(t.ID) {
				continue
			}
			probed++
			if cf.mFits(srv, earlier, rep) {
				best = b
				bestLevel = b.level
			}
		}
		bk.slackUB = maxSlack
		bk.freeUB = maxFree
		if best != nil {
			return best, probed
		}
	}
	return nil, probed
}

// bestMFitScan is the reference implementation: a linear scan over all
// active mature bins. Kept for differential testing (the parity property
// test drives both engines over identical workloads) and as the executable
// specification of the Best Fit tie-break.
//
//cubefit:hotpath
func (cf *CubeFit) bestMFitScan(t packing.Tenant, rep packing.Replica) (best *bin, probed int) {
	earlier := cf.placedHosts(t.ID)
	bestLevel := -1.0
	for i := 0; i < len(cf.active); i++ {
		b := cf.active[i]
		srv := cf.p.Server(b.server)
		slack := 1 - srv.Level() - b.reserve
		if packing.FitsWithin(slack, cf.cfg.PruneSlack) {
			// Permanently retire bins with no usable slack; the scan index
			// stays put because removeActive swaps the last element in.
			cf.removeActive(b)
			cf.retireBin(b)
			i--
			continue
		}
		// Best Fit: maximize level; break ties on the lower server ID so
		// the choice does not depend on active-list scan order.
		if srv.Level() < bestLevel ||
			//cubefit:vet-allow floatcmp -- exact tie-break on level keeps Best Fit deterministic
			(srv.Level() == bestLevel && best != nil && b.server > best.server) {
			continue
		}
		if !packing.FitsWithin(rep.Size, slack) {
			continue // necessary condition: new reserve only grows
		}
		if srv.Hosts(t.ID) {
			continue
		}
		probed++
		if cf.mFits(srv, earlier, rep) {
			best = b
			bestLevel = srv.Level()
		}
	}
	return best, probed
}

// placedHosts returns the servers currently hosting replicas of the tenant
// (empty for the first replica). The result lives in a scratch buffer valid
// until the next placedHosts call.
//
//cubefit:hotpath
func (cf *CubeFit) placedHosts(id packing.TenantID) []int {
	raw := cf.p.TenantHostsInto(id, cf.earlierScratch)
	if raw != nil {
		cf.earlierScratch = raw
	}
	// Filter out unplaced replicas in place (the write index never passes
	// the read index).
	hosts := raw[:0]
	for _, h := range raw {
		if h >= 0 {
			//cubefit:vet-allow hotpath -- in-place filter: hosts aliases the scratch backing array and never outgrows raw
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// mFits performs the exact m-fit test for placing rep on srv given the
// tenant's earlier replicas on `earlier`. The adjusted top-k sums come
// from the incremental per-bin reserve digests by default, making the
// test O(γ) instead of a scan over the server's shared map; the
// reference recomputation stays available behind Config.ReferenceReserve
// and produces bit-identical sums.
//
//cubefit:hotpath
func (cf *CubeFit) mFits(srv *packing.Server, earlier []int, rep packing.Replica) bool {
	k := cf.cfg.Gamma - 1
	level := srv.Level()
	if !packing.WithinCapacity(level + rep.Size) {
		return false
	}
	// Candidate server: its shared load with each earlier host grows by
	// rep.Size once rep lands here.
	after := cf.adjustedReserve(srv, k, earlier, rep.Size)
	if !packing.WithinCapacity(level + rep.Size + after) {
		return false
	}
	// Earlier hosts: their shared load with the candidate grows by the size
	// of their own replica of this tenant, which equals rep.Size.
	self := [1]int{srv.ID()}
	for _, h := range earlier {
		hs := cf.p.Server(h)
		afterH := cf.adjustedReserve(hs, k, self[:], rep.Size)
		if !packing.WithinCapacity(hs.Level() + afterH) {
			return false
		}
	}
	return true
}

// adjustedReserve dispatches the hypothetical top-k shared sum to the
// server's reserve digest (fast path) or the reference shared-map scan.
//
//cubefit:hotpath
func (cf *CubeFit) adjustedReserve(s *packing.Server, k int, bump []int, delta float64) float64 {
	if cf.cachedReserve {
		return cf.bins[s.ID()].digest.adjustedTopSum(k, bump, delta, s)
	}
	return topSharedAdjusted(s, k, bump, delta)
}

// topSharedAdjusted computes the sum of the k largest shared loads of s
// after hypothetically adding delta to its shared load with each server in
// bump (servers absent from the shared map count as delta).
//
//cubefit:hotpath
func topSharedAdjusted(s *packing.Server, k int, bump []int, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	var top [8]float64 // k is γ−1, far below 8 for any valid config
	if k > len(top) {
		k = len(top)
	}
	//cubefit:vet-allow hotpath -- push never escapes: it is called directly and from the EachShared literal below, so it stays on the stack (the m-fit benchmark reports 0 allocs/op)
	push := func(v float64) {
		for i := 0; i < k; i++ {
			if v > top[i] {
				copy(top[i+1:k], top[i:k-1])
				top[i] = v
				break
			}
		}
	}
	seen := 0
	//cubefit:vet-allow hotpath -- the callback is passed to EachShared, which only invokes it inline over the shared map; it does not escape (0 allocs/op)
	s.EachShared(func(j int, v float64) {
		for _, b := range bump {
			if b == j {
				v += delta
				seen++
				break
			}
		}
		push(v)
	})
	if seen < len(bump) {
		// Servers in bump with no current shared load contribute delta.
		for _, b := range bump {
			if s.SharedWith(b) == 0 {
				push(delta)
			}
		}
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += top[i]
	}
	return sum
}
