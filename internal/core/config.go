// Package core implements CubeFit, the robust online server-consolidation
// algorithm of Mate, Daudjee and Kamali (ICDCS 2017, §III).
//
// CubeFit classifies replicas by size into K classes and packs replicas of
// class τ into bins partitioned into τ+γ−1 slots, τ of which hold replicas
// while γ−1 remain reserved for failover. Within a class, replicas are
// addressed into γ groups of τ^(γ−1) bins by a base-τ counter and its
// cyclic shifts, which guarantees that any two bins share replicas of at
// most one tenant (Lemma 1) and hence that no server overloads under any
// simultaneous failure of γ−1 servers (Theorem 1). Mature bins — bins whose
// τ replica slots have all been committed — additionally accept smaller
// replicas through a Best Fit first stage guarded by the m-fit test.
package core

import (
	"errors"
	"fmt"
)

// TinyPolicy selects how replicas of the smallest class K (size at most
// 1/(K+γ−1)) are consolidated.
type TinyPolicy int

const (
	// TinyClassKMinusOne places tiny replicas into class-(K−1) bins,
	// accumulating several tiny replicas per slot. This is the empirical
	// optimization the paper uses in its system experiments (§V-A).
	TinyClassKMinusOne TinyPolicy = iota + 1
	// TinyMultiReplica groups tiny replicas into multi-replicas of total
	// size at most 1/αK, where αK is the largest integer with αK²+αK < K,
	// and places them like replicas of class αK−γ+1 (the paper's §III
	// construction used in the worst-case analysis).
	TinyMultiReplica
)

// String returns the policy name.
func (tp TinyPolicy) String() string {
	switch tp {
	case TinyClassKMinusOne:
		return "class-k-minus-one"
	case TinyMultiReplica:
		return "multi-replica"
	default:
		return fmt.Sprintf("tiny-policy(%d)", int(tp))
	}
}

// Config parameterizes CubeFit.
type Config struct {
	// Gamma is the number of replicas per tenant; the resulting placement
	// tolerates any Gamma−1 simultaneous server failures. The paper uses
	// 2 or 3.
	Gamma int
	// K is the number of replica size classes. The paper suggests 10 for
	// data centers with thousands of servers and 5 for small settings.
	K int
	// TinyPolicy selects the class-K strategy; the zero value means
	// TinyClassKMinusOne.
	TinyPolicy TinyPolicy
	// DisableFirstStage turns off the mature-bin Best Fit stage so that
	// every tenant is placed by the cube construction alone. Used by the
	// first-stage ablation benchmark.
	DisableFirstStage bool
	// PruneSlack, when positive, permanently retires mature bins whose
	// usable slack falls below it. Callers that know a lower bound on
	// future replica sizes (e.g. (δ+β)/γ under the client load model) can
	// set it to keep first-stage scans fast without changing placements.
	PruneSlack float64
	// ReferenceFirstStage makes the first stage use the reference linear
	// scan over all active mature bins instead of the level-bucketed index
	// (see internal/core/index.go). The two are placement-identical — the
	// parity property test asserts byte-identical traces — so the knob
	// exists only for differential testing and index microbenchmarks.
	ReferenceFirstStage bool
	// ReferenceReserve makes the m-fit test and the per-bin reserve cache
	// recompute top-(γ−1) shared sums from the shared maps
	// (topSharedAdjusted / packing.TopShared) instead of reading the
	// incremental per-bin reserve digests (see internal/core/reserve.go).
	// The two are placement-identical — the parity property test asserts
	// byte-identical traces — so the knob exists only for differential
	// testing and reserve microbenchmarks.
	ReferenceReserve bool
}

// DefaultConfig returns the configuration used in the paper's simulation
// experiments: γ=2, K=10.
func DefaultConfig() Config {
	return Config{Gamma: 2, K: 10, TinyPolicy: TinyClassKMinusOne}
}

func (c Config) withDefaults() Config {
	if c.TinyPolicy == 0 {
		c.TinyPolicy = TinyClassKMinusOne
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Gamma < 1 {
		return fmt.Errorf("core: gamma %d < 1", c.Gamma)
	}
	if c.K < 2 {
		return fmt.Errorf("core: K %d < 2", c.K)
	}
	if c.PruneSlack < 0 {
		return errors.New("core: PruneSlack must be non-negative")
	}
	switch c.TinyPolicy {
	case 0, TinyClassKMinusOne: // 0 is the documented default
	case TinyMultiReplica:
		if tc := AlphaK(c.K) - c.Gamma + 1; tc < 1 {
			return fmt.Errorf("core: multi-replica policy needs αK−γ+1 ≥ 1, got %d (K=%d, γ=%d); use TinyClassKMinusOne",
				tc, c.K, c.Gamma)
		}
	default:
		return fmt.Errorf("core: unknown tiny policy %d", c.TinyPolicy)
	}
	return nil
}

// AlphaK returns the largest integer α with α²+α < K, the multi-replica
// grouping parameter of §III.
func AlphaK(k int) int {
	a := 0
	for (a+1)*(a+1)+(a+1) < k {
		a++
	}
	return a
}

// ClassOf returns the class of a replica of the given size under the
// configuration: τ ∈ [1, K−1] when size ∈ (1/(τ+γ), 1/(τ+γ−1)], and K for
// sizes in (0, 1/(K+γ−1)].
func (c Config) ClassOf(size float64) int {
	// size ∈ (1/(τ+γ), 1/(τ+γ−1)]  ⇔  m ≤ 1/size < m+1 with m = τ+γ−1,
	// i.e. size·m ≤ 1 < size·(m+1). Start from the float estimate and
	// correct it with exact multiplicative checks so class boundaries such
	// as size = 1/5 land deterministically.
	m := int(1 / size)
	for m > 1 && size*float64(m) > 1 {
		m--
	}
	for size*float64(m+1) <= 1 {
		m++
	}
	tau := m - c.Gamma + 1
	if tau < 1 {
		tau = 1
	}
	if tau > c.K {
		tau = c.K
	}
	return tau
}

// SlotSize returns the slot size 1/(τ+γ−1) of a class-τ bin.
func (c Config) SlotSize(tau int) float64 {
	return 1 / float64(tau+c.Gamma-1)
}
