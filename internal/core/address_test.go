package core

import "testing"

// TestCubeAddressingPaperExampleGamma2 reproduces the §III example: τ=3,
// γ=2, counter I₃ = (21)₃: the first replica goes to slot (2,1) of the
// first cube (bin prefix 2, slot 1), the second to slot (1,2) of the second
// cube (bin prefix 1, slot 2).
func TestCubeAddressingPaperExampleGamma2(t *testing.T) {
	cb := &cube{tau: 3, cnt: 2*3 + 1, digits: make([]int, 2)}
	cb.loadDigits()
	if cb.digits[0] != 2 || cb.digits[1] != 1 {
		t.Fatalf("digits = %v, want [2 1]", cb.digits)
	}
	binIdx, slotIdx := cb.address(0)
	if binIdx != 2 || slotIdx != 1 {
		t.Fatalf("replica 0 at (%d,%d), want (2,1)", binIdx, slotIdx)
	}
	binIdx, slotIdx = cb.address(1)
	if binIdx != 1 || slotIdx != 2 {
		t.Fatalf("replica 1 at (%d,%d), want (1,2)", binIdx, slotIdx)
	}
}

// TestCubeAddressingPaperExampleGamma3 reproduces the second §III example:
// τ=3, γ=3, I₃ = (001)₃: replicas at slots (0,0,1), (1,0,0) and (0,1,0) of
// cubes 1, 2 and 3 respectively.
func TestCubeAddressingPaperExampleGamma3(t *testing.T) {
	cb := &cube{tau: 3, cnt: 1, digits: make([]int, 3)}
	cb.loadDigits()
	wantDigits := []int{0, 0, 1}
	for i, d := range cb.digits {
		if d != wantDigits[i] {
			t.Fatalf("digits = %v, want %v", cb.digits, wantDigits)
		}
	}
	tests := []struct {
		j        int
		wantBin  int // prefix digits interpreted base 3
		wantSlot int
	}{
		{j: 0, wantBin: 0, wantSlot: 1}, // (0,0,1)
		{j: 1, wantBin: 3, wantSlot: 0}, // (1,0,0): prefix (1,0) = 3
		{j: 2, wantBin: 1, wantSlot: 0}, // (0,1,0): prefix (0,1) = 1
	}
	for _, tt := range tests {
		binIdx, slotIdx := cb.address(tt.j)
		if binIdx != tt.wantBin || slotIdx != tt.wantSlot {
			t.Fatalf("replica %d at (%d,%d), want (%d,%d)",
				tt.j, binIdx, slotIdx, tt.wantBin, tt.wantSlot)
		}
	}
}

// TestCubeAddressesAreDistinctPerBin verifies that over a full counter
// sweep, every (group, bin, slot) triple is used exactly once — each bin of
// type τ receives exactly τ replicas, one per payload slot.
func TestCubeAddressesAreDistinctPerBin(t *testing.T) {
	for _, gamma := range []int{1, 2, 3} {
		for tau := 1; tau <= 4; tau++ {
			size, _ := ipow(tau, gamma)
			seen := make(map[[3]int]bool)
			for cnt := 0; cnt < size; cnt++ {
				cb := &cube{tau: tau, cnt: cnt, digits: make([]int, gamma)}
				cb.loadDigits()
				for j := 0; j < gamma; j++ {
					binIdx, slotIdx := cb.address(j)
					key := [3]int{j, binIdx, slotIdx}
					if seen[key] {
						t.Fatalf("γ=%d τ=%d: duplicate address %v at cnt=%d", gamma, tau, key, cnt)
					}
					if slotIdx < 0 || slotIdx >= tau {
						t.Fatalf("γ=%d τ=%d: slot %d out of range", gamma, tau, slotIdx)
					}
					rowLen, _ := ipow(tau, gamma-1)
					if binIdx < 0 || binIdx >= rowLen {
						t.Fatalf("γ=%d τ=%d: bin %d out of range", gamma, tau, binIdx)
					}
					seen[key] = true
				}
			}
			want, _ := ipow(tau, gamma)
			if len(seen) != want*gamma {
				t.Fatalf("γ=%d τ=%d: %d addresses used, want %d", gamma, tau, len(seen), want*gamma)
			}
		}
	}
}

// TestCubeSharedPrefixLemma checks the combinatorial heart of Lemma 1
// directly on addresses: for two distinct counter values, no pair of
// (group, bin) locations coincides for both values across two different
// groups.
func TestCubeSharedPrefixLemma(t *testing.T) {
	const tau, gamma = 3, 3
	size, _ := ipow(tau, gamma)
	type loc struct{ group, bin int }
	binsOf := func(cnt int) []loc {
		cb := &cube{tau: tau, cnt: cnt, digits: make([]int, gamma)}
		cb.loadDigits()
		out := make([]loc, gamma)
		for j := 0; j < gamma; j++ {
			b, _ := cb.address(j)
			out[j] = loc{group: j, bin: b}
		}
		return out
	}
	for a := 0; a < size; a++ {
		for b := a + 1; b < size; b++ {
			la, lb := binsOf(a), binsOf(b)
			common := 0
			for _, x := range la {
				for _, y := range lb {
					if x == y {
						common++
					}
				}
			}
			// Two tenants share at most one server: at most one common
			// (group, bin) location.
			if common > 1 {
				t.Fatalf("counters %d and %d share %d bins", a, b, common)
			}
		}
	}
}
