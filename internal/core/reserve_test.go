package core

import (
	"bytes"
	"fmt"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
)

// TestReferenceReserveParity is the byte-identical property test required
// by the incremental reserve cache: across random workloads with
// departures, the digest-backed m-fit path and the reference shared-map
// recomputation must produce byte-identical placements and identical
// Stats at γ ∈ {2, 3, 4} — the same contract the first-stage index parity
// test enforces for its knob.
func TestReferenceReserveParity(t *testing.T) {
	for _, gamma := range []int{2, 3, 4} {
		gamma := gamma
		t.Run(fmt.Sprintf("gamma%d", gamma), func(t *testing.T) {
			k := 10
			if gamma == 4 {
				k = 5 // keep (K−1)^γ cube sizes moderate
			}
			for seed := uint64(1); seed <= 8; seed++ {
				cached, err := New(Config{Gamma: gamma, K: k})
				if err != nil {
					t.Fatal(err)
				}
				reference, err := New(Config{Gamma: gamma, K: k, ReferenceReserve: true})
				if err != nil {
					t.Fatal(err)
				}
				tenants := 300
				got := parityWorkload(t, cached, seed, tenants)
				want := parityWorkload(t, reference, seed, tenants)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: cached and reference reserve paths diverged (trace bytes differ)", seed)
				}
				if cached.Stats() != reference.Stats() {
					t.Fatalf("seed %d: stats diverged: cached %+v reference %+v",
						seed, cached.Stats(), reference.Stats())
				}
				if cached.NumActiveMatureBins() != reference.NumActiveMatureBins() {
					t.Fatalf("seed %d: active bin count diverged: cached %d reference %d",
						seed, cached.NumActiveMatureBins(), reference.NumActiveMatureBins())
				}
			}
		})
	}
}

// checkDigests asserts, for every open server, the reserve-cache contract:
// the digest's top-(γ−1) sum equals packing.TopShared exactly (not within
// a tolerance — the parity discipline requires bit equality), the digest
// is sorted descending, holds only live shared entries, and when
// saturated every untracked peer is bounded by the digest minimum.
func checkDigests(t *testing.T, cf *CubeFit, op string) {
	t.Helper()
	k := cf.cfg.Gamma - 1
	for _, b := range cf.bins {
		d := &b.digest
		srv := cf.p.Server(b.server)
		if got, want := d.topSum(k), srv.TopShared(k); got != want {
			t.Fatalf("%s: server %d: digest top-%d sum %v != TopShared %v", op, b.server, k, got, want)
		}
		if d.sat && d.n != digestSize {
			t.Fatalf("%s: server %d: saturated digest with %d entries", op, b.server, d.n)
		}
		if d.n > srv.NumShared() {
			t.Fatalf("%s: server %d: digest holds %d entries, server shares with %d", op, b.server, d.n, srv.NumShared())
		}
		if !d.sat && d.n != srv.NumShared() {
			t.Fatalf("%s: server %d: unsaturated digest holds %d of %d shared entries", op, b.server, d.n, srv.NumShared())
		}
		for i := 0; i < d.n; i++ {
			if i > 0 && d.v[i] > d.v[i-1] {
				t.Fatalf("%s: server %d: digest not descending at %d", op, b.server, i)
			}
			if got := srv.SharedWith(d.id[i]); got != d.v[i] {
				t.Fatalf("%s: server %d: digest peer %d holds %v, map holds %v", op, b.server, d.id[i], d.v[i], got)
			}
		}
		if d.sat {
			min := d.v[d.n-1]
			srv.EachShared(func(j int, v float64) {
				for i := 0; i < d.n; i++ {
					if d.id[i] == j {
						return
					}
				}
				if v > min {
					t.Fatalf("%s: server %d: untracked peer %d load %v exceeds digest minimum %v",
						op, b.server, j, v, min)
				}
			})
		}
	}
}

// TestReserveDigestMatchesTopShared is the exact-equality churn gate: a
// randomized place/unplace/depart run checking after every operation that
// every server's digest answers top-(γ−1) queries with the exact value
// packing.TopShared computes from the shared map (mirroring the headroom
// incremental==exhaustive gate). CI runs it under the race detector like
// the rest of the tree.
func TestReserveDigestMatchesTopShared(t *testing.T) {
	for _, gamma := range []int{2, 3, 4} {
		gamma := gamma
		t.Run(fmt.Sprintf("gamma%d", gamma), func(t *testing.T) {
			k := 10
			if gamma == 4 {
				k = 5
			}
			cf, err := New(Config{Gamma: gamma, K: k})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(99)
			live := make([]packing.TenantID, 0, 256)
			tenants := 250
			if testing.Short() {
				tenants = 80
			}
			for i := 0; i < tenants; i++ {
				size := 0.001 + (0.9/float64(gamma)-0.001)*r.Float64()
				id := packing.TenantID(i + 1)
				if err := cf.Place(packing.Tenant{ID: id, Load: size * float64(gamma)}); err != nil {
					t.Fatalf("place tenant %d: %v", id, err)
				}
				live = append(live, id)
				checkDigests(t, cf, fmt.Sprintf("place %d", id))
				if len(live) > 4 && r.Float64() < 0.3 {
					victim := int(r.Uint64() % uint64(len(live)))
					id := live[victim]
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := cf.Remove(id); err != nil {
						t.Fatalf("remove tenant %d: %v", id, err)
					}
					checkDigests(t, cf, fmt.Sprintf("remove %d", id))
				}
			}
		})
	}
}

// TestAdjustedTopSumMatchesReference cross-checks the digest's adjusted
// query — the m-fit inner loop — against topSharedAdjusted on every
// server of a churned placement, for random bump sets and deltas.
func TestAdjustedTopSumMatchesReference(t *testing.T) {
	for _, gamma := range []int{2, 3, 4} {
		gamma := gamma
		t.Run(fmt.Sprintf("gamma%d", gamma), func(t *testing.T) {
			k := 10
			if gamma == 4 {
				k = 5
			}
			cf, err := New(Config{Gamma: gamma, K: k})
			if err != nil {
				t.Fatal(err)
			}
			parityWorkload(t, cf, 7, 300)
			r := rng.New(13)
			n := cf.p.NumServers()
			for _, b := range cf.bins {
				srv := cf.p.Server(b.server)
				for trial := 0; trial < 4; trial++ {
					bump := make([]int, 0, gamma-1)
					for len(bump) < gamma-1 {
						c := int(r.Uint64() % uint64(n+2)) // may name absent peers
						if c == b.server {
							continue
						}
						dup := false
						for _, e := range bump {
							dup = dup || e == c
						}
						if !dup {
							bump = append(bump, c)
						}
					}
					delta := 0.001 + 0.2*r.Float64()
					got := b.digest.adjustedTopSum(gamma-1, bump, delta, srv)
					want := topSharedAdjusted(srv, gamma-1, bump, delta)
					if got != want {
						t.Fatalf("server %d bump %v delta %v: digest %v != reference %v",
							b.server, bump, delta, got, want)
					}
				}
			}
		})
	}
}
