package core

import (
	"math"
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/rng"
	"cubefit/internal/workload"
)

func TestTopSharedAdjusted(t *testing.T) {
	p, err := packing.NewPlacement(3)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1, s2, s3 := p.OpenServer(), p.OpenServer(), p.OpenServer(), p.OpenServer()
	place := func(id packing.TenantID, load float64, hosts ...int) {
		t.Helper()
		if err := p.AddTenant(packing.Tenant{ID: id, Load: load}); err != nil {
			t.Fatal(err)
		}
		for i, r := range p.Replicas(packing.Tenant{ID: id, Load: load}) {
			if err := p.Place(hosts[i], r); err != nil {
				t.Fatal(err)
			}
		}
	}
	place(1, 0.3, s0, s1, s2) // replicas 0.1: shared(s0,s1)=shared(s0,s2)=0.1
	place(2, 0.6, s0, s1, s3) // replicas 0.2: shared(s0,s1)=0.3, shared(s0,s3)=0.2

	srv := p.Server(s0)
	// Without adjustment, top-2 shared = 0.3 (s1) + 0.2 (s3).
	if got := topSharedAdjusted(srv, 2, nil, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("baseline top-2 = %v, want 0.5", got)
	}
	// Bumping s2 by 0.25 lifts it from 0.1 to 0.35: top-2 = 0.35 + 0.3.
	if got := topSharedAdjusted(srv, 2, []int{s2}, 0.25); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("adjusted top-2 = %v, want 0.65", got)
	}
	// Bumping an unrelated server with no current share contributes delta.
	s4 := p.OpenServer()
	if got := topSharedAdjusted(srv, 2, []int{s4}, 0.4); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("new-neighbour top-2 = %v, want 0.7", got)
	}
	// k=0 short-circuits.
	if got := topSharedAdjusted(srv, 0, []int{s4}, 0.4); got != 0 {
		t.Fatalf("k=0 = %v", got)
	}
}

// TestFirstStageRollback forces the first stage to succeed for the first
// replica and fail for the second, and checks that the placement state is
// fully restored before the second stage runs.
func TestFirstStageRollback(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	// Mature a pair of class-1 bins: tenants of load 0.7 (replicas 0.35).
	placeAll(t, cf, []packing.Tenant{{ID: 1, Load: 0.7}})
	if cf.NumActiveMatureBins() != 2 {
		t.Fatalf("active mature bins = %d, want 2", cf.NumActiveMatureBins())
	}
	// Each bin has level 0.35, reserve 0.35, slack 0.30. A tenant of load
	// 0.5 (replicas 0.25) m-fits the first replica into one bin; placing
	// the second replica into the sibling bin would push the pairwise
	// shared load to 0.35+0.25 = 0.6 and the level to 0.6, violating
	// level + shared ≤ 1 (1.2) — so the whole tenant must roll back.
	before := cf.Placement().NumUsedServers()
	placeAll(t, cf, []packing.Tenant{{ID: 2, Load: 0.5}})
	st := cf.Stats()
	if st.FirstStageTenants != 0 {
		t.Fatalf("tenant should have fallen through to the second stage: %+v", st)
	}
	if cf.Placement().NumUsedServers() <= before {
		t.Fatal("second stage did not open new servers")
	}
	// The mature bins must be exactly as before the attempt.
	for _, sid := range []int{0, 1} {
		srv := cf.Placement().Server(sid)
		if srv.NumReplicas() != 1 || math.Abs(srv.Level()-0.35) > 1e-12 {
			t.Fatalf("rollback left residue on server %d: level %v, %d replicas",
				sid, srv.Level(), srv.NumReplicas())
		}
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFirstStagePartialFit: when only some replicas m-fit, none may stay.
func TestFirstStagePartialFitAllOrNothing(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 40; trial++ {
		cf := mustCubeFit(t, Config{Gamma: 2, K: 8})
		src, err := workload.NewLoadSource(1, r.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			tn := src.Next()
			if err := cf.Place(tn); err != nil {
				t.Fatal(err)
			}
			hosts := cf.Placement().TenantHosts(tn.ID)
			placed := 0
			for _, h := range hosts {
				if h >= 0 {
					placed++
				}
			}
			if placed != 2 {
				t.Fatalf("trial %d: tenant %d has %d placed replicas", trial, tn.ID, placed)
			}
		}
	}
}

// TestCubeCounterWrapAround drives one class through several full counter
// sweeps and verifies fresh groups are opened and all placements stay
// valid.
func TestCubeCounterWrapAround(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10, DisableFirstStage: true})
	// Class 2 for γ=2 covers replica sizes (1/4, 1/3]: load 0.6 → 0.3.
	// τ^γ = 4 addresses per sweep; run 6 sweeps.
	const perSweep = 4
	for i := 0; i < 6*perSweep; i++ {
		placeAll(t, cf, []packing.Tenant{{ID: packing.TenantID(i), Load: 0.6}})
	}
	p := cf.Placement()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each sweep uses 2 groups × 2 bins, every bin holding 2 replicas:
	// 24 tenants × 2 replicas / 2 per bin = 24 bins.
	if got := p.NumUsedServers(); got != 24 {
		t.Fatalf("used %d servers, want 24", got)
	}
	for _, s := range p.Servers() {
		if s.NumReplicas() != 2 {
			t.Fatalf("server %d has %d replicas, want 2", s.ID(), s.NumReplicas())
		}
	}
}

// TestMatureBinReceivesAtMostTauStageTwoReplicas: the cube discipline
// never packs more than τ same-class replicas into a type-τ bin.
func TestStageTwoSlotDiscipline(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 3, K: 10, DisableFirstStage: true})
	// Class 3 for γ=3: replica sizes (1/6, 1/5]: load 0.55 ⇒ replica ~0.1833.
	for i := 0; i < 200; i++ {
		placeAll(t, cf, []packing.Tenant{{ID: packing.TenantID(i), Load: 0.55}})
	}
	for _, s := range cf.Placement().Servers() {
		if n := s.NumReplicas(); n > 3 {
			t.Fatalf("server %d holds %d class-3 replicas, max 3", s.ID(), n)
		}
	}
}

// TestPruneRetiresBins: with a prune bound, exhausted mature bins leave
// the active list permanently.
func TestPruneRetiresBins(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10, PruneSlack: 0.05})
	src, err := workload.NewLoadSource(1, 17)
	if err != nil {
		t.Fatal(err)
	}
	placeAll(t, cf, workload.Take(src, 1500))
	retired := 0
	for _, b := range cf.bins {
		if b.retired {
			retired++
		}
		if b.retired && b.activeIdx != -1 {
			t.Fatalf("bin %d retired but still active", b.server)
		}
	}
	if retired == 0 {
		t.Fatal("no bins were retired despite a prune bound")
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveReactivatesBin: a departure that restores slack puts a retired
// bin back into first-stage service.
func TestRemoveReactivatesBin(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10, PruneSlack: 0.05})
	src, err := workload.NewLoadSource(1, 19)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 800)
	placeAll(t, cf, tenants)
	activeBefore := cf.NumActiveMatureBins()
	for _, tn := range tenants[:400] {
		if err := cf.Remove(tn.ID); err != nil {
			t.Fatal(err)
		}
	}
	if cf.NumActiveMatureBins() <= activeBefore {
		t.Fatalf("departures did not reactivate bins: %d -> %d",
			activeBefore, cf.NumActiveMatureBins())
	}
	if err := cf.Placement().Validate(); err != nil {
		t.Fatal(err)
	}
}
