package core

import "cubefit/internal/packing"

// The incremental reserve cache: every bin carries a small sorted digest
// of its server's largest pairwise shared loads, maintained from the
// shared-load deltas packing.Placement reports through SetSharedHook. The
// m-fit reserve of Theorem 1 — the sum of the top γ−1 shared loads — then
// falls out of the digest as an O(γ) sum instead of a scan over the whole
// shared map, which is what makes per-probe cost independent of how many
// peers a server shares tenants with.
//
// Invariant (the churn property test asserts it after every operation):
// the digest holds the `n` largest shared loads of the server, sorted
// descending, and when `sat` is set every untracked peer's shared load is
// at most the digest minimum. `sat` implies n == digestSize, so any top-k
// query with k ≤ digestSize is answered exactly. The only operation that
// cannot be repaired locally — a tracked entry shrinking below the digest
// minimum while untracked peers exist — rebuilds the digest from the
// shared map; that happens on departures and rollbacks only, never on the
// admission probe path.
//
// Determinism: sums are always taken over the digest's descending value
// order, which is the same value sequence packing.TopShared and
// topSharedAdjusted produce, so the cached engine is bit-identical to the
// reference (ties at the digest boundary may retain either peer ID, but
// the retained value multiset — and hence every sum — is identical).

// digestSize is the digest capacity. The cached reserve path needs
// γ−1 ≤ digestSize to answer top-(γ−1) queries exactly, and the adjusted
// query additionally bumps up to γ−1 peers; 8 covers every configuration
// up to γ=9, far beyond the paper's γ ∈ {2, 3}.
const digestSize = 8

// topKDigest tracks the largest shared loads of one server, descending.
type topKDigest struct {
	n   int  // live entries in id/v
	sat bool // untracked peers exist (and are ≤ v[n-1]); implies n == digestSize
	id  [digestSize]int
	v   [digestSize]float64
}

// update repairs the digest after the server's shared load with peer
// changed to v (0 means the entry was removed). srv is the digest's own
// server, consulted only on the rebuild path.
//
//cubefit:hotpath
func (d *topKDigest) update(peer int, v float64, srv *packing.Server) {
	i := -1
	for j := 0; j < d.n; j++ {
		if d.id[j] == peer {
			i = j
			break
		}
	}
	if i < 0 {
		// Untracked peer: removals and decreases stay below the digest
		// minimum by the invariant; an increase enters if it beats the
		// minimum or the digest has room.
		if v == 0 { // exact: packing deletes negligible entries and reports exactly 0
			return
		}
		if d.n < digestSize {
			d.insert(peer, v)
			return
		}
		if v > d.v[digestSize-1] {
			// Evict the minimum; the evicted value is ≥ every untracked
			// load, so the invariant survives with sat set.
			d.n--
			d.insert(peer, v)
		}
		d.sat = true
		return
	}
	switch {
	case v == 0: // exact: packing deletes negligible entries and reports exactly 0
		// Tracked entry removed. With untracked peers some may now belong
		// in the digest; rebuild. Otherwise shift the tail up.
		if d.sat {
			d.rebuild(srv)
			return
		}
		copy(d.id[i:d.n-1], d.id[i+1:d.n])
		copy(d.v[i:d.n-1], d.v[i+1:d.n])
		d.n--
	case v >= d.v[i]:
		// Increase: bubble the entry toward the front.
		for i > 0 && v > d.v[i-1] {
			d.id[i], d.v[i] = d.id[i-1], d.v[i-1]
			i--
		}
		d.id[i], d.v[i] = peer, v
	default:
		// Decrease: if the new value dips below the digest minimum while
		// untracked peers exist, one of them may now outrank it — rebuild.
		// (i == n-1 compares v against the entry's own old value, which a
		// decrease always fails, so the minimum entry rebuilds too.)
		if d.sat && v < d.v[d.n-1] {
			d.rebuild(srv)
			return
		}
		for i < d.n-1 && v < d.v[i+1] {
			d.id[i], d.v[i] = d.id[i+1], d.v[i+1]
			i++
		}
		d.id[i], d.v[i] = peer, v
	}
}

// insert places a new entry into the sorted arrays (caller guarantees
// room). Strict comparison keeps equal values in arrival order; only the
// value multiset matters for the sums the digest serves.
//
//cubefit:hotpath
func (d *topKDigest) insert(peer int, v float64) {
	i := d.n
	for i > 0 && v > d.v[i-1] {
		d.id[i], d.v[i] = d.id[i-1], d.v[i-1]
		i--
	}
	d.id[i], d.v[i] = peer, v
	d.n++
}

// rebuild repopulates the digest from the server's shared map: the
// digestSize largest loads, descending. Runs only when a tracked entry
// shrank or vanished while untracked peers existed (departures and
// rollbacks), so the admission probe path never pays the scan.
func (d *topKDigest) rebuild(srv *packing.Server) {
	d.n = 0
	d.sat = false
	//cubefit:vet-allow hotpath -- the callback is passed to EachShared, which only invokes it inline over the shared map; it does not escape
	srv.EachShared(func(j int, v float64) {
		if d.n < digestSize {
			d.insert(j, v)
			return
		}
		if v > d.v[digestSize-1] {
			d.n--
			d.insert(j, v)
		}
	})
	d.sat = srv.NumShared() > d.n
}

// topSum returns the sum of the k largest shared loads — the Theorem 1
// reserve for k = γ−1 — summed in descending order, bit-identical to
// packing.TopShared for every k ≤ digestSize.
//
//cubefit:hotpath
func (d *topKDigest) topSum(k int) float64 {
	if k > d.n {
		k = d.n
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += d.v[i]
	}
	return sum
}

// adjustedTopSum returns the sum of the k largest shared loads after
// hypothetically adding delta to the load shared with each server in bump
// (absent peers count as delta) — the cached equivalent of
// topSharedAdjusted. Exact because sat implies n == digestSize ≥ k, so
// the digest plus the bumped peers dominates every untracked load; ties
// at the boundary change only which equal value is counted, not the sum.
//
//cubefit:hotpath
func (d *topKDigest) adjustedTopSum(k int, bump []int, delta float64, srv *packing.Server) float64 {
	if k <= 0 {
		return 0
	}
	var top [digestSize]float64
	if k > len(top) {
		k = len(top)
	}
	//cubefit:vet-allow hotpath -- push never escapes: it is only called directly below, so it stays on the stack (the m-fit benchmark reports 0 allocs/op)
	push := func(v float64) {
		for i := 0; i < k; i++ {
			if v > top[i] {
				copy(top[i+1:k], top[i:k-1])
				top[i] = v
				break
			}
		}
	}
	var bumped [digestSize]bool // bump is at most γ−1 ≤ digestSize entries
	for i := 0; i < d.n; i++ {
		v := d.v[i]
		for bi, b := range bump {
			if b == d.id[i] {
				v += delta
				bumped[bi] = true
				break
			}
		}
		push(v)
	}
	for bi, b := range bump {
		if !bumped[bi] {
			// Peer outside the digest: its true load is at most the digest
			// minimum, so only its bumped value can reach the top k.
			push(srv.SharedWith(b) + delta)
		}
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += top[i]
	}
	return sum
}
