package core

import (
	"sort"
	"testing"

	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

// recorded keeps every event for assertions.
type recorded struct{ events []obs.Event }

func (r *recorded) Record(e obs.Event) { r.events = append(r.events, e) }

func (r *recorded) byKind(k obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// workloadTenants draws n uniform(1..15) tenants through the default load
// model, the Figure 6 workload shape.
func workloadTenants(t *testing.T, n int, seed uint64) []packing.Tenant {
	t.Helper()
	u, err := workload.NewUniform(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewClientSource(workload.DefaultLoadModel(), u, seed)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Take(src, n)
}

// TestEventsReconstructDecisions is the core of the flight-recorder
// contract: replaying the event stream must reproduce, for every admitted
// tenant, exactly the path core.Stats aggregates and exactly the servers
// the placement records.
func TestEventsReconstructDecisions(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	rec := &recorded{}
	cf.SetRecorder(rec)

	tenants := workloadTenants(t, 400, 7)
	placeAll(t, cf, tenants)

	ds := obs.Decisions(rec.events)
	if len(ds) != len(tenants) {
		t.Fatalf("reconstructed %d decisions, want %d", len(ds), len(tenants))
	}

	// Path counts must match the engine's own statistics.
	st := cf.Stats()
	counts := obs.CountPaths(ds)
	if counts[AdmitFirstStage.String()] != st.FirstStageTenants ||
		counts[AdmitRegular.String()] != st.RegularTenants ||
		counts[AdmitTiny.String()] != st.TinyTenants {
		t.Errorf("path counts %v != stats %+v", counts, st)
	}
	if counts[obs.PathUnknown] != 0 || counts[AdmitRejected.String()] != 0 {
		t.Errorf("unexpected unknown/rejected decisions: %v", counts)
	}

	// Per-tenant: the reconstructed replica servers must equal the
	// placement's TenantHosts, and replica indices must be complete.
	for _, d := range ds {
		hosts := cf.Placement().TenantHosts(packing.TenantID(d.Tenant))
		if len(d.Replicas) != len(hosts) {
			t.Fatalf("tenant %d: %d replicas in log, %d hosts placed",
				d.Tenant, len(d.Replicas), len(hosts))
		}
		got := make([]int, 0, len(d.Replicas))
		for _, r := range d.Replicas {
			got = append(got, r.Server)
		}
		want := append([]int(nil), hosts...)
		sort.Ints(got)
		sort.Ints(want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tenant %d: servers %v in log, %v placed", d.Tenant, got, want)
			}
		}
		if d.Engine != "cubefit" {
			t.Fatalf("tenant %d: engine %q", d.Tenant, d.Engine)
		}
	}
}

// TestCubeEventsCarryAddress asserts second-stage decisions include the
// full cube address: class, counter, base-τ digits, and per-replica slot.
func TestCubeEventsCarryAddress(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	rec := &recorded{}
	cf.SetRecorder(rec)
	placeAll(t, cf, workloadTenants(t, 200, 3))

	checked := 0
	for _, d := range obs.Decisions(rec.events) {
		if d.Path != AdmitRegular.String() {
			continue
		}
		checked++
		if d.Class == obs.Unset || d.Counter == obs.Unset {
			t.Fatalf("tenant %d: regular decision without cube address: %+v", d.Tenant, d)
		}
		if len(d.Digits) == 0 {
			t.Fatalf("tenant %d: no counter digits", d.Tenant)
		}
		// The digits are the base-τ expansion of the counter (τ = class).
		v := 0
		for _, digit := range d.Digits {
			if digit < 0 || digit >= d.Class {
				t.Fatalf("tenant %d: digit %d outside base %d", d.Tenant, digit, d.Class)
			}
			v = v*d.Class + digit
		}
		if v != d.Counter {
			t.Fatalf("tenant %d: digits %v (base %d) = %d, counter says %d",
				d.Tenant, d.Digits, d.Class, v, d.Counter)
		}
		for _, r := range d.Replicas {
			if r.Slot == obs.Unset || r.FirstStage {
				t.Fatalf("tenant %d: cube replica without slot: %+v", d.Tenant, r)
			}
		}
	}
	if checked == 0 {
		t.Fatal("workload produced no regular admissions; test is vacuous")
	}
}

// TestBinLifecycleEvents checks bin_open covers every opened server and
// retire/reactivate fire only on state transitions.
func TestBinLifecycleEvents(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 10})
	rec := &recorded{}
	cf.SetRecorder(rec)
	placeAll(t, cf, workloadTenants(t, 300, 11))

	opens := rec.byKind(obs.KindBinOpen)
	if len(opens) != cf.Placement().NumServers() {
		t.Errorf("bin_open events = %d, servers opened = %d",
			len(opens), cf.Placement().NumServers())
	}
	seen := make(map[int]bool)
	for _, e := range opens {
		if seen[e.Server] {
			t.Errorf("server %d opened twice", e.Server)
		}
		seen[e.Server] = true
	}
	for _, e := range rec.byKind(obs.KindBinMature) {
		if e.Server == obs.Unset || e.Level <= 0 {
			t.Errorf("bin_mature without server/level: %+v", e)
		}
	}
}

// TestRollbackEventOnInjectedFault forces a mid-admission fault and
// asserts the decision shows the rejection with its rollback trail.
func TestRollbackEventOnInjectedFault(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 5})
	rec := &recorded{}
	cf.SetRecorder(rec)

	if err := cf.Place(packing.Tenant{ID: 1, Load: 0.4}); err != nil {
		t.Fatal(err)
	}
	cf.placeFault = failOnCall(2)
	if err := cf.Place(packing.Tenant{ID: 2, Load: 0.4}); err == nil {
		t.Fatal("injected fault did not surface")
	}
	cf.placeFault = nil

	d, ok := obs.DecisionFor(rec.events, 2)
	if !ok {
		t.Fatal("no decision for the faulted tenant")
	}
	if d.Path != AdmitRejected.String() {
		t.Errorf("path = %q, want rejected", d.Path)
	}
	if len(d.Rollbacks) == 0 {
		t.Error("rejected decision has no rollback trail")
	}
	if d.Reason == "" {
		t.Error("rejected decision has no reason")
	}
	if len(d.Replicas) != 0 {
		t.Errorf("rejected decision kept replicas: %+v", d.Replicas)
	}
}

// TestDepartEmitsEvent checks Remove records the departure.
func TestDepartEmitsEvent(t *testing.T) {
	cf := mustCubeFit(t, Config{Gamma: 2, K: 5})
	rec := &recorded{}
	cf.SetRecorder(rec)
	if err := cf.Place(packing.Tenant{ID: 9, Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Remove(9); err != nil {
		t.Fatal(err)
	}
	departs := rec.byKind(obs.KindDepart)
	if len(departs) != 1 || departs[0].Tenant != 9 {
		t.Errorf("departs = %+v", departs)
	}
}

// TestNilRecorderIsInert double-checks the default path places identically
// with no recorder attached (the benchmark guards the cost; this guards
// behavior).
func TestNilRecorderIsInert(t *testing.T) {
	plain := mustCubeFit(t, Config{Gamma: 2, K: 10})
	traced := mustCubeFit(t, Config{Gamma: 2, K: 10})
	traced.SetRecorder(&recorded{})

	tenants := workloadTenants(t, 150, 5)
	placeAll(t, plain, tenants)
	placeAll(t, traced, tenants)

	if plain.Stats() != traced.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", plain.Stats(), traced.Stats())
	}
	for _, tn := range tenants {
		a := plain.Placement().TenantHosts(tn.ID)
		b := traced.Placement().TenantHosts(tn.ID)
		if len(a) != len(b) {
			t.Fatalf("tenant %d host count diverges", tn.ID)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tenant %d hosts diverge: %v vs %v", tn.ID, a, b)
			}
		}
	}
}
