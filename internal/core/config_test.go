package core

import (
	"math"
	"testing"
)

func TestAlphaK(t *testing.T) {
	tests := []struct {
		k    int
		want int
	}{
		{k: 2, want: 0},
		{k: 3, want: 1}, // 1+1=2 < 3
		{k: 5, want: 1},
		{k: 6, want: 1}, // 2²+2=6 is not < 6
		{k: 7, want: 2},
		{k: 10, want: 2},
		{k: 12, want: 2}, // 3²+3=12 is not < 12
		{k: 13, want: 3},
		{k: 20, want: 3},
		{k: 21, want: 4},
	}
	for _, tt := range tests {
		if got := AlphaK(tt.k); got != tt.want {
			t.Errorf("AlphaK(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cfg := Config{Gamma: 2, K: 10}
	tests := []struct {
		size float64
		want int
	}{
		// Class τ covers (1/(τ+2), 1/(τ+1)] for γ=2.
		{size: 0.5, want: 1},  // (1/3, 1/2]
		{size: 0.34, want: 1}, //
		{size: 1.0 / 3, want: 2},
		{size: 0.3, want: 2},       // (1/4, 1/3]
		{size: 0.25, want: 3},      // boundary of (1/5, 1/4]
		{size: 0.2, want: 4},       // boundary of (1/6, 1/5]
		{size: 0.11, want: 8},      // (1/10, 1/9]
		{size: 0.1, want: 9},       // boundary of (1/11, 1/10]
		{size: 0.095, want: 9},     // (1/11, 1/10]
		{size: 1.0 / 11, want: 10}, // at most 1/(K+γ-1)=1/11: tiny
		{size: 0.05, want: 10},
		{size: 1e-6, want: 10},
	}
	for _, tt := range tests {
		if got := cfg.ClassOf(tt.size); got != tt.want {
			t.Errorf("ClassOf(%v) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestClassOfGamma3(t *testing.T) {
	cfg := Config{Gamma: 3, K: 5}
	tests := []struct {
		size float64
		want int
	}{
		{size: 1.0 / 3, want: 1}, // (1/4, 1/3]
		{size: 0.3, want: 1},
		{size: 0.25, want: 2}, // (1/5, 1/4]
		{size: 0.2, want: 3},  // (1/6, 1/5]
		{size: 1.0 / 6, want: 4},
		{size: 1.0 / 7, want: 5}, // tiny: (0, 1/(5+3-1)] = (0, 1/7]
		{size: 0.01, want: 5},
	}
	for _, tt := range tests {
		if got := cfg.ClassOf(tt.size); got != tt.want {
			t.Errorf("ClassOf(%v) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestClassOfIntervalInvariant(t *testing.T) {
	// For any size, the returned class interval must actually contain the
	// size (or be the tiny class K).
	for _, gamma := range []int{1, 2, 3, 4} {
		cfg := Config{Gamma: gamma, K: 10}
		for i := 1; i <= 10000; i++ {
			size := float64(i) / 10000 / float64(gamma) // (0, 1/γ]
			tau := cfg.ClassOf(size)
			if tau < 1 || tau > cfg.K {
				t.Fatalf("γ=%d size=%v: class %d out of range", gamma, size, tau)
			}
			upper := 1 / float64(tau+gamma-1)
			if size > upper+1e-12 {
				t.Fatalf("γ=%d size=%v: class %d upper bound %v exceeded", gamma, size, tau, upper)
			}
			if tau > 1 && tau < cfg.K {
				lower := 1 / float64(tau+gamma)
				if size <= lower-1e-12 {
					t.Fatalf("γ=%d size=%v: below class %d lower bound %v", gamma, size, tau, lower)
				}
			}
		}
	}
}

func TestSlotSize(t *testing.T) {
	cfg := Config{Gamma: 2, K: 10}
	if got := cfg.SlotSize(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SlotSize(1) = %v", got)
	}
	if got := cfg.SlotSize(9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("SlotSize(9) = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		give   Config
		wantOK bool
	}{
		{name: "default", give: DefaultConfig(), wantOK: true},
		{name: "paper system config", give: Config{Gamma: 3, K: 5, TinyPolicy: TinyClassKMinusOne}, wantOK: true},
		{name: "gamma zero", give: Config{Gamma: 0, K: 10, TinyPolicy: TinyClassKMinusOne}},
		{name: "k too small", give: Config{Gamma: 2, K: 1, TinyPolicy: TinyClassKMinusOne}},
		{name: "negative prune", give: Config{Gamma: 2, K: 10, TinyPolicy: TinyClassKMinusOne, PruneSlack: -1}},
		{name: "bad policy", give: Config{Gamma: 2, K: 10, TinyPolicy: TinyPolicy(9)}},
		{name: "multi-replica ok", give: Config{Gamma: 2, K: 10, TinyPolicy: TinyMultiReplica}, wantOK: true},
		// γ=3, K=5: αK=1, tiny class would be 1−3+1 = −1.
		{name: "multi-replica invalid", give: Config{Gamma: 3, K: 5, TinyPolicy: TinyMultiReplica}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err == nil) != tt.wantOK {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.give, err, tt.wantOK)
			}
		})
	}
}

func TestTinyPolicyString(t *testing.T) {
	if TinyClassKMinusOne.String() != "class-k-minus-one" {
		t.Fatal(TinyClassKMinusOne.String())
	}
	if TinyMultiReplica.String() != "multi-replica" {
		t.Fatal(TinyMultiReplica.String())
	}
	if TinyPolicy(9).String() != "tiny-policy(9)" {
		t.Fatal(TinyPolicy(9).String())
	}
}

func TestIpow(t *testing.T) {
	tests := []struct {
		base, exp int
		want      int
		ok        bool
	}{
		{base: 3, exp: 2, want: 9, ok: true},
		{base: 9, exp: 3, want: 729, ok: true},
		{base: 5, exp: 0, want: 1, ok: true},
		{base: 0, exp: 3, want: 0, ok: true},
		{base: 2, exp: -1, ok: false},
	}
	for _, tt := range tests {
		got, ok := ipow(tt.base, tt.exp)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("ipow(%d,%d) = %d,%v; want %d,%v", tt.base, tt.exp, got, ok, tt.want, tt.ok)
		}
	}
}
