package core

// The first-stage fast path: a level-ordered index over the active mature
// bins. Best Fit wants the highest-level bin that m-fits the replica, so
// the active bins are bucketed by quantized level; a probe walks the
// buckets from the highest level down and can stop at the first bucket
// that yields a candidate, because every bin in a lower bucket has a
// strictly lower level. Each bin additionally caches its exact level and
// its usable slack 1 − level − reserve (both refreshed by refreshBin on
// every mutation of the hosting server), so a probe rejects bins that
// cannot possibly m-fit without touching the server at all.
//
// The index is repaired on the same transitions that maintain the active
// list — refreshBin after placements and departures, maturing, retiring —
// and holds exactly the bins of CubeFit.active. The reference linear scan
// (Config.ReferenceFirstStage) remains available; the parity property
// test asserts both produce byte-identical placements.

// levelBuckets is the number of quantized level buckets. Levels live in
// [0, 1], so each bucket spans 1/levelBuckets of load; 64 keeps buckets
// small (a handful of bins each at experiment scale) while the top-down
// walk over empty buckets stays negligible.
const levelBuckets = 64

// levelBucket quantizes a server level into a bucket index. It is
// monotone, so bins in a higher bucket always have strictly higher levels
// than bins in any lower bucket; levels at or above 1 (possible within
// CapacityEps) clamp into the top bucket.
func levelBucket(level float64) int {
	q := int(level * levelBuckets)
	if q < 0 {
		q = 0
	}
	if q >= levelBuckets {
		q = levelBuckets - 1
	}
	return q
}

// levelIndex buckets the active mature bins by quantized level. Bins track
// their own position (bin.bucket, bin.bucketPos) so removal is O(1) via
// swap-remove, mirroring how CubeFit.active tracks activeIdx.
type levelIndex struct {
	buckets [levelBuckets]levelBucketState
}

// levelBucketState is one quantized-level bucket plus the pruning bounds
// the first stage uses to skip it wholesale. slackUB bounds the maximum
// usable slack 1 − level − reserve of the bucket's bins and freeUB the
// maximum free capacity 1 − level; both are monotone upper bounds —
// raised whenever a bin enters or refreshes with a larger value, never
// lowered on removal or shrink — so staleness can only cost a wasted
// walk, never a missed candidate. A full bucket walk re-tightens them to
// the exact maxima (see bestMFitIndexed), and emptying the bucket resets
// them to zero.
type levelBucketState struct {
	bins    []*bin
	slackUB float64
	freeUB  float64
}

// raise lifts the bucket bounds to cover the bin's current slack and free
// capacity.
//
//cubefit:hotpath
func (bk *levelBucketState) raise(b *bin) {
	if b.slack > bk.slackUB {
		bk.slackUB = b.slack
	}
	if free := 1 - b.level; free > bk.freeUB {
		bk.freeUB = free
	}
}

// insert adds an active bin under its current cached level.
//
//cubefit:hotpath
func (ix *levelIndex) insert(b *bin) {
	q := levelBucket(b.level)
	bk := &ix.buckets[q]
	b.bucket = q
	b.bucketPos = len(bk.bins)
	//cubefit:vet-allow hotpath -- bucket growth is amortized: remove swap-shrinks without releasing capacity, so steady-state churn reuses it
	bk.bins = append(bk.bins, b)
	bk.raise(b)
}

// remove takes the bin out of its bucket (no-op if not indexed). The
// bounds stay put — possibly stale-high — except when the bucket empties,
// which resets them so long-empty buckets are skipped outright.
//
//cubefit:hotpath
func (ix *levelIndex) remove(b *bin) {
	if b.bucket < 0 {
		return
	}
	bk := &ix.buckets[b.bucket]
	last := len(bk.bins) - 1
	i := b.bucketPos
	bk.bins[i] = bk.bins[last]
	bk.bins[i].bucketPos = i
	bk.bins = bk.bins[:last]
	if last == 0 {
		bk.slackUB = 0
		bk.freeUB = 0
	}
	b.bucket = -1
	b.bucketPos = -1
}

// update repositions the bin after a level change, touching the bucket
// slices only when the quantized level actually moved; either way the
// target bucket's bounds are raised to cover the refreshed slack (a bin
// whose slack grew in place — a departure — must widen the bounds or the
// pruning would skip its bucket incorrectly).
//
//cubefit:hotpath
func (ix *levelIndex) update(b *bin) {
	if b.bucket == levelBucket(b.level) {
		ix.buckets[b.bucket].raise(b)
		return
	}
	ix.remove(b)
	ix.insert(b)
}
