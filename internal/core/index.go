package core

// The first-stage fast path: a level-ordered index over the active mature
// bins. Best Fit wants the highest-level bin that m-fits the replica, so
// the active bins are bucketed by quantized level; a probe walks the
// buckets from the highest level down and can stop at the first bucket
// that yields a candidate, because every bin in a lower bucket has a
// strictly lower level. Each bin additionally caches its exact level and
// its usable slack 1 − level − reserve (both refreshed by refreshBin on
// every mutation of the hosting server), so a probe rejects bins that
// cannot possibly m-fit without touching the server at all.
//
// The index is repaired on the same transitions that maintain the active
// list — refreshBin after placements and departures, maturing, retiring —
// and holds exactly the bins of CubeFit.active. The reference linear scan
// (Config.ReferenceFirstStage) remains available; the parity property
// test asserts both produce byte-identical placements.

// levelBuckets is the number of quantized level buckets. Levels live in
// [0, 1], so each bucket spans 1/levelBuckets of load; 64 keeps buckets
// small (a handful of bins each at experiment scale) while the top-down
// walk over empty buckets stays negligible.
const levelBuckets = 64

// levelBucket quantizes a server level into a bucket index. It is
// monotone, so bins in a higher bucket always have strictly higher levels
// than bins in any lower bucket; levels at or above 1 (possible within
// CapacityEps) clamp into the top bucket.
func levelBucket(level float64) int {
	q := int(level * levelBuckets)
	if q < 0 {
		q = 0
	}
	if q >= levelBuckets {
		q = levelBuckets - 1
	}
	return q
}

// levelIndex buckets the active mature bins by quantized level. Bins track
// their own position (bin.bucket, bin.bucketPos) so removal is O(1) via
// swap-remove, mirroring how CubeFit.active tracks activeIdx.
type levelIndex struct {
	buckets [levelBuckets][]*bin
}

// insert adds an active bin under its current cached level.
//
//cubefit:hotpath
func (ix *levelIndex) insert(b *bin) {
	q := levelBucket(b.level)
	b.bucket = q
	b.bucketPos = len(ix.buckets[q])
	//cubefit:vet-allow hotpath -- bucket growth is amortized: remove swap-shrinks without releasing capacity, so steady-state churn reuses it
	ix.buckets[q] = append(ix.buckets[q], b)
}

// remove takes the bin out of its bucket (no-op if not indexed).
//
//cubefit:hotpath
func (ix *levelIndex) remove(b *bin) {
	if b.bucket < 0 {
		return
	}
	bucket := ix.buckets[b.bucket]
	last := len(bucket) - 1
	i := b.bucketPos
	bucket[i] = bucket[last]
	bucket[i].bucketPos = i
	ix.buckets[b.bucket] = bucket[:last]
	b.bucket = -1
	b.bucketPos = -1
}

// update repositions the bin after a level change, touching the bucket
// slices only when the quantized level actually moved.
//
//cubefit:hotpath
func (ix *levelIndex) update(b *bin) {
	if b.bucket == levelBucket(b.level) {
		return
	}
	ix.remove(b)
	ix.insert(b)
}
