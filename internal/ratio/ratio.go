// Package ratio reproduces the paper's worst-case analysis (§III-A,
// Theorem 2): an upper bound on CubeFit's competitive ratio obtained by a
// weighting argument.
//
// Each replica is assigned a weight such that (I) every full CubeFit bin
// carries total weight at least 1, and (II) the total weight any single
// bin of a valid robust packing can carry is at most r. Together these
// give CUBEFIT(σ) ≤ W(σ) ≤ r·OPT(σ). The bound r is the optimum of an
// integer program over the class composition of an adversarial OPT bin,
// which this package solves exactly by branch-and-bound. The paper reports
// r → 1.59 for γ=2 and r → 1.625 for γ=3 as K grows.
package ratio

import (
	"fmt"
	"math"

	"cubefit/internal/core"
	"cubefit/internal/packing"
)

// Bound is the result of solving the weighting integer program.
type Bound struct {
	Gamma int
	K     int
	// Ratio is the competitive-ratio upper bound r.
	Ratio float64
	// Witness is the optimal adversarial bin composition: Witness[i] is the
	// number of class-(i+1) replicas in the bin.
	Witness []int
	// WitnessTiny is the total size of class-K (tiny) replicas in the bin.
	WitnessTiny float64
}

// defaultEps is the symbolic "just above the class boundary" slack of the
// paper's program. It reuses the repository-wide capacity tolerance so the
// symbolic slack and the validators' rounding slack cannot drift apart.
const defaultEps = packing.CapacityEps

// UpperBound solves the Theorem 2 integer program for the given
// replication factor and class count.
func UpperBound(gamma, k int) (Bound, error) {
	if gamma < 2 {
		return Bound{}, fmt.Errorf("ratio: gamma %d < 2 (no failover, no reserve constraint)", gamma)
	}
	if k < 2 {
		return Bound{}, fmt.Errorf("ratio: K %d < 2", k)
	}
	alpha := core.AlphaK(k)
	tinyDensity := 0.0
	if alpha-gamma+1 >= 1 {
		// Weight of a tiny replica of size s is s·(αK+1)/(αK−γ+1); its
		// weight density per unit of size:
		tinyDensity = float64(alpha+1) / float64(alpha-gamma+1)
	}

	s := &solver{
		gamma:       gamma,
		k:           k,
		eps:         defaultEps,
		tinyDensity: tinyDensity,
	}
	// weight and (infimum) size of one replica of class i (1..K−1).
	s.weight = make([]float64, k)
	s.size = make([]float64, k)
	s.density = make([]float64, k)
	for i := 1; i <= k-1; i++ {
		s.weight[i] = 1 / float64(i)
		s.size[i] = 1/float64(gamma+i) + s.eps
		s.density[i] = s.weight[i] / s.size[i]
	}

	best := Bound{Gamma: gamma, K: k, Ratio: -1}

	// Case A: the bin hosts fewer than γ−1 regular replicas, so the reserve
	// equals the total size of ALL its regular replicas (plus nothing for
	// tiny ones, following the paper's program). Enumerate compositions
	// with Σ mi ≤ γ−2.
	s.enumerateSmall(&best)

	// Case B (the paper's program): T is the class of the smallest of the
	// γ−1 largest replicas; all classes below T contribute everything to
	// the reserve, class T contributes M = γ−1−Σ_{i<T} mi of its replicas.
	for T := 1; T <= k-1; T++ {
		s.enumerate(T, &best)
	}
	if best.Ratio < 0 {
		return Bound{}, fmt.Errorf("ratio: no feasible adversarial bin for γ=%d K=%d", gamma, k)
	}
	return best, nil
}

type solver struct {
	gamma, k    int
	eps         float64
	tinyDensity float64
	weight      []float64
	size        []float64
	density     []float64
}

// maxDensityFrom returns the best achievable weight per unit of remaining
// capacity using classes ≥ class or tiny filler. Regular densities
// (γ+i)/i decrease with i, so the maximum is at the current class.
func (s *solver) maxDensityFrom(class int) float64 {
	d := s.tinyDensity
	if class <= s.k-1 && s.density[class] > d {
		d = s.density[class]
	}
	return d
}

// enumerateSmall handles bins with at most γ−2 regular replicas: every
// regular replica doubles as reserve.
func (s *solver) enumerateSmall(best *Bound) {
	counts := make([]int, s.k)
	var rec func(class, total int, usedSize, weight float64)
	rec = func(class, total int, usedSize, weight float64) {
		// Close the composition: fill the remaining capacity with tiny.
		s.finish(counts, usedSize, weight, best)
		if total == s.gamma-2 {
			return
		}
		if weight+(1-usedSize)*s.maxDensityFrom(class) <= best.Ratio {
			return // branch-and-bound: cannot beat the incumbent
		}
		for i := class; i <= s.k-1; i++ {
			// A replica of class i occupies its size twice: once as load,
			// once as reserved space.
			need := 2 * s.size[i]
			if usedSize+need > 1 {
				continue
			}
			counts[i]++
			rec(i, total+1, usedSize+need, weight+s.weight[i])
			counts[i]--
		}
	}
	rec(1, 0, 0, 0)
}

// enumerate solves the paper's program for a fixed T.
func (s *solver) enumerate(T int, best *Bound) {
	gamma := s.gamma
	// Σ_{i<T} mi ≤ γ−2 (there must remain M ≥ 1 replicas of class T among
	// the γ−1 largest). Enumerate the below-T part, then the ≥T part.
	countsBelow := make([]int, s.k)
	var recBelow func(class, total int, usedSize, weight float64)
	recBelow = func(class, total int, usedSize, weight float64) {
		// M replicas of class T complete the γ−1 largest; their reserve is
		// M·(1/(γ+T)+ε) per the paper's program.
		M := gamma - 1 - total
		reserveT := float64(M) * s.size[T]
		s.enumerateUpper(T, M, countsBelow, usedSize+reserveT, weight, best)
		if total == gamma-2 {
			return
		}
		if weight+(1-usedSize)*s.maxDensityFrom(class) <= best.Ratio {
			return // branch-and-bound
		}
		for i := class; i <= T-1; i++ {
			// Below-T replicas count fully in the reserve: size + reserve.
			// Reserve uses the exact class infimum 1/(γ+i) per the paper.
			need := s.size[i] + 1/float64(gamma+i)
			if usedSize+need > 1 {
				continue
			}
			countsBelow[i]++
			recBelow(i, total+1, usedSize+need, weight+s.weight[i])
			countsBelow[i]--
		}
	}
	recBelow(1, 0, 0, 0)
}

// enumerateUpper packs classes T..K−1 (with at least max(M,1) replicas of
// class T) and finishes with tiny filler.
func (s *solver) enumerateUpper(T, M int, countsBelow []int, usedSize, weight float64, best *Bound) {
	if M < 1 {
		return
	}
	minT := M
	needT := float64(minT) * s.size[T]
	if usedSize+needT > 1 {
		return
	}
	counts := make([]int, s.k)
	copy(counts, countsBelow)
	counts[T] += minT
	var rec func(class int, usedSize, weight float64)
	rec = func(class int, usedSize, weight float64) {
		s.finish(counts, usedSize, weight, best)
		if weight+(1-usedSize)*s.maxDensityFrom(class) <= best.Ratio {
			return // branch-and-bound
		}
		for i := class; i <= s.k-1; i++ {
			if usedSize+s.size[i] > 1 {
				continue
			}
			counts[i]++
			rec(i, usedSize+s.size[i], weight+s.weight[i])
			counts[i]--
		}
	}
	rec(T, usedSize+needT, weight+float64(minT)*s.weight[T])
}

// finish adds the tiny filler to a regular composition and updates best.
func (s *solver) finish(counts []int, usedSize, weight float64, best *Bound) {
	tiny := 0.0
	if s.tinyDensity > 0 && usedSize < 1 {
		tiny = 1 - usedSize
		weight += tiny * s.tinyDensity
	}
	if weight > best.Ratio {
		best.Ratio = weight
		best.Witness = make([]int, s.k-1)
		copy(best.Witness, counts[1:])
		best.WitnessTiny = tiny
	}
}

// LowerBoundServers returns a lower bound on the number of servers ANY
// valid robust placement needs for the tenants: the larger of the total
// volume bound (each server holds at most unit load) and the class-1
// counting bound (a server can host at most γ replicas larger than
// 1/(γ+1)).
func LowerBoundServers(tenants []packing.Tenant, gamma int) int {
	volume := 0.0
	bigReplicas := 0
	for _, t := range tenants {
		volume += t.Load
		if t.Load/float64(gamma) > 1/float64(gamma+1) {
			bigReplicas += gamma
		}
	}
	lb := int(math.Ceil(volume - packing.CapacityEps))
	if counting := (bigReplicas + gamma - 1) / gamma; counting > lb {
		lb = counting
	}
	return lb
}

// Empirical runs an algorithm over the tenants and reports the ratio of
// servers used to the lower bound (an upper estimate of the true ratio to
// OPT).
func Empirical(alg packing.Algorithm, tenants []packing.Tenant) (float64, error) {
	if err := packing.PlaceAll(alg, tenants); err != nil {
		return 0, err
	}
	lb := LowerBoundServers(tenants, alg.Placement().Gamma())
	if lb == 0 {
		return 0, fmt.Errorf("ratio: degenerate lower bound for %d tenants", len(tenants))
	}
	return float64(alg.Placement().NumUsedServers()) / float64(lb), nil
}
