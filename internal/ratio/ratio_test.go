package ratio

import (
	"math"
	"testing"

	"cubefit/internal/baseline"
	"cubefit/internal/core"
	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

func TestUpperBoundErrors(t *testing.T) {
	if _, err := UpperBound(1, 10); err == nil {
		t.Fatal("gamma 1 accepted")
	}
	if _, err := UpperBound(2, 1); err == nil {
		t.Fatal("K 1 accepted")
	}
}

// TestTheorem2Gamma2 reproduces the paper's γ=2 bound: the competitive
// ratio approaches 1.59 for large K.
func TestTheorem2Gamma2(t *testing.T) {
	b, err := UpperBound(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Ratio-1.59) > 0.02 {
		t.Fatalf("γ=2 large-K ratio = %v, paper reports ≈1.59", b.Ratio)
	}
	if b.Gamma != 2 || b.K != 200 {
		t.Fatalf("bound mislabelled: %+v", b)
	}
}

// TestTheorem2Gamma3 reproduces the paper's γ=3 bound: ≈1.625 for large K.
func TestTheorem2Gamma3(t *testing.T) {
	b, err := UpperBound(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Ratio-1.625) > 0.02 {
		t.Fatalf("γ=3 large-K ratio = %v, paper reports ≈1.625", b.Ratio)
	}
}

// TestBoundDecreasesWithK: more classes can only tighten (or keep) the
// bound for large K; spot-check the trend on the converged tail.
func TestBoundDecreasesWithK(t *testing.T) {
	prev := math.Inf(1)
	for _, k := range []int{60, 100, 150, 200} {
		b, err := UpperBound(2, k)
		if err != nil {
			t.Fatal(err)
		}
		if b.Ratio > prev+1e-9 {
			t.Fatalf("bound increased at K=%d: %v > %v", k, b.Ratio, prev)
		}
		prev = b.Ratio
	}
}

// TestBoundAboveOnlineLowerBound: no online algorithm beats 1.42 (cited in
// the paper from Daudjee, Kamali, López-Ortiz SPAA'14); our computed upper
// bound must respect that.
func TestBoundAboveOnlineLowerBound(t *testing.T) {
	for _, g := range []int{2, 3} {
		b, err := UpperBound(g, 200)
		if err != nil {
			t.Fatal(err)
		}
		if b.Ratio < 1.42 {
			t.Fatalf("γ=%d bound %v below the 1.42 online lower bound", g, b.Ratio)
		}
	}
}

// TestWitnessFeasible: the optimal witness composition must itself respect
// unit capacity including reserve.
func TestWitnessFeasible(t *testing.T) {
	b, err := UpperBound(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	size := b.WitnessTiny
	for i, m := range b.Witness {
		size += float64(m) / float64(2+i+1) // class i+1 infimum size
	}
	if size > 1 {
		t.Fatalf("witness size %v exceeds capacity even before reserve", size)
	}
}

func TestLowerBoundServers(t *testing.T) {
	tests := []struct {
		name    string
		tenants []packing.Tenant
		gamma   int
		want    int
	}{
		{
			name:    "volume bound",
			tenants: []packing.Tenant{{ID: 1, Load: 0.9}, {ID: 2, Load: 0.9}, {ID: 3, Load: 0.9}},
			gamma:   3,
			want:    3, // ceil(2.7); counting bound: 9 big replicas / 3 = 3
		},
		{
			name:    "counting bound dominates",
			tenants: []packing.Tenant{{ID: 1, Load: 0.8}, {ID: 2, Load: 0.8}},
			gamma:   2,
			// volume ceil(1.6) = 2; replicas of size 0.4 > 1/3: 4 replicas / 2 = 2.
			want: 2,
		},
		{
			name:    "tiny tenants",
			tenants: []packing.Tenant{{ID: 1, Load: 0.1}},
			gamma:   2,
			want:    1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LowerBoundServers(tt.tenants, tt.gamma); got != tt.want {
				t.Fatalf("LowerBoundServers = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestEmpiricalRatioWithinTheorem2: CubeFit's measured server count over
// the volume/counting lower bound stays within the theoretical worst-case
// bound... note the empirical metric uses a lower bound on OPT, so it can
// exceed the true ratio but is still a useful sanity band on random
// workloads (where CubeFit is near-optimal, per the paper's abstract).
func TestEmpiricalRatioWithinBand(t *testing.T) {
	src, err := workload.NewLoadSource(1, 404)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 5000)
	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Empirical(cf, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 {
		t.Fatalf("ratio %v below 1: the lower bound is not a lower bound", r)
	}
	if r > 2.2 {
		t.Fatalf("empirical ratio %v far beyond the theoretical regime", r)
	}
}

// TestEmpiricalCubeFitBeatsNaiveRobustness: against the same lower bound,
// CubeFit must not be worse than the non-robust Best Fit by more than the
// price of robustness (factor ~2 for γ=2 reserves).
func TestEmpiricalOrdering(t *testing.T) {
	src, err := workload.NewLoadSource(1, 505)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 3000)

	cf, err := core.New(core.Config{Gamma: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	rCube, err := Empirical(cf, tenants)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := baseline.New(baseline.BestFit, 2)
	if err != nil {
		t.Fatal(err)
	}
	rBF, err := Empirical(bf, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if rBF > rCube {
		t.Fatalf("non-robust best-fit ratio %v worse than robust CubeFit %v", rBF, rCube)
	}
	if rCube > 2*rBF {
		t.Fatalf("robustness cost factor %v too high", rCube/rBF)
	}
}

func TestEmpiricalDegenerate(t *testing.T) {
	cf, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Empirical(cf, nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
}
