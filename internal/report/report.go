// Package report renders fixed-width tables and ASCII bar charts for the
// experiment CLIs, matching the artifacts of the paper (Figures 5 and 6,
// Table I) in plain text.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells and long
// rows are an error at render time.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	if len(t.headers) == 0 {
		return errors.New("report: table has no columns")
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			return fmt.Errorf("report: row has %d cells for %d columns", len(row), len(t.headers))
		}
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, w))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if n := len([]rune(s)); n < w {
		return s + strings.Repeat(" ", w-n)
	}
	return s
}

// Bar is one labeled bar with an optional symmetric error (CI half-width).
type Bar struct {
	Label string
	Value float64
	Err   float64
}

// BarChart renders labeled horizontal bars scaled to the given width with
// ± error annotations, e.g.
//
//	uniform(1..15)  ████████████░░  29.9 ±1.2
func BarChart(w io.Writer, title, unit string, width int, bars []Bar) error {
	if width <= 0 {
		return errors.New("report: bar width must be positive")
	}
	if len(bars) == 0 {
		return errors.New("report: no bars")
	}
	maxVal := 0.0
	labelW := 0
	for _, b := range bars {
		if math.IsNaN(b.Value) || math.IsInf(b.Value, 0) {
			return fmt.Errorf("report: non-finite bar value for %q", b.Label)
		}
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if n := len([]rune(b.Label)); n > labelW {
			labelW = n
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for _, b := range bars {
		n := 0
		if maxVal > 0 && b.Value > 0 {
			n = int(math.Round(b.Value / maxVal * float64(width)))
		}
		bar := strings.Repeat("█", n) + strings.Repeat("░", width-n)
		suffix := fmt.Sprintf("%.1f", b.Value)
		if b.Err > 0 {
			suffix += fmt.Sprintf(" ±%.1f", b.Err)
		}
		if unit != "" {
			suffix += " " + unit
		}
		if _, err := fmt.Fprintf(w, "%s  %s  %s\n", pad(b.Label, labelW), bar, suffix); err != nil {
			return err
		}
	}
	return nil
}

// Money formats a dollar amount with thousands separators, e.g.
// "18,045,004".
func Money(v float64) string {
	neg := v < 0
	n := int64(math.Round(math.Abs(v)))
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Seconds formats a latency in seconds with two decimals and unit.
func Seconds(v float64) string { return fmt.Sprintf("%.2f s", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
