package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Distribution", "RFI Servers", "Saved")
	tb.AddRow("Uniform", "10951", "2506")
	tb.AddRow("Zipfian", "2218", "496")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Distribution") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "10951") || !strings.Contains(lines[3], "496") {
		t.Fatalf("data rows wrong:\n%s", out)
	}
	// Columns align: 'RFI Servers' and '10951' start at the same offset.
	h := strings.Index(lines[0], "RFI Servers")
	d := strings.Index(lines[2], "10951")
	if h != d {
		t.Fatalf("column misaligned: header at %d, data at %d\n%s", h, d, out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("A", "B")
	tb.AddRow("x")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTable().Render(&buf); err == nil {
		t.Fatal("empty table rendered")
	}
	tb := NewTable("A")
	tb.AddRow("1", "2")
	if err := tb.Render(&buf); err == nil {
		t.Fatal("overlong row rendered")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	bars := []Bar{
		{Label: "uniform", Value: 30, Err: 1.2},
		{Label: "zipf", Value: 15},
	}
	if err := BarChart(&buf, "Savings", "%", 20, bars); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Savings") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "±1.2") {
		t.Fatalf("error whisker missing:\n%s", out)
	}
	// The larger bar has more filled cells.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	if strings.Count(lines[1], "█")+strings.Count(lines[1], "░") != 20 {
		t.Fatalf("bar width wrong:\n%s", out)
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "", "", 0, []Bar{{Label: "x", Value: 1}}); err == nil {
		t.Fatal("zero width accepted")
	}
	if err := BarChart(&buf, "", "", 10, nil); err == nil {
		t.Fatal("no bars accepted")
	}
	if err := BarChart(&buf, "", "", 10, []Bar{{Label: "x", Value: math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestBarChartAllZero(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "", "", 10, []Bar{{Label: "x", Value: 0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), strings.Repeat("░", 10)) {
		t.Fatalf("zero bar not empty:\n%s", buf.String())
	}
}

func TestMoney(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{give: 18045004, want: "18,045,004"},
		{give: 3571557, want: "3,571,557"},
		{give: 999, want: "999"},
		{give: 1000, want: "1,000"},
		{give: 0, want: "0"},
		{give: -1234567, want: "-1,234,567"},
		{give: 1234.6, want: "1,235"},
	}
	for _, tt := range tests {
		if got := Money(tt.give); got != tt.want {
			t.Errorf("Money(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestSecondsAndPct(t *testing.T) {
	if got := Seconds(4.273); got != "4.27 s" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Pct(29.94); got != "29.9%" {
		t.Fatalf("Pct = %q", got)
	}
}
