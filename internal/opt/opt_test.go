package opt

import (
	"errors"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/offline"
	"cubefit/internal/packing"
	"cubefit/internal/ratio"
	"cubefit/internal/rng"
)

func mustSolve(t *testing.T, gamma int, loads []float64) Result {
	t.Helper()
	tenants := make([]packing.Tenant, len(loads))
	for i, l := range loads {
		tenants[i] = packing.Tenant{ID: packing.TenantID(i + 1), Load: l}
	}
	res, err := Solve(gamma, tenants, 0)
	if err != nil {
		t.Fatalf("Solve(γ=%d, %v): %v", gamma, loads, err)
	}
	return res
}

func TestKnownOptima(t *testing.T) {
	tests := []struct {
		name  string
		gamma int
		loads []float64
		want  int
	}{
		// γ=1 degenerates to classical bin packing.
		{name: "classic two bins", gamma: 1, loads: []float64{0.5, 0.5, 0.5}, want: 2},
		{name: "classic perfect fit", gamma: 1, loads: []float64{0.4, 0.6}, want: 1},
		// One full-load tenant: two half-replicas, each server must absorb
		// the other's failover: 0.5 + 0.5 = 1 exactly.
		{name: "single unit tenant", gamma: 2, loads: []float64{1}, want: 2},
		// Two half-load tenants share two servers at exactly capacity.
		{name: "two halves", gamma: 2, loads: []float64{0.5, 0.5}, want: 2},
		// Two unit tenants cannot share anything: every doubled server
		// would sit at level 1 with positive failover exposure.
		{name: "two unit tenants", gamma: 2, loads: []float64{1, 1}, want: 4},
		// γ=3: one tenant, three replicas of 1/3 each; each server must
		// absorb both others: 1/3 × 3 = 1 exactly.
		{name: "gamma3 unit tenant", gamma: 3, loads: []float64{1}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := mustSolve(t, tt.gamma, tt.loads)
			if res.Servers != tt.want {
				t.Fatalf("OPT = %d, want %d (nodes %d)", res.Servers, tt.want, res.Nodes)
			}
		})
	}
}

// rebuild materializes a Result's witness and validates it.
func rebuild(t *testing.T, gamma int, tenants []packing.Tenant, res Result) {
	t.Helper()
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		t.Fatal(err)
	}
	maxServer := -1
	for _, hosts := range res.Hosts {
		for _, h := range hosts {
			if h > maxServer {
				maxServer = h
			}
		}
	}
	for i := 0; i <= maxServer; i++ {
		p.OpenServer()
	}
	for _, tn := range tenants {
		if err := p.AddTenant(tn); err != nil {
			t.Fatal(err)
		}
		hosts := res.Hosts[tn.ID]
		if len(hosts) != gamma {
			t.Fatalf("witness for tenant %d has %d hosts", tn.ID, len(hosts))
		}
		for i, rep := range p.Replicas(tn) {
			if err := p.Place(hosts[i], rep); err != nil {
				t.Fatalf("witness placement rejected: %v", err)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("witness not robust: %v", err)
	}
	if p.NumUsedServers() != res.Servers {
		t.Fatalf("witness uses %d servers, result says %d", p.NumUsedServers(), res.Servers)
	}
}

// TestOptimalityProperties cross-validates OPT against the lower bound,
// the offline FFD proxy, and online CubeFit on random small instances.
func TestOptimalityProperties(t *testing.T) {
	r := rng.New(314159)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(3) // 3..5 tenants
		tenants := make([]packing.Tenant, n)
		for i := range tenants {
			tenants[i] = packing.Tenant{
				ID:   packing.TenantID(i + 1),
				Load: 0.1 + 0.8*r.Float64(),
			}
		}
		res, err := Solve(2, tenants, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rebuild(t, 2, tenants, res)

		if lb := ratio.LowerBoundServers(tenants, 2); res.Servers < lb {
			t.Fatalf("trial %d: OPT %d below lower bound %d", trial, res.Servers, lb)
		}
		ffd, err := offline.PlaceAll(2, tenants)
		if err != nil {
			t.Fatal(err)
		}
		if ffd.NumUsedServers() < res.Servers {
			t.Fatalf("trial %d: FFD %d beat OPT %d — OPT is not optimal",
				trial, ffd.NumUsedServers(), res.Servers)
		}
		cf, err := core.New(core.Config{Gamma: 2, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := packing.PlaceAll(cf, tenants); err != nil {
			t.Fatal(err)
		}
		if cf.Placement().NumUsedServers() < res.Servers {
			t.Fatalf("trial %d: CubeFit %d beat OPT %d — OPT is not optimal",
				trial, cf.Placement().NumUsedServers(), res.Servers)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(0, nil, 0); err == nil {
		t.Fatal("gamma 0 accepted")
	}
	if _, err := Solve(2, []packing.Tenant{{ID: 1, Load: 2}}, 0); err == nil {
		t.Fatal("invalid tenant accepted")
	}
	res, err := Solve(2, nil, 0)
	if err != nil || res.Servers != 0 {
		t.Fatalf("empty instance: %+v, %v", res, err)
	}
}

func TestNodeBudget(t *testing.T) {
	tenants := make([]packing.Tenant, 8)
	for i := range tenants {
		tenants[i] = packing.Tenant{ID: packing.TenantID(i + 1), Load: 0.3 + 0.05*float64(i)}
	}
	_, err := Solve(2, tenants, 50)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget error = %v, want ErrBudget", err)
	}
}
