// Package opt computes the exact optimal robust placement for small
// tenant sets by exhaustive branch-and-bound. It exists to validate the
// rest of the repository against true OPT: the competitive-ratio bounds of
// Theorem 2, the quality of the offline FFD proxy, and CubeFit's
// near-optimality claims can all be checked exactly on small instances.
//
// The search assigns each tenant's γ replicas to a set of servers, using
// the monotonicity of the robustness constraint (levels and shared loads
// only grow as replicas are added) to prune invalid partial placements,
// plus standard symmetry breaking (a new server may only be the
// next-unused index) and a volume lower bound.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cubefit/internal/packing"
)

// ErrBudget is returned when the search exceeds its node budget.
var ErrBudget = errors.New("opt: node budget exhausted")

// DefaultNodeBudget bounds the search tree size.
const DefaultNodeBudget = 5_000_000

// Result is the outcome of an exact optimization.
type Result struct {
	// Servers is the optimal number of servers.
	Servers int
	// Hosts maps each tenant to the servers of its replicas in the optimal
	// placement found.
	Hosts map[packing.TenantID][]int
	// Nodes is the number of search nodes explored.
	Nodes int
}

// Solve returns the minimum number of unit-capacity servers any robust
// placement needs for the tenants (γ replicas each, tolerating any γ−1
// failures). nodeBudget ≤ 0 selects DefaultNodeBudget. Instances beyond
// roughly a dozen tenants exceed any reasonable budget — this is a
// verification tool, not a production placer.
func Solve(gamma int, tenants []packing.Tenant, nodeBudget int) (Result, error) {
	if gamma < 1 {
		return Result{}, fmt.Errorf("opt: gamma %d < 1", gamma)
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return Result{}, err
		}
	}
	if len(tenants) == 0 {
		return Result{Hosts: map[packing.TenantID][]int{}}, nil
	}

	// Sort descending by load: placing big tenants first tightens pruning.
	order := make([]packing.Tenant, len(tenants))
	copy(order, tenants)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Load != order[j].Load { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
			return order[i].Load > order[j].Load
		}
		return order[i].ID < order[j].ID
	})

	volume := 0.0
	for _, t := range order {
		volume += t.Load
	}
	lowerBound := int(math.Ceil(volume - packing.CapacityEps))
	if lowerBound < 1 {
		lowerBound = 1
	}

	s := &solver{
		gamma:  gamma,
		order:  order,
		budget: nodeBudget,
		lb:     lowerBound,
	}
	// Start from the FFD-style upper bound: one fresh placement attempt
	// caps the server count so pruning bites immediately.
	maxServers := len(order) * gamma
	s.best = maxServers + 1
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < maxServers; i++ {
		p.OpenServer()
	}
	s.p = p
	s.assignment = make(map[packing.TenantID][]int, len(order))
	s.bestHosts = nil

	if err := s.dfs(0, 0); err != nil {
		return Result{}, err
	}
	if s.bestHosts == nil {
		return Result{}, errors.New("opt: no feasible placement found")
	}
	return Result{Servers: s.best, Hosts: s.bestHosts, Nodes: s.nodes}, nil
}

type solver struct {
	gamma      int
	order      []packing.Tenant
	p          *packing.Placement
	assignment map[packing.TenantID][]int
	best       int
	bestHosts  map[packing.TenantID][]int
	nodes      int
	budget     int
	lb         int
}

// dfs places tenant index ti given `used` servers are occupied so far.
func (s *solver) dfs(ti, used int) error {
	s.nodes++
	if s.nodes > s.budget {
		return ErrBudget
	}
	if used >= s.best {
		return nil // cannot improve
	}
	if ti == len(s.order) {
		s.best = used
		s.bestHosts = make(map[packing.TenantID][]int, len(s.assignment))
		for id, hosts := range s.assignment {
			cp := make([]int, len(hosts))
			copy(cp, hosts)
			s.bestHosts[id] = cp
		}
		return nil
	}
	t := s.order[ti]
	if err := s.p.AddTenant(t); err != nil {
		return err
	}
	defer func() {
		// AddTenant is undone implicitly by RemoveTenant in unplace paths;
		// when no replica was placed we must forget the tenant explicitly.
		_ = s.p.RemoveTenant(t.ID)
		delete(s.assignment, t.ID)
	}()

	reps := s.p.Replicas(t)
	chosen := make([]int, 0, s.gamma)
	var place func(ri, minServer, usedNow int) error
	place = func(ri, minServer, usedNow int) error {
		if usedNow >= s.best {
			return nil
		}
		if ri == s.gamma {
			hosts := make([]int, len(chosen))
			copy(hosts, chosen)
			s.assignment[t.ID] = hosts
			return s.dfs(ti+1, usedNow)
		}
		// Candidate servers: any already-used server after the previous
		// replica's choice (replica order within a tenant is symmetric, so
		// enforce ascending server IDs), or the first fresh server.
		limit := usedNow
		if limit < s.p.NumServers() {
			limit++ // allow opening exactly one fresh server (index usedNow)
		}
		for sid := minServer; sid < limit; sid++ {
			if !s.feasible(sid, reps[ri]) {
				continue
			}
			if err := s.p.Place(sid, reps[ri]); err != nil {
				continue
			}
			chosen = append(chosen, sid)
			nextUsed := usedNow
			if sid == usedNow {
				nextUsed++ // opened the fresh server
			}
			err := place(ri+1, sid+1, nextUsed)
			chosen = chosen[:len(chosen)-1]
			if uerr := s.p.Unplace(t.ID, reps[ri].Index); uerr != nil {
				return uerr
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := place(0, 0, used); err != nil {
		return err
	}
	return nil
}

// feasible prunes replicas that would immediately break capacity or the
// (monotone) robustness constraint for the candidate or any server sharing
// tenants with it.
func (s *solver) feasible(sid int, rep packing.Replica) bool {
	srv := s.p.Server(sid)
	if srv.Hosts(rep.Tenant) {
		return false
	}
	if !packing.WithinCapacity(srv.Level() + rep.Size) {
		return false
	}
	// Tentatively check the robustness constraint: the earlier replicas of
	// this tenant already in the placement raise shared loads.
	k := s.gamma - 1
	var earlier []int
	for _, h := range s.p.TenantHosts(rep.Tenant) {
		if h >= 0 {
			earlier = append(earlier, h)
		}
	}
	after := topSharedBumped(srv, k, earlier, rep.Size)
	if !packing.WithinCapacity(srv.Level() + rep.Size + after) {
		return false
	}
	for _, h := range earlier {
		hs := s.p.Server(h)
		if !packing.WithinCapacity(hs.Level() + topSharedBumped(hs, k, []int{sid}, rep.Size)) {
			return false
		}
	}
	return true
}

// topSharedBumped is the top-k shared sum of srv after adding delta to its
// shared load with each server in bump.
func topSharedBumped(srv *packing.Server, k int, bump []int, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	var vals []float64
	srv.EachShared(func(j int, v float64) {
		for _, b := range bump {
			if b == j {
				v += delta
				break
			}
		}
		vals = append(vals, v)
	})
	for _, b := range bump {
		if srv.SharedWith(b) == 0 {
			vals = append(vals, delta)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	sum := 0.0
	for i := 0; i < k && i < len(vals); i++ {
		sum += vals[i]
	}
	return sum
}
