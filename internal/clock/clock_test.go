package clock

import (
	"testing"
	"time"
)

func TestFakeAdvanceAndSince(t *testing.T) {
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", f.Now(), start)
	}
	f.Advance(90 * time.Second)
	if got := f.Since(start); got != 90*time.Second {
		t.Fatalf("Since(start) = %v, want 90s", got)
	}
	f.Advance(-30 * time.Second)
	if got := f.Since(start); got != time.Minute {
		t.Fatalf("Since(start) after rewind = %v, want 1m", got)
	}
}

func TestFakeSet(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Unix(1000, 0)
	f.Set(target)
	if !f.Now().Equal(target) {
		t.Fatalf("Now() = %v, want %v", f.Now(), target)
	}
}

func TestRealClockAdvances(t *testing.T) {
	c := Real()
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("real clock ran backwards")
	}
	if c.Now().Before(t0) {
		t.Fatal("real clock Now() went backwards")
	}
}
