// Package clock is the repository's single approved seam to the wall
// clock. Simulation and algorithm code must never call time.Now directly —
// the `wallclock` analyzer in internal/analysis enforces this — so that
// experiment results are a pure function of their inputs and seeds.
// Components that need elapsed-time measurements accept a Clock and receive
// Real() in production and a *Fake in tests.
package clock

import "time"

// Clock supplies the current time and elapsed-time measurements.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real returns the wall clock backed by the time package.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }

// Fake is a manually advanced Clock for deterministic tests. The zero
// value starts at the zero time; it is not safe for concurrent use.
type Fake struct {
	now time.Time
}

// NewFake returns a fake clock starting at the given instant.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current instant.
func (f *Fake) Now() time.Time { return f.now }

// Since returns the fake time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.now.Sub(t) }

// Advance moves the fake clock forward by d (backwards for negative d).
func (f *Fake) Advance(d time.Duration) { f.now = f.now.Add(d) }

// Set jumps the fake clock to the given instant.
func (f *Fake) Set(t time.Time) { f.now = t }
