package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"cubefit/internal/analysis"
)

// Eventpool pairs obs.AcquireEvent with obs.ReleaseEvent (PR 5's pooled
// emission protocol): every event acquired from the pool must, on every
// path through the acquiring function, either be released or have its
// ownership transferred (passed as a pointer to another function — the
// engines' emit helpers release for their callers — returned, or stored).
// A pooled struct that leaks silently re-allocates the hot path the pool
// exists to keep allocation-free; a double release poisons the pool with
// an aliased struct.
//
// The analysis is intra-procedural and branch-aware over the acquiring
// function's statement tree: both arms of an if/switch must settle the
// event, a release inside a loop body counts as conditional (the loop may
// run zero times), and a second release after a path already settled the
// event is a double release. Reads through the pointer (e.Field loads and
// stores, *e copies) do not transfer ownership. Helpers with intentional
// asymmetric ownership can suppress with
// //cubefit:vet-allow eventpool -- <why>.
var Eventpool = &analysis.Analyzer{
	Name: "eventpool",
	Doc:  "obs.AcquireEvent without a matching ReleaseEvent (or ownership transfer) on every path",
	Run:  runEventpool,
}

// obsPath is the package owning the event pool.
const obsPath = "cubefit/internal/obs"

// Release status of a statement (or statement sequence) with respect to
// one acquired event.
const (
	relNone  = iota // the event is untouched
	relMaybe        // released/transferred on some paths only
	relAll          // released/transferred on every path
)

func runEventpool(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEventBodies(pass, fd.Body)
		}
	}
	return nil
}

// checkEventBodies analyzes a function body and, recursively, every
// function literal nested in it (each literal is its own ownership
// scope: an event acquired inside a closure must settle inside it).
func checkEventBodies(pass *analysis.Pass, body *ast.BlockStmt) {
	checkEventBody(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkEventBodies(pass, lit.Body)
			return false
		}
		return true
	})
}

// checkEventBody runs the pairing analysis on one function body,
// excluding nested literals (they are analyzed separately).
func checkEventBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ev := &eventPass{pass: pass}
	// Bare acquires whose result is discarded leak immediately; acquires
	// feeding directly into a call transfer ownership to the callee.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := st.X.(*ast.CallExpr); ok && ev.isPoolCall(call, "AcquireEvent") {
			pass.Reportf(call.Pos(), "result of obs.AcquireEvent discarded; the pooled event leaks")
		}
		return true
	})
	// Tracked acquires: `e := obs.AcquireEvent(...)` binding a local.
	ev.walkAcquires(body, body.List)
}

// eventPass carries the per-function analysis state.
type eventPass struct {
	pass *analysis.Pass
}

// walkAcquires finds tracked acquire statements in stmts (recursing into
// nested blocks) and evaluates the release status of the remainder of
// their enclosing statement list.
func (ev *eventPass) walkAcquires(body *ast.BlockStmt, stmts []ast.Stmt) {
	for i, s := range stmts {
		if obj, pos := ev.acquireBinding(s); obj != nil {
			ev.checkFrom(obj, pos, stmts[i+1:])
		}
		// Recurse into compound statements to find acquires at any depth.
		switch s := s.(type) {
		case *ast.BlockStmt:
			ev.walkAcquires(body, s.List)
		case *ast.IfStmt:
			ev.walkAcquires(body, s.Body.List)
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				ev.walkAcquires(body, blk.List)
			} else if elif, ok := s.Else.(*ast.IfStmt); ok {
				ev.walkAcquires(body, []ast.Stmt{elif})
			}
		case *ast.ForStmt:
			ev.walkAcquires(body, s.Body.List)
		case *ast.RangeStmt:
			ev.walkAcquires(body, s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ev.walkAcquires(body, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ev.walkAcquires(body, cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					ev.walkAcquires(body, cc.Body)
				}
			}
		case *ast.LabeledStmt:
			ev.walkAcquires(body, []ast.Stmt{s.Stmt})
		}
	}
}

// acquireBinding recognizes `x := obs.AcquireEvent(...)` (or `x = ...`)
// with a single non-blank identifier target, returning the bound object.
func (ev *eventPass) acquireBinding(s ast.Stmt) (types.Object, token.Pos) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, token.NoPos
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !ev.isPoolCall(call, "AcquireEvent") {
		return nil, token.NoPos
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		ev.pass.Reportf(as.Pos(), "result of obs.AcquireEvent discarded; the pooled event leaks")
		return nil, token.NoPos
	}
	obj := ev.pass.Info.Defs[id]
	if obj == nil {
		obj = ev.pass.Info.Uses[id]
	}
	if obj == nil {
		return nil, token.NoPos
	}
	return obj, as.Pos()
}

// checkFrom evaluates the statements following an acquire and reports a
// leak when no path (or only some paths) settle the event.
func (ev *eventPass) checkFrom(obj types.Object, acquirePos token.Pos, rest []ast.Stmt) {
	switch ev.seqStatus(obj, rest) {
	case relAll:
	case relMaybe:
		ev.pass.Reportf(acquirePos,
			"pooled event %s is released on some paths only; every path must ReleaseEvent or transfer ownership", obj.Name())
	default:
		ev.pass.Reportf(acquirePos,
			"pooled event %s is never released; call obs.ReleaseEvent or transfer ownership", obj.Name())
	}
}

// seqStatus folds the release status over a statement sequence, reporting
// double releases along the way.
func (ev *eventPass) seqStatus(obj types.Object, stmts []ast.Stmt) int {
	status := relNone
	for _, s := range stmts {
		st := ev.stmtStatus(obj, s)
		if st == relNone {
			continue
		}
		if status == relAll {
			if pos, isRelease := ev.explicitRelease(obj, s); isRelease {
				ev.pass.Reportf(pos, "pooled event %s already released on this path; double release poisons the pool", obj.Name())
			}
			continue
		}
		if st == relAll {
			status = relAll
		} else if status == relNone {
			status = relMaybe
		}
	}
	return status
}

// stmtStatus evaluates one statement's release effect for obj.
func (ev *eventPass) stmtStatus(obj types.Object, s ast.Stmt) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if ev.transfers(obj, s.X) {
			return relAll
		}
	case *ast.DeferStmt:
		// A deferred release (or deferred transfer) runs on every exit.
		if ev.transfers(obj, s.Call) {
			return relAll
		}
	case *ast.GoStmt:
		if ev.transfers(obj, s.Call) {
			return relAll
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if ev.transfers(obj, rhs) {
				return relAll
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if ev.transfers(obj, r) {
				return relAll
			}
		}
	case *ast.BlockStmt:
		return ev.seqStatus(obj, s.List)
	case *ast.LabeledStmt:
		return ev.stmtStatus(obj, s.Stmt)
	case *ast.IfStmt:
		then := ev.seqStatus(obj, s.Body.List)
		els := relNone
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			els = ev.seqStatus(obj, e.List)
		case *ast.IfStmt:
			els = ev.stmtStatus(obj, e)
		}
		return branchJoin(then, els)
	case *ast.ForStmt:
		// The body may run zero times: any release inside is conditional.
		return condStatus(ev.seqStatus(obj, s.Body.List))
	case *ast.RangeStmt:
		return condStatus(ev.seqStatus(obj, s.Body.List))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return ev.clausesStatus(obj, s)
	}
	return relNone
}

// clausesStatus joins the release status across switch/select clauses: all
// paths release only when every clause does and (for switches) a default
// clause exists.
func (ev *eventPass) clausesStatus(obj types.Object, s ast.Stmt) int {
	var clauses [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt) {
		for _, c := range body.List {
			switch c := c.(type) {
			case *ast.CaseClause:
				clauses = append(clauses, c.Body)
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				clauses = append(clauses, c.Body)
				if c.Comm == nil {
					hasDefault = true
				}
			}
		}
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		collect(s.Body)
	case *ast.TypeSwitchStmt:
		collect(s.Body)
	case *ast.SelectStmt:
		collect(s.Body)
		hasDefault = true // a select blocks until some clause runs
	}
	if len(clauses) == 0 {
		return relNone
	}
	all, any := true, false
	for _, body := range clauses {
		switch ev.seqStatus(obj, body) {
		case relAll:
			any = true
		case relMaybe:
			any = true
			all = false
		default:
			all = false
		}
	}
	switch {
	case all && hasDefault:
		return relAll
	case any:
		return relMaybe
	}
	return relNone
}

// transfers reports whether the expression settles the event: an explicit
// ReleaseEvent call, or the bare pointer escaping into a call, another
// value, or a composite literal. Reads through the pointer (selector and
// dereference) do not settle it.
func (ev *eventPass) transfers(obj types.Object, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return ev.pass.Info.Uses[e] == obj
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if ev.transfers(obj, arg) {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ev.transfers(obj, el) {
				return true
			}
		}
		return false
	case *ast.ParenExpr:
		return ev.transfers(obj, e.X)
	}
	return false
}

// explicitRelease reports whether the statement is a direct
// obs.ReleaseEvent(obj) call (used to position double-release findings).
func (ev *eventPass) explicitRelease(obj types.Object, s ast.Stmt) (token.Pos, bool) {
	st, ok := s.(*ast.ExprStmt)
	if !ok {
		return token.NoPos, false
	}
	call, ok := st.X.(*ast.CallExpr)
	if !ok || !ev.isPoolCall(call, "ReleaseEvent") || len(call.Args) != 1 {
		return token.NoPos, false
	}
	if id, ok := call.Args[0].(*ast.Ident); ok && ev.pass.Info.Uses[id] == obj {
		return call.Pos(), true
	}
	return token.NoPos, false
}

// isPoolCall recognizes calls to the named function of internal/obs.
func (ev *eventPass) isPoolCall(call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := ev.pass.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == obsPath
}

// branchJoin combines the status of two exclusive branches.
func branchJoin(a, b int) int {
	switch {
	case a == relAll && b == relAll:
		return relAll
	case a == relNone && b == relNone:
		return relNone
	}
	return relMaybe
}

// condStatus demotes a status to at most conditional (for bodies that may
// not execute).
func condStatus(s int) int {
	if s == relNone {
		return relNone
	}
	return relMaybe
}
