package analyzers

import (
	"go/ast"
	"go/types"

	"cubefit/internal/analysis"
)

// Maprange guards the byte-identical determinism contract (the parity
// property tests of PR 5): inside the determinism-critical packages —
// the placement engines, the shared packing state, the simulators, the
// headroom auditor, and WAL recovery — a `for range` over a map iterates
// in an order Go randomizes per run, so any map range whose body is
// order-sensitive (floating-point accumulation, first-match returns,
// append into an output slice) silently breaks run-to-run and
// engine-to-engine reproducibility.
//
// Every map range in those packages is flagged. Ranges whose bodies are
// provably order-insensitive (pure counting, max/min of exact values,
// collect-then-sort) stay, with a
// //cubefit:vet-allow maprange -- <order-insensitivity argument>
// carrying the proof obligation into the source. Test files are exempt:
// subtests and assertions may legitimately iterate fixture maps.
var Maprange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "map iteration in determinism-critical packages breaks byte-identical parity",
	Run:  runMaprange,
}

// deterministicPkgs are the packages whose outputs must be a pure
// function of inputs and seeds, byte for byte.
var deterministicPkgs = map[string]bool{
	"cubefit/internal/core":     true, // the CubeFit placement engine
	"cubefit/internal/packing":  true, // shared placement state and invariant checks
	"cubefit/internal/sim":      true, // paper experiments (bit-identical across -workers)
	"cubefit/internal/headroom": true, // incremental==exhaustive equality properties
	"cubefit/internal/recovery": true, // WAL replay must rebuild the exact acked state
}

func runMaprange(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over %s iterates in nondeterministic order in a determinism-critical package; iterate sorted keys, or justify order-insensitivity with a vet-allow",
				types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}
