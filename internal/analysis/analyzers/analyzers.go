// Package analyzers holds the project-specific checks enforcing CubeFit's
// numeric, determinism, and locking invariants on top of the
// internal/analysis framework:
//
//   - floatcmp: no raw float equality on computed values, and no raw
//     ordered comparison of load/level expressions against the unit
//     capacity (use packing.WithinCapacity / packing.FitsWithin /
//     packing.AlmostEqual).
//   - epsconst: no bare tolerance literals (0 < |x| <= 1e-6) outside the
//     shared constants in internal/packing/tolerance.go.
//   - randsource: math/rand must not be imported outside internal/rng, so
//     experiment streams stay fixed across Go releases.
//   - wallclock: time.Now / time.Since only inside the approved seams
//     (internal/clock, internal/metrics, the server main); simulations
//     take an injected clock.Clock.
//   - lockpair: sync mutexes must not be copied by value, defer-ing Lock
//     is rejected, and every Lock/RLock needs a flavor-matched
//     Unlock/RUnlock on the same receiver in the same function.
//
// and the type- and flow-aware invariant checks encoding the contracts
// PRs 3–6 introduced:
//
//   - maprange: no `for range` over a map in the determinism-critical
//     packages (core, packing, sim, headroom, recovery) unless the body
//     is argued order-insensitive in a vet-allow.
//   - eventpool: every obs.AcquireEvent is paired with ReleaseEvent (or
//     an ownership transfer) on every path; leaks and double releases
//     are rejected.
//   - failclosed: no discarded error from Sync/Flush/Close/Write on the
//     obs sinks or the raw handles beneath them (the WAL fail-closed
//     contract).
//   - guardedby: //cubefit:guarded-by annotated struct fields are only
//     accessed in functions that lock the named mutex.
//   - hotpath: //cubefit:hotpath annotated functions stay free of
//     allocation-introducing constructs (fmt, capturing closures,
//     non-scratch append, &T{}, make/new, interface boxing).
//
// Every analyzer honors the //cubefit:vet-allow suppression directive of
// the framework; see README.md "Static analysis" for how to add a new
// check.
package analyzers

import (
	"go/ast"
	"go/types"

	"cubefit/internal/analysis"
)

// packingPath is the package owning the blessed tolerance definitions.
const packingPath = "cubefit/internal/packing"

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Epsconst,
		Eventpool,
		Failclosed,
		Floatcmp,
		Guardedby,
		Hotpath,
		Lockpair,
		Maprange,
		Randsource,
		Wallclock,
	}
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Package).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstant reports whether the expression has a compile-time constant
// value.
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
