// Package analyzers holds the project-specific checks enforcing CubeFit's
// numeric, determinism, and locking invariants on top of the
// internal/analysis framework:
//
//   - floatcmp: no raw float equality on computed values, and no raw
//     ordered comparison of load/level expressions against the unit
//     capacity (use packing.WithinCapacity / packing.FitsWithin /
//     packing.AlmostEqual).
//   - epsconst: no bare tolerance literals (0 < |x| <= 1e-6) outside the
//     shared constants in internal/packing/tolerance.go.
//   - randsource: math/rand must not be imported outside internal/rng, so
//     experiment streams stay fixed across Go releases.
//   - wallclock: time.Now / time.Since only inside the approved seams
//     (internal/clock, internal/metrics, the server main); simulations
//     take an injected clock.Clock.
//   - lockpair: sync mutexes must not be copied by value, defer-ing Lock
//     is rejected, and every Lock/RLock needs a flavor-matched
//     Unlock/RUnlock on the same receiver in the same function.
//
// Every analyzer honors the //cubefit:vet-allow suppression directive of
// the framework; see README.md "Static analysis" for how to add a new
// check.
package analyzers

import (
	"go/ast"
	"go/types"

	"cubefit/internal/analysis"
)

// packingPath is the package owning the blessed tolerance definitions.
const packingPath = "cubefit/internal/packing"

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Epsconst,
		Floatcmp,
		Lockpair,
		Randsource,
		Wallclock,
	}
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Package).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstant reports whether the expression has a compile-time constant
// value.
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
