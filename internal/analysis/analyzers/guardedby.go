package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"cubefit/internal/analysis"
)

// Guardedby enforces declared lock discipline: a struct field annotated
//
//	//cubefit:guarded-by mu
//
// (in the field's doc or trailing comment, naming a sync.Mutex or
// sync.RWMutex field of the same struct) may only be accessed inside
// functions that lock or RLock that mutex on the same receiver. This is
// the machine-checked form of the api.Controller snapshot-clone
// discipline from PR 6: `snap` is only touched under `mu`, `closed` only
// under `sendMu`, and the WAL/JSONL internals only under their own locks.
//
// The check is intra-procedural and existence-based, like lockpair: a
// function that takes the lock anywhere in its body (including in a
// nested literal it runs) covers every access in that body. Helpers that
// are documented as called-with-lock-held are exempt when their name ends
// in "Locked" (the syncLocked convention); anything else asymmetric needs
// //cubefit:vet-allow guardedby -- <why>. An annotation naming a missing
// or non-mutex field is itself a finding, so annotations cannot rot.
var Guardedby = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "//cubefit:guarded-by fields accessed without holding the named mutex",
	Run:  runGuardedby,
}

// guardedByDirective is the field-annotation marker.
const guardedByDirective = "//cubefit:guarded-by"

// GuardedField is one annotated struct field. Exported so tests can
// assert that specific fields of the real tree carry the annotation (the
// negative test: removing the annotation silences the analyzer, so its
// presence must itself be tested).
type GuardedField struct {
	Struct string // declaring struct's type name
	Field  string
	Mutex  string // the guarding mutex field named by the annotation
	Pos    token.Pos
}

// CollectGuardedFields gathers every guarded-by annotation in the pass's
// files, in declaration order.
func CollectGuardedFields(pass *analysis.Pass) []GuardedField {
	var out []GuardedField
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardedByOf(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						out = append(out, GuardedField{Struct: ts.Name.Name, Field: name.Name, Mutex: mu, Pos: name.Pos()})
					}
				}
			}
		}
	}
	return out
}

// guardedByOf extracts the mutex name from a field's annotation ("" when
// unannotated).
func guardedByOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, guardedByDirective); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

func runGuardedby(pass *analysis.Pass) error {
	// anno maps struct name -> field name -> guarding mutex name.
	anno := make(map[string]map[string]string)
	for _, gf := range CollectGuardedFields(pass) {
		if anno[gf.Struct] == nil {
			anno[gf.Struct] = make(map[string]string)
		}
		anno[gf.Struct][gf.Field] = gf.Mutex
		validateGuard(pass, gf)
	}
	if len(anno) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // called-with-lock-held convention
			}
			checkGuardedAccesses(pass, anno, fd.Body)
		}
	}
	return nil
}

// validateGuard reports annotations naming a field that does not exist on
// the struct or is not a sync mutex, so stale annotations surface instead
// of silently guarding nothing.
func validateGuard(pass *analysis.Pass, gf GuardedField) {
	obj := pass.Pkg.Scope().Lookup(gf.Struct)
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != gf.Mutex {
			continue
		}
		if !isSyncLock(f.Type()) {
			pass.Reportf(gf.Pos, "guarded-by names %s.%s, which is not a sync.Mutex/RWMutex", gf.Struct, gf.Mutex)
		}
		return
	}
	pass.Reportf(gf.Pos, "guarded-by names %s.%s, but %s has no such field", gf.Struct, gf.Mutex, gf.Struct)
}

// checkGuardedAccesses verifies every annotated-field access in one
// function body against the lock calls present in that body.
func checkGuardedAccesses(pass *analysis.Pass, anno map[string]map[string]string, body *ast.BlockStmt) {
	// locked holds the printed receiver of every Lock/RLock call in the
	// body (e.g. "c.mu"), nested literals included: a closure executed by
	// the function runs under whatever the function holds, and a lock
	// taken inside a deferred literal still expresses intent to guard.
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c := lockCallOf(pass, call); c != nil && (c.method == "Lock" || c.method == "RLock") {
			locked[c.recv] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		structName, ok := annotatedStructOf(pass, sel.X)
		if !ok {
			return true
		}
		mu, ok := anno[structName][sel.Sel.Name]
		if !ok {
			return true
		}
		base := printExpr(sel.X)
		if base == "" || locked[base+"."+mu] {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but this function never calls %s.%s.Lock/RLock (name it *Locked if the caller holds it)",
			structName, sel.Sel.Name, mu, base, mu)
		return true
	})
}

// annotatedStructOf resolves the selector base to a named struct declared
// in this package, returning its name.
func annotatedStructOf(pass *analysis.Pass, x ast.Expr) (string, bool) {
	t := pass.Info.TypeOf(x)
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() != pass.Pkg {
		return "", false
	}
	return obj.Name(), true
}

// printExpr renders an expression to source form for receiver matching.
func printExpr(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
