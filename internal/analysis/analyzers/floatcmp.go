package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"

	"cubefit/internal/analysis"
)

// Floatcmp rejects raw floating-point comparisons that the robustness
// invariant |Si| + Σ|Si∩Sj| ≤ 1 is sensitive to:
//
//  1. `==` / `!=` between two computed (non-constant) float expressions —
//     exact equality of accumulated loads is a rounding-error lottery; use
//     packing.AlmostEqual / packing.AlmostEqualTol, or compare against a
//     constant sentinel.
//  2. ordered comparisons of a load/level expression (a call to Level,
//     Free, TopShared, SharedWith, TotalLoad, or MaxPostFailureLoad)
//     against the exact constant 1 — the unit-capacity check must absorb
//     CapacityEps; use packing.WithinCapacity or packing.FitsWithin.
//
// Test files are exempt (assertions legitimately pick ad-hoc tolerances),
// as is the blessed helper file internal/packing/tolerance.go.
var Floatcmp = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "raw float comparisons on load/level values outside the blessed epsilon helpers",
	Run:  runFloatcmp,
}

// loadBearing are the float-returning methods whose results feed the
// capacity invariant.
var loadBearing = map[string]bool{
	"Level":              true,
	"Free":               true,
	"TopShared":          true,
	"SharedWith":         true,
	"TotalLoad":          true,
	"MaxPostFailureLoad": true,
}

func runFloatcmp(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if pass.Path == packingPath && baseFilename(pass, f) == "tolerance.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if isFloat(pass.Info.TypeOf(be.X)) && isFloat(pass.Info.TypeOf(be.Y)) &&
					!isConstant(pass, be.X) && !isConstant(pass, be.Y) {
					pass.Reportf(be.OpPos,
						"%s on two computed floats; use packing.AlmostEqual or an explicit tolerance", be.Op)
				}
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				var expr, bound ast.Expr
				switch {
				case isConstant(pass, be.Y) && !isConstant(pass, be.X):
					expr, bound = be.X, be.Y
				case isConstant(pass, be.X) && !isConstant(pass, be.Y):
					expr, bound = be.Y, be.X
				default:
					return true
				}
				if isFloat(pass.Info.TypeOf(expr)) && isExactlyOne(pass, bound) && hasLoadBearingCall(pass, expr) {
					pass.Reportf(be.OpPos,
						"raw %s against unit capacity on a load/level expression; use packing.WithinCapacity or packing.FitsWithin", be.Op)
				}
			}
			return true
		})
	}
	return nil
}

// isExactlyOne reports whether the expression is the compile-time
// constant 1 (the bare unit capacity, as opposed to 1+CapacityEps).
func isExactlyOne(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	return constant.Compare(v, token.EQL, constant.MakeFloat64(1))
}

// hasLoadBearingCall reports whether the expression contains a call to
// one of the float-returning load/level accessors.
func hasLoadBearingCall(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && loadBearing[sel.Sel.Name] && isFloat(pass.Info.TypeOf(call)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// baseFilename returns the file's base name.
func baseFilename(pass *analysis.Pass, f *ast.File) string {
	name := pass.Fset.Position(f.Package).Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			return name[i+1:]
		}
	}
	return name
}
