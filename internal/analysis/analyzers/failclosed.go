package analyzers

import (
	"go/ast"
	"go/types"

	"cubefit/internal/analysis"
)

// Failclosed guards PR 6's durability contract: the WAL and JSONL sinks
// fail closed — once a write, flush, or fsync errors, every later
// admission must be refused — which only works if no error from the sink
// chain is dropped on the floor. An ignored Close on a WAL is a silent
// durability hole: the final group commit's error vanishes and the caller
// acks state that never reached stable storage.
//
// Flagged: discarding the error result of Sync, Flush, Close, or Write
// called on a durability-relevant sink — any type declared in
// internal/obs, plus the raw handles the sinks are built from (*os.File
// for Sync/Close/Write, *bufio.Writer for Flush) — whether by an
// expression statement, a blank assignment, `defer`, or `go`. Read-only
// handles (an *os.File opened only for reading) still match; suppress
// those with //cubefit:vet-allow failclosed -- <why the error is moot>.
var Failclosed = &analysis.Analyzer{
	Name: "failclosed",
	Doc:  "ignored error from Sync/Flush/Close/Write on a WAL/JSONL sink or its underlying handle",
	Run:  runFailclosed,
}

// sinkMethods are the durability-relevant methods whose error results
// must be consumed.
var sinkMethods = map[string]bool{"Sync": true, "Flush": true, "Close": true, "Write": true}

func runFailclosed(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportSinkCall(pass, n.X, "discarded")
			case *ast.DeferStmt:
				reportSinkCall(pass, n.Call, "discarded by defer")
			case *ast.GoStmt:
				reportSinkCall(pass, n.Call, "discarded by go")
			case *ast.AssignStmt:
				// `_ = f.Close()` and `_, _ = w.Write(b)` discard just as
				// surely; a named variable on any position consumes it.
				if !allBlank(n.Lhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					reportSinkCall(pass, rhs, "assigned to _")
				}
			}
			return true
		})
	}
	return nil
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// reportSinkCall flags e when it is a sink-method call whose error result
// is being dropped in the described way.
func reportSinkCall(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return
	}
	if !returnsError(pass, call) {
		return
	}
	recv := pass.Info.TypeOf(sel.X)
	if !isSinkType(recv, sel.Sel.Name) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s %s; the fail-closed contract requires every sink error to be checked",
		types.TypeString(recv, types.RelativeTo(pass.Pkg)), sel.Sel.Name, how)
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isSinkType reports whether the receiver type is durability-relevant for
// the given method: any named type from internal/obs, *os.File (Sync,
// Close, Write), or *bufio.Writer (Flush, Write).
func isSinkType(t types.Type, method string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case obsPath:
		return true
	case "os":
		return obj.Name() == "File" && method != "Flush"
	case "bufio":
		return obj.Name() == "Writer" && (method == "Flush" || method == "Write")
	}
	return false
}
