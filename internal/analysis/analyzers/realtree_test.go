package analyzers

import (
	"testing"

	"cubefit/internal/analysis"
)

// The real-tree negative tests: the hotpath and guarded-by analyzers are
// annotation-driven, so deleting an annotation silences them without any
// finding. These tests pin the annotations themselves — removing
// //cubefit:hotpath from a core hot loop or //cubefit:guarded-by from a
// Controller/WAL/JSONL field fails here — and additionally assert that
// the annotated real packages analyze clean, so the suppressions in the
// tree stay honest.

// loadReal loads real repository packages through the module-aware
// loader. Directories are relative to this package's directory; external
// test variants are dropped because annotations live in shipped sources.
func loadReal(t *testing.T, dirs ...string) []*analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dirs...)
	if err != nil {
		t.Fatal(err)
	}
	kept := pkgs[:0]
	for _, p := range pkgs {
		if !p.ExternalTest {
			kept = append(kept, p)
		}
	}
	return kept
}

// collectPass wraps a loaded package for the Collect helpers.
func collectPass(p *analysis.Package) *analysis.Pass {
	return &analysis.Pass{Fset: p.Fset, Path: p.Path, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
}

func TestRealTreeHotpathAnnotationsPresent(t *testing.T) {
	pkgs := loadReal(t, "../../core", "../../obs", "../../packing", "../../api")
	got := make(map[string]bool)
	for _, p := range pkgs {
		for _, fn := range CollectHotpathFuncs(collectPass(p)) {
			got[p.Path+"."+fn.Name] = true
		}
	}
	want := []string{
		// The placement engine's per-admission loops.
		"cubefit/internal/core.CubeFit.emit",
		"cubefit/internal/core.CubeFit.tryFirstStage",
		"cubefit/internal/core.CubeFit.bestMFitIndexed",
		"cubefit/internal/core.CubeFit.bestMFitScan",
		"cubefit/internal/core.CubeFit.placedHosts",
		"cubefit/internal/core.CubeFit.mFits",
		"cubefit/internal/core.topSharedAdjusted",
		"cubefit/internal/core.CubeFit.addRef",
		"cubefit/internal/core.CubeFit.releaseRefs",
		"cubefit/internal/core.CubeFit.placeAtCursor",
		"cubefit/internal/core.CubeFit.advance",
		"cubefit/internal/core.CubeFit.refreshBin",
		"cubefit/internal/core.levelIndex.insert",
		"cubefit/internal/core.levelIndex.remove",
		"cubefit/internal/core.levelIndex.update",
		// The incremental reserve cache: the digest maintenance on every
		// shared-load delta and the cached compare inside mFits.
		"cubefit/internal/core.CubeFit.sharedChanged",
		"cubefit/internal/core.CubeFit.adjustedReserve",
		"cubefit/internal/core.topKDigest.update",
		"cubefit/internal/core.topKDigest.insert",
		"cubefit/internal/core.topKDigest.topSum",
		"cubefit/internal/core.topKDigest.adjustedTopSum",
		// The slack-pruned probe's bucket-bound maintenance.
		"cubefit/internal/core.levelBucketState.raise",
		// The pooled event seam every emission crosses.
		"cubefit/internal/obs.AcquireEvent",
		"cubefit/internal/obs.ReleaseEvent",
		// The pooled admission-span seam and its ring recorder.
		"cubefit/internal/obs.AcquireSpan",
		"cubefit/internal/obs.ReleaseSpan",
		"cubefit/internal/obs.Span.Normalize",
		"cubefit/internal/obs.SpanRing.RecordSpan",
		// The pipeline tracer's per-admission instrumentation points.
		"cubefit/internal/api.pipelineTracer.now",
		"cubefit/internal/api.pipelineTracer.enqueued",
		"cubefit/internal/api.pipelineTracer.dequeued",
		"cubefit/internal/api.pipelineTracer.finish",
		// The allocation-free placement accessors the engine leans on.
		"cubefit/internal/packing.Placement.ReplicasInto",
		"cubefit/internal/packing.Placement.TenantHostsInto",
		"cubefit/internal/packing.Placement.EachTenantHost",
		"cubefit/internal/packing.Server.TopShared",
		"cubefit/internal/packing.Server.EachShared",
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("hot loop %s has lost its //cubefit:hotpath annotation", w)
		}
	}
}

func TestRealTreeGuardedByAnnotationsPresent(t *testing.T) {
	pkgs := loadReal(t, "../../obs", "../../api")
	got := make(map[string]string)
	for _, p := range pkgs {
		for _, gf := range CollectGuardedFields(collectPass(p)) {
			got[p.Path+"."+gf.Struct+"."+gf.Field] = gf.Mutex
		}
	}
	want := map[string]string{
		"cubefit/internal/obs.WAL.bw":            "mu",
		"cubefit/internal/obs.WAL.n":             "mu",
		"cubefit/internal/obs.WAL.synced":        "mu",
		"cubefit/internal/obs.WAL.err":           "mu",
		"cubefit/internal/obs.WAL.closed":        "mu",
		"cubefit/internal/obs.JSONL.enc":         "mu",
		"cubefit/internal/obs.JSONL.n":           "mu",
		"cubefit/internal/obs.JSONL.err":         "mu",
		"cubefit/internal/api.Controller.snap":   "mu",
		"cubefit/internal/api.Controller.closed": "sendMu",
		// The sharded log's staging state and the in-order acker.
		"cubefit/internal/obs.ShardedWAL.cur":        "mu",
		"cubefit/internal/obs.ShardedWAL.next":       "mu",
		"cubefit/internal/obs.ShardedWAL.staged":     "mu",
		"cubefit/internal/obs.ShardedWAL.err":        "mu",
		"cubefit/internal/obs.ShardedWAL.closed":     "mu",
		"cubefit/internal/api.Controller.ackNext":    "ackMu",
		"cubefit/internal/api.Controller.ackPending": "ackMu",
		"cubefit/internal/api.Controller.ackErr":     "ackMu",
	}
	for field, mu := range want {
		if got[field] != mu {
			t.Errorf("field %s: guarded-by %q, want %q (annotation removed or retargeted)", field, got[field], mu)
		}
	}
}

// TestRealTreeAnnotatedPackagesClean re-runs the annotation-driven
// analyzers over the real packages: the annotations must hold, with every
// cold edge carrying an explicit vet-allow.
func TestRealTreeAnnotatedPackagesClean(t *testing.T) {
	pkgs := loadReal(t, "../../core", "../../obs", "../../packing", "../../api")
	diags, err := analysis.Run([]*analysis.Analyzer{Guardedby, Hotpath}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
