package analyzers

import (
	"go/ast"
	"go/types"

	"cubefit/internal/analysis"
)

// Wallclock rejects time.Now and time.Since outside the approved seams.
// Simulation and algorithm results must be a pure function of inputs and
// seeds; wall-clock reads belong behind the clock.Clock interface
// (internal/clock) so tests can substitute a fake. The metrics layer and
// the server binary are operational code and legitimately observe real
// time.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since outside approved seams leak wall-clock into simulations",
	Run:  runWallclock,
}

// wallclockSeams are the packages allowed to read the wall clock.
var wallclockSeams = map[string]bool{
	"cubefit/internal/clock":     true, // the injectable seam itself
	"cubefit/internal/metrics":   true, // request latency observation
	"cubefit/cmd/cubefit-server": true, // operational logging in main
	"cubefit/cmd/cubefit-load":   true, // measuring real latency is its job
}

func runWallclock(pass *analysis.Pass) error {
	if wallclockSeams[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if name := obj.Name(); name == "Now" || name == "Since" {
				pass.Reportf(sel.Pos(),
					"time.%s outside an approved seam; inject a clock.Clock (internal/clock) instead", name)
			}
			return true
		})
	}
	return nil
}
