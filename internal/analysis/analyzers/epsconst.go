package analyzers

import (
	"go/ast"
	"go/token"
	"strconv"

	"cubefit/internal/analysis"
)

// Epsconst rejects bare tolerance literals — float literals with
// magnitude in (0, 1e-6] — anywhere outside top-level const declarations
// of internal/packing (the shared tolerance definitions in tolerance.go).
// Scattered `1e-9`s are how the robustness check and the placement
// feasibility tests drift apart; new tolerances must be introduced as
// named packing constants and referenced from there. Test files are
// exempt: assertions may pick ad-hoc tolerances for the numeric property
// under test.
var Epsconst = &analysis.Analyzer{
	Name: "epsconst",
	Doc:  "bare tolerance literals outside the shared definitions in internal/packing",
	Run:  runEpsconst,
}

// epsMax is the largest magnitude treated as a tolerance literal.
const epsMax = 1e-6 //cubefit:vet-allow epsconst -- the threshold definition itself

func runEpsconst(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		// Ranges of top-level const blocks, exempt inside internal/packing.
		var constRanges [][2]token.Pos
		if pass.Path == packingPath {
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.CONST {
					constRanges = append(constRanges, [2]token.Pos{gd.Pos(), gd.End()})
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			v, err := strconv.ParseFloat(lit.Value, 64)
			if err != nil || v <= 0 || v > epsMax {
				return true
			}
			for _, r := range constRanges {
				if lit.Pos() >= r[0] && lit.Pos() < r[1] {
					return true
				}
			}
			pass.Reportf(lit.Pos(),
				"bare tolerance literal %s; use packing.CapacityEps, packing.SharedEps, or a named packing constant", lit.Value)
			return true
		})
	}
	return nil
}
