package analyzers

import (
	"strconv"

	"cubefit/internal/analysis"
)

// Randsource rejects math/rand (and math/rand/v2) imports outside
// internal/rng. All experiment randomness must flow through the
// repository's own xoshiro256** generator so that a seed fixes the stream
// across Go releases; math/rand gives no such guarantee (and v2 reseeds
// itself). Applies to test files too — a test that perturbs the global
// rand state can destabilize golden experiment outputs.
var Randsource = &analysis.Analyzer{
	Name: "randsource",
	Doc:  "math/rand imports outside internal/rng break experiment reproducibility",
	Run:  runRandsource,
}

// rngPath is the only package allowed to touch math/rand (e.g. for
// cross-validation of its own distributions).
const rngPath = "cubefit/internal/rng"

func runRandsource(pass *analysis.Pass) error {
	if pass.Path == rngPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Path.Pos(),
					"import of %s outside internal/rng; use cubefit/internal/rng for reproducible streams", path)
			}
		}
	}
	return nil
}
