package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cubefit/internal/analysis"
)

// Hotpath protects PR 5's allocation wins (the 35–54× reductions on the
// placement and snapshot paths): a function annotated
//
//	//cubefit:hotpath
//
// in its doc comment declares an allocation-free steady state, and the
// analyzer flags constructs that would put allocations back:
//
//   - fmt calls — every argument escapes through the ...interface{}
//     boxing, even on paths that never fire;
//   - function literals that capture enclosing variables — the closure
//     and its captured cells are heap-allocated at every evaluation;
//   - append on anything not recognizably a reused scratch buffer (the
//     slice expression must mention "scratch", "pool", or "buf");
//   - &T{...} address-of composite literals, make, and new — direct
//     allocations;
//   - composite literals passed or assigned into interface positions —
//     the conversion boxes them onto the heap.
//
// Cold sub-paths inside a hot function (error construction, one-time
// growth) carry //cubefit:vet-allow hotpath -- <why it stays cold>, which
// doubles as the documentation of where the hot loop's cold edges are.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "allocation-introducing constructs inside //cubefit:hotpath functions",
	Run:  runHotpath,
}

// hotpathDirective marks a function as allocation-free.
const hotpathDirective = "//cubefit:hotpath"

// scratchNames are the substrings that mark a slice expression as a
// caller-owned reusable buffer, making append amortized-free.
var scratchNames = []string{"scratch", "pool", "buf"}

// HotpathFunc is one annotated function. Exported so tests can assert
// that the real tree's hot loops carry the annotation (the negative test:
// removing the annotation silences the analyzer, so its presence must
// itself be tested).
type HotpathFunc struct {
	Name string // func name, receiver-qualified for methods ("Type.Name")
	Pos  token.Pos
}

// CollectHotpathFuncs gathers every hotpath annotation in the pass's
// files, in declaration order.
func CollectHotpathFuncs(pass *analysis.Pass) []HotpathFunc {
	var out []HotpathFunc
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasHotpathDirective(fd.Doc) {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				if rn := receiverTypeName(fd.Recv.List[0].Type); rn != "" {
					name = rn + "." + name
				}
			}
			out = append(out, HotpathFunc{Name: name, Pos: fd.Pos()})
		}
	}
	return out
}

// hasHotpathDirective reports whether the doc comment carries the marker.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// receiverTypeName extracts the bare type name from a receiver type
// expression (*T, T, or generic T[...]).
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

func runHotpath(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd.Doc) {
				continue
			}
			hp := &hotpathPass{pass: pass, fn: fd}
			hp.checkBody(fd.Body)
		}
	}
	return nil
}

type hotpathPass struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
}

func (hp *hotpathPass) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			hp.checkCall(n)
		case *ast.FuncLit:
			hp.checkFuncLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					hp.report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					hp.checkInterfaceSink(rhs, hp.pass.Info.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				hp.checkInterfaceSink(r, hp.pass.Info.TypeOf(r))
			}
		}
		return true
	})
}

// checkCall flags fmt calls, make/new, non-scratch append, and composite
// literals boxed into interface parameters.
func (hp *hotpathPass) checkCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := hp.pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				hp.report(call.Pos(), "fmt.%s boxes every argument onto the heap", fun.Sel.Name)
				return
			}
		}
	case *ast.Ident:
		switch hp.pass.Info.Uses[fun] {
		case types.Universe.Lookup("append"):
			hp.checkAppend(call)
			return
		case types.Universe.Lookup("make"):
			hp.report(call.Pos(), "make allocates")
			return
		case types.Universe.Lookup("new"):
			hp.report(call.Pos(), "new allocates")
			return
		}
	}
	hp.checkArgBoxing(call)
}

// checkAppend lets appends into recognizable scratch storage through and
// flags the rest: append on a fresh or caller-visible slice grows the
// heap on every call, where a scratch buffer amortizes to zero.
func (hp *hotpathPass) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := strings.ToLower(printExpr(call.Args[0]))
	for _, s := range scratchNames {
		if strings.Contains(dst, s) {
			return
		}
	}
	hp.report(call.Pos(), "append on %s may grow the heap; reuse a scratch buffer (name it *scratch/*pool/*buf)", printExpr(call.Args[0]))
}

// checkArgBoxing flags composite-literal arguments landing in interface
// parameters.
func (hp *hotpathPass) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := hp.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		hp.checkInterfaceSink(arg, pt)
	}
}

// checkInterfaceSink flags a composite literal flowing into an
// interface-typed destination, where the conversion heap-boxes it.
func (hp *hotpathPass) checkInterfaceSink(e ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return
	}
	hp.report(lit.Pos(), "composite literal converted to %s escapes to the heap",
		types.TypeString(dst, types.RelativeTo(hp.pass.Pkg)))
}

// checkFuncLit flags literals that capture enclosing variables: the
// closure header and each captured cell allocate at evaluation time.
// Capture-free literals compile to plain functions and stay.
func (hp *hotpathPass) checkFuncLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := hp.pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared outside the literal but not at package level.
		if v.Parent() == hp.pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		hp.report(lit.Pos(), "closure captures %s and allocates per evaluation", captured)
	}
}

func (hp *hotpathPass) report(pos token.Pos, format string, args ...any) {
	hp.pass.Reportf(pos, "hotpath %s: "+format, append([]any{hp.fn.Name.Name}, args...)...)
}
