package analyzers

import (
	"testing"

	"cubefit/internal/analysis/analysistest"
)

func TestAllIsComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() returned %d analyzers, want 10", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, Floatcmp, "testdata/floatcmp/flagged", "cubefit/fixture/floatcmp")
	analysistest.RunClean(t, Floatcmp, "testdata/floatcmp/clean", "cubefit/fixture/floatcmp")
}

func TestEpsconst(t *testing.T) {
	analysistest.Run(t, Epsconst, "testdata/epsconst/flagged", "cubefit/fixture/epsconst")
	analysistest.RunClean(t, Epsconst, "testdata/epsconst/clean", "cubefit/fixture/epsconst")
}

// TestEpsconstPackingExemption loads the packing fixture under the real
// internal/packing import path: its top-level const block may define
// tolerance literals, but a bare literal in a function body is still
// reported.
func TestEpsconstPackingExemption(t *testing.T) {
	analysistest.Run(t, Epsconst, "testdata/epsconst/packing", packingPath)
}

func TestRandsource(t *testing.T) {
	analysistest.Run(t, Randsource, "testdata/randsource/flagged", "cubefit/fixture/randsource")
	analysistest.RunClean(t, Randsource, "testdata/randsource/clean", "cubefit/fixture/randsource")
	analysistest.RunClean(t, Randsource, "testdata/randsource/rng", rngPath)
}

func TestWallclock(t *testing.T) {
	analysistest.Run(t, Wallclock, "testdata/wallclock/flagged", "cubefit/fixture/wallclock")
	analysistest.RunClean(t, Wallclock, "testdata/wallclock/clean", "cubefit/fixture/wallclock")
	analysistest.RunClean(t, Wallclock, "testdata/wallclock/seam", "cubefit/internal/metrics")
}

func TestLockpair(t *testing.T) {
	analysistest.Run(t, Lockpair, "testdata/lockpair/flagged", "cubefit/fixture/lockpair")
	analysistest.RunClean(t, Lockpair, "testdata/lockpair/clean", "cubefit/fixture/lockpair")
}

// TestMaprange loads the flagged and clean fixtures under a real
// determinism-critical import path (the analyzer is keyed on the package
// path) and the third fixture under a neutral path, where map iteration
// is unrestricted.
func TestMaprange(t *testing.T) {
	analysistest.Run(t, Maprange, "testdata/maprange/flagged", "cubefit/internal/core")
	analysistest.RunClean(t, Maprange, "testdata/maprange/clean", "cubefit/internal/core")
	analysistest.RunClean(t, Maprange, "testdata/maprange/other", "cubefit/fixture/maprange")
}

func TestEventpool(t *testing.T) {
	analysistest.Run(t, Eventpool, "testdata/eventpool/flagged", "cubefit/fixture/eventpool")
	analysistest.RunClean(t, Eventpool, "testdata/eventpool/clean", "cubefit/fixture/eventpool")
}

func TestFailclosed(t *testing.T) {
	analysistest.Run(t, Failclosed, "testdata/failclosed/flagged", "cubefit/fixture/failclosed")
	analysistest.RunClean(t, Failclosed, "testdata/failclosed/clean", "cubefit/fixture/failclosed")
}

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, Guardedby, "testdata/guardedby/flagged", "cubefit/fixture/guardedby")
	analysistest.RunClean(t, Guardedby, "testdata/guardedby/clean", "cubefit/fixture/guardedby")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, Hotpath, "testdata/hotpath/flagged", "cubefit/fixture/hotpath")
	analysistest.RunClean(t, Hotpath, "testdata/hotpath/clean", "cubefit/fixture/hotpath")
}
