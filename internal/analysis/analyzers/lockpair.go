package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"cubefit/internal/analysis"
)

// Lockpair guards the RWMutex discipline that PR 1 introduced in
// internal/api (and that internal/metrics relies on):
//
//  1. sync.Mutex / sync.RWMutex values (or structs directly containing
//     one) must not be copied: by-value parameters, results, receivers,
//     and assignments that duplicate existing lock storage are rejected.
//  2. `defer mu.Lock()` (locking at function exit) is rejected — the
//     classic defer typo.
//  3. every mu.Lock() / mu.RLock() must have a flavor-matched
//     mu.Unlock() / mu.RUnlock() on the same receiver expression
//     somewhere in the same function (deferred or direct); a
//     wrong-flavor pairing (Lock→RUnlock, RLock→Unlock) is called out
//     separately.
//
// The pairing check is intra-procedural and existence-based; helper
// methods that intentionally lock for their caller can suppress it with
// //cubefit:vet-allow lockpair -- <why>.
var Lockpair = &analysis.Analyzer{
	Name: "lockpair",
	Doc:  "copied mutexes and Lock/RLock calls without a matching Unlock in the same function",
	Run:  runLockpair,
}

// unlockFor maps each lock method to its required unlock flavor.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockpair(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCopyFields(pass, n.Recv)
				checkCopyFields(pass, n.Type.Params)
				checkCopyFields(pass, n.Type.Results)
				if n.Body != nil {
					checkPairing(pass, n.Body)
				}
			case *ast.FuncLit:
				checkCopyFields(pass, n.Type.Params)
				checkCopyFields(pass, n.Type.Results)
				checkPairing(pass, n.Body)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopyValue(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyValue(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// checkCopyFields flags by-value lock-carrying parameters, results, and
// receivers.
func checkCopyFields(pass *analysis.Pass, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if name := lockIn(t, nil); name != "" {
			pass.Reportf(field.Type.Pos(), "%s passed by value copies %s; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
		}
	}
}

// checkCopyValue flags expressions that duplicate existing lock storage:
// reads of variables, fields, indexes, or dereferences whose type carries
// a mutex. Fresh values (composite literals, function calls) are fine.
func checkCopyValue(pass *analysis.Pass, e ast.Expr) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.Info.TypeOf(e)
	if t == nil {
		return
	}
	if tv, ok := pass.Info.Types[e]; ok && tv.IsType() {
		return // a type conversion target, not a value read
	}
	if name := lockIn(t, nil); name != "" {
		pass.Reportf(e.Pos(), "assignment copies %s (via %s); use a pointer", name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// lockIn returns the name of the sync lock type contained by value in t
// ("" if none). Pointers break containment.
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockIn(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}

// lockCall describes one (Un)lock-family call found in a function body.
type lockCall struct {
	recv     string // receiver expression, printed
	method   string // Lock, RLock, Unlock, RUnlock
	pos      token.Pos
	deferred bool
}

// checkPairing runs the intra-procedural pairing analysis on one body.
// Nested function literals are included when searching for unlocks (a
// deferred closure may release the lock), but findings positioned inside
// them are left to the literal's own analysis so nothing is reported
// twice.
func checkPairing(pass *analysis.Pass, body *ast.BlockStmt) {
	var litRanges [][2]token.Pos
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	var calls []lockCall
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litRanges = append(litRanges, [2]token.Pos{n.Pos(), n.End()})
		case *ast.DeferStmt:
			if c := lockCallOf(pass, n.Call); c != nil {
				deferredCalls[n.Call] = true
				c.deferred = true
				calls = append(calls, *c)
				if _, isLock := unlockFor[c.method]; isLock && !inLit(n.Pos()) {
					pass.Reportf(n.Pos(), "defer %s.%s() acquires the lock at function exit; did you mean defer %s.%s()?",
						c.recv, c.method, c.recv, unlockFor[c.method])
				}
			}
		case *ast.CallExpr:
			if deferredCalls[n] {
				return true
			}
			if c := lockCallOf(pass, n); c != nil {
				calls = append(calls, *c)
			}
		}
		return true
	})
	for _, c := range calls {
		if inLit(c.pos) {
			continue
		}
		want, isLock := unlockFor[c.method]
		if !isLock || c.deferred {
			continue // deferred locks already reported above
		}
		matched, wrongFlavor := false, false
		for _, o := range calls {
			if o.recv != c.recv {
				continue
			}
			switch o.method {
			case want:
				matched = true
			case otherUnlock(want):
				wrongFlavor = true
			}
		}
		switch {
		case matched:
		case wrongFlavor:
			pass.Reportf(c.pos, "%s.%s() is released with %s instead of %s in this function",
				c.recv, c.method, otherUnlock(want), want)
		default:
			pass.Reportf(c.pos, "%s.%s() has no matching %s.%s() in this function",
				c.recv, c.method, c.recv, want)
		}
	}
}

// otherUnlock returns the opposite unlock flavor.
func otherUnlock(u string) string {
	if u == "Unlock" {
		return "RUnlock"
	}
	return "Unlock"
}

// lockCallOf recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync
// mutexes (or sync.Locker values) and captures the printed receiver.
func lockCallOf(pass *analysis.Pass, call *ast.CallExpr) *lockCall {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	m := sel.Sel.Name
	switch m {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil
	}
	if !isSyncLock(pass.Info.TypeOf(sel.X)) {
		return nil
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), sel.X); err != nil {
		return nil
	}
	return &lockCall{recv: buf.String(), method: m, pos: sel.Pos()}
}

// isSyncLock reports whether t (or its pointee) is sync.Mutex,
// sync.RWMutex, or sync.Locker.
func isSyncLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}
