// Positive fixture for guardedby: unlocked reads and writes of annotated
// fields, locking the wrong mutex, and rotten annotations.
package a

import "sync"

type ctrl struct {
	mu sync.RWMutex
	//cubefit:guarded-by mu
	snap []int
	//cubefit:guarded-by gone
	bad int // want "has no such field"
	//cubefit:guarded-by snap
	worse int // want "not a sync.Mutex/RWMutex"
}

func unlockedRead(c *ctrl) int {
	return len(c.snap) // want "guarded by mu"
}

func unlockedWrite(c *ctrl) {
	c.snap = nil // want "guarded by mu"
}

type two struct {
	mu  sync.Mutex
	aux sync.Mutex
	//cubefit:guarded-by mu
	n int
}

func wrongLock(t *two) {
	t.aux.Lock()
	defer t.aux.Unlock()
	t.n++ // want "guarded by mu"
}
