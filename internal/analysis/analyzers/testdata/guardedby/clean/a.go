// Negative fixture for guardedby: accesses under the right lock (either
// flavor), construction, the *Locked helper convention, and a justified
// suppression.
package a

import "sync"

type ctrl struct {
	mu sync.RWMutex
	//cubefit:guarded-by mu
	snap []int

	sendMu sync.RWMutex
	//cubefit:guarded-by sendMu
	closed bool
}

func (c *ctrl) snapshot() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap
}

func (c *ctrl) set(s []int) {
	c.mu.Lock()
	c.snap = s
	c.mu.Unlock()
}

func (c *ctrl) enqueue() bool {
	c.sendMu.RLock()
	defer c.sendMu.RUnlock()
	return !c.closed
}

// invalidateLocked follows the called-with-lock-held convention: the
// caller holds c.mu.
func (c *ctrl) invalidateLocked() {
	c.snap = nil
}

func newCtrl() *ctrl {
	// Keyed construction is not a guarded access.
	return &ctrl{snap: make([]int, 0, 4)}
}

func setup(c *ctrl) {
	//cubefit:vet-allow guardedby -- single-threaded setup before the value is shared
	c.snap = []int{1}
}
