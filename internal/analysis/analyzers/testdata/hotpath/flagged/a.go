// Positive fixture for hotpath: every allocation-introducing construct
// inside an annotated function, and the same constructs staying silent in
// an unannotated one.
package a

import "fmt"

type item struct{ v int }

type sink interface{ accept(any) }

//cubefit:hotpath
func hot(xs []int, out []int, s sink) []int {
	for _, x := range xs {
		out = append(out, x) // want "append on out"
	}
	fmt.Println(len(xs)) // want "fmt.Println boxes"
	p := &item{v: 1}     // want "composite literal allocates"
	_ = p
	m := make(map[int]int) // want "make allocates"
	_ = m
	q := new(item) // want "new allocates"
	_ = q
	n := 0
	f := func() { n++ } // want "closure captures n"
	f()
	s.accept(item{v: 2}) // want "escapes to the heap"
	return out
}

func cold(xs []int, s sink) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	fmt.Println(len(xs))
	s.accept(item{v: 2})
	return out
}
