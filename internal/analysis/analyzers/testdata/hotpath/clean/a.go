// Negative fixture for hotpath: scratch-buffer appends, in-place struct
// reset, capture-free literals, and a justified cold-edge suppression.
package a

type counter struct{ n int }

//cubefit:hotpath
func fill(xs []int, scratch []int) []int {
	scratch = append(scratch[:0], xs...)
	return scratch
}

//cubefit:hotpath
func reset(c *counter) {
	*c = counter{} // assignment into existing memory: no allocation
}

//cubefit:hotpath
func anyPositive(xs []int) bool {
	pos := func(v int) bool { return v > 0 } // capture-free: a plain function
	for _, x := range xs {
		if pos(x) {
			return true
		}
	}
	return false
}

//cubefit:hotpath
func grow(xs []int) []int {
	//cubefit:vet-allow hotpath -- one-time growth edge; steady state reuses capacity
	return append(xs, 0)
}
