// Fixture loaded under the pretend path cubefit/internal/packing: the
// blessed top-level const declarations may define tolerance literals, but
// bare literals in function bodies are still reported even there.
package packing

const (
	capacityEps = 1e-9  // blessed: top-level const in internal/packing
	sharedEps   = 1e-12 // blessed likewise
)

func withinCapacity(load float64) bool {
	return load <= 1+capacityEps
}

func sloppy(load float64) bool {
	return load <= 1+1e-9 // want "bare tolerance literal 1e-9"
}

func negligible(x float64) bool {
	return x <= sharedEps
}
