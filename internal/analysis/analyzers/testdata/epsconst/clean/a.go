// Negative fixture for epsconst: ordinary float literals above the
// tolerance magnitude, integers, and directive-suppressed definitions
// must stay silent.
package a

const (
	half    = 0.5
	small   = 1e-5 // just above the tolerance threshold
	count   = 42
	special = 1e-9 //cubefit:vet-allow epsconst -- fixture exercising the suppression directive
)

func scale(x float64) float64 {
	return x*half + small + float64(count) + special
}
