// Positive fixture for epsconst: bare tolerance-magnitude float literals
// outside internal/packing must be reported wherever they appear.
package a

const eps = 1e-9 // want "bare tolerance literal 1e-9"

var slack = 1e-12 // want "bare tolerance literal 1e-12"

func compare(x, y float64) bool {
	if x > y+1e-6 { // want "bare tolerance literal 1e-6"
		return false
	}
	return x-y < 0.000000001 // want "bare tolerance literal 0.000000001"
}
