// Positive fixture for failclosed: every way of dropping a sink error —
// expression statement, defer, go, blank assignment — on obs sinks and
// the raw handles beneath them.
package a

import (
	"bufio"
	"os"

	"cubefit/internal/obs"
)

func discards(f *os.File, bw *bufio.Writer, w *obs.WAL) {
	f.Close()      // want "error from .os.File.Close discarded"
	defer f.Sync() // want "discarded by defer"
	bw.Flush()     // want "error from .bufio.Writer.Flush discarded"
	_ = w.Close()  // want "assigned to _"
	go w.Sync()    // want "discarded by go"
}

func blankWrite(f *os.File, b []byte) {
	_, _ = f.Write(b) // want "assigned to _"
}
