// Negative fixture for failclosed: checked errors, non-sink receivers,
// methods without error results, and a justified suppression.
package a

import (
	"bufio"
	"os"

	"cubefit/internal/obs"
)

type quiet struct{}

func (quiet) Close() error { return nil }

func checked(f *os.File, bw *bufio.Writer, w *obs.WAL) error {
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return f.Close()
}

func nonSink(q quiet, w *obs.WAL, e obs.Event) {
	q.Close()   // not a durability sink type: silent
	w.Record(e) // returns no error: silent
}

func consumed(f *os.File) error {
	err := f.Sync()
	return err
}

func suppressed(f *os.File) {
	//cubefit:vet-allow failclosed -- handle opened read-only; the close error is moot
	f.Close()
}
