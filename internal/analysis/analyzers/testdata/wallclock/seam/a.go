// Fixture loaded under the pretend path cubefit/internal/metrics: an
// approved seam may read the wall clock freely.
package seam

import "time"

func observe(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
