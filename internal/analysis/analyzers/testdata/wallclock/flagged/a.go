// Positive fixture for wallclock: time.Now and time.Since reads outside
// an approved seam must be reported.
package a

import "time"

func measure(f func()) time.Duration {
	start := time.Now() // want "time.Now outside an approved seam"
	f()
	return time.Since(start) // want "time.Since outside an approved seam"
}
