// Negative fixture for wallclock: duration arithmetic and explicit
// time.Time plumbing are fine; only the wall-clock reads themselves are
// policed, and those can be suppressed with a reasoned directive.
package a

import "time"

func deadline(start time.Time, budget time.Duration) time.Time {
	return start.Add(budget + 5*time.Millisecond)
}

func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

func stamp() time.Time {
	return time.Now() //cubefit:vet-allow wallclock -- fixture exercising the suppression directive
}
