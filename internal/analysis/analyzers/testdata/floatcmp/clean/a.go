// Negative fixture for floatcmp: comparisons against constants, epsilon
// slack on the capacity bound, integer comparisons, and directive-
// suppressed exact tie-breaks must all stay silent.
package a

import "sort"

type server struct{ level float64 }

func (s server) Level() float64 { return s.level }

const slack = 2e-3

func fine(a, b float64, s server, xs []server) bool {
	if a == 0 { // constant sentinel comparison
		return true
	}
	if s.Level() > 1+slack { // capacity with explicit tolerance
		return false
	}
	if s.Level() > 0.5 { // ordered against a non-capacity constant
		return true
	}
	if len(xs) == int(a) { // integers are not floats
		return false
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Level() != xs[j].Level() { //cubefit:vet-allow floatcmp -- exact tie-break keeps the comparator a strict weak order
			return xs[i].Level() > xs[j].Level()
		}
		return i < j
	})
	return a < b
}
