// Positive fixture for floatcmp: raw equality on computed floats and raw
// ordered comparisons of load-bearing expressions against the unit
// capacity must all be reported.
package a

type server struct{ level float64 }

func (s server) Level() float64 { return s.level }

func (s server) Free() float64 { return 1 - s.level }

func equalities(a, b float64, s server) bool {
	if a == b { // want "== on two computed floats"
		return true
	}
	if s.Level() != b { // want "!= on two computed floats"
		return false
	}
	return a+b == b*a // want "== on two computed floats"
}

func capacity(a float64, s server) bool {
	if s.Level() > 1 { // want "raw > against unit capacity"
		return false
	}
	if 1 < s.Level()+a { // want "raw < against unit capacity"
		return false
	}
	return s.Level()+s.Free() <= 1 // want "raw <= against unit capacity"
}
