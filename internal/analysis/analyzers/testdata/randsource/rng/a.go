// Fixture loaded under the pretend path cubefit/internal/rng: the one
// package allowed to import math/rand (to cross-validate its own
// distributions) must stay silent.
package rng

import "math/rand"

func crossCheck(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
