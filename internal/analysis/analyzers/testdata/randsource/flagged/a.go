// Positive fixture for randsource: math/rand in either version must be
// reported outside internal/rng, even when renamed.
package a

import (
	"math/rand" // want "import of math/rand outside internal/rng"

	mrand "math/rand/v2" // want "import of math/rand/v2 outside internal/rng"
)

func roll() int64 {
	return rand.Int63() + mrand.Int64()
}
