// Negative fixture for randsource: crypto/rand is not the reproducibility
// hazard the analyzer polices, and an unrelated import stays silent.
package a

import (
	"crypto/rand"
	"fmt"
)

func token() (string, error) {
	b := make([]byte, 8)
	if _, err := rand.Read(b); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", b), nil
}
