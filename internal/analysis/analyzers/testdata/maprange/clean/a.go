// Negative fixture for maprange under a determinism-critical import
// path: sorted-key iteration and justified order-insensitive ranges.
package a

import "sort"

func sumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	//cubefit:vet-allow maprange -- collects keys only; sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

func count(m map[string]bool) int {
	n := 0
	//cubefit:vet-allow maprange -- pure counting is order-insensitive
	for range m {
		n++
	}
	return n
}
