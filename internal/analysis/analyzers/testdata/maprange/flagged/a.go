// Positive fixture for maprange, loaded under a determinism-critical
// import path: every map range is reported; slice ranges stay silent.
package a

func sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "nondeterministic order"
		s += v
	}
	return s
}

type index map[string][]int

func first(idx index) []int {
	for _, v := range idx { // want "nondeterministic order"
		return v
	}
	return nil
}

func keysOnly(m map[int]bool) int {
	n := 0
	for range m { // want "nondeterministic order"
		n++
	}
	return n
}

func overSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs { // slices iterate in index order: silent
		s += v
	}
	return s
}
