// Negative fixture for maprange under a package outside the
// determinism-critical set: map iteration is unrestricted.
package a

func tally(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
