// Negative fixture for lockpair: flavor-matched defer pairs, releases
// from a deferred closure, pointer plumbing, fresh zero-value mutexes,
// and a directive-suppressed lock-for-caller helper must stay silent.
package a

import "sync"

type guarded struct {
	mu sync.RWMutex
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func (g *guarded) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

func (g *guarded) closureRelease() int {
	g.mu.Lock()
	defer func() { g.mu.Unlock() }()
	return g.n
}

func take(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

func fresh() *guarded {
	var g guarded
	return &g
}

func (g *guarded) lockForCaller() {
	g.mu.Lock() //cubefit:vet-allow lockpair -- released by unlockForCaller on the same receiver
}

func (g *guarded) unlockForCaller() {
	g.mu.Unlock()
}
