// Positive fixture for lockpair: unmatched locks, the defer-Lock typo,
// wrong-flavor releases, and every form of mutex copying must be
// reported.
package a

import "sync"

type guarded struct {
	mu sync.RWMutex
	n  int
}

func missing(mu *sync.Mutex) {
	mu.Lock() // want "has no matching mu.Unlock"
}

func deferTypo(mu *sync.Mutex) {
	defer mu.Lock() // want "acquires the lock at function exit"
}

func wrongFlavor(g *guarded) {
	g.mu.RLock() // want "released with Unlock instead of RUnlock"
	g.mu.Unlock()
}

func byValue(mu sync.Mutex) { // want "passed by value copies sync.Mutex"
	mu.Lock()
	mu.Unlock()
}

func (g guarded) size() int { // want "guarded passed by value copies sync.RWMutex"
	return g.n
}

func snapshot(g *guarded) {
	cp := *g // want "assignment copies sync.RWMutex"
	_ = cp.n
}
