// Negative fixture for eventpool: straight-line release, deferred
// release, ownership transfers, and branch-complete releases.
package a

import "cubefit/internal/obs"

func sink(e *obs.Event) {}

func releases() {
	e := obs.AcquireEvent(obs.KindAttempt)
	e.Tenant = 7
	obs.ReleaseEvent(e)
}

func deferred() {
	e := obs.AcquireEvent(obs.KindAttempt)
	defer obs.ReleaseEvent(e)
	e.Replica = 1
}

func transfers() {
	e := obs.AcquireEvent(obs.KindAttempt)
	sink(e) // the callee owns and releases the event
}

func returned() *obs.Event {
	e := obs.AcquireEvent(obs.KindAttempt)
	return e // ownership passes to the caller
}

func bothBranches(ok bool) {
	e := obs.AcquireEvent(obs.KindAttempt)
	if ok {
		obs.ReleaseEvent(e)
	} else {
		sink(e)
	}
}

func fullSwitch(k int) {
	e := obs.AcquireEvent(obs.KindAttempt)
	switch k {
	case 0:
		obs.ReleaseEvent(e)
	default:
		sink(e)
	}
}

func nested() {
	e := obs.AcquireEvent(obs.KindAttempt)
	{
		obs.ReleaseEvent(e)
	}
}

func suppressed(ok bool) {
	//cubefit:vet-allow eventpool -- fixture hook: the event intentionally leaks when !ok
	e := obs.AcquireEvent(obs.KindAttempt)
	if ok {
		obs.ReleaseEvent(e)
	}
}
