// Positive fixture for eventpool: leaks, conditional releases, double
// releases, and discarded acquires must all be reported. The fixture
// imports the real internal/obs so the call matching runs against the
// genuine pool functions.
package a

import "cubefit/internal/obs"

func record(e obs.Event) {}

func leak() {
	e := obs.AcquireEvent(obs.KindAttempt) // want "never released"
	e.Tenant = 1
	record(*e) // a value copy does not transfer ownership
}

func conditional(ok bool) {
	e := obs.AcquireEvent(obs.KindAttempt) // want "released on some paths only"
	if ok {
		obs.ReleaseEvent(e)
	}
}

func double() {
	e := obs.AcquireEvent(obs.KindAttempt)
	obs.ReleaseEvent(e)
	obs.ReleaseEvent(e) // want "double release"
}

func discarded() {
	obs.AcquireEvent(obs.KindAttempt) // want "discarded"
}

func loopOnly(n int) {
	e := obs.AcquireEvent(obs.KindAttempt) // want "released on some paths only"
	for i := 0; i < n; i++ {
		obs.ReleaseEvent(e)
	}
}

func halfSwitch(k int) {
	e := obs.AcquireEvent(obs.KindAttempt) // want "released on some paths only"
	switch k {
	case 0:
		obs.ReleaseEvent(e)
	case 1:
	}
}
