// Fixture for the runner's directive handling: the test's dummy analyzer
// reports every return statement; a directive on the same line or the
// line above suppresses the finding, a directive naming a different
// analyzer does not.
package suppress

func plain() int {
	return 1
}

func sameLine() int {
	return 2 //cubefit:vet-allow dummy -- same-line suppression
}

func lineAbove() int {
	//cubefit:vet-allow dummy -- previous-line suppression
	return 3
}

func wrongName() int {
	return 4 //cubefit:vet-allow other -- names a different analyzer
}
