// Package analysis is a small static-analysis framework built purely on
// the standard library's go/parser, go/ast, and go/types (no
// golang.org/x/tools dependency, keeping the module zero-dep). It provides
//
//   - a module-aware package loader with full type-checker integration
//     (Loader), resolving in-module imports itself and standard-library
//     imports through the gc source importer;
//   - a pluggable Analyzer interface with position-accurate diagnostics;
//   - a multichecker runner (Run) with //cubefit:vet-allow suppression
//     directives;
//   - a golden-file test harness (sub-package analysistest) driven by
//     `// want "regexp"` comments.
//
// The project-specific analyzers enforcing CubeFit's numeric, determinism,
// and locking invariants live in the analyzers sub-package; the
// cmd/cubefit-vet CLI wires everything into `make lint` and CI. See
// README.md "Static analysis" for the catalogue and DESIGN.md for the
// architecture.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static-analysis check. Run inspects a single
// type-checked package through the Pass and reports findings; it must not
// retain the Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cubefit:vet-allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// shown by `cubefit-vet -help`.
	Doc string
	// Run performs the check. A non-nil error aborts the whole run and
	// means the analyzer itself failed, not that findings exist.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run
// invocation.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the run.
	Fset *token.FileSet
	// Path is the package's import path. Test-file augmented packages keep
	// their base path; external test packages (package foo_test) carry the
	// "_test" suffix on the path.
	Path string
	// Files is the package's syntax, including in-package _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, bound to a resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders findings by file, line, column, then analyzer
// name, for stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
