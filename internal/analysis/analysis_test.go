package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestNewLoaderFindsModuleRoot(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ModulePath(); got != "cubefit" {
		t.Errorf("ModulePath() = %q, want %q", got, "cubefit")
	}
	if _, err := os.Stat(filepath.Join(l.ModuleDir(), "go.mod")); err != nil {
		t.Errorf("ModuleDir() %s has no go.mod: %v", l.ModuleDir(), err)
	}
}

// TestLoadRealPackage type-checks a real in-module package (with its
// stdlib imports resolved through the source importer) and verifies the
// derived import path and exported scope.
func TestLoadRealPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("../packing")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load(../packing) returned no packages")
	}
	pkg := pkgs[0]
	if pkg.Path != "cubefit/internal/packing" {
		t.Errorf("Path = %q, want cubefit/internal/packing", pkg.Path)
	}
	if pkg.Pkg.Scope().Lookup("CapacityEps") == nil {
		t.Error("type-checked packing scope is missing CapacityEps")
	}
	if pkg.Info == nil || len(pkg.Info.Defs) == 0 {
		t.Error("type info was not populated")
	}
}

// TestRunSuppressionDirectives drives a dummy analyzer over the suppress
// fixture: same-line and previous-line directives naming the analyzer
// remove findings, a directive naming a different analyzer does not.
func TestRunSuppressionDirectives(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir("testdata/suppress", "cubefit/fixture/suppress")
	if err != nil {
		t.Fatal(err)
	}
	dummy := &Analyzer{
		Name: "dummy",
		Doc:  "reports every return statement",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if r, ok := n.(*ast.ReturnStmt); ok {
						p.Reportf(r.Pos(), "return statement")
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := Run([]*Analyzer{dummy}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// The fixture's plain() and wrongName() returns survive; the
	// directive-covered returns in sameLine() and lineAbove() do not.
	want := []int{8, 21}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("surviving diagnostic lines = %v, want %v\n%v", lines, want, diags)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//cubefit:vet-allow floatcmp -- reason", []string{"floatcmp"}, true},
		{"// cubefit:vet-allow a,b\tc -- why", []string{"a", "b", "c"}, true},
		{"//cubefit:vet-allow lockpair", []string{"lockpair"}, true},
		{"//cubefit:vet-allow", nil, false},
		{"//cubefit:vet-allow -- reason without names", nil, false},
		{"// an ordinary comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseAllow(&ast.Comment{Text: c.text})
		if ok != c.ok || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "floatcmp",
		Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
		Message:  "raw == on floats",
	}
	if got, want := d.String(), "a.go:3:7: floatcmp: raw == on floats"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
