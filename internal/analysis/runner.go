package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// AllowDirective is the comment prefix that suppresses diagnostics:
//
//	//cubefit:vet-allow analyzer1,analyzer2 -- reason
//
// placed on the same line as the finding or on the line directly above
// it. The reason after "--" is mandatory-by-convention but not enforced.
const AllowDirective = "cubefit:vet-allow"

// Run applies every analyzer to every package, filters findings through
// //cubefit:vet-allow directives, and returns the surviving diagnostics
// sorted by position. A non-nil error reports an analyzer failure, not a
// finding.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	allows := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		collectAllows(pkg, allows)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows records the package's //cubefit:vet-allow directives. A
// directive suppresses the named analyzers on its own line and the line
// below it (so it works both as a trailing and as a leading comment).
func collectAllows(pkg *Package, out map[allowKey]bool) {
	fset := pkg.Fset
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, n := range names {
					out[allowKey{pos.Filename, pos.Line, n}] = true
				}
			}
		}
	}
}

// parseAllow extracts the analyzer names of one directive comment.
func parseAllow(c *ast.Comment) ([]string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, AllowDirective) {
		return nil, false
	}
	text = strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
	if i := strings.Index(text, "--"); i >= 0 {
		text = strings.TrimSpace(text[:i])
	}
	if text == "" {
		return nil, false
	}
	var names []string
	for _, n := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}
