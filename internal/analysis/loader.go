package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path. The external test package
	// (package foo_test) of a directory shares the directory's import path
	// and is marked with ExternalTest.
	Path string
	// ExternalTest marks the `package foo_test` variant of a directory.
	ExternalTest bool
	// Fset resolves positions for Files (shared across one Loader).
	Fset *token.FileSet
	// Files is the parsed syntax: non-test files plus in-package _test.go
	// files for the regular variant, the foo_test files for the external
	// variant.
	Files []*ast.File
	// Pkg and Info are the type checker's output for Files.
	Pkg  *types.Package
	Info *types.Info
}

// Loader loads and type-checks packages of one module. In-module import
// paths are resolved against the module directory and type-checked from
// source; standard-library imports go through the go/importer source
// importer. Loader is not safe for concurrent use.
type Loader struct {
	// Fset resolves positions for all loaded files.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	// exports caches the dependency-facing (non-test) type-checked variant
	// of each in-module package, keyed by import path.
	exports map[string]*types.Package
	// loading guards against import cycles during export checking.
	loading map[string]bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

// NewLoader creates a loader for the module rooted at or above dir (the
// nearest ancestor containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: string(m[1]),
		std:        std,
		exports:    make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Load expands the go-style package patterns (directories relative to the
// working directory, with `...` wildcards expanding recursively, `testdata`
// and hidden directories excluded) and returns the matched packages,
// type-checked with their test files, in deterministic order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if pat == "..." {
		pat, recursive = ".", true
	} else if strings.HasSuffix(pat, "/...") {
		pat, recursive = strings.TrimSuffix(pat, "/..."), true
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("analysis: pattern %q does not match a directory", pat)
	}
	if !recursive {
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("analysis: no Go files in %s", abs)
		}
		return []string{abs}, nil
	}
	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// importPathFor derives the in-module import path of a directory, or a
// placeholder path for directories outside the module.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "command-line-arguments/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir loads the package in one directory under an explicit import
// path (the test harness uses this to place fixtures at pretend paths,
// e.g. to exercise per-package exemptions). It returns the regular
// package (non-test plus in-package test files) and, when present, the
// external test package.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	base, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 && len(extTest) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var pkgs []*Package
	if len(base) > 0 {
		pkg, err := l.check(importPath, append(append([]*ast.File{}, base...), inTest...))
		if err != nil {
			return nil, err
		}
		pkg.Path = importPath
		pkgs = append(pkgs, pkg)
	}
	if len(extTest) > 0 {
		pkg, err := l.check(importPath+"_test", extTest)
		if err != nil {
			return nil, err
		}
		pkg.Path = importPath
		pkg.ExternalTest = true
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parseDir parses every Go file of a directory and partitions the files
// into non-test, in-package test, and external (package foo_test) test
// files.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	baseName := ""
	for _, n := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case strings.HasSuffix(n, "_test.go") && strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		case strings.HasSuffix(n, "_test.go"):
			inTest = append(inTest, f)
		default:
			if baseName != "" && f.Name.Name != baseName {
				return nil, nil, nil, fmt.Errorf("analysis: %s: packages %s and %s in one directory", dir, baseName, f.Name.Name)
			}
			baseName = f.Name.Name
			base = append(base, f)
		}
	}
	return base, inTest, extTest, nil
}

// check type-checks one set of files as a package.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom: in-module paths are
// type-checked from source (non-test files only) and cached; everything
// else is delegated to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.exports[path]; ok {
		return pkg, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkgDir := filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath)))
		base, _, _, err := l.parseDir(pkgDir)
		if err != nil {
			return nil, err
		}
		if len(base) == 0 {
			return nil, fmt.Errorf("analysis: no Go files for import %q in %s", path, pkgDir)
		}
		pkg, err := l.check(path, base)
		if err != nil {
			return nil, err
		}
		l.exports[path] = pkg.Pkg
		return pkg.Pkg, nil
	}
	pkg, err := l.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, fmt.Errorf("analysis: importing %s: %w", path, err)
	}
	l.exports[path] = pkg
	return pkg, nil
}
