// Package analysistest is the golden-file harness for analyzers built on
// internal/analysis. A fixture is a directory of Go files annotated with
// expectation comments:
//
//	s.Level() == x // want "on two computed floats"
//
// Each `// want "re"` comment declares that the analyzer under test must
// report a diagnostic on that line whose message matches the regular
// expression; lines without a want comment must stay silent. A fixture
// with no want comments is a negative fixture and must produce zero
// findings.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cubefit/internal/analysis"
)

// wantRe matches `// want "regexp"` with a Go-quoted expectation.
var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// Run loads the fixture directory under the pretend import path asPath
// (so analyzers keyed on package paths can be exercised), applies the
// analyzer, and compares its diagnostics against the fixture's want
// comments. It returns the diagnostics for any extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}

	type expectation struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					raw, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("analysistest: bad want expectation %s: %v", m[1], err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("analysistest: bad want regexp %q: %v", raw, err)
					}
					pos := pkg.Fset.Position(c.Slash)
					key := posKey(pos)
					wants[key] = append(wants[key], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: %s: expected diagnostic matching %q, got none", a.Name, key, e.raw)
			}
		}
	}
	return diags
}

// RunClean asserts the fixture produces zero findings (a negative
// fixture); any want comment in it is an error.
func RunClean(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	diags := Run(t, a, dir, asPath)
	if len(diags) != 0 {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Errorf("%s: negative fixture %s produced findings:\n%s", a.Name, dir, strings.Join(lines, "\n"))
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
