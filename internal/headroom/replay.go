package headroom

import (
	"fmt"

	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// Point is one sample of a replayed headroom time series, taken after an
// admission closes (admit or reject) or a tenant departs.
type Point struct {
	// Seq is the stamped sequence number of the closing event (0 for
	// unstamped logs).
	Seq uint64 `json:"seq"`
	// Kind is the closing event kind (admit, reject, depart).
	Kind obs.Kind `json:"kind"`
	// Tenant is the tenant whose admission or departure closed.
	Tenant int `json:"tenant"`
	// Tenants and Servers are the placement population after the event.
	Tenants int `json:"tenants"`
	Servers int `json:"servers"`
	// MinSlack and MinServer are the worst-case headroom at this point.
	MinSlack  float64 `json:"minSlack"`
	MinServer int     `json:"minServer"`
	// BelowRedLine and Overloaded are the aggregate counts at this point.
	BelowRedLine int `json:"belowRedLine"`
	Overloaded   int `json:"overloaded"`
}

// InferGamma returns the replication factor implied by an event log: one
// more than the largest replica index seen (minimum 1). Logs from a
// γ-replicated engine address replicas 0..γ−1, so this recovers γ for any
// log containing at least one fully admitted tenant.
func InferGamma(events []obs.Event) int {
	gamma := 1
	for _, e := range events {
		if e.Replica != obs.Unset && e.Replica+1 > gamma {
			gamma = e.Replica + 1
		}
	}
	return gamma
}

// Replay reconstructs the placement mutations of a decision event log
// (the JSONL written by `cubefit-sim -events` or dumped from
// GET /debug/events) against a fresh placement with the given replication
// factor (<= 0 infers it via InferGamma), feeding an incremental Auditor
// as it goes. After every closed admission and every departure it calls
// fn with the headroom sample at that point (fn may be nil). It returns
// the final placement and auditor state.
//
// The replay applies the same state transitions the engines perform:
// place-shaped events place replicas (opening servers as needed),
// rollback and reject unwind the tenant's placed replicas, depart removes
// the tenant. Logs from engines that leave partial placements behind on
// failure (RFI) replay to the same partial state.
func Replay(events []obs.Event, gamma int, redline float64, fn func(Point)) (*packing.Placement, *Auditor, error) {
	if gamma <= 0 {
		gamma = InferGamma(events)
	}
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		return nil, nil, err
	}
	a := New(p, redline)
	for i, e := range events {
		// Mirror the engines' emit ordering: unwind-shaped events are
		// recorded while the hosts losing replicas are still in the
		// placement; placement-shaped events after the replica landed.
		unwind := e.Kind == obs.KindRollback || e.Kind == obs.KindDepart
		if unwind {
			a.Record(e)
		}
		if err := applyEvent(p, e); err != nil {
			return nil, nil, fmt.Errorf("headroom: replaying event %d (%s): %w", i+1, e.Kind, err)
		}
		if !unwind {
			a.Record(e)
		}
		if fn == nil {
			continue
		}
		switch e.Kind {
		case obs.KindAdmit, obs.KindReject, obs.KindDepart:
			min, _ := a.Min()
			_, below, overloaded, _ := a.Aggregates()
			fn(Point{
				Seq:          e.Seq,
				Kind:         e.Kind,
				Tenant:       e.Tenant,
				Tenants:      p.NumTenants(),
				Servers:      p.NumServers(),
				MinSlack:     min.Slack,
				MinServer:    min.Server,
				BelowRedLine: below,
				Overloaded:   overloaded,
			})
		}
	}
	return p, a, nil
}

// applyEvent applies one event's placement mutation. Events that carry no
// placement change (probes, bin retire/reactivate, cube advances) are
// ignored.
func applyEvent(p *packing.Placement, e obs.Event) error {
	switch e.Kind {
	case obs.KindAttempt:
		// Size on the attempt is the tenant load, Clients its client count.
		// Re-registration of an identical tenant (a duplicate admission
		// attempt) is idempotent; the engine's reject closes it without
		// further mutation.
		t := packing.Tenant{ID: packing.TenantID(e.Tenant), Load: e.Size, Clients: e.Clients}
		if _, known := p.Tenant(t.ID); known {
			return nil
		}
		if t.Validate() != nil {
			// The engine rejected this attempt at validation; the reject
			// event closes it without any placement state to undo.
			return nil
		}
		return p.AddTenant(t)
	case obs.KindBinOpen:
		// Servers can open and stay empty (an RFI admission rejected as
		// infeasible); honoring bin_open keeps the replayed server
		// population identical to the live one.
		for p.NumServers() <= e.Server {
			p.OpenServer()
		}
		return nil
	case obs.KindPlace, obs.KindStage1Place, obs.KindCubePlace:
		for p.NumServers() <= e.Server {
			p.OpenServer()
		}
		// Place events carry no client count; recover it from the attempt's
		// registration with the engines' round-robin split, so replayed
		// placements match live trace.Capture snapshots byte for byte.
		clients := 0
		if t, ok := p.Tenant(packing.TenantID(e.Tenant)); ok {
			clients = packing.ReplicaClients(t.Clients, p.Gamma(), e.Replica)
		}
		return p.Place(e.Server, packing.Replica{
			Tenant:  packing.TenantID(e.Tenant),
			Index:   e.Replica,
			Size:    e.Size,
			Clients: clients,
		})
	case obs.KindRollback:
		// A rollback only unplaces: a first-stage retreat keeps the
		// tenant registered and continues into cube placement; an
		// admission rollback is followed by a reject, which completes
		// the removal below.
		return unplaceAll(p, e.Tenant)
	case obs.KindReject:
		// A rejection closing a rolled-back admission finds the tenant
		// registered but unplaced and forgets it; a rejection of a
		// duplicate attempt must leave the original admission — with its
		// placed replicas — in place.
		return unregisterIfUnplaced(p, e.Tenant)
	case obs.KindDepart:
		return removeIfKnown(p, e.Tenant)
	}
	return nil
}

// unplaceAll unplaces every placed replica of the tenant, keeping its
// registration; unknown tenants are tolerated.
func unplaceAll(p *packing.Placement, tenant int) error {
	id := packing.TenantID(tenant)
	for idx, h := range p.TenantHosts(id) {
		if h < 0 {
			continue
		}
		if err := p.Unplace(id, idx); err != nil {
			return err
		}
	}
	return nil
}

// removeIfKnown removes a tenant, tolerating one that is already gone.
func removeIfKnown(p *packing.Placement, tenant int) error {
	id := packing.TenantID(tenant)
	if _, known := p.Tenant(id); !known {
		return nil
	}
	return p.RemoveTenant(id)
}

// unregisterIfUnplaced forgets a registered tenant that has no placed
// replicas (the bookkeeping left by a rejected admission's attempt).
func unregisterIfUnplaced(p *packing.Placement, tenant int) error {
	id := packing.TenantID(tenant)
	hosts := p.TenantHosts(id)
	if hosts == nil {
		return nil
	}
	for _, h := range hosts {
		if h >= 0 {
			return nil // placed replicas: the surviving original admission
		}
	}
	return p.RemoveTenant(id)
}
