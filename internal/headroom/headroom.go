// Package headroom is the robustness headroom auditor: an incrementally
// maintained view of how close every server sits to overload under the
// worst-case failover the paper's invariant protects against.
//
// For each server Si the auditor tracks the slack
//
//	1 − (|Si| + top-(γ−1) Σ_{Sj} |Si ∩ Sj|)
//
// together with the arg-max failure set — the γ−1 peers whose
// simultaneous failure would redirect the most load onto Si. A placement
// is robust exactly when every slack is non-negative (within
// packing.CapacityEps), so the minimum slack is the live safety margin of
// the whole placement and a server whose slack goes negative is the
// first overload-on-failure witness.
//
// The auditor never rescans the placement. It consumes the decision
// event stream of internal/obs (attach it as a Recorder, alone or in an
// obs.Tee): each placement-shaped event marks the touched servers — the
// event's server plus the tenant's other hosts, the only servers whose
// pairwise intersections can have changed — in a dirty set, and entries
// are recomputed lazily, O(changed servers) per mutation, when a reading
// method drains the queue. Exhaustive is the full-rescan reference
// implementation the property tests and benchmarks compare against.
//
// The package is deliberately wall-clock free (time enters only through
// event replay, see replay.go) and uses the shared tolerance constants of
// internal/packing for every capacity comparison.
package headroom

import (
	"fmt"
	"sort"
	"sync"

	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/stats"
)

// DefaultRedLine is the default slack threshold below which a server is
// counted as red-lined: 0.05 means less than 5% of a server's capacity
// stands between the worst-case failover and an overload.
const DefaultRedLine = 0.05

// Entry is the audited state of one server.
type Entry struct {
	Server int `json:"server"`
	// Level is the direct replica load |Si|.
	Level float64 `json:"level"`
	// Reserve is the worst-case redirected load: the sum of the γ−1
	// largest pairwise intersections |Si ∩ Sj|.
	Reserve float64 `json:"reserve"`
	// Slack is 1 − Level − Reserve: the capacity left under the worst
	// failure set. Negative slack (beyond tolerance) means the server
	// would overload if WorstSet failed simultaneously.
	Slack float64 `json:"slack"`
	// WorstSet is the arg-max failure set: the peers realizing Reserve,
	// by decreasing shared load (ties: ascending ID). It holds fewer than
	// γ−1 entries when the server shares load with fewer peers.
	WorstSet []int `json:"worstSet"`
	// Overloaded reports Level+Reserve beyond unit capacity (tolerance
	// included): the robustness invariant is violated for this server.
	Overloaded bool `json:"overloaded"`
}

// Report is a consistent audit of the whole placement.
type Report struct {
	Gamma   int     `json:"gamma"`
	RedLine float64 `json:"redline"`
	// Servers holds one entry per opened server, in server-ID order.
	Servers []Entry `json:"servers"`
	// MinServer is the server with the least slack (lowest ID on ties),
	// or -1 when no server is open; MinSlack is its slack (1 — the full
	// unit capacity — when no server is open).
	MinServer int     `json:"minServer"`
	MinSlack  float64 `json:"minSlack"`
	// P50Slack is the median slack across opened servers (1 when none).
	P50Slack float64 `json:"p50Slack"`
	// BelowRedLine counts servers with slack below the red line.
	BelowRedLine int `json:"belowRedLine"`
	// Overloaded counts servers violating the robustness invariant.
	Overloaded int `json:"overloaded"`
}

// Auditor incrementally audits one placement. It is safe for concurrent
// use: all methods serialize on an internal mutex, so it can be read
// (Min, Entry, Report) by HTTP handlers while an engine under its own
// lock feeds it events.
type Auditor struct {
	mu      sync.Mutex
	p       *packing.Placement
	redline float64

	entries []Entry
	// dirty queues server IDs whose cached entry is stale; inDirty
	// deduplicates the queue.
	dirty   []int
	inDirty []bool

	below      int
	overloaded int
	// overloadEvents counts transitions of a server into the overloaded
	// state — the monotone overload-on-failure counter.
	overloadEvents uint64

	// minServer is the cached arg-min of slack; minValid is false when
	// the cache may be stale (the arg-min entry itself changed).
	minServer int
	minValid  bool

	// scratch is reused by Summary for the median selection.
	scratch []float64
}

// New creates an auditor over the placement with the given red-line
// threshold (<= 0 selects DefaultRedLine). Servers already open are
// queued for audit immediately, so attaching to a non-empty placement is
// valid.
func New(p *packing.Placement, redline float64) *Auditor {
	if redline <= 0 {
		redline = DefaultRedLine
	}
	a := &Auditor{p: p, redline: redline, minServer: -1}
	a.mu.Lock()
	a.syncLocked()
	a.mu.Unlock()
	return a
}

// RedLine returns the configured slack threshold.
func (a *Auditor) RedLine() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.redline
}

// SetRedLine changes the slack threshold (<= 0 selects DefaultRedLine)
// and recounts the red-lined servers.
func (a *Auditor) SetRedLine(redline float64) {
	if redline <= 0 {
		redline = DefaultRedLine
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	a.redline = redline
	a.below = 0
	for i := range a.entries {
		if a.entries[i].Slack < redline {
			a.below++
		}
	}
}

// Record implements obs.Recorder: placement-shaped events mark the
// touched servers dirty. Recomputation is deferred to the next reading
// method, so a γ-replica admission costs γ dirty marks per event, not γ
// audits per event.
func (a *Auditor) Record(e obs.Event) {
	switch e.Kind {
	case obs.KindPlace, obs.KindStage1Place, obs.KindCubePlace:
		// A replica landed on e.Server: intersections changed pairwise
		// between it and the tenant's other hosts (all current hosts are
		// dirty; e.Server is among them by the time the event fires).
		a.markTenant(e.Tenant, e.Server)
	case obs.KindRollback, obs.KindDepart:
		// Both fire before the engine unwinds the tenant, so the hosts
		// about to lose replicas are still recorded in the placement.
		a.markTenant(e.Tenant, obs.Unset)
	case obs.KindBinOpen:
		a.mu.Lock()
		a.markLocked(e.Server)
		a.mu.Unlock()
	}
}

// markTenant marks every current host of the tenant dirty, plus extra
// (ignored when Unset).
func (a *Auditor) markTenant(tenant, extra int) {
	hosts := a.p.TenantHosts(packing.TenantID(tenant))
	a.mu.Lock()
	if extra != obs.Unset {
		a.markLocked(extra)
	}
	for _, h := range hosts {
		if h >= 0 {
			a.markLocked(h)
		}
	}
	a.mu.Unlock()
}

// MarkDirty queues servers for re-audit. Engines without an event stream
// can use it as a direct hook; out-of-range IDs are rejected.
func (a *Auditor) MarkDirty(servers ...int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sid := range servers {
		if sid < 0 || sid >= a.p.NumServers() {
			return fmt.Errorf("headroom: no server %d", sid)
		}
		a.markLocked(sid)
	}
	return nil
}

// Sync queues every opened server for re-audit — the full-rescan escape
// hatch for placements mutated outside the event seam.
func (a *Auditor) Sync() {
	a.mu.Lock()
	a.syncLocked()
	a.mu.Unlock()
}

func (a *Auditor) syncLocked() {
	for sid := 0; sid < a.p.NumServers(); sid++ {
		a.markLocked(sid)
	}
}

// markLocked queues one server, growing the entry table as servers open.
func (a *Auditor) markLocked(sid int) {
	if sid < 0 {
		return
	}
	for len(a.entries) <= sid {
		id := len(a.entries)
		// A fresh server starts empty: full slack, no failure set. The
		// audited fields are filled in by the queued recompute.
		a.entries = append(a.entries, Entry{Server: id, Slack: 1})
		a.inDirty = append(a.inDirty, false)
		if a.entries[id].Slack < a.redline {
			a.below++
		}
	}
	if !a.inDirty[sid] {
		a.inDirty[sid] = true
		a.dirty = append(a.dirty, sid)
	}
}

// drainLocked recomputes every queued entry and maintains the aggregate
// counters. Cost: O(dirty servers × their shared peers).
func (a *Auditor) drainLocked() {
	if len(a.dirty) == 0 {
		return
	}
	k := a.p.Gamma() - 1
	for _, sid := range a.dirty {
		a.inDirty[sid] = false
		old := a.entries[sid]
		srv := a.p.Server(sid)
		reserve, worst := srv.TopSharedSet(k)
		level := srv.Level()
		e := Entry{
			Server:     sid,
			Level:      level,
			Reserve:    reserve,
			Slack:      1 - level - reserve,
			WorstSet:   worst,
			Overloaded: !packing.WithinCapacity(level + reserve),
		}
		a.entries[sid] = e

		if old.Slack < a.redline {
			a.below--
		}
		if e.Slack < a.redline {
			a.below++
		}
		if old.Overloaded != e.Overloaded {
			if e.Overloaded {
				a.overloaded++
				a.overloadEvents++
			} else {
				a.overloaded--
			}
		}
		// Min maintenance: a lower slack takes over directly; a change to
		// the current arg-min invalidates it (its slack may have risen).
		if a.minValid {
			cur := a.entries[a.minServer].Slack
			if sid == a.minServer {
				a.minValid = false
			} else if e.Slack < cur ||
				//cubefit:vet-allow floatcmp -- exact tie-break keeps the arg-min the lowest server ID
				(e.Slack == cur && sid < a.minServer) {
				a.minServer = sid
			}
		}
	}
	a.dirty = a.dirty[:0]
}

// minLocked returns the arg-min entry, rescanning the cached entries only
// when the previous arg-min was invalidated.
func (a *Auditor) minLocked() (Entry, bool) {
	if len(a.entries) == 0 {
		return Entry{Server: -1, Slack: 1}, false
	}
	if !a.minValid {
		min := 0
		for i := 1; i < len(a.entries); i++ {
			if a.entries[i].Slack < a.entries[min].Slack {
				min = i
			}
		}
		a.minServer = min
		a.minValid = true
	}
	return a.entries[a.minServer], true
}

// Min returns the entry with the least slack — the placement's live
// safety margin. ok is false when no server has been opened (the entry
// then reports full slack on server -1).
func (a *Auditor) Min() (e Entry, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	return a.minLocked()
}

// Entry returns the audited state of one server.
func (a *Auditor) Entry(server int) (Entry, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	if server < 0 || server >= len(a.entries) {
		return Entry{}, false
	}
	return cloneEntry(a.entries[server]), true
}

// Aggregates returns the live counters without materializing a report:
// the minimum entry, the red-lined server count, the currently overloaded
// server count, and the monotone overload-on-failure event total.
func (a *Auditor) Aggregates() (min Entry, below, overloaded int, overloadEvents uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	min, _ = a.minLocked()
	return cloneEntry(min), a.below, a.overloaded, a.overloadEvents
}

// Summary is the aggregate slice of a Report: the gauges the service
// layer exports after every mutation, without the per-server entries.
type Summary struct {
	MinServer      int
	MinSlack       float64
	P50Slack       float64
	RedLine        float64
	BelowRedLine   int
	Overloaded     int
	OverloadEvents uint64
}

// Summary returns the placement-wide aggregates without materializing or
// cloning per-server entries. The median runs over a reused scratch
// buffer with an O(n) selection, so calling it once per admission group
// commit stays off the hot path's allocation profile (unlike Report,
// which builds the full per-server view).
func (a *Auditor) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	s := Summary{
		MinServer:      -1,
		MinSlack:       1,
		P50Slack:       1,
		RedLine:        a.redline,
		BelowRedLine:   a.below,
		Overloaded:     a.overloaded,
		OverloadEvents: a.overloadEvents,
	}
	min, ok := a.minLocked()
	if !ok {
		return s
	}
	s.MinServer = min.Server
	s.MinSlack = min.Slack
	a.scratch = a.scratch[:0]
	for i := range a.entries {
		a.scratch = append(a.scratch, a.entries[i].Slack)
	}
	s.P50Slack = p50InPlace(a.scratch)
	return s
}

// Report audits every queued server and returns the consistent
// placement-wide view.
func (a *Auditor) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	r := Report{
		Gamma:        a.p.Gamma(),
		RedLine:      a.redline,
		Servers:      make([]Entry, len(a.entries)),
		MinServer:    -1,
		MinSlack:     1,
		P50Slack:     1,
		BelowRedLine: a.below,
		Overloaded:   a.overloaded,
	}
	for i := range a.entries {
		r.Servers[i] = cloneEntry(a.entries[i])
	}
	if min, ok := a.minLocked(); ok {
		r.MinServer = min.Server
		r.MinSlack = min.Slack
		r.P50Slack = p50(r.Servers)
	}
	return r
}

// Worst returns the n entries with the least slack, ascending (ties:
// ascending server ID); n <= 0 or n beyond the server count returns all.
func (a *Auditor) Worst(n int) []Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	out := make([]Entry, len(a.entries))
	for i := range a.entries {
		out[i] = cloneEntry(a.entries[i])
	}
	sortBySlack(out)
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// cloneEntry copies an entry so callers cannot alias the cached WorstSet.
func cloneEntry(e Entry) Entry {
	e.WorstSet = append([]int(nil), e.WorstSet...)
	return e
}

// sortBySlack orders entries by ascending slack, ties by ascending ID.
func sortBySlack(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Slack != entries[j].Slack { //cubefit:vet-allow floatcmp -- exact tie-break keeps the order deterministic
			return entries[i].Slack < entries[j].Slack
		}
		return entries[i].Server < entries[j].Server
	})
}

// p50InPlace returns the median with the same tie semantics as p50 but
// via O(n) selection, reordering xs.
func p50InPlace(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mid := len(xs) / 2
	hi, _ := stats.OrderStatInPlace(xs, mid)
	if len(xs)%2 == 1 {
		return hi
	}
	// After selection, xs[:mid] holds every element at or below the mid
	// order statistic, so its maximum is the (mid−1)-th.
	lo := xs[0]
	for _, v := range xs[1:mid] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

// p50 returns the median slack of the entries (1 when empty).
func p50(entries []Entry) float64 {
	if len(entries) == 0 {
		return 1
	}
	slacks := make([]float64, len(entries))
	for i, e := range entries {
		slacks[i] = e.Slack
	}
	sort.Float64s(slacks)
	mid := len(slacks) / 2
	if len(slacks)%2 == 1 {
		return slacks[mid]
	}
	return (slacks[mid-1] + slacks[mid]) / 2
}

// Exhaustive computes the placement's report by full rescan — the
// reference implementation the incremental auditor is benchmarked and
// property-tested against. redline <= 0 selects DefaultRedLine.
func Exhaustive(p *packing.Placement, redline float64) Report {
	if redline <= 0 {
		redline = DefaultRedLine
	}
	k := p.Gamma() - 1
	r := Report{
		Gamma:     p.Gamma(),
		RedLine:   redline,
		Servers:   make([]Entry, 0, p.NumServers()),
		MinServer: -1,
		MinSlack:  1,
		P50Slack:  1,
	}
	for _, srv := range p.Servers() {
		reserve, worst := srv.TopSharedSet(k)
		level := srv.Level()
		e := Entry{
			Server:     srv.ID(),
			Level:      level,
			Reserve:    reserve,
			Slack:      1 - level - reserve,
			WorstSet:   worst,
			Overloaded: !packing.WithinCapacity(level + reserve),
		}
		r.Servers = append(r.Servers, e)
		if e.Slack < redline {
			r.BelowRedLine++
		}
		if e.Overloaded {
			r.Overloaded++
		}
		if r.MinServer == -1 || e.Slack < r.MinSlack {
			r.MinServer = e.Server
			r.MinSlack = e.Slack
		}
	}
	if len(r.Servers) > 0 {
		r.P50Slack = p50(r.Servers)
	}
	return r
}

// TenantShare is one tenant's contribution to a pairwise intersection.
type TenantShare struct {
	Tenant int     `json:"tenant"`
	Size   float64 `json:"size"`
}

// Contribution explains one peer of a server's worst failure set: the
// shared load |Si ∩ Sj| and the tenants whose co-located replicas
// constitute it, in tenant-ID order.
type Contribution struct {
	Peer    int           `json:"peer"`
	Shared  float64       `json:"shared"`
	Tenants []TenantShare `json:"tenants"`
}

// Contributors attributes the shared load between a server and each given
// peer (typically an Entry's WorstSet) to the tenants causing it: the
// replicas on the server whose tenant also has a replica on the peer.
func Contributors(p *packing.Placement, server int, peers []int) ([]Contribution, error) {
	s := p.Server(server)
	if s == nil {
		return nil, fmt.Errorf("headroom: no server %d", server)
	}
	reps := s.Replicas()
	out := make([]Contribution, 0, len(peers))
	for _, peer := range peers {
		ps := p.Server(peer)
		if ps == nil {
			return nil, fmt.Errorf("headroom: no server %d", peer)
		}
		c := Contribution{Peer: peer, Shared: s.SharedWith(peer)}
		for _, r := range reps {
			if ps.Hosts(r.Tenant) {
				c.Tenants = append(c.Tenants, TenantShare{Tenant: int(r.Tenant), Size: r.Size})
			}
		}
		out = append(out, c)
	}
	return out, nil
}
