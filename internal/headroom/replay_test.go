package headroom_test

import (
	"reflect"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/headroom"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/rfi"
	"cubefit/internal/rng"
)

// capture is an unbounded obs.Recorder for round-trip tests.
type capture struct {
	events []obs.Event
}

func (c *capture) Record(e obs.Event) { c.events = append(c.events, e) }

// samePlacement asserts two placements audit identically: same servers,
// levels, reserves, worst sets and aggregates.
func samePlacement(t *testing.T, got, want *packing.Placement) {
	t.Helper()
	if got.NumTenants() != want.NumTenants() {
		t.Fatalf("replayed %d tenants, live has %d", got.NumTenants(), want.NumTenants())
	}
	gr := headroom.Exhaustive(got, 0)
	wr := headroom.Exhaustive(want, 0)
	if !reflect.DeepEqual(gr, wr) {
		t.Fatalf("replayed placement audits differently\n got: %+v\nwant: %+v", gr, wr)
	}
}

// TestReplayRoundTripCubeFit replays a CubeFit decision log — admissions,
// a duplicate rejection, departures — and checks the reconstructed
// placement audits identically to the live one, with the incremental
// auditor fed during replay agreeing with the exhaustive reference.
func TestReplayRoundTripCubeFit(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 3, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	cap := &capture{}
	cf.SetRecorder(cap)

	r := rng.New(0xD1CE)
	var live []packing.TenantID
	for id := packing.TenantID(1); id <= 80; id++ {
		load := 0.02 + 0.9*r.Float64()
		if err := cf.Place(packing.Tenant{ID: id, Load: load, Clients: 8}); err == nil {
			live = append(live, id)
		}
		if len(live) > 0 && r.Float64() < 0.25 {
			i := r.Intn(len(live))
			if err := cf.Remove(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	_ = cf.Place(packing.Tenant{ID: live[0], Load: 0.2}) // duplicate: rejected
	_ = cf.Place(packing.Tenant{ID: 5000, Load: 1.5})    // invalid: rejected
	if got := headroom.InferGamma(cap.events); got != 3 {
		t.Fatalf("InferGamma = %d, want 3", got)
	}

	var points []headroom.Point
	p, a, err := headroom.Replay(cap.events, 0, 0, func(pt headroom.Point) {
		points = append(points, pt)
	})
	if err != nil {
		t.Fatal(err)
	}
	samePlacement(t, p, cf.Placement())
	if rep := a.Report(); !reflect.DeepEqual(rep, headroom.Exhaustive(p, rep.RedLine)) {
		t.Fatal("replay auditor diverged from exhaustive on final state")
	}

	closings := 0
	for _, e := range cap.events {
		switch e.Kind {
		case obs.KindAdmit, obs.KindReject, obs.KindDepart:
			closings++
		}
	}
	if len(points) != closings {
		t.Fatalf("sampled %d points for %d closing events", len(points), closings)
	}
	for i, pt := range points {
		if pt.MinSlack > 1 || pt.Servers < 0 || pt.Tenants < 0 {
			t.Fatalf("point %d out of range: %+v", i, pt)
		}
	}
	last := points[len(points)-1]
	min, _ := a.Min()
	if last.MinSlack != min.Slack || last.MinServer != min.Server {
		t.Fatalf("final point %+v disagrees with auditor min %+v", last, min)
	}
}

// TestReplayRoundTripRFI replays an RFI log — a different engine with a
// different event mix (plain place events, probes, duplicate rejections) —
// and checks the reconstruction audits identically to the live placement.
func TestReplayRoundTripRFI(t *testing.T) {
	eng, err := rfi.New(rfi.Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	cap := &capture{}
	eng.SetRecorder(cap)

	r := rng.New(0xACDC)
	rejected := 0
	for id := packing.TenantID(1); id <= 60; id++ {
		load := 0.05 + 0.93*r.Float64()
		if err := eng.Place(packing.Tenant{ID: id, Load: load, Clients: 8}); err != nil {
			rejected++
		}
		if id%9 == 0 {
			// Duplicate admissions are rejected without disturbing the
			// original placement; the replay must preserve it too.
			if err := eng.Place(packing.Tenant{ID: id, Load: 0.2}); err == nil {
				t.Fatalf("duplicate admission of %d unexpectedly succeeded", id)
			}
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("workload did not provoke any RFI rejection; test is vacuous")
	}

	p, a, err := headroom.Replay(cap.events, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumServers() != eng.Placement().NumServers() {
		t.Fatalf("replayed %d servers, live has %d", p.NumServers(), eng.Placement().NumServers())
	}
	samePlacement(t, p, eng.Placement())
	if rep := a.Report(); !reflect.DeepEqual(rep, headroom.Exhaustive(p, rep.RedLine)) {
		t.Fatal("replay auditor diverged from exhaustive on final state")
	}
}

// TestReplayExplicitGamma pins the gamma override and error paths.
func TestReplayExplicitGamma(t *testing.T) {
	if _, _, err := headroom.Replay(nil, 2, 0, nil); err != nil {
		t.Fatalf("empty replay: %v", err)
	}
	// A place event for an unregistered tenant is a corrupt log.
	e := obs.NewEvent(obs.KindPlace)
	e.Tenant = 9
	e.Replica = 0
	e.Server = 0
	e.Size = 0.5
	if _, _, err := headroom.Replay([]obs.Event{e}, 2, 0, nil); err == nil {
		t.Fatal("replaying a place for an unknown tenant should fail")
	}
}
