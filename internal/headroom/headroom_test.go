package headroom_test

import (
	"fmt"
	"reflect"
	"testing"

	"cubefit/internal/baseline"
	"cubefit/internal/core"
	"cubefit/internal/headroom"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
	"cubefit/internal/rfi"
	"cubefit/internal/rng"
)

// compareReports asserts the incremental auditor agrees exactly with the
// exhaustive full-rescan reference. Both compute every entry through
// Server.TopSharedSet on the same placement state, so the comparison is
// exact equality, not tolerance-based.
func compareReports(t *testing.T, a *headroom.Auditor, p *packing.Placement, step int) {
	t.Helper()
	got := a.Report()
	want := headroom.Exhaustive(p, got.RedLine)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: incremental report diverged from exhaustive\n got: %+v\nwant: %+v", step, got, want)
	}
	if (got.Overloaded == 0) != (p.ValidateRobustness() == nil) {
		t.Fatalf("step %d: overloaded=%d disagrees with ValidateRobustness()=%v",
			step, got.Overloaded, p.ValidateRobustness())
	}
}

// placer is the slice of engine surface the property test drives.
type placer interface {
	Place(packing.Tenant) error
	Placement() *packing.Placement
	SetRecorder(obs.Recorder)
}

// TestIncrementalMatchesExhaustive is the property test of the tentpole:
// for γ ∈ {2, 3, 4}, over randomized place/depart sequences against the
// real CubeFit engine, the incrementally maintained report equals the
// exhaustive top-(γ−1) recomputation after every operation.
func TestIncrementalMatchesExhaustive(t *testing.T) {
	for _, gamma := range []int{2, 3, 4} {
		gamma := gamma
		t.Run(fmt.Sprintf("gamma=%d", gamma), func(t *testing.T) {
			cf, err := core.New(core.Config{Gamma: gamma, K: 6})
			if err != nil {
				t.Fatal(err)
			}
			a := headroom.New(cf.Placement(), 0)
			cf.SetRecorder(a)

			r := rng.New(uint64(20170605 + gamma))
			var live []packing.TenantID
			next := packing.TenantID(1)
			const ops = 300
			for op := 0; op < ops; op++ {
				if len(live) > 0 && r.Float64() < 0.35 {
					i := r.Intn(len(live))
					id := live[i]
					if err := cf.Remove(id); err != nil {
						t.Fatalf("op %d: remove %d: %v", op, id, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					load := 0.01 + 0.94*r.Float64()
					id := next
					next++
					if err := cf.Place(packing.Tenant{ID: id, Load: load, Clients: 8}); err == nil {
						live = append(live, id)
					}
				}
				compareReports(t, a, cf.Placement(), op)
			}
			if len(live) == 0 {
				t.Fatal("degenerate run: no tenants survived")
			}
		})
	}
}

// TestIncrementalMatchesExhaustiveOtherEngines runs the same property
// against the baseline engines, whose event streams use different kinds
// (plain place, partial RFI placements left behind on reject).
func TestIncrementalMatchesExhaustiveOtherEngines(t *testing.T) {
	rfiEng, err := rfi.New(rfi.Config{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := baseline.New(baseline.BestFit, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, eng := range map[string]placer{"rfi": rfiEng, "bestfit": bf} {
		eng := eng
		t.Run(name, func(t *testing.T) {
			a := headroom.New(eng.Placement(), 0)
			eng.SetRecorder(a)
			r := rng.New(0xB0B0)
			rejected := 0
			for id := packing.TenantID(1); id <= 120; id++ {
				load := 0.01 + 0.97*r.Float64()
				if err := eng.Place(packing.Tenant{ID: id, Load: load, Clients: 8}); err != nil {
					rejected++
				}
				compareReports(t, a, eng.Placement(), int(id))
			}
			t.Logf("%s: %d rejections audited", name, rejected)
		})
	}
}

// TestDepartureRaisesSlack is the regression test of the departure
// invariant: removing a tenant can only shed load, so no surviving
// server's slack decreases, and every former host's slack strictly rises.
func TestDepartureRaisesSlack(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 3, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)

	r := rng.New(0xFADE)
	var live []packing.TenantID
	for id := packing.TenantID(1); id <= 150; id++ {
		load := 0.05 + 0.9*r.Float64()
		if err := cf.Place(packing.Tenant{ID: id, Load: load, Clients: 8}); err == nil {
			live = append(live, id)
		}
	}
	if len(live) < 50 {
		t.Fatalf("degenerate run: only %d tenants admitted", len(live))
	}

	for trial := 0; trial < 25; trial++ {
		before := a.Report()
		i := r.Intn(len(live))
		victim := live[i]
		hosts := append([]int(nil), cf.Placement().TenantHosts(victim)...)
		if err := cf.Remove(victim); err != nil {
			t.Fatalf("trial %d: remove %d: %v", trial, victim, err)
		}
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]

		after := a.Report()
		for _, e := range after.Servers {
			if e.Slack+packing.CapacityEps < before.Servers[e.Server].Slack {
				t.Fatalf("trial %d: departure of %d lowered slack of server %d: %v -> %v",
					trial, victim, e.Server, before.Servers[e.Server].Slack, e.Slack)
			}
		}
		for _, h := range hosts {
			if h < 0 {
				continue
			}
			if after.Servers[h].Slack <= before.Servers[h].Slack {
				t.Fatalf("trial %d: departure of %d did not raise slack of host %d: %v -> %v",
					trial, victim, h, before.Servers[h].Slack, after.Servers[h].Slack)
			}
		}
		if after.MinSlack+packing.CapacityEps < before.MinSlack {
			t.Fatalf("trial %d: departure lowered min slack %v -> %v",
				trial, before.MinSlack, after.MinSlack)
		}
	}
}

// overloadedPlacement builds a γ=2 placement that violates the robustness
// invariant by hand: two tenants fully co-located on the same server pair,
// so each server's worst single failure redirects 0.9 onto a 0.9 level.
func overloadedPlacement(t *testing.T) *packing.Placement {
	t.Helper()
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	for id := packing.TenantID(1); id <= 2; id++ {
		if err := p.AddTenant(packing.Tenant{ID: id, Load: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	p.OpenServer()
	p.OpenServer()
	for id := packing.TenantID(1); id <= 2; id++ {
		for idx := 0; idx < 2; idx++ {
			if err := p.Place(idx, packing.Replica{Tenant: id, Index: idx, Size: 0.45}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

// TestOverloadDetection audits a placement mutated outside the event seam
// (via Sync) through an overload and back: the overloaded gauge follows the
// state, the overload-event counter is monotone.
func TestOverloadDetection(t *testing.T) {
	p := overloadedPlacement(t)
	a := headroom.New(p, 0)

	rep := a.Report()
	if rep.Overloaded != 2 {
		t.Fatalf("overloaded = %d, want 2", rep.Overloaded)
	}
	for _, e := range rep.Servers {
		if !e.Overloaded || e.Slack > 0 {
			t.Fatalf("server %d should be overloaded with negative slack, got %+v", e.Server, e)
		}
		want := []int{1 - e.Server}
		if !reflect.DeepEqual(e.WorstSet, want) {
			t.Fatalf("server %d worst set = %v, want %v", e.Server, e.WorstSet, want)
		}
	}
	if _, _, overloaded, events := a.Aggregates(); overloaded != 2 || events != 2 {
		t.Fatalf("aggregates overloaded=%d events=%d, want 2, 2", overloaded, events)
	}

	// Shedding one tenant restores the invariant; the event counter stays.
	if err := p.RemoveTenant(2); err != nil {
		t.Fatal(err)
	}
	a.Sync()
	rep = a.Report()
	if rep.Overloaded != 0 {
		t.Fatalf("after removal overloaded = %d, want 0", rep.Overloaded)
	}
	if _, _, _, events := a.Aggregates(); events != 2 {
		t.Fatalf("overload events = %d, want 2 (monotone)", events)
	}
	if want := headroom.Exhaustive(p, rep.RedLine); !reflect.DeepEqual(rep, want) {
		t.Fatalf("post-sync report diverged from exhaustive\n got: %+v\nwant: %+v", rep, want)
	}
}

// TestRedLineCounting checks the threshold accounting across SetRedLine.
func TestRedLineCounting(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)
	if a.RedLine() != headroom.DefaultRedLine {
		t.Fatalf("redline = %v, want default %v", a.RedLine(), headroom.DefaultRedLine)
	}
	r := rng.New(7)
	for id := packing.TenantID(1); id <= 60; id++ {
		_ = cf.Place(packing.Tenant{ID: id, Load: 0.05 + 0.9*r.Float64(), Clients: 4})
	}
	for _, redline := range []float64{0.02, 0.3, 0.9} {
		a.SetRedLine(redline)
		rep := a.Report()
		want := headroom.Exhaustive(cf.Placement(), redline)
		if rep.BelowRedLine != want.BelowRedLine {
			t.Fatalf("redline %v: below = %d, want %d", redline, rep.BelowRedLine, want.BelowRedLine)
		}
	}
	a.SetRedLine(0) // back to default
	if a.RedLine() != headroom.DefaultRedLine {
		t.Fatalf("redline = %v, want default after reset", a.RedLine())
	}
}

// TestEmptyAuditor pins the zero-state contract used by the HTTP layer.
func TestEmptyAuditor(t *testing.T) {
	p, err := packing.NewPlacement(2)
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(p, 0)
	min, ok := a.Min()
	if ok || min.Server != -1 || min.Slack != 1 {
		t.Fatalf("empty Min() = %+v, %v; want server -1, slack 1, false", min, ok)
	}
	if _, ok := a.Entry(0); ok {
		t.Fatal("Entry(0) on empty auditor should report absent")
	}
	rep := a.Report()
	if rep.MinServer != -1 || rep.MinSlack != 1 || rep.P50Slack != 1 || len(rep.Servers) != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if err := a.MarkDirty(0); err == nil {
		t.Fatal("MarkDirty(0) with no servers should fail")
	}
}

// TestWorstOrdering checks the drill-down ordering contract.
func TestWorstOrdering(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)
	r := rng.New(99)
	for id := packing.TenantID(1); id <= 40; id++ {
		_ = cf.Place(packing.Tenant{ID: id, Load: 0.05 + 0.85*r.Float64(), Clients: 4})
	}
	worst := a.Worst(3)
	if len(worst) != 3 {
		t.Fatalf("Worst(3) returned %d entries", len(worst))
	}
	for i := 1; i < len(worst); i++ {
		if worst[i].Slack+packing.CapacityEps < worst[i-1].Slack {
			t.Fatalf("Worst not ascending: %v then %v", worst[i-1].Slack, worst[i].Slack)
		}
	}
	min, _ := a.Min()
	if worst[0].Server != min.Server {
		t.Fatalf("Worst[0] = server %d, Min = server %d", worst[0].Server, min.Server)
	}
}

// TestContributors checks drill attribution: the shared load of each worst
// peer decomposes into the co-located tenants, and their sizes sum to it.
func TestContributors(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)
	r := rng.New(5150)
	for id := packing.TenantID(1); id <= 50; id++ {
		_ = cf.Place(packing.Tenant{ID: id, Load: 0.05 + 0.8*r.Float64(), Clients: 4})
	}
	min, ok := a.Min()
	if !ok || len(min.WorstSet) == 0 {
		t.Fatalf("expected a populated worst set, got %+v (ok=%v)", min, ok)
	}
	contribs, err := headroom.Contributors(cf.Placement(), min.Server, min.WorstSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != len(min.WorstSet) {
		t.Fatalf("got %d contributions for %d peers", len(contribs), len(min.WorstSet))
	}
	for i, c := range contribs {
		if c.Peer != min.WorstSet[i] {
			t.Fatalf("contribution %d for peer %d, want %d", i, c.Peer, min.WorstSet[i])
		}
		if len(c.Tenants) == 0 {
			t.Fatalf("peer %d shares %v with no contributing tenants", c.Peer, c.Shared)
		}
		sum := 0.0
		for _, ts := range c.Tenants {
			sum += ts.Size
		}
		if !packing.AlmostEqualTol(sum, c.Shared, packing.CapacityEps) {
			t.Fatalf("peer %d: tenant sizes sum to %v, shared is %v", c.Peer, sum, c.Shared)
		}
	}
	if _, err := headroom.Contributors(cf.Placement(), -1, nil); err == nil {
		t.Fatal("Contributors on absent server should fail")
	}
	if _, err := headroom.Contributors(cf.Placement(), min.Server, []int{1 << 20}); err == nil {
		t.Fatal("Contributors with absent peer should fail")
	}
}

// TestSummaryMatchesReport: the allocation-light Summary the service
// layer polls after every group commit must agree with the full Report
// at every step of a mixed admit/depart run.
func TestSummaryMatchesReport(t *testing.T) {
	cf, err := core.New(core.Config{Gamma: 3, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := headroom.New(cf.Placement(), 0)
	cf.SetRecorder(a)

	r := rng.New(20260808)
	var live []packing.TenantID
	next := packing.TenantID(1)
	for op := 0; op < 300; op++ {
		if len(live) > 0 && r.Float64() < 0.35 {
			i := r.Intn(len(live))
			if err := cf.Remove(live[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			id := next
			next++
			if err := cf.Place(packing.Tenant{ID: id, Load: 0.01 + 0.94*r.Float64(), Clients: 8}); err == nil {
				live = append(live, id)
			}
		}
		s := a.Summary()
		rep := a.Report()
		_, _, _, events := a.Aggregates()
		want := headroom.Summary{
			MinServer:      rep.MinServer,
			MinSlack:       rep.MinSlack,
			P50Slack:       rep.P50Slack,
			RedLine:        rep.RedLine,
			BelowRedLine:   rep.BelowRedLine,
			Overloaded:     rep.Overloaded,
			OverloadEvents: events,
		}
		if s != want {
			t.Fatalf("op %d: Summary %+v, Report-derived %+v", op, s, want)
		}
	}
}
