package baseline

import (
	"testing"

	"cubefit/internal/packing"
	"cubefit/internal/workload"
)

func mustBaseline(t *testing.T, s Strategy, gamma int) *Baseline {
	t.Helper()
	b, err := New(s, gamma)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Strategy(0), 2); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := New(FirstFit, 0); err == nil {
		t.Fatal("gamma 0 accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || NextFit.String() != "next-fit" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(7).String() != "strategy(7)" {
		t.Fatal(Strategy(7).String())
	}
	b := mustBaseline(t, BestFit, 2)
	if b.Name() != "best-fit(γ=2)" {
		t.Fatalf("name = %q", b.Name())
	}
}

// TestCapacityAndDistinctness: every strategy must respect unit capacity
// and replica distinctness for every tenant.
func TestCapacityAndDistinctness(t *testing.T) {
	for _, s := range []Strategy{FirstFit, BestFit, NextFit} {
		for _, gamma := range []int{1, 2, 3} {
			src, err := workload.NewLoadSource(1, 42)
			if err != nil {
				t.Fatal(err)
			}
			b := mustBaseline(t, s, gamma)
			if err := packing.PlaceAll(b, workload.Take(src, 500)); err != nil {
				t.Fatalf("%s γ=%d: %v", s, gamma, err)
			}
			p := b.Placement()
			for _, srv := range p.Servers() {
				if !packing.WithinCapacity(srv.Level()) {
					t.Fatalf("%s γ=%d: server %d over capacity: %v", s, gamma, srv.ID(), srv.Level())
				}
			}
			for _, tn := range p.Tenants() {
				hosts := p.TenantHosts(tn.ID)
				seen := make(map[int]bool)
				for _, h := range hosts {
					if h < 0 || seen[h] {
						t.Fatalf("%s γ=%d: tenant %d hosts %v", s, gamma, tn.ID, hosts)
					}
					seen[h] = true
				}
			}
		}
	}
}

// TestFirstFitDeterministicExample pins the first-fit behaviour on a hand
// sequence (γ=1): 0.6, 0.5, 0.4 → servers {0.6+0.4}, {0.5}.
func TestFirstFitDeterministicExample(t *testing.T) {
	b := mustBaseline(t, FirstFit, 1)
	for i, load := range []float64{0.6, 0.5, 0.4} {
		if err := b.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
			t.Fatal(err)
		}
	}
	p := b.Placement()
	if p.NumUsedServers() != 2 {
		t.Fatalf("used %d servers, want 2", p.NumUsedServers())
	}
	if h := p.TenantHosts(2); h[0] != 0 {
		t.Fatalf("0.4 tenant on server %d, want 0 (first fit)", h[0])
	}
}

// TestBestFitDeterministicExample pins best-fit (γ=1): 0.5, 0.3 (new
// server since 0.5+0.3 fits? no — 0.8 ≤ 1, goes on server 0)... use loads
// forcing two servers, then a filler that must choose the fuller one.
func TestBestFitDeterministicExample(t *testing.T) {
	b := mustBaseline(t, BestFit, 1)
	for i, load := range []float64{0.7, 0.6, 0.25} {
		if err := b.Place(packing.Tenant{ID: packing.TenantID(i), Load: load}); err != nil {
			t.Fatal(err)
		}
	}
	p := b.Placement()
	// 0.7 on s0; 0.6 opens s1; 0.25 best-fits s0 (leftover 0.05 < 0.15).
	if h := p.TenantHosts(2); h[0] != 0 {
		t.Fatalf("0.25 tenant on server %d, want 0 (best fit)", h[0])
	}
}

// TestBestFitBeatsFirstFitOrEqual on random loads, as classical theory
// predicts on average.
func TestBestFitNoWorseThanNextFit(t *testing.T) {
	src, err := workload.NewLoadSource(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 2000)
	bf := mustBaseline(t, BestFit, 2)
	nf := mustBaseline(t, NextFit, 2)
	if err := packing.PlaceAll(bf, tenants); err != nil {
		t.Fatal(err)
	}
	if err := packing.PlaceAll(nf, tenants); err != nil {
		t.Fatal(err)
	}
	if b, n := bf.Placement().NumUsedServers(), nf.Placement().NumUsedServers(); b > n {
		t.Fatalf("best-fit used %d servers, next-fit %d", b, n)
	}
}

// TestNotRobust: these baselines are expected to violate the failover
// invariant — that is their documented purpose.
func TestNotRobust(t *testing.T) {
	src, err := workload.NewLoadSource(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := mustBaseline(t, BestFit, 2)
	if err := packing.PlaceAll(b, workload.Take(src, 300)); err != nil {
		t.Fatal(err)
	}
	if err := b.Placement().Validate(); err == nil {
		t.Fatal("expected the non-robust baseline to violate the invariant on a dense workload")
	}
}

// TestUsesFewerServersThanRobust sanity check: without reserve, Best Fit
// should consolidate at least as tightly as any robust algorithm could.
func TestTotalLoadLowerBound(t *testing.T) {
	src, err := workload.NewLoadSource(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	tenants := workload.Take(src, 1000)
	b := mustBaseline(t, BestFit, 2)
	if err := packing.PlaceAll(b, tenants); err != nil {
		t.Fatal(err)
	}
	p := b.Placement()
	if float64(p.NumUsedServers()) < p.TotalLoad()-packing.CapacityEps {
		t.Fatalf("server count %d below total load %v — impossible", p.NumUsedServers(), p.TotalLoad())
	}
	if p.Utilization() < 0.8 {
		t.Fatalf("best-fit utilization %v suspiciously low", p.Utilization())
	}
}
