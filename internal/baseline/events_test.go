package baseline

import (
	"sort"
	"testing"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

type recorded struct{ events []obs.Event }

func (r *recorded) Record(e obs.Event) { r.events = append(r.events, e) }

func TestAdmissionHookOutcomes(t *testing.T) {
	b, err := New(FirstFit, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.AdmissionPath
	b.SetAdmissionHook(func(p core.AdmissionPath) { got = append(got, p) })

	if err := b.Place(packing.Tenant{ID: 1, Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(packing.Tenant{ID: 1, Load: 0.3}); err == nil {
		t.Fatal("duplicate admission succeeded")
	}
	want := []core.AdmissionPath{core.AdmitPlaced, core.AdmitRejected}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("hook outcomes = %v, want %v", got, want)
	}
}

func TestEventsMatchPlacementAllStrategies(t *testing.T) {
	loads := []float64{0.3, 0.45, 0.2, 0.6, 0.15, 0.35, 0.5}
	for _, strat := range []Strategy{FirstFit, BestFit, NextFit} {
		t.Run(strat.String(), func(t *testing.T) {
			b, err := New(strat, 2)
			if err != nil {
				t.Fatal(err)
			}
			rec := &recorded{}
			b.SetRecorder(rec)
			for i, l := range loads {
				if err := b.Place(packing.Tenant{ID: packing.TenantID(i), Load: l}); err != nil {
					t.Fatalf("Place(%d): %v", i, err)
				}
			}

			ds := obs.Decisions(rec.events)
			if len(ds) != len(loads) {
				t.Fatalf("decisions = %d, want %d", len(ds), len(loads))
			}
			for _, d := range ds {
				if d.Path != core.AdmitPlaced.String() {
					t.Errorf("tenant %d path = %q", d.Tenant, d.Path)
				}
				if d.Engine != strat.String() {
					t.Errorf("tenant %d engine = %q, want %q", d.Tenant, d.Engine, strat)
				}
				hosts := b.Placement().TenantHosts(packing.TenantID(d.Tenant))
				got := make([]int, 0, len(d.Replicas))
				for _, rep := range d.Replicas {
					got = append(got, rep.Server)
				}
				want := append([]int(nil), hosts...)
				sort.Ints(got)
				sort.Ints(want)
				if len(got) != len(want) {
					t.Fatalf("tenant %d: %d replicas logged, %d placed",
						d.Tenant, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("tenant %d: log %v vs placement %v", d.Tenant, got, want)
					}
				}
			}

			opens := 0
			for _, e := range rec.events {
				if e.Kind == obs.KindBinOpen {
					opens++
				}
			}
			if opens != b.Placement().NumServers() {
				t.Errorf("bin_open = %d, servers = %d", opens, b.Placement().NumServers())
			}
		})
	}
}
