// Package baseline provides replicated variants of the classic online bin
// packing heuristics (First Fit, Best Fit, Next Fit) WITHOUT any failover
// reserve. They place each tenant's γ replicas on γ distinct servers
// subject only to unit capacity.
//
// These algorithms are not robust — a single server failure can overload
// survivors — and exist to quantify the price of robustness in the
// ablation benchmarks (DESIGN.md §7). They also provide the classical
// yardstick for the competitive-ratio experiments.
package baseline

import (
	"fmt"
	"sort"

	"cubefit/internal/packing"
)

// Strategy selects the packing heuristic.
type Strategy int

const (
	// FirstFit places each replica on the lowest-numbered server with room.
	FirstFit Strategy = iota + 1
	// BestFit places each replica on the fullest server with room.
	BestFit
	// NextFit keeps γ open servers and replaces any of them that cannot
	// take the next replica.
	NextFit
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case NextFit:
		return "next-fit"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Baseline is a non-robust replicated packing algorithm.
type Baseline struct {
	strategy Strategy
	gamma    int
	p        *packing.Placement

	// byLevel/pos maintain the Best Fit level index (BestFit only).
	byLevel []int
	pos     []int
	// open holds NextFit's current servers (NextFit only).
	open []int
}

var _ packing.Algorithm = (*Baseline)(nil)

// New creates a baseline packer with the given strategy and replication
// factor.
func New(strategy Strategy, gamma int) (*Baseline, error) {
	switch strategy {
	case FirstFit, BestFit, NextFit:
	default:
		return nil, fmt.Errorf("baseline: unknown strategy %d", strategy)
	}
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &Baseline{strategy: strategy, gamma: gamma, p: p}, nil
}

// Name implements packing.Algorithm.
func (b *Baseline) Name() string {
	return fmt.Sprintf("%s(γ=%d)", b.strategy, b.gamma)
}

// Placement implements packing.Algorithm.
func (b *Baseline) Placement() *packing.Placement { return b.p }

// Place implements packing.Algorithm.
func (b *Baseline) Place(t packing.Tenant) error {
	if err := b.p.AddTenant(t); err != nil {
		return err
	}
	for _, rep := range b.p.Replicas(t) {
		var sid int
		switch b.strategy {
		case FirstFit:
			sid = b.firstFit(t.ID, rep)
		case BestFit:
			sid = b.bestFit(t.ID, rep)
		default:
			sid = b.nextFit(t.ID, rep)
		}
		if err := b.p.Place(sid, rep); err != nil {
			return fmt.Errorf("baseline: internal: %w", err)
		}
		if b.strategy == BestFit {
			b.reposition(sid)
		}
	}
	return nil
}

func (b *Baseline) fits(sid int, id packing.TenantID, rep packing.Replica) bool {
	s := b.p.Server(sid)
	return !s.Hosts(id) && packing.WithinCapacity(s.Level()+rep.Size)
}

func (b *Baseline) firstFit(id packing.TenantID, rep packing.Replica) int {
	for sid := 0; sid < b.p.NumServers(); sid++ {
		if b.fits(sid, id, rep) {
			return sid
		}
	}
	return b.openServer()
}

func (b *Baseline) bestFit(id packing.TenantID, rep packing.Replica) int {
	limit := 1 - rep.Size + packing.CapacityEps
	start := sort.Search(len(b.byLevel), func(k int) bool {
		return b.p.Server(b.byLevel[k]).Level() <= limit
	})
	for i := start; i < len(b.byLevel); i++ {
		sid := b.byLevel[i]
		if b.fits(sid, id, rep) {
			return sid
		}
	}
	return b.openServer()
}

func (b *Baseline) nextFit(id packing.TenantID, rep packing.Replica) int {
	for _, sid := range b.open {
		if b.fits(sid, id, rep) {
			return sid
		}
	}
	// No current server fits: open a fresh one and slide the window (at
	// most γ servers stay open so each tenant's replicas find distinct
	// homes without reopening closed servers).
	sid := b.p.OpenServer()
	b.open = append(b.open, sid)
	if len(b.open) > b.gamma {
		b.open = b.open[1:]
	}
	return sid
}

func (b *Baseline) openServer() int {
	sid := b.p.OpenServer()
	if b.strategy == BestFit {
		b.pos = append(b.pos, len(b.byLevel))
		b.byLevel = append(b.byLevel, sid)
	}
	return sid
}

// reposition restores the (level desc, ID asc) index order after sid's
// level increased.
func (b *Baseline) reposition(sid int) {
	i := b.pos[sid]
	level := b.p.Server(sid).Level()
	j := sort.Search(i, func(k int) bool {
		other := b.byLevel[k]
		ol := b.p.Server(other).Level()
		return ol < level || (ol == level && other > sid) //cubefit:vet-allow floatcmp -- exact equality keyed to the stored index order
	})
	if j == i {
		return
	}
	copy(b.byLevel[j+1:i+1], b.byLevel[j:i])
	b.byLevel[j] = sid
	for k := j; k <= i; k++ {
		b.pos[b.byLevel[k]] = k
	}
}
