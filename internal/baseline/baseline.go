// Package baseline provides replicated variants of the classic online bin
// packing heuristics (First Fit, Best Fit, Next Fit) WITHOUT any failover
// reserve. They place each tenant's γ replicas on γ distinct servers
// subject only to unit capacity.
//
// These algorithms are not robust — a single server failure can overload
// survivors — and exist to quantify the price of robustness in the
// ablation benchmarks (DESIGN.md §7). They also provide the classical
// yardstick for the competitive-ratio experiments.
package baseline

import (
	"fmt"
	"sort"

	"cubefit/internal/core"
	"cubefit/internal/obs"
	"cubefit/internal/packing"
)

// Strategy selects the packing heuristic.
type Strategy int

const (
	// FirstFit places each replica on the lowest-numbered server with room.
	FirstFit Strategy = iota + 1
	// BestFit places each replica on the fullest server with room.
	BestFit
	// NextFit keeps γ open servers and replaces any of them that cannot
	// take the next replica.
	NextFit
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case NextFit:
		return "next-fit"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Baseline is a non-robust replicated packing algorithm.
type Baseline struct {
	strategy Strategy
	gamma    int
	p        *packing.Placement

	// byLevel/pos maintain the Best Fit level index (BestFit only).
	byLevel []int
	pos     []int
	// open holds NextFit's current servers (NextFit only).
	open []int

	// admissionHook, when non-nil, runs after every Place attempt with the
	// outcome (AdmitPlaced or AdmitRejected); see SetAdmissionHook.
	admissionHook func(core.AdmissionPath)
	// rec, when non-nil, receives the decision event stream; every
	// emission site is guarded by a nil check (see SetRecorder).
	rec obs.Recorder
}

// SetAdmissionHook registers fn to run synchronously after every Place
// call with the outcome: core.AdmitPlaced on success, core.AdmitRejected
// on failure. The naive packers are single-stage, so there is no finer
// path to attribute; the hook exists so the api/metrics layer counts all
// engines through the same contract.
func (b *Baseline) SetAdmissionHook(fn func(core.AdmissionPath)) { b.admissionHook = fn }

// SetRecorder attaches a decision flight recorder (see internal/obs). A
// nil r detaches it. r.Record runs synchronously inside Place.
func (b *Baseline) SetRecorder(r obs.Recorder) { b.rec = r }

func (b *Baseline) observe(p core.AdmissionPath) {
	if b.admissionHook != nil {
		b.admissionHook(p)
	}
}

// emit labels and forwards one event; callers guard with `b.rec != nil`.
func (b *Baseline) emit(e obs.Event) {
	e.Engine = b.strategy.String()
	b.rec.Record(e)
}

var _ packing.Algorithm = (*Baseline)(nil)

// New creates a baseline packer with the given strategy and replication
// factor.
func New(strategy Strategy, gamma int) (*Baseline, error) {
	switch strategy {
	case FirstFit, BestFit, NextFit:
	default:
		return nil, fmt.Errorf("baseline: unknown strategy %d", strategy)
	}
	p, err := packing.NewPlacement(gamma)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &Baseline{strategy: strategy, gamma: gamma, p: p}, nil
}

// Name implements packing.Algorithm.
func (b *Baseline) Name() string {
	return fmt.Sprintf("%s(γ=%d)", b.strategy, b.gamma)
}

// Placement implements packing.Algorithm.
func (b *Baseline) Placement() *packing.Placement { return b.p }

// Place implements packing.Algorithm.
func (b *Baseline) Place(t packing.Tenant) error {
	if b.rec != nil {
		e := obs.NewEvent(obs.KindAttempt)
		e.Tenant = int(t.ID)
		e.Size = t.Load
		e.Clients = t.Clients
		b.emit(e)
	}
	if err := b.p.AddTenant(t); err != nil {
		b.reject(t.ID, err)
		return err
	}
	for _, rep := range b.p.Replicas(t) {
		var sid, probed int
		switch b.strategy {
		case FirstFit:
			sid, probed = b.firstFit(t.ID, rep)
		case BestFit:
			sid, probed = b.bestFit(t.ID, rep)
		default:
			sid, probed = b.nextFit(t.ID, rep)
		}
		if b.rec != nil {
			e := obs.NewEvent(obs.KindProbe)
			e.Tenant = int(t.ID)
			e.Replica = rep.Index
			e.Probes = probed
			e.Server = sid
			b.emit(e)
		}
		if err := b.p.Place(sid, rep); err != nil {
			err = fmt.Errorf("baseline: internal: %w", err)
			b.reject(t.ID, err)
			return err
		}
		if b.strategy == BestFit {
			b.reposition(sid)
		}
		if b.rec != nil {
			e := obs.NewEvent(obs.KindPlace)
			e.Tenant = int(t.ID)
			e.Replica = rep.Index
			e.Server = sid
			e.Size = rep.Size
			e.Level = b.p.Server(sid).Level()
			b.emit(e)
		}
	}
	if b.rec != nil {
		e := obs.NewEvent(obs.KindAdmit)
		e.Tenant = int(t.ID)
		e.Path = core.AdmitPlaced.String()
		b.emit(e)
	}
	b.observe(core.AdmitPlaced)
	return nil
}

// reject closes a failed admission attempt.
func (b *Baseline) reject(id packing.TenantID, err error) {
	if b.rec != nil {
		e := obs.NewEvent(obs.KindReject)
		e.Tenant = int(id)
		e.Path = core.AdmitRejected.String()
		e.Reason = err.Error()
		b.emit(e)
	}
	b.observe(core.AdmitRejected)
}

func (b *Baseline) fits(sid int, id packing.TenantID, rep packing.Replica) bool {
	s := b.p.Server(sid)
	return !s.Hosts(id) && packing.WithinCapacity(s.Level()+rep.Size)
}

func (b *Baseline) firstFit(id packing.TenantID, rep packing.Replica) (best, probed int) {
	for sid := 0; sid < b.p.NumServers(); sid++ {
		probed++
		if b.fits(sid, id, rep) {
			return sid, probed
		}
	}
	return b.openServer(), probed
}

func (b *Baseline) bestFit(id packing.TenantID, rep packing.Replica) (best, probed int) {
	limit := 1 - rep.Size + packing.CapacityEps
	start := sort.Search(len(b.byLevel), func(k int) bool {
		return b.p.Server(b.byLevel[k]).Level() <= limit
	})
	for i := start; i < len(b.byLevel); i++ {
		sid := b.byLevel[i]
		probed++
		if b.fits(sid, id, rep) {
			return sid, probed
		}
	}
	return b.openServer(), probed
}

func (b *Baseline) nextFit(id packing.TenantID, rep packing.Replica) (best, probed int) {
	for _, sid := range b.open {
		probed++
		if b.fits(sid, id, rep) {
			return sid, probed
		}
	}
	// No current server fits: open a fresh one and slide the window (at
	// most γ servers stay open so each tenant's replicas find distinct
	// homes without reopening closed servers).
	sid := b.p.OpenServer()
	b.emitBinOpen(sid)
	b.open = append(b.open, sid)
	if len(b.open) > b.gamma {
		b.open = b.open[1:]
	}
	return sid, probed
}

func (b *Baseline) openServer() int {
	sid := b.p.OpenServer()
	if b.strategy == BestFit {
		b.pos = append(b.pos, len(b.byLevel))
		b.byLevel = append(b.byLevel, sid)
	}
	b.emitBinOpen(sid)
	return sid
}

func (b *Baseline) emitBinOpen(sid int) {
	if b.rec != nil {
		e := obs.NewEvent(obs.KindBinOpen)
		e.Server = sid
		b.emit(e)
	}
}

// reposition restores the (level desc, ID asc) index order after sid's
// level increased.
func (b *Baseline) reposition(sid int) {
	i := b.pos[sid]
	level := b.p.Server(sid).Level()
	j := sort.Search(i, func(k int) bool {
		other := b.byLevel[k]
		ol := b.p.Server(other).Level()
		return ol < level || (ol == level && other > sid) //cubefit:vet-allow floatcmp -- exact equality keyed to the stored index order
	})
	if j == i {
		return
	}
	copy(b.byLevel[j+1:i+1], b.byLevel[j:i])
	b.byLevel[j] = sid
	for k := j; k <= i; k++ {
		b.pos[b.byLevel[k]] = k
	}
}
